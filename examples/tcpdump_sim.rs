//! A tiny tcpdump: read a pcap savefile (or generate a demo capture),
//! apply a filter expression, print one line per matching packet — and,
//! with `-d`, dump the compiled BPF program exactly like `tcpdump -d`.
//!
//! ```text
//! cargo run --release --example tcpdump_sim -- 'udp and dst port 9'
//! cargo run --release --example tcpdump_sim -- -r trace.pcap 'ip src 192.168.10.100'
//! cargo run --release --example tcpdump_sim -- -d 'not tcp and ether[6:4]=0'
//! ```

use pcapbench::bpf::{asm, compile, vm};
use pcapbench::pcapfile::PcapReader;
use pcapbench::prelude::*;
use pcapbench::wire::{EtherType, EthernetFrame, Ipv4Header, PacketBytes, Protocol, UdpHeader};

/// A snaplen-truncated record, filtered the way `pcap_offline_filter`
/// does: `len` is the original wire length, loads beyond the captured
/// bytes fail (reject).
struct Snapped<'a> {
    data: &'a [u8],
    wire_len: u32,
}

impl PacketBytes for Snapped<'_> {
    fn len(&self) -> u32 {
        self.wire_len
    }
    fn byte(&self, offset: u32) -> Option<u8> {
        self.data.get(offset as usize).copied()
    }
}

fn describe(data: &[u8], orig_len: u32) -> String {
    let eth = match EthernetFrame::parse(data) {
        Ok(e) => e,
        Err(_) => return format!("[malformed frame, {orig_len} bytes]"),
    };
    match eth.ethertype() {
        EtherType::Ipv4 => match Ipv4Header::parse(eth.payload()) {
            Ok(ip) => {
                let l4 = &eth.payload()[20.min(eth.payload().len())..];
                match ip.protocol {
                    Protocol::Udp => match UdpHeader::parse(l4) {
                        Ok(u) => format!(
                            "IP {}.{} > {}.{}: UDP, length {}",
                            ip.src,
                            u.src_port,
                            ip.dst,
                            u.dst_port,
                            u.length.saturating_sub(8)
                        ),
                        Err(_) => format!("IP {} > {}: UDP [truncated]", ip.src, ip.dst),
                    },
                    Protocol::Tcp => format!("IP {} > {}: TCP", ip.src, ip.dst),
                    Protocol::Icmp => format!("IP {} > {}: ICMP", ip.src, ip.dst),
                    Protocol::Other(p) => format!("IP {} > {}: proto {p}", ip.src, ip.dst),
                }
            }
            Err(_) => "[malformed IPv4]".to_string(),
        },
        EtherType::Arp => "ARP".to_string(),
        EtherType::Ipv6 => "IP6".to_string(),
        EtherType::Other(t) => format!("ethertype {t:#06x}, length {orig_len}"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut read_file: Option<String> = None;
    let mut dump_only = false;
    let mut limit = 20usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-r" => {
                read_file = Some(args.remove(i + 1));
                args.remove(i);
            }
            "-d" => {
                dump_only = true;
                args.remove(i);
            }
            "-c" => {
                limit = args.remove(i + 1).parse().expect("bad -c count");
                args.remove(i);
            }
            _ => i += 1,
        }
    }
    let expression = args.join(" ");

    let prog = compile(&expression, 65_535).unwrap_or_else(|e| {
        eprintln!("tcpdump_sim: {e}");
        std::process::exit(1);
    });
    if dump_only {
        // `tcpdump -d`: the compiled program, nothing else.
        println!("{}", asm::disasm(&prog));
        return;
    }

    // Obtain packets: from a savefile, or from a demo capture run.
    let records: Vec<(u64, Vec<u8>, u32)> = match &read_file {
        Some(path) => {
            let data = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("tcpdump_sim: cannot read {path}: {e}");
                std::process::exit(1);
            });
            PcapReader::new(&data)
                .and_then(|r| r.records())
                .unwrap_or_else(|e| {
                    eprintln!("tcpdump_sim: bad pcap: {e}");
                    std::process::exit(1);
                })
                .into_iter()
                .map(|r| (r.ts_ns, r.data, r.orig_len))
                .collect()
        }
        None => {
            // No file: sniff a simulated capture of the MWN-like workload.
            let cycle = CycleConfig::mwn(2_000, 7);
            let gen = Generator::new(
                PktgenConfig {
                    count: cycle.count,
                    size: cycle.size.clone(),
                    ..PktgenConfig::default()
                },
                TxModel::syskonnect(),
                cycle.seed,
            );
            gen.map(|tp| {
                (
                    tp.time.as_nanos(),
                    tp.packet.materialize(96),
                    tp.packet.frame_len,
                )
            })
            .collect()
        }
    };

    let mut matched = 0u64;
    let mut seen = 0u64;
    for (ts_ns, data, orig_len) in &records {
        seen += 1;
        let snapped = Snapped {
            data,
            wire_len: *orig_len,
        };
        let verdict = vm::run(&prog, &snapped).expect("validated program");
        if verdict.accepted() {
            matched += 1;
            if matched as usize <= limit {
                let secs = ts_ns / 1_000_000_000;
                let micros = (ts_ns % 1_000_000_000) / 1_000;
                println!("{secs}.{micros:06} {}", describe(data, *orig_len));
            }
        }
    }
    if matched as usize > limit {
        println!(
            "... ({} more matches suppressed; -c N to raise)",
            matched as usize - limit
        );
    }
    eprintln!("{seen} packets examined, {matched} matched filter \"{expression}\"");
}
