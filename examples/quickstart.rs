//! Quickstart: capture one generated workload on one simulated machine.
//!
//! Builds the thesis' best system (moorhen: FreeBSD 5.4 on dual Opteron),
//! points the enhanced packet generator at it at 500 Mbit/s, and prints
//! the capture statistics and CPU profile — the smallest end-to-end tour
//! of the library.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pcapbench::prelude::*;
use pcapbench::profiling;

fn main() {
    // 1. A capture session, libpcap style.
    let mut session = Pcap::open_live("em0", 65_535, true, 20);
    session
        .set_filter_expression("udp and dst port 9")
        .expect("filter compiles");

    // 2. The workload: 200k packets of the MWN-like size mix at 500 Mbit/s.
    let cycle = CycleConfig::mwn(200_000, /* seed */ 2005);
    let mut generator = Generator::new(
        PktgenConfig {
            count: cycle.count,
            size: cycle.size.clone(),
            ..PktgenConfig::default()
        },
        TxModel::syskonnect(),
        cycle.seed,
    );
    generator.set_target_rate(500.0, cycle.mean_frame);
    generator.set_burstiness(cycle.burst);

    // 3. The machine: moorhen with the thesis' increased buffers.
    let sim = SimConfig {
        buffers: BufferConfig::increased(),
        apps: vec![session.app_config()],
        ..SimConfig::default()
    };
    let report =
        MachineSim::new(MachineSpec::moorhen(), sim).run(generator.map(|tp| (tp.time, tp.packet)));

    // 4. Results.
    let stats = Pcap::stats(&report.apps[0], report.nic_ring_drops);
    println!("machine          : {}", report.machine);
    println!("offered packets  : {}", report.offered);
    println!("ps_recv          : {}", stats.ps_recv);
    println!("ps_drop          : {}", stats.ps_drop);
    println!("ps_ifdrop        : {}", stats.ps_ifdrop);
    println!("capture rate     : {:.2}%", report.capture_rate(0) * 100.0);
    println!("virtual duration : {:.3}s", report.elapsed.as_secs_f64());
    let busy = profiling::trimmed_busy_percent(&report.samples, 95.0);
    println!("cpu busy (trim)  : {busy:.1}%");
    assert!(report.capture_rate(0) > 0.99, "moorhen captures 500 Mbit/s");
}
