//! A header-trace recorder: capture a workload, keep 76 bytes of every
//! packet (the thesis' Fig. 6.14 setting), and write a real pcap savefile
//! that any analysis tool can read back — then read it back ourselves and
//! rebuild the packet-size distribution with the `createDist` pipeline,
//! closing the loop the thesis' tooling describes (Appendix A.1).
//!
//! ```text
//! cargo run --release --example trace_recorder [-- /tmp/trace.pcap]
//! ```

use pcapbench::capture::Dumper;
use pcapbench::pcapfile::SizeHistogram;
use pcapbench::pktgen::{convert, DistConfig, InputKind, OutputKind};
use pcapbench::prelude::*;
use std::collections::HashMap;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/pcapbench_trace.pcap".to_string());
    let snaplen = 76u32;
    let cycle = CycleConfig::mwn(50_000, 11);

    // Capture with per-packet recording enabled.
    let app = MeasurementApp::new()
        .snaplen(snaplen)
        .write_headers(snaplen)
        .record()
        .build();
    let sim = SimConfig {
        apps: vec![app],
        ..SimConfig::default()
    };
    let make_gen = || {
        let mut g = Generator::new(
            PktgenConfig {
                count: cycle.count,
                size: cycle.size.clone(),
                ..PktgenConfig::default()
            },
            TxModel::syskonnect(),
            cycle.seed,
        );
        g.set_target_rate(300.0, cycle.mean_frame);
        g.set_burstiness(cycle.burst);
        g
    };
    let report =
        MachineSim::new(MachineSpec::moorhen(), sim).run(make_gen().map(|tp| (tp.time, tp.packet)));
    println!(
        "captured {} of {} packets",
        report.apps[0].received, report.offered
    );

    // Regenerate the packet bytes (determinism: same seed, same stream)
    // and write the savefile.
    let index: HashMap<u64, pcapbench::wire::SimPacket> =
        make_gen().map(|tp| (tp.packet.seq, tp.packet)).collect();
    let file = std::fs::File::create(&path).expect("create savefile");
    let mut dumper = Dumper::new(file, snaplen, &index).expect("dumper");
    let written = dumper
        .dump_all(&report.apps[0].captured)
        .expect("write records");
    dumper.finish().expect("flush");
    println!("wrote {written} records to {path}");

    // Read it back: summarize sizes and emit the pktgen procfs commands —
    // exactly what `createDist -I trace -O procfs` does.
    let bytes = std::fs::read(&path).expect("read savefile back");
    let hist = SizeHistogram::from_pcap(&bytes).expect("parse savefile");
    println!(
        "re-read {} packets, {} distinct IP sizes, mean {:.1} bytes",
        hist.total(),
        hist.distinct_sizes(),
        hist.mean()
    );
    let procfs = convert(
        InputKind::Trace,
        &bytes,
        OutputKind::Procfs {
            surround_pgset: true,
        },
        &DistConfig::default(),
        ' ',
    )
    .expect("createDist conversion");
    println!("\nfirst pgset commands for the enhanced pktgen:");
    for line in procfs.lines().take(5) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", procfs.lines().count());
}
