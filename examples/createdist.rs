//! `createdist` — a faithful port of the thesis' `createDist` tool
//! (Appendix A.1): convert between packet-size representations and emit
//! input for the enhanced kernel packet generator.
//!
//! ```text
//! cargo run --release --example createdist -- -I sizes -O dist -i sizes.txt
//! cargo run --release --example createdist -- -I trace -O procfs -i trace.pcap -s
//! cargo run --release --example createdist -- -I dist -O sizes -n 1000 -i dist.txt
//! ```
//!
//! Options follow the original (Appendix A.1.3):
//! `-i`/`-o` input/output files (default stdin/stdout), `-I`/`-O` types
//! (`sizes`, `dist`, `procfs`, `trace`), `-fs` field separator, `-n`
//! sample count for `-O sizes`, `-s` surround procfs output with
//! `pgset "…"`, and the distribution parameters `-max`, `-prec`,
//! `-hwidth`, `-outlb`.

use pcapbench::pktgen::{convert, DistConfig, InputKind, OutputKind};
use std::io::{Read, Write};

fn fail(msg: &str) -> ! {
    eprintln!("createdist: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input_kind = InputKind::Dist;
    let mut output_kind_name = "procfs".to_string();
    let mut in_file: Option<String> = None;
    let mut out_file: Option<String> = None;
    let mut field_sep = ' ';
    let mut count: u64 = 10_000_000;
    let mut surround = false;
    let mut cfg = DistConfig::default();
    let mut seed = 2005u64;

    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> &String {
            args.get(i + 1)
                .unwrap_or_else(|| fail(&format!("{} needs an argument", args[i])))
        };
        match args[i].as_str() {
            "-I" => {
                input_kind = match need(i).as_str() {
                    "sizes" => InputKind::Sizes,
                    "dist" => InputKind::Dist,
                    "trace" => InputKind::Trace,
                    other => fail(&format!("unsupported input type '{other}'")),
                };
                i += 1;
            }
            "-O" => {
                output_kind_name = need(i).clone();
                i += 1;
            }
            "-i" => {
                in_file = Some(need(i).clone());
                i += 1;
            }
            "-o" => {
                out_file = Some(need(i).clone());
                i += 1;
            }
            "-fs" => {
                field_sep = need(i).chars().next().unwrap_or(' ');
                i += 1;
            }
            "-n" => {
                count = need(i).parse().unwrap_or_else(|_| fail("bad -n"));
                i += 1;
            }
            "-max" => {
                cfg.max_size = need(i).parse().unwrap_or_else(|_| fail("bad -max"));
                i += 1;
            }
            "-prec" => {
                cfg.precision = need(i).parse().unwrap_or_else(|_| fail("bad -prec"));
                i += 1;
            }
            "-hwidth" => {
                cfg.binsize = need(i).parse().unwrap_or_else(|_| fail("bad -hwidth"));
                i += 1;
            }
            "-outlb" => {
                cfg.outlier_bound = need(i).parse().unwrap_or_else(|_| fail("bad -outlb"));
                i += 1;
            }
            "-seed" => {
                seed = need(i).parse().unwrap_or_else(|_| fail("bad -seed"));
                i += 1;
            }
            "-s" => surround = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: createdist [-I sizes|dist|trace] [-O sizes|dist|procfs] \
                     [-i FILE] [-o FILE] [-fs C] [-n N] [-s] \
                     [-max N] [-prec N] [-hwidth N] [-outlb F] [-seed N]"
                );
                return;
            }
            other => fail(&format!("unknown option '{other}'")),
        }
        i += 1;
    }

    let output_kind = match output_kind_name.as_str() {
        "sizes" => OutputKind::Sizes { count, seed },
        "dist" => OutputKind::Dist,
        "procfs" => OutputKind::Procfs {
            surround_pgset: surround,
        },
        other => fail(&format!("unsupported output type '{other}'")),
    };

    let mut data = Vec::new();
    match &in_file {
        Some(path) => {
            data = std::fs::read(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
        }
        None => {
            std::io::stdin()
                .read_to_end(&mut data)
                .unwrap_or_else(|e| fail(&format!("cannot read stdin: {e}")));
        }
    }

    let out = convert(input_kind, &data, output_kind, &cfg, field_sep)
        .unwrap_or_else(|e| fail(&e.to_string()));

    match &out_file {
        Some(path) => {
            std::fs::write(path, out).unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")))
        }
        None => {
            std::io::stdout()
                .write_all(out.as_bytes())
                .unwrap_or_else(|e| fail(&format!("cannot write stdout: {e}")));
        }
    }
}
