//! An intrusion-detection-style deployment: the workload the thesis'
//! introduction motivates (§1.1, §4.1.4 — Bro on the MWN uplink).
//!
//! The monitor captures with a real filter (the kind an IDS installs to
//! shed load), performs per-packet analysis work (modelled as zlib
//! compression of every packet, like the thesis' gzwrite load), and
//! writes connection headers to disk for later forensics — the thesis'
//! "time machine" idea. Run on two candidate machines to see why the
//! thesis recommends FreeBSD/Opteron for this job.
//!
//! ```text
//! cargo run --release --example ids_monitor
//! ```

use pcapbench::prelude::*;

fn run_on(spec: MachineSpec, cycle: &CycleConfig, rate: f64) -> RunReport {
    // The IDS session: filter out what we never analyse, compress the
    // rest, keep 76-byte headers on disk.
    let app = MeasurementApp::new()
        .filter("ip and not tcp port 443")
        .expect("filter compiles")
        .compress(3)
        .write_headers(76)
        .build();
    let sim = SimConfig {
        apps: vec![app],
        ..SimConfig::default()
    };
    let mut generator = Generator::new(
        PktgenConfig {
            count: cycle.count,
            size: cycle.size.clone(),
            ..PktgenConfig::default()
        },
        TxModel::syskonnect(),
        cycle.seed,
    );
    generator.set_target_rate(rate, cycle.mean_frame);
    generator.set_burstiness(cycle.burst);
    MachineSim::new(spec, sim).run(generator.map(|tp| (tp.time, tp.packet)))
}

fn main() {
    let cycle = CycleConfig::mwn(120_000, 7);
    // The MWN uplink peaks around 400 Mbit/s per direction (§4.1.4);
    // provision for bursts beyond that.
    let rate = 400.0;

    println!("IDS monitor at {rate} Mbit/s (filter + gzip-3 + headers to disk)\n");
    for spec in [MachineSpec::moorhen(), MachineSpec::snipe()] {
        let r = run_on(spec, &cycle, rate);
        let stats = pcapbench::capture::Pcap::stats(&r.apps[0], r.nic_ring_drops);
        println!("{}", r.machine);
        println!("  captured        : {:.2}%", r.capture_rate(0) * 100.0);
        println!("  kernel drops    : {}", stats.ps_drop);
        println!("  headers to disk : {:.1} MB", r.disk_bytes as f64 / 1e6);
        println!(
            "  cpu busy        : {:.0}%",
            pcapbench::profiling::trimmed_busy_percent(&r.samples, 95.0)
        );
        println!();
    }
    println!(
        "(thesis §6.3.4: compression-heavy analysis is where the 3 GHz Xeons\n\
          shine — \"the Intel processors seem to be much more efficient for the\n\
          special task of compression\" — while plain capture still belongs to\n\
          FreeBSD on Opteron)"
    );
}
