//! The headline comparison: all four sniffers side by side across the
//! rate ladder — a compact rerun of the thesis' Figure 6.3.
//!
//! ```text
//! cargo run --release --example capture_shootout [-- single]
//! ```
//!
//! Pass `single` to disable the second processor (the "no SMP" mode).

use pcapbench::prelude::*;

fn main() {
    let single = std::env::args().any(|a| a == "single");
    let suts: Vec<Sut> = standard_suts(SimConfig::default())
        .into_iter()
        .map(|mut s| {
            if single {
                s.spec = s.spec.single_cpu();
            }
            s
        })
        .collect();

    let mut cycle = CycleConfig::mwn(150_000, 42);
    cycle.repeats = 1;
    let rates: Vec<Option<f64>> = vec![
        Some(100.0),
        Some(300.0),
        Some(500.0),
        Some(700.0),
        Some(900.0),
        None, // no inter-packet gap
    ];

    println!(
        "capture shootout — {} processor mode",
        if single { "single" } else { "dual" }
    );
    print!("{:>12}", "rate[Mbit/s]");
    for s in &suts {
        print!("  {:>22}", s.spec.label());
    }
    println!();

    let points = run_sweep(&suts, &cycle, &rates);
    for p in &points {
        print!("{:>12.0}", p.achieved_mbps);
        for s in &p.suts {
            print!("  {:>13.1}% cpu {:>3.0}", s.capture * 100.0, s.cpu_busy);
        }
        println!();
    }

    // The thesis' conclusion (§7.1): FreeBSD/Opteron wins.
    let last = points.last().expect("points");
    let moorhen = last
        .suts
        .iter()
        .find(|s| s.label.contains("moorhen"))
        .expect("moorhen present");
    let best = last
        .suts
        .iter()
        .map(|s| s.capture)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nat full speed moorhen captures {:.1}% — best of the field: {:.1}%",
        moorhen.capture * 100.0,
        best * 100.0
    );
}
