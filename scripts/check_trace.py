#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by `experiments --trace`.

Checks, in order:

1. the file parses as JSON (an independent parser from the Rust emitter);
2. the trace has the expected envelope (``displayTimeUnit``,
   ``traceEvents``) and every event carries the required keys for its
   phase;
3. every ``drop_attribution/appN`` counter balances exactly:
   generated == delivered + the seven loss buckets;
4. optionally (``--golden FILE``) the event-count summary line matches a
   checked-in snapshot, pinning the traced simulation's event population.

Prints the summary line on success so CI logs show what was validated.
Regenerate the snapshot by re-running with ``--regen`` after an
intentional simulation change (``--update-golden`` is the older alias).
"""

import argparse
import json
import sys

ATTR_COLUMNS = [
    "generated",
    "nic_drops",
    "nic_residue",
    "filter_rejects",
    "kernel_buffer_drops",
    "kernel_pool_drops",
    "kernel_residue",
    "app_residue",
    "delivered",
]


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--golden", help="compare the summary line to this snapshot file")
    ap.add_argument(
        "--regen",
        "--update-golden",
        action="store_true",
        help="rewrite the --golden file with the observed summary",
    )
    args = ap.parse_args()

    with open(args.trace, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"not valid JSON: {e}")

    if doc.get("displayTimeUnit") != "ns":
        fail(f"displayTimeUnit must be 'ns', got {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    pids = set()
    counts = {"M": 0, "i": 0, "C": 0}
    attributions = 0
    for ev in events:
        ph = ev.get("ph")
        if ph not in counts:
            fail(f"unexpected phase {ph!r} in {ev}")
        counts[ph] += 1
        if "pid" not in ev:
            fail(f"event without pid: {ev}")
        process_scoped = ph == "M" and ev.get("name") in ("process_name", "process_sort_index")
        if not process_scoped and "tid" not in ev:
            fail(f"thread-scoped event without tid: {ev}")
        pids.add(ev["pid"])
        if ph != "M" and "ts" not in ev:
            fail(f"non-metadata event without ts: {ev}")
        if ph == "C" and str(ev.get("name", "")).startswith("drop_attribution/"):
            a = ev["args"]
            missing = [c for c in ATTR_COLUMNS if c not in a]
            if missing:
                fail(f"{ev['name']} missing buckets {missing}")
            drops = sum(a[c] for c in ATTR_COLUMNS if c not in ("generated", "delivered"))
            if a["generated"] != a["delivered"] + drops:
                fail(
                    f"{ev['name']} (pid {ev['pid']}, tid {ev.get('tid')}): "
                    f"generated {a['generated']} != delivered {a['delivered']} + drops {drops}"
                )
            attributions += 1

    if attributions == 0:
        fail("no drop_attribution counters found")

    summary = (
        f"cells={len(pids)} metadata={counts['M']} instants={counts['i']} "
        f"counters={counts['C']} attributions={attributions}"
    )
    print(f"check_trace: OK: {summary}")

    if args.golden:
        if args.regen:
            with open(args.golden, "w", encoding="utf-8") as f:
                f.write(summary + "\n")
            print(f"check_trace: wrote golden snapshot {args.golden}")
        else:
            with open(args.golden, "r", encoding="utf-8") as f:
                expected = f.read().strip()
            if summary != expected:
                fail(
                    f"event counts drifted from golden snapshot {args.golden}:\n"
                    f"  expected: {expected}\n"
                    f"  observed: {summary}\n"
                    "if the simulation changed intentionally, regenerate with:\n"
                    f"  python3 scripts/check_trace.py {args.trace} "
                    f"--golden {args.golden} --regen"
                )


if __name__ == "__main__":
    main()
