#!/usr/bin/env python3
"""Gate hot-path performance against the committed BENCH_HOTPATH.json.

Reads the stdout of ``cargo bench -p pcs-bench --bench hotpath`` (a file
argument or stdin), which the vendored criterion stub prints as::

    sched_overhead/full-pipeline        15.083 ms/iter   2651908 elem/s

and compares **every bench recorded in the baseline** to its measured
time, **calibrated by host speed**: the bare
``sched_overhead/event-queue-floor`` bench runs the same 40k-event chain
with no stage work, so

    expected = baseline * (measured_floor / baseline_floor)

tracks how fast this runner is rather than assuming the baseline host.
A bench fails only when its measured time exceeds
``expected * --threshold`` (default 1.6 — generous, because shared
CI runners are noisy; the point is to catch an accidental return of
per-packet allocation or an O(n) slip, not a 5% drift). Every bench
outside its floor is reported — the check does not stop at the first
failure — and the host-calibration ratio is always printed.

If the floor itself deviates wildly from baseline (ratio outside
[1/--max-floor-ratio, --max-floor-ratio]), the runner is too unlike the
baseline host for a meaningful verdict and the check SKIPS (exit 0) with
a clear message rather than failing the build.

Regenerate the baseline with ``cargo bench -p pcs-bench --bench hotpath``
and record the new numbers in BENCH_HOTPATH.json after an intentional
hot-path change. Record every ``hotpath/*`` variant together (pool-on,
pool-off, pool-on-shared-ref, stage-times-on, batch-on, batch-off): the
variants are context for each other, ``stage-times-on`` documents what a
``--ledger`` run pays over ``pool-on``, and ``batch-on``/``batch-off``
document what macro-batched event admission buys over the per-packet
engine (``PCS_NO_BATCH=1``).

To localize a failure, pass ``--ledgers BASELINE.json CURRENT.json``
(two run ledgers from ``pcs-experiments run --ledger``, e.g. the quick
fig6.4a sweep on the last-good and the failing build): on FAIL the
script also prints which per-stage busy/stretch/idle time moved, summed
per work kind across every cell, so "slower" comes with "where".
"""

import argparse
import json
import re
import sys

FULL = "sched_overhead/full-pipeline"
FLOOR = "sched_overhead/event-queue-floor"

LINE = re.compile(r"^(\S+)\s+([0-9.]+)\s+ms/iter\b")


def fail(msg: str) -> None:
    print(f"check_perf: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def skip(msg: str) -> None:
    print(f"check_perf: SKIP: {msg} (not a verdict on this change)")
    sys.exit(0)


def stage_totals(ledger_path: str) -> dict:
    """Sum per-work-kind busy/stretch and idle ns across a ledger's cells.

    Returns {"busy/<kind>": ns, "stretch/<kind>": ns, "idle": ns}.
    """
    with open(ledger_path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("pcs_ledger") != 1:
        fail(f"{ledger_path} is not a pcs_ledger v1 document")
    totals = {}
    for cell in doc.get("cells", []):
        for sut in cell.get("suts", []):
            st = sut.get("stage_times")
            if not st:
                continue
            for cpu in st.get("cpus", []):
                for key in ("busy", "stretch"):
                    for kind, ns in cpu.get(key, {}).items():
                        totals[f"{key}/{kind}"] = totals.get(f"{key}/{kind}", 0) + ns
                totals["idle"] = totals.get("idle", 0) + cpu.get("idle", 0)
    return totals


def print_stage_deltas(ledger_a: str, ledger_b: str) -> None:
    """Per-stage time deltas between two ledgers, largest movers first."""
    a, b = stage_totals(ledger_a), stage_totals(ledger_b)
    if not a and not b:
        print(
            "check_perf: ledgers carry no stage times — rerun with a "
            "--ledger-armed sweep (stage attribution is on whenever "
            "--ledger is)",
            file=sys.stderr,
        )
        return
    rows = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key, 0), b.get(key, 0)
        if va == vb:
            continue
        rel = abs(va - vb) / max(abs(va), abs(vb), 1)
        rows.append((rel, key, va, vb))
    rows.sort(reverse=True)
    print("check_perf: per-stage time deltas (ledger A -> B, summed over all cells):", file=sys.stderr)
    if not rows:
        print("check_perf:   none — stage times are identical", file=sys.stderr)
    for rel, key, va, vb in rows:
        print(
            f"check_perf:   {rel * 100:8.2f}%  {key:<24} "
            f"{va / 1e6:12.3f} ms -> {vb / 1e6:12.3f} ms",
            file=sys.stderr,
        )


def parse_bench_output(text: str) -> dict:
    """Map bench id -> ms/iter from the criterion-stub stdout."""
    out = {}
    for line in text.splitlines():
        m = LINE.match(line.strip())
        if m:
            out[m.group(1)] = float(m.group(2))
    return out


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "bench_output",
        nargs="?",
        help="file with `cargo bench --bench hotpath` stdout (default: stdin)",
    )
    ap.add_argument(
        "--baseline",
        default="BENCH_HOTPATH.json",
        help="committed baseline JSON (default: BENCH_HOTPATH.json)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=1.6,
        help="fail above expected * THRESHOLD (default: 1.6)",
    )
    ap.add_argument(
        "--max-floor-ratio",
        type=float,
        default=4.0,
        help="skip when the floor ratio leaves [1/R, R] (default: 4.0)",
    )
    ap.add_argument(
        "--ledgers",
        nargs=2,
        metavar=("BASELINE.json", "CURRENT.json"),
        help="run ledgers to localize a failure: on FAIL, print per-stage "
        "busy/stretch/idle deltas between the two",
    )
    args = ap.parse_args()

    if args.bench_output:
        with open(args.bench_output, "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    measured = parse_bench_output(text)
    for key in (FULL, FLOOR):
        if key not in measured:
            fail(f"bench output has no `{key}` line — wrong bench or truncated log?")

    with open(args.baseline, "r", encoding="utf-8") as f:
        baseline = json.load(f)
    try:
        base_full = baseline["results"][FULL]["ms_per_iter"]
        base_floor = baseline["results"][FLOOR]["ms_per_iter"]
    except KeyError as e:
        fail(f"baseline {args.baseline} is missing {e}")

    floor_ratio = measured[FLOOR] / base_floor
    print(
        f"check_perf: host calibration: event-queue floor {measured[FLOOR]:.3f} ms "
        f"vs baseline {base_floor:.3f} ms -> ratio {floor_ratio:.2f}x"
    )
    if not (1.0 / args.max_floor_ratio <= floor_ratio <= args.max_floor_ratio):
        skip(
            f"event-queue floor is {measured[FLOOR]:.3f} ms vs baseline "
            f"{base_floor:.3f} ms ({floor_ratio:.2f}x) — this runner is too "
            f"unlike the baseline host for a calibrated comparison"
        )

    # Gate every baseline bench (the floor is the calibration reference,
    # not a gated subject). Report all verdicts; fail at the end so one
    # regression never hides another.
    failures = []
    for bench in sorted(baseline["results"]):
        if bench == FLOOR:
            continue
        base_ms = baseline["results"][bench]["ms_per_iter"]
        if bench not in measured:
            failures.append(bench)
            print(f"check_perf: {bench} MISSING from bench output (truncated log?)")
            continue
        expected = base_ms * floor_ratio
        limit = expected * args.threshold
        verdict = "OK" if measured[bench] <= limit else "FAIL"
        print(
            f"check_perf: {bench} measured {measured[bench]:.3f} ms/iter; "
            f"baseline {base_ms:.3f} scaled by floor ratio {floor_ratio:.2f}x "
            f"-> expected {expected:.3f}, limit {limit:.3f} (x{args.threshold}): {verdict}"
        )
        if verdict == "FAIL":
            failures.append(bench)
    if failures:
        if args.ledgers:
            print_stage_deltas(args.ledgers[0], args.ledgers[1])
        fail(
            f"{len(failures)} bench(es) regressed past the calibrated limit: "
            f"{', '.join(failures)}. "
            f"If the slowdown is intentional, regenerate {args.baseline} "
            f"(see its `command` field) and commit the new numbers."
            + (
                ""
                if args.ledgers
                else " For per-stage localization, rerun with --ledgers "
                "BASELINE.json CURRENT.json (ledgers from "
                "`experiments run --ledger` on the last-good and failing builds)."
            )
        )


if __name__ == "__main__":
    main()
