#!/usr/bin/env python3
"""Gate hot-path performance against the committed BENCH_HOTPATH.json.

Reads the stdout of ``cargo bench -p pcs-bench --bench hotpath`` (a file
argument or stdin), which the vendored criterion stub prints as::

    sched_overhead/full-pipeline        15.083 ms/iter   2651908 elem/s

and compares ``sched_overhead/full-pipeline`` to the committed baseline,
**calibrated by host speed**: the bare ``sched_overhead/event-queue-floor``
bench runs the same 40k-event chain with no stage work, so

    expected_full = baseline_full * (measured_floor / baseline_floor)

tracks how fast this runner is rather than assuming the baseline host.
The check fails only when the measured full-pipeline time exceeds
``expected_full * --threshold`` (default 1.6 — generous, because shared
CI runners are noisy; the point is to catch an accidental return of
per-packet allocation or an O(n) slip, not a 5% drift).

If the floor itself deviates wildly from baseline (ratio outside
[1/--max-floor-ratio, --max-floor-ratio]), the runner is too unlike the
baseline host for a meaningful verdict and the check SKIPS (exit 0) with
a clear message rather than failing the build.

Regenerate the baseline with ``cargo bench -p pcs-bench --bench hotpath``
and record the new numbers in BENCH_HOTPATH.json after an intentional
hot-path change.
"""

import argparse
import json
import re
import sys

FULL = "sched_overhead/full-pipeline"
FLOOR = "sched_overhead/event-queue-floor"

LINE = re.compile(r"^(\S+)\s+([0-9.]+)\s+ms/iter\b")


def fail(msg: str) -> None:
    print(f"check_perf: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def skip(msg: str) -> None:
    print(f"check_perf: SKIP: {msg} (not a verdict on this change)")
    sys.exit(0)


def parse_bench_output(text: str) -> dict:
    """Map bench id -> ms/iter from the criterion-stub stdout."""
    out = {}
    for line in text.splitlines():
        m = LINE.match(line.strip())
        if m:
            out[m.group(1)] = float(m.group(2))
    return out


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "bench_output",
        nargs="?",
        help="file with `cargo bench --bench hotpath` stdout (default: stdin)",
    )
    ap.add_argument(
        "--baseline",
        default="BENCH_HOTPATH.json",
        help="committed baseline JSON (default: BENCH_HOTPATH.json)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=1.6,
        help="fail above expected * THRESHOLD (default: 1.6)",
    )
    ap.add_argument(
        "--max-floor-ratio",
        type=float,
        default=4.0,
        help="skip when the floor ratio leaves [1/R, R] (default: 4.0)",
    )
    args = ap.parse_args()

    if args.bench_output:
        with open(args.bench_output, "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    measured = parse_bench_output(text)
    for key in (FULL, FLOOR):
        if key not in measured:
            fail(f"bench output has no `{key}` line — wrong bench or truncated log?")

    with open(args.baseline, "r", encoding="utf-8") as f:
        baseline = json.load(f)
    try:
        base_full = baseline["results"][FULL]["ms_per_iter"]
        base_floor = baseline["results"][FLOOR]["ms_per_iter"]
    except KeyError as e:
        fail(f"baseline {args.baseline} is missing {e}")

    floor_ratio = measured[FLOOR] / base_floor
    if not (1.0 / args.max_floor_ratio <= floor_ratio <= args.max_floor_ratio):
        skip(
            f"event-queue floor is {measured[FLOOR]:.3f} ms vs baseline "
            f"{base_floor:.3f} ms ({floor_ratio:.2f}x) — this runner is too "
            f"unlike the baseline host for a calibrated comparison"
        )

    expected = base_full * floor_ratio
    limit = expected * args.threshold
    verdict = "OK" if measured[FULL] <= limit else "FAIL"
    print(
        f"check_perf: {FULL} measured {measured[FULL]:.3f} ms/iter; "
        f"baseline {base_full:.3f} scaled by floor ratio {floor_ratio:.2f}x "
        f"-> expected {expected:.3f}, limit {limit:.3f} (x{args.threshold}): {verdict}"
    )
    if verdict == "FAIL":
        fail(
            f"{FULL} regressed: {measured[FULL]:.3f} ms/iter > {limit:.3f} ms/iter. "
            f"If the slowdown is intentional, regenerate {args.baseline} "
            f"(see its `command` field) and commit the new numbers."
        )


if __name__ == "__main__":
    main()
