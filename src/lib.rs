//! # pcapbench — a reproduction of *"Performance evaluation of packet
//! capturing systems for high-speed networks"* (Fabian Schneider, TU
//! München, 2005)
//!
//! The thesis asks a simple question with an intricate answer: **which
//! commodity OS/architecture combination loses the fewest packets when
//! capturing a saturated Gigabit Ethernet link?** It builds a four-machine
//! testbed (dual Intel Xeon and dual AMD Opteron, each under Linux 2.6 and
//! FreeBSD 5.4), extends the Linux kernel packet generator to emit
//! realistic packet-size mixes at line rate, and measures how buffers,
//! filters, concurrent applications, analysis load, disk writing and
//! kernel patches move the capture rate.
//!
//! This crate is the façade over the full reproduction:
//!
//! | crate | contents |
//! |---|---|
//! | [`des`] | deterministic discrete-event kernel (time, events, PRNG) |
//! | [`wire`] | Ethernet/IPv4/UDP wire formats, the simulation packet |
//! | [`bpf`] | classic BPF: VM, validator, assembler, filter compiler + optimizer |
//! | [`zdeflate`] | DEFLATE/gzip (the zlib of the load experiments) |
//! | [`pcapfile`] | pcap savefile I/O and trace summarization |
//! | [`pktgen`] | the enhanced packet generator (two-stage size distributions) |
//! | [`hw`] | CPU/memory/PCI/NIC/disk models, the four machine presets |
//! | [`oskernel`] | the simulated capture stacks (BPF device, PF_PACKET, mmap ring) |
//! | [`faultsim`] | deterministic fault injection + the sim-wide invariant oracle |
//! | [`trace`] | deterministic packet-lifecycle tracing, metrics, drop attribution |
//! | [`capture`] | libpcap-style sessions and the measurement application |
//! | [`profiling`] | cpusage + trimusage |
//! | [`testbed`] | splitter, switch, measurement cycle |
//! | [`core`] | run scales, experiment registry (one function per figure) |
//!
//! ## Quickstart
//!
//! ```no_run
//! use pcapbench::core::{figures, ExecConfig, Scale};
//!
//! // Regenerate Figure 6.3(b): all four sniffers, increased buffers.
//! // The sweep's cells run on all host cores; results are bit-identical
//! // to a serial run.
//! let fig = figures::fig6_3_increased_buffers(&Scale::quick(), true, &ExecConfig::parallel());
//! println!("{}", fig.to_table());
//! assert!(fig.final_capture("moorhen").unwrap() > 95.0);
//! ```
//!
//! See `examples/` for runnable scenarios and the `experiments` binary for
//! the full evaluation suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pcs_bpf as bpf;
pub use pcs_capture as capture;
pub use pcs_core as core;
pub use pcs_des as des;
pub use pcs_faultsim as faultsim;
pub use pcs_hw as hw;
pub use pcs_oskernel as oskernel;
pub use pcs_pcapfile as pcapfile;
pub use pcs_pktgen as pktgen;
pub use pcs_profiling as profiling;
pub use pcs_testbed as testbed;
pub use pcs_trace as trace;
pub use pcs_wire as wire;
pub use pcs_zdeflate as zdeflate;

/// The most commonly used items in one import.
pub mod prelude {
    pub use pcs_capture::{MeasurementApp, Pcap};
    pub use pcs_core::{Experiment, Scale};
    pub use pcs_hw::MachineSpec;
    pub use pcs_oskernel::{AppConfig, BufferConfig, MachineSim, RunReport, SimConfig};
    pub use pcs_pktgen::{Generator, PktgenConfig, PktgenControl, SizeSource, TxModel};
    pub use pcs_testbed::{
        run_point, run_sweep, run_sweep_exec, standard_suts, CycleConfig, ExecConfig, Sut,
    };
}
