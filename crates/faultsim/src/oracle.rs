//! The sim-wide invariant oracle.
//!
//! Machine-checked statements of what *every* run — faulted or not —
//! must satisfy. The testbed calls [`Oracle::check_report`] on every
//! machine report of every cell when armed (`--oracle` on the CLI,
//! always on under `cfg(debug_assertions)`, which includes the test
//! profile), so any future change that breaks conservation or a bound
//! fails loudly with the cell label attached.

use pcs_hw::MachineSpec;
use pcs_oskernel::RunReport;

/// Headroom factor over the sender's link rate for the achieved-rate
/// sanity check (framing-accounting differences).
const RATE_HEADROOM: f64 = 1.1;

/// Validates run reports against the simulation's conservation laws and
/// bounds. All methods are stateless; `label` names the offending cell
/// in the error.
pub struct Oracle;

impl Oracle {
    /// Check every invariant one machine's [`RunReport`] must satisfy:
    ///
    /// 1. **NIC conservation** — `nic_ring_drops + nic_ring_residue ≤
    ///    offered`, and the residue fits in the configured RX ring.
    /// 2. **Filter conservation** (per app) — every packet the kernel
    ///    picked up was either accepted or rejected:
    ///    `accepted + rejected == offered - nic_ring_drops - nic_ring_residue`.
    /// 3. **Kernel conservation** (per app) — every accepted packet was
    ///    delivered, dropped, or left in a kernel buffer:
    ///    `accepted == delivered + dropped_buffer + dropped_pool + kernel_residue`.
    /// 4. **Application conservation** (per app) —
    ///    `delivered == received + app_residue`.
    /// 5. **Attribution balance** — [`pcs_trace::DropAttribution::balanced`]
    ///    per app (the roll-up of 1–4).
    /// 6. **Range sanity** — capture rates and CPU utilisations in [0, 1].
    /// 7. **Clock monotonicity** — cpusage sample times never go
    ///    backwards, and the run's `elapsed` is past the last sample.
    /// 8. **Scheduler serialisation** — when the report carries `sched`
    ///    trace events, the spans on each CPU are monotone and never
    ///    overlap: a CPU runs one work item at a time.
    /// 9. **Stage-time conservation** — when the report carries a
    ///    stage-time account, it covers every CPU and, per CPU, the
    ///    per-work-kind busy entries plus idle sum exactly to the CPU's
    ///    accounted total, the idle entries agree, and no kind's stretch
    ///    exceeds its busy time.
    pub fn check_report(label: &str, spec: &MachineSpec, report: &RunReport) -> Result<(), String> {
        let err = |what: String| Err(format!("oracle[{label}/{}]: {what}", report.machine));

        let nic_gone = report.nic_ring_drops + report.nic_ring_residue;
        if nic_gone > report.offered {
            return err(format!(
                "NIC accounted for more packets than arrived: drops {} + residue {} > offered {}",
                report.nic_ring_drops, report.nic_ring_residue, report.offered
            ));
        }
        if report.nic_ring_residue > spec.nic.rx_ring_slots as u64 {
            return err(format!(
                "NIC ring residue {} exceeds the configured {} slots",
                report.nic_ring_residue, spec.nic.rx_ring_slots
            ));
        }
        let seen = report.offered - nic_gone;
        for (i, app) in report.apps.iter().enumerate() {
            let s = &app.stats;
            if s.accepted + s.rejected != seen {
                return err(format!(
                    "app {i}: filter saw {} + {} packets, kernel picked up {seen}",
                    s.accepted, s.rejected
                ));
            }
            if s.accepted != s.delivered + s.dropped_buffer + s.dropped_pool + s.kernel_residue {
                return err(format!(
                    "app {i}: accepted {} != delivered {} + buffer {} + pool {} + residue {}",
                    s.accepted, s.delivered, s.dropped_buffer, s.dropped_pool, s.kernel_residue
                ));
            }
            if s.delivered != app.received + s.app_residue {
                return err(format!(
                    "app {i}: delivered {} != received {} + app residue {}",
                    s.delivered, app.received, s.app_residue
                ));
            }
            let attr = report.attribution(i);
            if !attr.balanced() {
                return err(format!(
                    "app {i}: attribution unbalanced: generated {} != delivered {} + dropped {}",
                    attr.generated,
                    attr.delivered,
                    attr.dropped()
                ));
            }
            let rate = report.capture_rate(i);
            if !(0.0..=1.0).contains(&rate) {
                return err(format!("app {i}: capture rate {rate} outside [0, 1]"));
            }
        }
        for acct in &report.final_acct {
            let u = acct.utilisation();
            if !(0.0..=1.0).contains(&u) {
                return err(format!("CPU utilisation {u} outside [0, 1]"));
            }
        }
        let mut last = None;
        for sample in &report.samples {
            if let Some(prev) = last {
                if sample.t < prev {
                    return err(format!(
                        "cpusage sample clock went backwards: {:?} after {:?}",
                        sample.t, prev
                    ));
                }
            }
            last = Some(sample.t);
        }
        if let Some(prev) = last {
            if report.elapsed < prev {
                return err(format!(
                    "elapsed {:?} precedes the last sample at {:?}",
                    report.elapsed, prev
                ));
            }
        }
        if let Some(trace) = &report.trace {
            // Sched events are emitted in dispatch order, so each CPU's
            // spans must already be sorted — and disjoint, because a CPU
            // runs one work item at a time.
            let mut cpu_free: Vec<u64> = Vec::new();
            for ev in &trace.sched {
                let cpu = ev.cpu as usize;
                if cpu >= cpu_free.len() {
                    cpu_free.resize(cpu + 1, 0);
                }
                if ev.t_ns < cpu_free[cpu] {
                    return err(format!(
                        "cpu{cpu}: {} dispatched at {} ns while busy until {} ns",
                        ev.kind.name(),
                        ev.t_ns,
                        cpu_free[cpu]
                    ));
                }
                cpu_free[cpu] = ev.t_ns + ev.dur_ns;
            }
        }
        if let Some(stage) = &report.stage_times {
            if stage.cpus.len() != report.final_acct.len() {
                return err(format!(
                    "stage times cover {} CPUs, accounting has {}",
                    stage.cpus.len(),
                    report.final_acct.len()
                ));
            }
            for (cpu, (st, acct)) in stage.cpus.iter().zip(&report.final_acct).enumerate() {
                if st.total() != acct.total() {
                    return err(format!(
                        "cpu{cpu}: stage times sum to {} ns, accounting to {} ns",
                        st.total(),
                        acct.total()
                    ));
                }
                if st.idle_ns != acct.idle {
                    return err(format!(
                        "cpu{cpu}: stage idle {} ns disagrees with accounted idle {} ns",
                        st.idle_ns, acct.idle
                    ));
                }
                for (k, (&busy, &stretch)) in st.busy_ns.iter().zip(&st.stretch_ns).enumerate() {
                    if stretch > busy {
                        return err(format!(
                            "cpu{cpu}: work kind {k} stretch {stretch} ns exceeds busy {busy} ns"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Check the generator-side achieved rate: finite and inside
    /// [0, link rate × 1.1] Mbit/s — the sender's physical line rate
    /// plus framing-accounting headroom, so the bound follows the
    /// testbed's NIC (GbE in the thesis setup, 10 GigE in ext-10gige).
    pub fn check_rate(label: &str, achieved_mbps: f64, link_mbps: f64) -> Result<(), String> {
        let ceiling = link_mbps * RATE_HEADROOM;
        if !achieved_mbps.is_finite() || !(0.0..=ceiling).contains(&achieved_mbps) {
            return Err(format!(
                "oracle[{label}]: achieved rate {achieved_mbps} Mbit/s outside [0, {ceiling}]"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_des::SimTime;
    use pcs_oskernel::{AppReport, StackStats};

    fn clean_report() -> RunReport {
        let stats = StackStats {
            accepted: 90,
            rejected: 5,
            dropped_buffer: 3,
            dropped_pool: 1,
            delivered: 80,
            kernel_residue: 6,
            app_residue: 2,
        };
        RunReport {
            machine: "test".into(),
            offered: 100,
            nic_ring_drops: 4,
            nic_ring_residue: 1,
            apps: vec![AppReport {
                received: 78,
                received_bytes: 0,
                stats,
                captured: Vec::new(),
            }],
            samples: Vec::new(),
            final_acct: Vec::new(),
            load_acct: None,
            elapsed: SimTime::from_secs(1),
            disk_bytes: 0,
            pipe_bytes: 0,
            trace: None,
            stage_times: None,
        }
    }

    fn spec() -> MachineSpec {
        MachineSpec::moorhen()
    }

    #[test]
    fn clean_report_passes() {
        Oracle::check_report("t", &spec(), &clean_report()).unwrap();
    }

    #[test]
    fn lost_packet_is_caught() {
        let mut r = clean_report();
        r.apps[0].received -= 1; // one delivered packet vanished
        let e = Oracle::check_report("t", &spec(), &r).unwrap_err();
        assert!(e.contains("delivered"), "{e}");
    }

    #[test]
    fn filter_miscount_is_caught() {
        let mut r = clean_report();
        r.apps[0].stats.rejected += 1;
        let e = Oracle::check_report("t", &spec(), &r).unwrap_err();
        assert!(e.contains("filter"), "{e}");
    }

    #[test]
    fn kernel_miscount_is_caught() {
        let mut r = clean_report();
        r.apps[0].stats.kernel_residue += 1; // filter identity stays intact
        let e = Oracle::check_report("t", &spec(), &r).unwrap_err();
        assert!(e.contains("accepted"), "{e}");
    }

    #[test]
    fn oversized_ring_residue_is_caught() {
        let mut r = clean_report();
        let slots = spec().nic.rx_ring_slots as u64;
        r.offered += slots + 100;
        r.nic_ring_residue += slots + 100;
        let e = Oracle::check_report("t", &spec(), &r).unwrap_err();
        assert!(e.contains("ring residue"), "{e}");
    }

    #[test]
    fn backwards_sample_clock_is_caught() {
        let mut r = clean_report();
        r.samples = vec![
            pcs_oskernel::CpuSample {
                t: SimTime::from_millis(500),
                per_cpu: Vec::new(),
            },
            pcs_oskernel::CpuSample {
                t: SimTime::from_millis(400),
                per_cpu: Vec::new(),
            },
        ];
        let e = Oracle::check_report("t", &spec(), &r).unwrap_err();
        assert!(e.contains("backwards"), "{e}");
    }

    #[test]
    fn empty_run_passes() {
        let mut r = clean_report();
        r.offered = 0;
        r.nic_ring_drops = 0;
        r.nic_ring_residue = 0;
        r.apps[0] = AppReport {
            received: 0,
            received_bytes: 0,
            stats: StackStats::default(),
            captured: Vec::new(),
        };
        Oracle::check_report("t", &spec(), &r).unwrap();
    }

    #[test]
    fn overlapping_sched_spans_are_caught() {
        use pcs_trace::{SchedEvent, TraceReport, WorkKind};
        let span = |t_ns: u64, dur_ns: u64, cpu: u16| SchedEvent {
            t_ns,
            dur_ns,
            cpu,
            app: 0,
            kind: WorkKind::KernelBatch,
        };
        let mut r = clean_report();
        // Disjoint per CPU — interleaving across CPUs is fine.
        r.trace = Some(Box::new(TraceReport {
            events: Vec::new(),
            sched: vec![span(0, 100, 0), span(50, 100, 1), span(100, 50, 0)],
            truncated: 0,
            metrics: Default::default(),
        }));
        Oracle::check_report("t", &spec(), &r).unwrap();
        // Overlap on one CPU: dispatched while still busy.
        r.trace.as_mut().unwrap().sched = vec![span(0, 100, 0), span(99, 10, 0)];
        let e = Oracle::check_report("t", &spec(), &r).unwrap_err();
        assert!(e.contains("while busy"), "{e}");
    }

    #[test]
    fn inconsistent_stage_times_are_caught() {
        use pcs_oskernel::CpuAccounting;
        use pcs_trace::{StageTimes, WorkKind};
        let mut r = clean_report();
        let mut acct = CpuAccounting::default();
        acct.add(pcs_oskernel::CpuState::Irq, 700);
        acct.add(pcs_oskernel::CpuState::Idle, 300);
        r.final_acct = vec![acct];
        let mut st = StageTimes::new(1);
        st.add_busy(0, WorkKind::KernelBatch, 700);
        st.add_idle(0, 300);
        r.stage_times = Some(st.clone());
        Oracle::check_report("t", &spec(), &r).unwrap();
        // A lost nanosecond breaks conservation.
        r.stage_times.as_mut().unwrap().cpus[0].busy_ns[0] -= 1;
        let e = Oracle::check_report("t", &spec(), &r).unwrap_err();
        assert!(e.contains("stage times sum"), "{e}");
        // Idle totals must agree bucket-for-bucket, not just in sum.
        let mut skewed = st.clone();
        skewed.cpus[0].idle_ns -= 50;
        skewed.cpus[0].busy_ns[0] += 50;
        r.stage_times = Some(skewed);
        let e = Oracle::check_report("t", &spec(), &r).unwrap_err();
        assert!(e.contains("stage idle"), "{e}");
        // Stretch is a share of busy time, never more.
        let mut stretched = st.clone();
        stretched.cpus[0].stretch_ns[0] = 701;
        r.stage_times = Some(stretched);
        let e = Oracle::check_report("t", &spec(), &r).unwrap_err();
        assert!(e.contains("stretch"), "{e}");
        // Coverage must match the CPU count.
        r.stage_times = Some(StageTimes::new(2));
        let e = Oracle::check_report("t", &spec(), &r).unwrap_err();
        assert!(e.contains("CPUs"), "{e}");
    }

    #[test]
    fn rate_bounds_follow_the_sender_link() {
        Oracle::check_rate("t", 0.0, 1_000.0).unwrap();
        Oracle::check_rate("t", 970.0, 1_000.0).unwrap();
        assert!(Oracle::check_rate("t", -1.0, 1_000.0).is_err());
        assert!(Oracle::check_rate("t", 2_000.0, 1_000.0).is_err());
        assert!(Oracle::check_rate("t", f64::NAN, 1_000.0).is_err());
        // A 10 GigE sender raises the ceiling with it (ext-10gige).
        Oracle::check_rate("t", 2_000.0, 10_000.0).unwrap();
        assert!(Oracle::check_rate("t", 11_500.0, 10_000.0).is_err());
    }
}
