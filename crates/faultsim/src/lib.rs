//! # pcs-faultsim — deterministic fault injection + the invariant oracle
//!
//! The thesis' central observation is that capture systems degrade
//! *unevenly*: as load grows, drops migrate between the NIC ring, the
//! kernel buffer and the application depending on which resource
//! saturates first (Schneider 2005, Ch. 6). This crate manufactures
//! those degraded regimes on purpose — and proves the simulation stays
//! lawful under all of them:
//!
//! * [`FaultPlan`] — a seeded schedule of faults parsed from
//!   `--faults SPEC[:SEED]` and fingerprinted like every other piece of
//!   configuration. Machine-side faults (ring stalls, bus bursts, IRQ
//!   jitter, kernel-buffer shrink, app pauses, scheduler preemption)
//!   are injected through the hook traits [`pcs_hw::NicBusFault`] /
//!   [`pcs_hw::SchedFault`] / [`pcs_oskernel::MachineFaults`] and
//!   deterministically change results; host-side faults (splitter
//!   hiccups, stream-cache squeeze) stress the pipeline machinery and
//!   must **not** change results.
//! * [`Oracle`] — the sim-wide invariants every run must satisfy:
//!   packet conservation per stage, attribution balance, bound respect,
//!   rate sanity. Always on in tests, `--oracle` on the CLI.
//!
//! Every fault window is a **closed-form function of the sim clock and
//! the plan seed** — no mutable schedule state — so an armed run is
//! byte-identical at any `--jobs`/`--chunk`/`--depth`/`--stream-cache`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod armed;
mod oracle;
mod plan;

pub use armed::{ArmedMachineFaults, FaultyScheduler};
pub use oracle::Oracle;
pub use plan::{FaultKind, FaultPlan};
