//! The machine-side hook implementation for an armed plan.
//!
//! Every fault manifests as periodic windows on the sim clock. A
//! window's position inside its period is a **closed-form function of
//! (plan seed, fault kind, period index)** — no mutable schedule state,
//! no host time — so every hook call at sim time `t` returns the same
//! answer no matter how many worker threads run, how the stream is
//! chunked, or in which order cells execute.

use crate::plan::{FaultKind, FaultPlan};
use pcs_des::SplitMix64;
use pcs_hw::{NicBusFault, SchedFault};
use pcs_oskernel::MachineFaults;

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Ring-stall window: the RX ring shrinks to `base/16` slots.
const RING_STALL_PERIOD_NS: u64 = 40_000_000;
const RING_STALL_DUR_NS: u64 = 6_000_000;

/// Bus-burst window: foreign DMA adds this many bytes/s of demand.
const BUS_BURST_PERIOD_NS: u64 = 35_000_000;
const BUS_BURST_DUR_NS: u64 = 5_000_000;
const BUS_BURST_BPS: u64 = 300_000_000;

/// IRQ-jitter window: interrupt delivery held off until the window ends.
const IRQ_JITTER_PERIOD_NS: u64 = 20_000_000;
const IRQ_JITTER_DUR_NS: u64 = 2_000_000;

/// Kernel-shrink window: capture buffers scaled to this permille.
const KERNEL_SHRINK_PERIOD_NS: u64 = 30_000_000;
const KERNEL_SHRINK_DUR_NS: u64 = 12_000_000;
const KERNEL_SHRINK_PERMILLE: u32 = 8;

/// App-pause window: the application stops reading until the window ends.
const APP_PAUSE_PERIOD_NS: u64 = 50_000_000;
const APP_PAUSE_DUR_NS: u64 = 30_000_000;

/// Preempt window: a foreign task holds the core at each dispatch, for
/// at most one scheduler slice per work item.
const PREEMPT_PERIOD_NS: u64 = 25_000_000;
const PREEMPT_DUR_NS: u64 = 4_000_000;
const PREEMPT_SLICE_NS: u64 = 150_000;

/// Periodic seeded fault windows: within each period of `period_ns`,
/// one window of `dur_ns` sits at a pseudorandom offset derived from
/// the seed and the period index.
#[derive(Debug, Clone, Copy)]
struct Windows {
    seed: u64,
    period_ns: u64,
    dur_ns: u64,
}

impl Windows {
    fn new(plan_seed: u64, kind: FaultKind, period_ns: u64, dur_ns: u64) -> Windows {
        debug_assert!(dur_ns < period_ns);
        // Fold the kind into the seed so co-armed faults don't align.
        let seed = SplitMix64::new(plan_seed ^ (kind.tag() as u64).wrapping_mul(GOLDEN)).next_u64();
        Windows {
            seed,
            period_ns,
            dur_ns,
        }
    }

    /// If `now_ns` falls inside this period's window, the window's end.
    fn active_until(&self, now_ns: u64) -> Option<u64> {
        let idx = now_ns / self.period_ns;
        let off = SplitMix64::new(self.seed ^ idx.wrapping_mul(GOLDEN)).next_u64()
            % (self.period_ns - self.dur_ns);
        let start = idx * self.period_ns + off;
        if now_ns >= start && now_ns < start + self.dur_ns {
            Some(start + self.dur_ns)
        } else {
            None
        }
    }
}

/// The host-scheduler preemption hook for an armed plan: while a window
/// is active, every dispatch is charged the remaining window — capped at
/// one scheduler slice — as extra occupancy before the work runs.
///
/// Usable standalone (it implements [`SchedFault`] alone) or as the
/// scheduler half of [`ArmedMachineFaults`].
pub struct FaultyScheduler {
    preempt: Option<Windows>,
}

impl FaultyScheduler {
    /// The scheduler hook for `plan`; inert unless `preempt` is armed.
    pub fn new(plan: &FaultPlan) -> FaultyScheduler {
        FaultyScheduler {
            preempt: plan.has(FaultKind::Preempt).then(|| {
                Windows::new(
                    plan.seed(),
                    FaultKind::Preempt,
                    PREEMPT_PERIOD_NS,
                    PREEMPT_DUR_NS,
                )
            }),
        }
    }
}

impl SchedFault for FaultyScheduler {
    fn preempt_extra_ns(&mut self, now_ns: u64, _cpu: usize) -> u64 {
        match self.preempt.and_then(|w| w.active_until(now_ns)) {
            Some(end) => (end - now_ns).min(PREEMPT_SLICE_NS),
            None => 0,
        }
    }
}

/// [`NicBusFault`] + [`SchedFault`] + [`MachineFaults`] for one armed
/// [`FaultPlan`].
///
/// Built via [`FaultPlan::arm_machine`]; one instance per simulated
/// machine.
pub struct ArmedMachineFaults {
    ring_stall: Option<Windows>,
    bus_burst: Option<Windows>,
    irq_jitter: Option<Windows>,
    kernel_shrink: Option<Windows>,
    app_pause: Option<Windows>,
    sched: FaultyScheduler,
}

impl ArmedMachineFaults {
    pub(crate) fn new(plan: &FaultPlan) -> ArmedMachineFaults {
        let w = |kind: FaultKind, period: u64, dur: u64| {
            plan.has(kind)
                .then(|| Windows::new(plan.seed(), kind, period, dur))
        };
        ArmedMachineFaults {
            ring_stall: w(
                FaultKind::RingStall,
                RING_STALL_PERIOD_NS,
                RING_STALL_DUR_NS,
            ),
            bus_burst: w(FaultKind::BusBurst, BUS_BURST_PERIOD_NS, BUS_BURST_DUR_NS),
            irq_jitter: w(
                FaultKind::IrqJitter,
                IRQ_JITTER_PERIOD_NS,
                IRQ_JITTER_DUR_NS,
            ),
            kernel_shrink: w(
                FaultKind::KernelShrink,
                KERNEL_SHRINK_PERIOD_NS,
                KERNEL_SHRINK_DUR_NS,
            ),
            app_pause: w(FaultKind::AppPause, APP_PAUSE_PERIOD_NS, APP_PAUSE_DUR_NS),
            sched: FaultyScheduler::new(plan),
        }
    }
}

impl SchedFault for ArmedMachineFaults {
    fn preempt_extra_ns(&mut self, now_ns: u64, cpu: usize) -> u64 {
        self.sched.preempt_extra_ns(now_ns, cpu)
    }
}

impl NicBusFault for ArmedMachineFaults {
    fn ring_slots(&mut self, now_ns: u64, base: usize) -> usize {
        match self.ring_stall {
            Some(w) if w.active_until(now_ns).is_some() => (base / 16).max(1),
            _ => base,
        }
    }

    fn bus_extra_demand_bps(&mut self, now_ns: u64) -> u64 {
        match self.bus_burst {
            Some(w) if w.active_until(now_ns).is_some() => BUS_BURST_BPS,
            _ => 0,
        }
    }

    fn irq_extra_gap_ns(&mut self, now_ns: u64) -> u64 {
        match self.irq_jitter.and_then(|w| w.active_until(now_ns)) {
            Some(end) => end - now_ns,
            None => 0,
        }
    }
}

impl MachineFaults for ArmedMachineFaults {
    fn buffer_permille(&mut self, now_ns: u64) -> u32 {
        match self.kernel_shrink {
            Some(w) if w.active_until(now_ns).is_some() => KERNEL_SHRINK_PERMILLE,
            _ => 1000,
        }
    }

    fn app_pause_until_ns(&mut self, now_ns: u64, _app: usize) -> Option<u64> {
        self.app_pause.and_then(|w| w.active_until(now_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_deterministic_and_bounded() {
        let w = Windows::new(42, FaultKind::RingStall, 1_000_000, 100_000);
        let mut active_ns = 0u64;
        for t in (0..10_000_000u64).step_by(1_000) {
            let a = w.active_until(t);
            assert_eq!(a, w.active_until(t), "same clock, same answer");
            if let Some(end) = a {
                assert!(end > t && end <= (t / 1_000_000 + 1) * 1_000_000 + 100_000);
                active_ns += 1_000;
            }
        }
        // Roughly one 100 µs window per 1 ms period over 10 ms.
        assert!((500_000..=1_500_000).contains(&active_ns), "{active_ns}");
    }

    #[test]
    fn co_armed_kinds_use_distinct_phases() {
        let a = Windows::new(7, FaultKind::RingStall, 1_000_000, 100_000);
        let b = Windows::new(7, FaultKind::BusBurst, 1_000_000, 100_000);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn unarmed_kinds_answer_no_fault() {
        let plan = FaultPlan::parse("ringstall:1").unwrap().unwrap();
        let mut f = ArmedMachineFaults::new(&plan);
        for t in (0..200_000_000u64).step_by(500_000) {
            assert_eq!(f.bus_extra_demand_bps(t), 0);
            assert_eq!(f.irq_extra_gap_ns(t), 0);
            assert_eq!(f.buffer_permille(t), 1000);
            assert_eq!(f.app_pause_until_ns(t, 0), None);
            assert_eq!(f.preempt_extra_ns(t, 0), 0);
        }
    }

    #[test]
    fn armed_kinds_eventually_fire() {
        let plan = FaultPlan::parse("chaos:11").unwrap().unwrap();
        let mut f = ArmedMachineFaults::new(&plan);
        let mut stalled = false;
        let mut burst = false;
        let mut jitter = false;
        let mut shrink = false;
        let mut pause = false;
        let mut preempted = false;
        for t in (0..400_000_000u64).step_by(100_000) {
            stalled |= f.ring_slots(t, 256) < 256;
            burst |= f.bus_extra_demand_bps(t) > 0;
            jitter |= f.irq_extra_gap_ns(t) > 0;
            shrink |= f.buffer_permille(t) < 1000;
            pause |= f.app_pause_until_ns(t, 0).is_some();
            preempted |= f.preempt_extra_ns(t, 0) > 0;
        }
        assert!(stalled && burst && jitter && shrink && pause && preempted);
    }

    #[test]
    fn preempt_hold_is_capped_at_one_slice() {
        let plan = FaultPlan::parse("preempt:9").unwrap().unwrap();
        let mut f = FaultyScheduler::new(&plan);
        let mut fired = false;
        for t in (0..400_000_000u64).step_by(50_000) {
            let extra = f.preempt_extra_ns(t, 1);
            assert!(extra <= PREEMPT_SLICE_NS, "hold {extra} exceeds the slice");
            fired |= extra > 0;
        }
        assert!(fired, "an armed preempt plan should eventually hold a core");
        let quiet = FaultPlan::parse("ringstall:9").unwrap().unwrap();
        let mut q = FaultyScheduler::new(&quiet);
        assert!((0..400_000_000u64)
            .step_by(50_000)
            .all(|t| q.preempt_extra_ns(t, 0) == 0));
    }

    #[test]
    fn pause_resume_time_is_past_now() {
        let plan = FaultPlan::parse("apppause:3").unwrap().unwrap();
        let mut f = ArmedMachineFaults::new(&plan);
        for t in (0..400_000_000u64).step_by(250_000) {
            if let Some(end) = f.app_pause_until_ns(t, 0) {
                assert!(end > t);
            }
        }
    }
}
