//! Fault plans: which faults are armed, under which seed.

use crate::armed::ArmedMachineFaults;
use pcs_des::{Fingerprint, Fingerprintable, SplitMix64};
use pcs_oskernel::MachineFaults;

/// Seed used when a `--faults` spec names no `:SEED` suffix.
const DEFAULT_SEED: u64 = 0xFA01_5EED;

/// Stream-cache budget an armed [`FaultKind::CacheSqueeze`] clamps to:
/// small enough to force eviction churn on any real sweep, large enough
/// to hold one in-flight stream.
const SQUEEZE_BUDGET: u64 = 1 << 20;

/// One kind of injectable fault.
///
/// The first six are **machine-side**: they perturb the simulated
/// hardware/kernel on the sim clock and deterministically change
/// results. The last two are **host-side**: they stress the execution
/// machinery (splitter queues, the stream cache) and must leave results
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// NIC RX descriptor ring shrinks to a sliver (driver stops
    /// replenishing descriptors) — drops move into the NIC-ring bucket.
    RingStall,
    /// Foreign DMA traffic contends for the PCI bus — drops move into
    /// the NIC bus bucket.
    BusBurst,
    /// Interrupt delivery is held off for the window — the ring drains
    /// in bursts, stressing ring bounds and IRQ batching.
    IrqJitter,
    /// Kernel capture buffers shrink to a sliver for the window — drops
    /// move into the kernel-buffer bucket.
    KernelShrink,
    /// The application stops reading for the window — backlog moves
    /// into the app-residue / kernel buckets.
    AppPause,
    /// A foreign task preempts the capture workers at dispatch — the
    /// host scheduler charges extra occupancy before each work item.
    Preempt,
    /// Host-side: the splitter producer stalls briefly on some chunks.
    SplitterHiccup,
    /// Host-side: the stream cache runs under a starvation budget.
    CacheSqueeze,
}

impl FaultKind {
    /// Every kind, in canonical (sorted) order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::RingStall,
        FaultKind::BusBurst,
        FaultKind::IrqJitter,
        FaultKind::KernelShrink,
        FaultKind::AppPause,
        FaultKind::Preempt,
        FaultKind::SplitterHiccup,
        FaultKind::CacheSqueeze,
    ];

    /// The spec-grammar name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::RingStall => "ringstall",
            FaultKind::BusBurst => "busburst",
            FaultKind::IrqJitter => "irqjitter",
            FaultKind::KernelShrink => "kshrink",
            FaultKind::AppPause => "apppause",
            FaultKind::Preempt => "preempt",
            FaultKind::SplitterHiccup => "hiccup",
            FaultKind::CacheSqueeze => "squeeze",
        }
    }

    /// Stable discriminant for fingerprints and window phases.
    pub fn tag(self) -> u8 {
        match self {
            FaultKind::RingStall => 1,
            FaultKind::BusBurst => 2,
            FaultKind::IrqJitter => 3,
            FaultKind::KernelShrink => 4,
            FaultKind::AppPause => 5,
            FaultKind::SplitterHiccup => 6,
            FaultKind::CacheSqueeze => 7,
            FaultKind::Preempt => 8,
        }
    }

    fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// A parsed, seeded fault schedule.
///
/// Parsed from `SPEC[:SEED]` where `SPEC` is `off`, `chaos`, or fault
/// names joined with `+` (`ringstall+kshrink`). The kind set is
/// canonicalised (sorted, deduplicated), so `a+b` and `b+a` are the
/// same plan and fingerprint identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    kinds: Vec<FaultKind>,
    seed: u64,
}

impl FaultPlan {
    /// Parse a `--faults` argument. `"off"` (any seed suffix ignored)
    /// yields `Ok(None)` — no plan armed.
    pub fn parse(arg: &str) -> Result<Option<FaultPlan>, String> {
        let bad = || {
            format!(
                "--faults wants off, chaos or fault names joined with '+' \
                 (ringstall busburst irqjitter kshrink apppause preempt hiccup squeeze), \
                 optionally ':SEED', got '{arg}'"
            )
        };
        let (spec, seed) = match arg.rsplit_once(':') {
            Some((spec, seed_str)) => {
                let seed = seed_str.parse::<u64>().map_err(|_| bad())?;
                (spec, seed)
            }
            None => (arg, DEFAULT_SEED),
        };
        if spec == "off" {
            return Ok(None);
        }
        let mut kinds: Vec<FaultKind> = Vec::new();
        for name in spec.split('+') {
            if name == "chaos" {
                kinds.extend(FaultKind::ALL);
            } else {
                kinds.push(FaultKind::from_name(name).ok_or_else(bad)?);
            }
        }
        kinds.sort();
        kinds.dedup();
        Ok(Some(FaultPlan { kinds, seed }))
    }

    /// Build a plan directly (tests, programmatic use).
    pub fn new(kinds: &[FaultKind], seed: u64) -> FaultPlan {
        let mut kinds = kinds.to_vec();
        kinds.sort();
        kinds.dedup();
        FaultPlan { kinds, seed }
    }

    /// The canonical spec string this plan re-parses from.
    pub fn spec(&self) -> String {
        let names: Vec<&str> = self.kinds.iter().map(|k| k.name()).collect();
        format!("{}:{}", names.join("+"), self.seed)
    }

    /// Whether `kind` is armed.
    pub fn has(&self, kind: FaultKind) -> bool {
        self.kinds.contains(&kind)
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Build the machine-side hook implementation for one simulated
    /// machine. Each machine gets its own (identical) instance; all
    /// answers are closed-form in (plan, sim clock), so sharing state
    /// across machines is unnecessary and would hurt determinism.
    pub fn arm_machine(&self) -> Box<dyn MachineFaults> {
        Box::new(ArmedMachineFaults::new(self))
    }

    /// Host-side hook: if the splitter producer should stall before
    /// broadcasting chunk `chunk_index`, for how many microseconds.
    /// Purely a scheduling perturbation — results must not change.
    pub fn splitter_hiccup_us(&self, chunk_index: u64) -> Option<u64> {
        if !self.has(FaultKind::SplitterHiccup) {
            return None;
        }
        let phase = SplitMix64::new(self.seed ^ 0x5911_77e2).next_u64() % 16;
        if chunk_index % 16 == phase {
            Some(200)
        } else {
            None
        }
    }

    /// Host-side hook: the stream-cache byte budget to run under. `0`
    /// (sharing disabled) is preserved; otherwise the budget is clamped
    /// to a starvation-sized allowance to force eviction churn.
    pub fn clamp_stream_budget(&self, budget: u64) -> u64 {
        if !self.has(FaultKind::CacheSqueeze) || budget == 0 {
            return budget;
        }
        budget.min(SQUEEZE_BUDGET)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec())
    }
}

impl Fingerprintable for FaultPlan {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.len(self.kinds.len());
        for k in &self.kinds {
            fp.tag(k.tag());
        }
        fp.u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(plan: &FaultPlan) -> (u64, u64) {
        let mut fp = Fingerprint::new();
        plan.fingerprint(&mut fp);
        fp.finish()
    }

    #[test]
    fn off_parses_to_none() {
        assert_eq!(FaultPlan::parse("off").unwrap(), None);
    }

    #[test]
    fn spec_round_trips_canonically() {
        let p = FaultPlan::parse("kshrink+ringstall:9").unwrap().unwrap();
        assert_eq!(p.spec(), "ringstall+kshrink:9");
        let again = FaultPlan::parse(&p.spec()).unwrap().unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn order_and_duplicates_do_not_matter() {
        let a = FaultPlan::parse("ringstall+kshrink:5").unwrap().unwrap();
        let b = FaultPlan::parse("kshrink+ringstall+kshrink:5")
            .unwrap()
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn chaos_arms_everything() {
        let p = FaultPlan::parse("chaos:1").unwrap().unwrap();
        for k in FaultKind::ALL {
            assert!(p.has(k), "chaos should arm {}", k.name());
        }
    }

    #[test]
    fn seed_and_kinds_change_the_fingerprint() {
        let a = FaultPlan::parse("ringstall:1").unwrap().unwrap();
        let b = FaultPlan::parse("ringstall:2").unwrap().unwrap();
        let c = FaultPlan::parse("busburst:1").unwrap().unwrap();
        assert_ne!(digest(&a), digest(&b));
        assert_ne!(digest(&a), digest(&c));
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "",
            "nope",
            "ringstall+",
            "ringstall:x",
            ":",
            "off+ringstall",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn default_seed_applies_without_suffix() {
        let p = FaultPlan::parse("ringstall").unwrap().unwrap();
        assert_eq!(p.seed(), DEFAULT_SEED);
    }

    #[test]
    fn squeeze_clamps_but_preserves_disabled() {
        let p = FaultPlan::parse("squeeze:3").unwrap().unwrap();
        assert_eq!(p.clamp_stream_budget(0), 0);
        assert_eq!(p.clamp_stream_budget(64 << 20), SQUEEZE_BUDGET);
        assert_eq!(p.clamp_stream_budget(512), 512);
        let q = FaultPlan::parse("ringstall:3").unwrap().unwrap();
        assert_eq!(q.clamp_stream_budget(64 << 20), 64 << 20);
    }

    #[test]
    fn hiccup_hits_one_chunk_in_sixteen() {
        let p = FaultPlan::parse("hiccup:4").unwrap().unwrap();
        let hits: Vec<u64> = (0..64)
            .filter(|&i| p.splitter_hiccup_us(i).is_some())
            .collect();
        assert_eq!(hits.len(), 4);
        assert_eq!(hits[1] - hits[0], 16);
        let q = FaultPlan::parse("ringstall:4").unwrap().unwrap();
        assert!((0..64).all(|i| q.splitter_hiccup_us(i).is_none()));
    }
}
