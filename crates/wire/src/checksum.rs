//! The Internet checksum (RFC 1071) used by IPv4 and UDP headers.

/// Incremental ones'-complement sum accumulator.
///
/// Feed byte slices with [`Checksum::add_bytes`] (and 16-bit words with
/// [`Checksum::add_u16`]), then call [`Checksum::finish`] for the final
/// folded, complemented checksum value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
    /// Set when an odd number of bytes has been consumed so far, so the next
    /// byte pairs with the stored one.
    pending: Option<u8>,
}

impl Checksum {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one big-endian 16-bit word.
    pub fn add_u16(&mut self, v: u16) {
        debug_assert!(self.pending.is_none(), "add_u16 after odd byte count");
        self.sum += v as u32;
    }

    /// Add a run of bytes, treating them as big-endian 16-bit words.
    /// Handles odd lengths across calls.
    pub fn add_bytes(&mut self, mut bytes: &[u8]) {
        if let Some(hi) = self.pending.take() {
            if let Some((&lo, rest)) = bytes.split_first() {
                self.sum += u16::from_be_bytes([hi, lo]) as u32;
                bytes = rest;
            } else {
                self.pending = Some(hi);
                return;
            }
        }
        let mut chunks = bytes.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u16::from_be_bytes([c[0], c[1]]) as u32;
        }
        if let [last] = chunks.remainder() {
            self.pending = Some(*last);
        }
    }

    /// Fold and complement, yielding the wire checksum.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            // Odd total length: pad with a zero byte.
            self.sum += u16::from_be_bytes([hi, 0]) as u32;
        }
        let mut s = self.sum;
        while s > 0xffff {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// One-shot checksum over a byte slice.
pub fn checksum(bytes: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(bytes);
    c.finish()
}

/// Verify a region that embeds its own checksum field: the ones'-complement
/// sum over the whole region (checksum field included) must fold to zero.
pub fn verify(bytes: &[u8]) -> bool {
    let mut c = Checksum::new();
    c.add_bytes(bytes);
    c.finish() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0001 + f203 + f4f5 + f6f7 = 2ddf0 -> fold = ddf2 -> !0xddf2
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length() {
        // Odd length pads a trailing zero byte.
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn split_across_calls_matches_one_shot() {
        let data: Vec<u8> = (0u8..=250).collect();
        let whole = checksum(&data);
        for split in [0usize, 1, 3, 100, 249, 250, 251] {
            let split = split.min(data.len());
            let mut c = Checksum::new();
            c.add_bytes(&data[..split]);
            c.add_bytes(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn odd_then_odd_pairs_up() {
        let mut c = Checksum::new();
        c.add_bytes(&[0x12]);
        c.add_bytes(&[0x34]);
        assert_eq!(c.finish(), checksum(&[0x12, 0x34]));
    }

    #[test]
    fn verify_self_checksummed_region() {
        // Build a 20-byte pseudo header with its checksum at offset 10.
        let mut hdr = [0u8; 20];
        for (i, b) in hdr.iter_mut().enumerate() {
            *b = i as u8;
        }
        hdr[10] = 0;
        hdr[11] = 0;
        let ck = checksum(&hdr);
        hdr[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&hdr));
        hdr[0] ^= 0xff;
        assert!(!verify(&hdr));
    }
}
