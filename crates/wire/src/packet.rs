//! The packet representation that flows through the simulated testbed.
//!
//! A full Gigabit run moves 10⁶ packets per measurement point; materializing
//! every payload byte would cost gigabytes per sweep. [`SimPacket`] instead
//! stores the *real* bytes of the headers (Ethernet + IPv4 + UDP + the
//! pktgen payload stamp — everything any BPF filter in the evaluation ever
//! inspects) in a fixed inline array, and represents the rest of the payload
//! virtually as zero bytes. The [`PacketBytes`] trait gives the BPF virtual
//! machine a uniform view over simulated packets and real byte buffers
//! (e.g. packets read from pcap savefiles).

use crate::ethernet::{self, EtherType};
use crate::ipv4::{self, Ipv4Header, Protocol};
use crate::mac::MacAddr;
use crate::udp::{self, UdpHeader};
use std::net::Ipv4Addr;

/// Number of leading frame bytes stored verbatim in a [`SimPacket`].
pub const STORED_HEADER_LEN: usize = 64;

/// Magic number marking pktgen-generated payloads (the value used by the
/// real Linux Kernel Packet Generator).
pub const PKTGEN_MAGIC: u32 = 0xbe9b_e955;

/// Byte-level read access for filter evaluation.
///
/// Reads beyond the packet length fail (return `None`), matching BPF
/// semantics where an out-of-bounds load aborts the program with "reject".
pub trait PacketBytes {
    /// Total length of the packet in bytes.
    fn len(&self) -> u32;

    /// True for a zero-length packet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The byte at `offset`, or `None` past the end.
    fn byte(&self, offset: u32) -> Option<u8>;

    /// Big-endian 16-bit load.
    fn half_word(&self, offset: u32) -> Option<u16> {
        let hi = self.byte(offset)?;
        let lo = self.byte(offset.checked_add(1)?)?;
        Some(u16::from_be_bytes([hi, lo]))
    }

    /// Big-endian 32-bit load.
    fn word(&self, offset: u32) -> Option<u32> {
        let b0 = self.byte(offset)?;
        let b1 = self.byte(offset.checked_add(1)?)?;
        let b2 = self.byte(offset.checked_add(2)?)?;
        let b3 = self.byte(offset.checked_add(3)?)?;
        Some(u32::from_be_bytes([b0, b1, b2, b3]))
    }
}

impl PacketBytes for &[u8] {
    fn len(&self) -> u32 {
        (**self).len() as u32
    }

    fn byte(&self, offset: u32) -> Option<u8> {
        (**self).get(offset as usize).copied()
    }
}

/// A packet inside the simulation: real header bytes, virtual payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimPacket {
    /// Sequence number assigned by the generator (0-based).
    pub seq: u64,
    /// Generation timestamp in simulated nanoseconds.
    pub gen_ns: u64,
    /// Full frame length in bytes (Ethernet header to end of payload,
    /// excluding CRC), as captured.
    pub frame_len: u32,
    /// The first [`STORED_HEADER_LEN`] bytes of the frame (zero padded when
    /// the frame is shorter).
    pub header: [u8; STORED_HEADER_LEN],
    /// Number of valid bytes in `header`.
    pub header_len: u8,
}

impl SimPacket {
    /// Construct a pktgen-style UDP-in-IPv4-in-Ethernet packet of
    /// `frame_len` total bytes. The payload carries the pktgen magic,
    /// sequence number and timestamp, exactly like the real generator.
    ///
    /// # Panics
    /// Panics when `frame_len` cannot hold the three headers (42 bytes).
    #[allow(clippy::too_many_arguments)]
    pub fn build_udp(
        seq: u64,
        gen_ns: u64,
        frame_len: u32,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
    ) -> SimPacket {
        let min = (ethernet::HEADER_LEN + ipv4::HEADER_LEN + udp::HEADER_LEN) as u32;
        assert!(
            frame_len >= min,
            "frame_len {frame_len} cannot hold headers ({min})"
        );
        let mut header = [0u8; STORED_HEADER_LEN];
        let mut at = ethernet::emit_header(&mut header, dst_mac, src_mac, EtherType::Ipv4);

        let ip_total = frame_len as usize - ethernet::HEADER_LEN;
        let ip = Ipv4Header {
            src: src_ip,
            dst: dst_ip,
            protocol: Protocol::Udp,
            total_len: ip_total as u16,
            ttl: 32,
            ident: (seq & 0xffff) as u16,
        };
        at += ip.emit(&mut header[at..]);

        let udp_len = ip_total - ipv4::HEADER_LEN;
        // pktgen stamp: magic + sequence + timestamp. It is part of the UDP
        // payload; the checksum is left zero like the real pktgen does.
        let mut stamp = [0u8; 20];
        stamp[0..4].copy_from_slice(&PKTGEN_MAGIC.to_be_bytes());
        stamp[4..12].copy_from_slice(&seq.to_be_bytes());
        stamp[12..20].copy_from_slice(&gen_ns.to_be_bytes());
        let payload_in_header = (udp_len - udp::HEADER_LEN).min(stamp.len());

        let uh = UdpHeader {
            src_port,
            dst_port,
            length: udp_len as u16,
        };
        // Zero checksum: pktgen does not compute UDP checksums.
        header[at..at + 2].copy_from_slice(&uh.src_port.to_be_bytes());
        header[at + 2..at + 4].copy_from_slice(&uh.dst_port.to_be_bytes());
        header[at + 4..at + 6].copy_from_slice(&uh.length.to_be_bytes());
        header[at + 6..at + 8].fill(0);
        at += udp::HEADER_LEN;

        let stamp_end = (at + payload_in_header).min(STORED_HEADER_LEN);
        let n = stamp_end - at;
        header[at..stamp_end].copy_from_slice(&stamp[..n]);
        at = stamp_end;

        SimPacket {
            seq,
            gen_ns,
            frame_len,
            header,
            header_len: at.min(frame_len as usize) as u8,
        }
    }

    /// Build a simulation packet from captured frame bytes (e.g. a pcap
    /// record): the first [`STORED_HEADER_LEN`] bytes are stored verbatim,
    /// the rest of the frame stays virtual. `frame_len` is the original
    /// wire length (`data` may be snaplen-truncated).
    pub fn from_bytes(seq: u64, gen_ns: u64, frame_len: u32, data: &[u8]) -> SimPacket {
        let mut header = [0u8; STORED_HEADER_LEN];
        let n = data.len().min(STORED_HEADER_LEN).min(frame_len as usize);
        header[..n].copy_from_slice(&data[..n]);
        SimPacket {
            seq,
            gen_ns,
            frame_len,
            header,
            header_len: n as u8,
        }
    }

    /// Parse the IPv4 header, if this is an IPv4 frame.
    pub fn ipv4(&self) -> Option<Ipv4Header> {
        let eth = ethernet::EthernetFrame::parse(self.stored_bytes()).ok()?;
        if eth.ethertype() != EtherType::Ipv4 {
            return None;
        }
        Ipv4Header::parse(eth.payload()).ok()
    }

    /// The stored (real) prefix of the frame.
    pub fn stored_bytes(&self) -> &[u8] {
        &self.header[..self.header_len as usize]
    }

    /// Wire occupancy of this frame in bytes (with preamble, CRC, IFG).
    pub fn wire_bytes(&self) -> u32 {
        ethernet::wire_bytes(self.frame_len as usize) as u32
    }

    /// Copy up to `snaplen` bytes of the packet into a real byte vector
    /// (payload bytes beyond the stored header materialize as zeros).
    /// Used when writing captured packets to savefiles.
    pub fn materialize(&self, snaplen: u32) -> Vec<u8> {
        let n = self.frame_len.min(snaplen) as usize;
        let mut out = vec![0u8; n];
        let stored = self.stored_bytes();
        let k = stored.len().min(n);
        out[..k].copy_from_slice(&stored[..k]);
        out
    }
}

impl PacketBytes for SimPacket {
    fn len(&self) -> u32 {
        self.frame_len
    }

    fn byte(&self, offset: u32) -> Option<u8> {
        if offset >= self.frame_len {
            None
        } else if (offset as usize) < self.header_len as usize {
            Some(self.header[offset as usize])
        } else {
            Some(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(len: u32) -> SimPacket {
        SimPacket::build_udp(
            7,
            123_456,
            len,
            MacAddr::ZERO,
            MacAddr::BROADCAST,
            Ipv4Addr::new(192, 168, 10, 100),
            Ipv4Addr::new(192, 168, 10, 12),
            9,
            9,
        )
    }

    #[test]
    fn builds_parseable_headers() {
        let p = pkt(1500);
        let eth = ethernet::EthernetFrame::parse(p.stored_bytes()).unwrap();
        assert_eq!(eth.ethertype(), EtherType::Ipv4);
        assert_eq!(eth.src(), MacAddr::ZERO);
        let ip = p.ipv4().unwrap();
        assert_eq!(ip.protocol, Protocol::Udp);
        assert_eq!(ip.total_len, 1500 - 14);
        assert_eq!(ip.src, Ipv4Addr::new(192, 168, 10, 100));
        let uh = UdpHeader::parse(&p.stored_bytes()[34..]).unwrap();
        assert_eq!(uh.length, 1500 - 14 - 20);
        assert_eq!(uh.dst_port, 9);
    }

    #[test]
    fn pktgen_stamp_present() {
        let p = pkt(1500);
        let payload_off = 42;
        assert_eq!(p.word(payload_off), Some(PKTGEN_MAGIC));
        // Sequence number at offset 46..54.
        let hi = p.word(payload_off + 4).unwrap() as u64;
        let lo = p.word(payload_off + 8).unwrap() as u64;
        assert_eq!((hi << 32) | lo, 7);
    }

    #[test]
    fn virtual_payload_is_zero_and_bounded() {
        let p = pkt(1500);
        assert_eq!(p.byte(1000), Some(0));
        assert_eq!(p.byte(1499), Some(0));
        assert_eq!(p.byte(1500), None);
        assert_eq!(p.word(1498), None); // crosses the end
        assert_eq!(PacketBytes::len(&p), 1500);
    }

    #[test]
    fn small_packets_truncate_stored_region() {
        let p = pkt(60);
        assert_eq!(p.header_len as usize, 60);
        // Byte 59 falls inside the pktgen timestamp stamp — it is stored
        // verbatim, not virtual padding.
        assert_eq!(p.byte(59), Some(p.header[59]));
        assert_eq!(p.byte(60), None);
    }

    #[test]
    fn minimum_frame_asserts() {
        let r = std::panic::catch_unwind(|| pkt(41));
        assert!(r.is_err());
        let _ = pkt(42);
    }

    #[test]
    fn materialize_respects_snaplen() {
        let p = pkt(1500);
        let m = p.materialize(76);
        assert_eq!(m.len(), 76);
        assert_eq!(&m[..p.header_len as usize], p.stored_bytes());
        let full = p.materialize(10_000);
        assert_eq!(full.len(), 1500);
    }

    #[test]
    fn from_bytes_stores_prefix() {
        let original = pkt(300);
        let raw = original.materialize(300);
        let rebuilt = SimPacket::from_bytes(9, 77, 300, &raw);
        assert_eq!(rebuilt.frame_len, 300);
        assert_eq!(rebuilt.header_len as usize, STORED_HEADER_LEN);
        // The original stores only headers+stamp (62 bytes); the rebuilt
        // packet keeps the full 64-byte prefix (trailing payload zeros).
        let n = original.header_len as usize;
        assert_eq!(&rebuilt.stored_bytes()[..n], original.stored_bytes());
        assert!(rebuilt.stored_bytes()[n..].iter().all(|&b| b == 0));
        assert!(rebuilt.ipv4().is_some());
        // Snaplen-truncated input keeps only what it has.
        let short = SimPacket::from_bytes(1, 0, 300, &raw[..20]);
        assert_eq!(short.header_len, 20);
        assert_eq!(short.frame_len, 300);
        assert_eq!(short.byte(25), Some(0));
    }

    #[test]
    fn slice_packetbytes_impl() {
        let data: &[u8] = &[1, 2, 3, 4, 5];
        assert_eq!(PacketBytes::len(&data), 5);
        assert_eq!(data.byte(0), Some(1));
        assert_eq!(data.byte(5), None);
        assert_eq!(data.half_word(1), Some(0x0203));
        assert_eq!(data.word(1), Some(0x0203_0405));
        assert_eq!(data.word(2), None);
    }
}
