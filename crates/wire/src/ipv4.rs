//! IPv4 header parsing and construction.

use crate::checksum::{checksum, verify};
use crate::ethernet::FrameError;
use std::net::Ipv4Addr;

/// Length of an IPv4 header without options.
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers relevant to the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17) — the only protocol the kernel packet generator emits.
    Udp,
    /// Anything else.
    Other(u8),
}

impl From<u8> for Protocol {
    fn from(v: u8) -> Self {
        match v {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(p: Protocol) -> u8 {
        match p {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(v) => v,
        }
    }
}

/// The fields of an IPv4 header (options unsupported: generated traffic and
/// the paper's traces use plain 20-byte headers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: Protocol,
    /// Total length: header plus payload, in bytes.
    pub total_len: u16,
    /// Time to live.
    pub ttl: u8,
    /// Identification field.
    pub ident: u16,
}

impl Ipv4Header {
    /// Parse from the start of `data`, verifying version, length and header
    /// checksum.
    pub fn parse(data: &[u8]) -> Result<Ipv4Header, FrameError> {
        if data.len() < HEADER_LEN {
            return Err(FrameError::Truncated {
                need: HEADER_LEN,
                have: data.len(),
            });
        }
        let version = data[0] >> 4;
        let ihl = (data[0] & 0x0f) as usize * 4;
        if version != 4 || ihl < HEADER_LEN || data.len() < ihl {
            return Err(FrameError::Malformed);
        }
        if !verify(&data[..ihl]) {
            return Err(FrameError::Malformed);
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]);
        if (total_len as usize) < ihl {
            return Err(FrameError::Malformed);
        }
        Ok(Ipv4Header {
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            protocol: data[9].into(),
            total_len,
            ttl: data[8],
            ident: u16::from_be_bytes([data[4], data[5]]),
        })
    }

    /// Serialize into `buf` (at least [`HEADER_LEN`] bytes), computing the
    /// header checksum. Returns the header length.
    pub fn emit(&self, buf: &mut [u8]) -> usize {
        assert!(buf.len() >= HEADER_LEN);
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = 0; // DSCP/ECN
        buf[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&self.ident.to_be_bytes());
        buf[6..8].copy_from_slice(&[0x40, 0x00]); // flags: DF, no fragment
        buf[8] = self.ttl;
        buf[9] = self.protocol.into();
        buf[10..12].fill(0);
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        let ck = checksum(&buf[..HEADER_LEN]);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
        HEADER_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header {
            src: Ipv4Addr::new(192, 168, 10, 100),
            dst: Ipv4Addr::new(192, 168, 10, 12),
            protocol: Protocol::Udp,
            total_len: 1486,
            ttl: 32,
            ident: 0xbeef,
        }
    }

    #[test]
    fn roundtrip() {
        let hdr = sample();
        let mut buf = [0u8; HEADER_LEN];
        hdr.emit(&mut buf);
        let parsed = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut buf = [0u8; HEADER_LEN];
        sample().emit(&mut buf);
        buf[12] ^= 0x01;
        assert_eq!(Ipv4Header::parse(&buf), Err(FrameError::Malformed));
    }

    #[test]
    fn rejects_bad_version_and_short_input() {
        let mut buf = [0u8; HEADER_LEN];
        sample().emit(&mut buf);
        let mut v6 = buf;
        v6[0] = 0x65;
        assert!(Ipv4Header::parse(&v6).is_err());
        assert!(matches!(
            Ipv4Header::parse(&buf[..10]),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_total_len_shorter_than_header() {
        let mut buf = [0u8; HEADER_LEN];
        let mut h = sample();
        h.total_len = 10;
        h.emit(&mut buf);
        assert_eq!(Ipv4Header::parse(&buf), Err(FrameError::Malformed));
    }

    #[test]
    fn protocol_conversions() {
        for (num, proto) in [
            (1u8, Protocol::Icmp),
            (6, Protocol::Tcp),
            (17, Protocol::Udp),
            (89, Protocol::Other(89)),
        ] {
            assert_eq!(Protocol::from(num), proto);
            assert_eq!(u8::from(proto), num);
        }
    }
}
