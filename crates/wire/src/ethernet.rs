//! Ethernet II framing.
//!
//! The capture systems under test read whole Ethernet frames with the
//! preamble and CRC already stripped by the NIC (paper, Chapter 1). This
//! module provides the frame layout plus the wire-overhead constants needed
//! to convert between *frame* sizes and *on-the-wire* occupancy when pacing
//! generated traffic.

use crate::mac::MacAddr;

/// Length of an Ethernet II header: dst + src + ethertype.
pub const HEADER_LEN: usize = 14;
/// Minimum frame length (without CRC) enforced by padding on transmit.
pub const MIN_FRAME_LEN: usize = 60;
/// Maximum standard frame length (without CRC); the paper's traces contain
/// no jumbo frames (§4.2.1).
pub const MAX_FRAME_LEN: usize = 1514;
/// Bytes that occupy the wire per frame but are never seen by capture:
/// preamble (7) + SFD (1) + FCS/CRC (4) + minimum inter-frame gap (12).
pub const WIRE_OVERHEAD: usize = 24;

/// Well-known EtherType values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// IPv6 (0x86dd).
    Ipv6,
    /// Anything else.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(v) => v,
        }
    }
}

/// Immutable view over the bytes of an Ethernet frame.
#[derive(Debug, Clone, Copy)]
pub struct EthernetFrame<'a> {
    data: &'a [u8],
}

impl<'a> EthernetFrame<'a> {
    /// Wrap a byte slice; fails when shorter than the Ethernet header.
    pub fn parse(data: &'a [u8]) -> Result<Self, FrameError> {
        if data.len() < HEADER_LEN {
            return Err(FrameError::Truncated {
                need: HEADER_LEN,
                have: data.len(),
            });
        }
        Ok(EthernetFrame { data })
    }

    /// Destination hardware address.
    pub fn dst(&self) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.data[0..6]);
        MacAddr(m)
    }

    /// Source hardware address.
    pub fn src(&self) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.data[6..12]);
        MacAddr(m)
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        u16::from_be_bytes([self.data[12], self.data[13]]).into()
    }

    /// The encapsulated payload (network-layer packet).
    pub fn payload(&self) -> &'a [u8] {
        &self.data[HEADER_LEN..]
    }

    /// The complete frame bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.data
    }
}

/// Serialize an Ethernet header into `buf` (which must be at least
/// [`HEADER_LEN`] long); returns the header length.
pub fn emit_header(buf: &mut [u8], dst: MacAddr, src: MacAddr, ethertype: EtherType) -> usize {
    assert!(buf.len() >= HEADER_LEN);
    buf[0..6].copy_from_slice(&dst.0);
    buf[6..12].copy_from_slice(&src.0);
    buf[12..14].copy_from_slice(&u16::from(ethertype).to_be_bytes());
    HEADER_LEN
}

/// Wire occupancy in bytes for a frame of `frame_len` bytes: the frame plus
/// preamble, SFD, CRC and the minimum inter-frame gap. Used to convert
/// between frame data rates and link utilisation.
pub fn wire_bytes(frame_len: usize) -> usize {
    frame_len.max(MIN_FRAME_LEN) + WIRE_OVERHEAD
}

/// Errors from parsing frames and headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Input shorter than a required header.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A length or version field is inconsistent with the data.
    Malformed,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Truncated { need, have } => {
                write!(f, "truncated: need {need} bytes, have {have}")
            }
            FrameError::Malformed => write!(f, "malformed header"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let mut buf = [0u8; 64];
        let dst = MacAddr::new(0, 1, 2, 3, 4, 5);
        let src = MacAddr::new(9, 8, 7, 6, 5, 4);
        let n = emit_header(&mut buf, dst, src, EtherType::Ipv4);
        assert_eq!(n, HEADER_LEN);
        let frame = EthernetFrame::parse(&buf).unwrap();
        assert_eq!(frame.dst(), dst);
        assert_eq!(frame.src(), src);
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload().len(), 64 - HEADER_LEN);
    }

    #[test]
    fn parse_too_short() {
        assert_eq!(
            EthernetFrame::parse(&[0u8; 13]).unwrap_err(),
            FrameError::Truncated { need: 14, have: 13 }
        );
    }

    #[test]
    fn ethertype_conversions() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x86dd), EtherType::Ipv6);
        assert_eq!(EtherType::from(0x1234), EtherType::Other(0x1234));
        assert_eq!(u16::from(EtherType::Ipv4), 0x0800);
    }

    #[test]
    fn wire_occupancy() {
        // A 1514-byte frame occupies 1538 bytes of wire time.
        assert_eq!(wire_bytes(1514), 1538);
        // Tiny frames are padded to the 60-byte minimum.
        assert_eq!(wire_bytes(40), 84);
        assert_eq!(wire_bytes(60), 84);
    }
}
