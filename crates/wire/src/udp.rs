//! UDP header parsing and construction (with the IPv4 pseudo-header
//! checksum).

use crate::checksum::Checksum;
use crate::ethernet::FrameError;
use std::net::Ipv4Addr;

/// Length of a UDP header.
pub const HEADER_LEN: usize = 8;

/// The fields of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Header plus payload length in bytes.
    pub length: u16,
}

impl UdpHeader {
    /// Parse from the start of `data` without checksum verification (use
    /// [`verify_checksum`] for that; the generator may emit zero checksums,
    /// which RFC 768 allows for IPv4).
    pub fn parse(data: &[u8]) -> Result<UdpHeader, FrameError> {
        if data.len() < HEADER_LEN {
            return Err(FrameError::Truncated {
                need: HEADER_LEN,
                have: data.len(),
            });
        }
        let length = u16::from_be_bytes([data[4], data[5]]);
        if (length as usize) < HEADER_LEN {
            return Err(FrameError::Malformed);
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            length,
        })
    }

    /// Serialize header plus checksum over `payload` into `buf`. Returns the
    /// header length. `buf` must hold at least [`HEADER_LEN`] bytes.
    pub fn emit(&self, buf: &mut [u8], src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> usize {
        assert!(buf.len() >= HEADER_LEN);
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&self.length.to_be_bytes());
        buf[6..8].fill(0);
        let ck = pseudo_checksum(src, dst, &buf[..HEADER_LEN], payload);
        // An all-zero computed checksum is transmitted as 0xffff (RFC 768).
        let ck = if ck == 0 { 0xffff } else { ck };
        buf[6..8].copy_from_slice(&ck.to_be_bytes());
        HEADER_LEN
    }
}

fn pseudo_checksum(src: Ipv4Addr, dst: Ipv4Addr, header: &[u8], payload: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u16(17); // zero byte + protocol
    c.add_u16((header.len() + payload.len()) as u16);
    c.add_bytes(header);
    c.add_bytes(payload);
    c.finish()
}

/// Verify the UDP checksum of `datagram` (header + payload). A zero stored
/// checksum means "not computed" and passes.
pub fn verify_checksum(src: Ipv4Addr, dst: Ipv4Addr, datagram: &[u8]) -> bool {
    if datagram.len() < HEADER_LEN {
        return false;
    }
    let stored = u16::from_be_bytes([datagram[6], datagram[7]]);
    if stored == 0 {
        return true;
    }
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u16(17);
    c.add_u16(datagram.len() as u16);
    c.add_bytes(datagram);
    c.finish() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 10, 100);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 168, 10, 12);

    #[test]
    fn roundtrip_and_checksum() {
        let payload = b"pktgen payload bytes";
        let hdr = UdpHeader {
            src_port: 9,
            dst_port: 9,
            length: (HEADER_LEN + payload.len()) as u16,
        };
        let mut buf = [0u8; 64];
        hdr.emit(&mut buf, SRC, DST, payload);
        let parsed = UdpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);

        let mut datagram = Vec::new();
        datagram.extend_from_slice(&buf[..HEADER_LEN]);
        datagram.extend_from_slice(payload);
        assert!(verify_checksum(SRC, DST, &datagram));
        datagram[12] ^= 0xff;
        assert!(!verify_checksum(SRC, DST, &datagram));
    }

    #[test]
    fn zero_checksum_passes() {
        let hdr = UdpHeader {
            src_port: 1,
            dst_port: 2,
            length: 8,
        };
        let mut buf = [0u8; 8];
        hdr.emit(&mut buf, SRC, DST, &[]);
        buf[6] = 0;
        buf[7] = 0;
        assert!(verify_checksum(SRC, DST, &buf));
    }

    #[test]
    fn rejects_short_and_bad_length() {
        assert!(UdpHeader::parse(&[0u8; 7]).is_err());
        let bad = [0, 1, 0, 2, 0, 4, 0, 0]; // length 4 < 8
        assert_eq!(UdpHeader::parse(&bad), Err(FrameError::Malformed));
    }
}
