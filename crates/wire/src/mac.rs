//! Ethernet MAC addresses.

use core::fmt;
use core::str::FromStr;

/// A 48-bit Ethernet hardware address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used by the thesis' generated traffic as the
    /// base of the cycled source addresses (§6.3.2).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Build from the six octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8) -> Self {
        MacAddr([a, b, c, d, e, f])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True when the group (multicast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// The address obtained by adding `n` to the numeric value of this
    /// address (wrapping). pktgen uses this to cycle source MACs between a
    /// base address and base+count (the thesis cycles 00:...:00 through
    /// 00:...:02).
    pub fn offset(&self, n: u64) -> MacAddr {
        let mut v = 0u64;
        for &b in &self.0 {
            v = (v << 8) | b as u64;
        }
        v = v.wrapping_add(n) & 0xffff_ffff_ffff;
        let mut out = [0u8; 6];
        for i in (0..6).rev() {
            out[i] = (v & 0xff) as u8;
            v >>= 8;
        }
        MacAddr(out)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Error produced when parsing a malformed MAC address string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError(pub String);

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address: {}", self.0)
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for slot in out.iter_mut() {
            let part = parts.next().ok_or_else(|| ParseMacError(s.into()))?;
            *slot = u8::from_str_radix(part, 16).map_err(|_| ParseMacError(s.into()))?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError(s.into()));
        }
        Ok(MacAddr(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        let m = MacAddr::new(0x00, 0x0e, 0x0c, 0x01, 0x02, 0x03);
        assert_eq!(m.to_string(), "00:0e:0c:01:02:03");
        assert_eq!("00:0e:0c:01:02:03".parse::<MacAddr>().unwrap(), m);
    }

    #[test]
    fn parse_errors() {
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:55:66".parse::<MacAddr>().is_err());
        assert!("zz:11:22:33:44:55".parse::<MacAddr>().is_err());
    }

    #[test]
    fn offset_cycles() {
        let base = MacAddr::ZERO;
        assert_eq!(base.offset(1), MacAddr::new(0, 0, 0, 0, 0, 1));
        assert_eq!(base.offset(0x100), MacAddr::new(0, 0, 0, 0, 1, 0));
        // Wraps within 48 bits.
        assert_eq!(MacAddr::BROADCAST.offset(1), MacAddr::ZERO);
    }

    #[test]
    fn multicast_and_broadcast() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::ZERO.is_multicast());
        assert!(MacAddr::new(0x01, 0, 0x5e, 0, 0, 1).is_multicast());
    }
}
