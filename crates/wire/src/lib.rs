//! # pcs-wire — wire formats for the simulated capture testbed
//!
//! Ethernet II, IPv4 and UDP header construction/parsing (with real
//! checksums), MAC address utilities, and [`packet::SimPacket`] — the
//! header-accurate, payload-virtual packet representation that flows through
//! the simulated testbed of the Schneider (2005) reproduction.
//!
//! The [`packet::PacketBytes`] trait decouples the BPF virtual machine from
//! the packet representation: filters run unmodified over simulated packets
//! and over raw byte buffers from pcap savefiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod ethernet;
pub mod ipv4;
pub mod mac;
pub mod packet;
pub mod udp;

pub use ethernet::{EtherType, EthernetFrame, FrameError};
pub use ipv4::{Ipv4Header, Protocol};
pub use mac::MacAddr;
pub use packet::{PacketBytes, SimPacket, PKTGEN_MAGIC, STORED_HEADER_LEN};
pub use udp::UdpHeader;
