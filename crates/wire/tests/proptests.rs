//! Property tests for wire formats: every emitted header must parse back
//! to the same fields with a valid checksum, for arbitrary field values.

use pcs_wire::{checksum, ethernet, ipv4, mac::MacAddr, packet::PacketBytes, udp, SimPacket};
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mac_display_parse_roundtrip(bytes in any::<[u8; 6]>()) {
        let m = MacAddr(bytes);
        let parsed: MacAddr = m.to_string().parse().unwrap();
        prop_assert_eq!(parsed, m);
    }

    #[test]
    fn mac_offset_is_additive(bytes in any::<[u8; 6]>(), a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let m = MacAddr(bytes);
        prop_assert_eq!(m.offset(a).offset(b), m.offset(a + b));
        prop_assert_eq!(m.offset(0), m);
    }

    #[test]
    fn ipv4_header_roundtrip(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        proto in any::<u8>(),
        total_len in 20u16..=1500,
        ttl in any::<u8>(),
        ident in any::<u16>(),
    ) {
        let hdr = ipv4::Ipv4Header {
            src: Ipv4Addr::from(src),
            dst: Ipv4Addr::from(dst),
            protocol: proto.into(),
            total_len,
            ttl,
            ident,
        };
        let mut buf = [0u8; ipv4::HEADER_LEN];
        hdr.emit(&mut buf);
        prop_assert_eq!(ipv4::Ipv4Header::parse(&buf).unwrap(), hdr);
        // Any single-bit corruption of the header is detected.
        prop_assert!(checksum::verify(&buf));
    }

    #[test]
    fn ipv4_checksum_detects_single_byte_corruption(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        byte in 0usize..20,
        flip in 1u8..=255,
    ) {
        let hdr = ipv4::Ipv4Header {
            src: Ipv4Addr::from(src),
            dst: Ipv4Addr::from(dst),
            protocol: ipv4::Protocol::Udp,
            total_len: 100,
            ttl: 32,
            ident: 7,
        };
        let mut buf = [0u8; ipv4::HEADER_LEN];
        hdr.emit(&mut buf);
        buf[byte] ^= flip;
        // Either the parse fails, or (only when the corruption hits a
        // field that compensates in the ones'-complement sum) the sum
        // still folds — which single-byte flips cannot do.
        prop_assert!(ipv4::Ipv4Header::parse(&buf).is_err());
    }

    #[test]
    fn udp_checksum_roundtrip(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let s = Ipv4Addr::from(src);
        let d = Ipv4Addr::from(dst);
        let hdr = udp::UdpHeader {
            src_port: sport,
            dst_port: dport,
            length: (udp::HEADER_LEN + payload.len()) as u16,
        };
        let mut buf = vec![0u8; udp::HEADER_LEN];
        hdr.emit(&mut buf, s, d, &payload);
        buf.extend_from_slice(&payload);
        prop_assert!(udp::verify_checksum(s, d, &buf));
        prop_assert_eq!(udp::UdpHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn sim_packet_invariants(
        seq in any::<u64>(),
        frame_len in 42u32..=1514,
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
    ) {
        let p = SimPacket::build_udp(
            seq, seq.wrapping_mul(17), frame_len,
            MacAddr::ZERO.offset(seq % 3), MacAddr::BROADCAST,
            Ipv4Addr::from(src), Ipv4Addr::from(dst), 9, 9,
        );
        // Length bookkeeping.
        prop_assert_eq!(PacketBytes::len(&p), frame_len);
        prop_assert!(p.header_len as u32 <= frame_len);
        prop_assert!(p.byte(frame_len).is_none());
        prop_assert!(p.byte(frame_len - 1).is_some());
        // The embedded IPv4 header is valid and consistent.
        let ip = p.ipv4().expect("generated packets are IPv4");
        prop_assert_eq!(ip.total_len as u32, frame_len - 14);
        prop_assert_eq!(ip.src, Ipv4Addr::from(src));
        // Wire occupancy adds exactly the Ethernet overhead.
        prop_assert_eq!(
            p.wire_bytes(),
            (frame_len.max(60) + ethernet::WIRE_OVERHEAD as u32)
        );
        // Materialization is prefix-consistent with byte().
        let m = p.materialize(frame_len);
        for (i, &b) in m.iter().enumerate() {
            prop_assert_eq!(p.byte(i as u32), Some(b));
        }
    }

    #[test]
    fn checksum_split_invariance(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut c = checksum::Checksum::new();
        c.add_bytes(&data[..split]);
        c.add_bytes(&data[split..]);
        prop_assert_eq!(c.finish(), checksum::checksum(&data));
    }
}
