//! The libpcap-style capture session API (thesis §2.1.3).
//!
//! `Pcap` mirrors the procedures the thesis lists as the important ones —
//! `pcap_open_live()`, `pcap_compile()`, `pcap_setfilter()`,
//! `pcap_loop()`/`pcap_next()`, `pcap_stats()` — adapted to the simulated
//! testbed: a session is *configured* up front, attached to a machine
//! simulation as one capture application, and its statistics and packet
//! stream are read back from the run report.

use pcs_bpf::{compile, validate, CompileError, Insn, ValidateError};
use pcs_oskernel::{AppConfig, AppReport, CapturedPacket};

/// Errors raised by session configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum PcapError {
    /// The filter expression failed to compile.
    Compile(CompileError),
    /// A hand-built program failed kernel validation.
    Invalid(ValidateError),
    /// Incompatible options (e.g. non-blocking mode with the mmap patch,
    /// which the thesis notes is unsupported — §6.3.6).
    Unsupported(&'static str),
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::Compile(e) => write!(f, "filter compilation failed: {e}"),
            PcapError::Invalid(e) => write!(f, "invalid filter program: {e}"),
            PcapError::Unsupported(s) => write!(f, "unsupported configuration: {s}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Capture statistics, shaped like `struct pcap_stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PcapStat {
    /// Packets received by the filter (`ps_recv`).
    pub ps_recv: u64,
    /// Packets dropped for lack of buffer space (`ps_drop`).
    pub ps_drop: u64,
    /// Packets dropped by the interface/driver (`ps_ifdrop`).
    pub ps_ifdrop: u64,
}

/// A configured capture session.
///
/// ```
/// use pcs_capture::Pcap;
///
/// let mut session = Pcap::open_live("em0", 1515, true, 20);
/// session.set_filter_expression("udp and dst port 9").unwrap();
/// let app = session.app_config();
/// assert_eq!(app.snaplen, 1515);
/// assert!(app.filter.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Pcap {
    device: String,
    snaplen: u32,
    promiscuous: bool,
    timeout_ms: u32,
    nonblocking: bool,
    filter: Option<Vec<Insn>>,
    mmap: bool,
    record: bool,
}

impl Pcap {
    /// `pcap_open_live()`: open a session on a (simulated) interface.
    pub fn open_live(device: &str, snaplen: u32, promiscuous: bool, timeout_ms: u32) -> Pcap {
        Pcap {
            device: device.to_string(),
            snaplen: snaplen.max(14),
            promiscuous,
            timeout_ms,
            nonblocking: false,
            filter: None,
            mmap: false,
            record: false,
        }
    }

    /// `pcap_compile()`: compile a tcpdump-style filter expression with
    /// this session's snaplen.
    pub fn compile(&self, expression: &str) -> Result<Vec<Insn>, PcapError> {
        compile(expression, self.snaplen).map_err(PcapError::Compile)
    }

    /// `pcap_setfilter()`: attach a compiled (and kernel-validated)
    /// program.
    pub fn setfilter(&mut self, prog: Vec<Insn>) -> Result<(), PcapError> {
        validate(&prog).map_err(PcapError::Invalid)?;
        self.filter = Some(prog);
        Ok(())
    }

    /// Compile and attach in one step.
    pub fn set_filter_expression(&mut self, expression: &str) -> Result<(), PcapError> {
        let prog = self.compile(expression)?;
        self.setfilter(prog)
    }

    /// `pcap_setnonblock()`: request non-blocking reads. Incompatible
    /// with the mmap patch (the thesis' Bro caveat, §6.3.6).
    pub fn set_nonblocking(&mut self, on: bool) -> Result<(), PcapError> {
        if on && self.mmap {
            return Err(PcapError::Unsupported(
                "the mmap'ed libpcap does not support non-blocking mode",
            ));
        }
        self.nonblocking = on;
        Ok(())
    }

    /// Select the memory-mapped ring variant (Linux only at run time).
    pub fn set_mmap(&mut self, on: bool) -> Result<(), PcapError> {
        if on && self.nonblocking {
            return Err(PcapError::Unsupported(
                "the mmap'ed libpcap does not support non-blocking mode",
            ));
        }
        self.mmap = on;
        Ok(())
    }

    /// Keep per-packet records in the run report (needed for
    /// `pcap_loop`-style iteration and savefile writing).
    pub fn set_record(&mut self, on: bool) {
        self.record = on;
    }

    /// The configured snaplen.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// The device name given at open.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Promiscuous flag (informational; the splitter feed behaves
    /// promiscuously either way).
    pub fn promiscuous(&self) -> bool {
        self.promiscuous
    }

    /// The read timeout from open (informational in the simulation).
    pub fn timeout_ms(&self) -> u32 {
        self.timeout_ms
    }

    /// Lower the session onto the simulator: one capture application.
    pub fn app_config(&self) -> AppConfig {
        AppConfig {
            filter: self.filter.clone(),
            snaplen: self.snaplen,
            mmap: self.mmap,
            record: self.record,
            ..AppConfig::default()
        }
    }

    /// `pcap_stats()`: read the statistics back from a finished run.
    pub fn stats(report: &AppReport, nic_drops: u64) -> PcapStat {
        PcapStat {
            ps_recv: report.stats.accepted,
            ps_drop: report.stats.dropped_buffer + report.stats.dropped_pool,
            ps_ifdrop: nic_drops,
        }
    }

    /// `pcap_loop()`: invoke `callback` for every captured packet of a
    /// finished run (requires [`Pcap::set_record`]). Returns the count.
    pub fn dispatch<F>(report: &AppReport, mut callback: F) -> u64
    where
        F: FnMut(&CapturedPacket),
    {
        for p in &report.captured {
            callback(p);
        }
        report.captured.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_bpf::insn::ops;
    use pcs_oskernel::StackStats;

    #[test]
    fn open_and_configure() {
        let mut p = Pcap::open_live("if0", 1515, true, 20);
        assert_eq!(p.snaplen(), 1515);
        assert_eq!(p.device(), "if0");
        assert!(p.promiscuous());
        assert_eq!(p.timeout_ms(), 20);
        p.set_filter_expression("udp and dst port 9").unwrap();
        let cfg = p.app_config();
        assert!(cfg.filter.is_some());
        assert_eq!(cfg.snaplen, 1515);
    }

    #[test]
    fn bad_filters_rejected() {
        let mut p = Pcap::open_live("if0", 96, false, 0);
        assert!(matches!(
            p.set_filter_expression("this is not a filter !!"),
            Err(PcapError::Compile(_))
        ));
        // Hand-built invalid program (no trailing ret).
        assert!(matches!(
            p.setfilter(vec![ops::ld_imm(1)]),
            Err(PcapError::Invalid(_))
        ));
    }

    #[test]
    fn mmap_and_nonblocking_are_mutually_exclusive() {
        let mut p = Pcap::open_live("if0", 96, false, 0);
        p.set_mmap(true).unwrap();
        assert!(p.set_nonblocking(true).is_err());
        p.set_mmap(false).unwrap();
        p.set_nonblocking(true).unwrap();
        assert!(p.set_mmap(true).is_err());
    }

    #[test]
    fn stats_shape() {
        let report = AppReport {
            received: 90,
            received_bytes: 9000,
            captured: Vec::new(),
            stats: StackStats {
                accepted: 100,
                rejected: 5,
                dropped_buffer: 7,
                dropped_pool: 3,
                delivered: 90,
                kernel_residue: 0,
                app_residue: 0,
            },
        };
        let s = Pcap::stats(&report, 2);
        assert_eq!(s.ps_recv, 100);
        assert_eq!(s.ps_drop, 10);
        assert_eq!(s.ps_ifdrop, 2);
    }

    #[test]
    fn snaplen_floor() {
        let p = Pcap::open_live("if0", 1, false, 0);
        assert_eq!(p.snaplen(), 14);
    }
}
