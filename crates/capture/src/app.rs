//! The measurement capture application — `createDist` in its capturing
//! role (thesis Appendix A.1), with the evaluation's load options.
//!
//! Command-line options of the original map to builder methods:
//!
//! | createDist option | builder |
//! |---|---|
//! | `-f <expr>` (capture filter) | [`MeasurementApp::filter`] |
//! | `-sl <n>` (snaplen) | [`MeasurementApp::snaplen`] |
//! | `-c <n>` (extra copies) | [`MeasurementApp::extra_copies`] |
//! | `-z <level>` (compression) | [`MeasurementApp::compress`] |
//! | `-t` + `-tsl <n>` (trace first n bytes to disk) | [`MeasurementApp::write_headers`] |

use crate::session::PcapError;
use pcs_bpf::compile;
use pcs_oskernel::AppConfig;

/// Builder for the capture application's configuration.
#[derive(Debug, Clone, Default)]
pub struct MeasurementApp {
    cfg: AppConfig,
}

impl MeasurementApp {
    /// A plain full-snaplen capture application (the baseline setup).
    pub fn new() -> MeasurementApp {
        MeasurementApp {
            cfg: AppConfig::plain(),
        }
    }

    /// Attach a tcpdump-style filter expression (`-f`).
    pub fn filter(mut self, expression: &str) -> Result<MeasurementApp, PcapError> {
        let prog = compile(expression, self.cfg.snaplen).map_err(PcapError::Compile)?;
        self.cfg.filter = Some(prog);
        Ok(self)
    }

    /// Set the snapshot length (`-sl`).
    pub fn snaplen(mut self, snaplen: u32) -> MeasurementApp {
        self.cfg.snaplen = snaplen.max(14);
        self
    }

    /// Perform `n` additional memcpys per packet (`-c`, Fig. 6.10/B.2).
    pub fn extra_copies(mut self, n: u32) -> MeasurementApp {
        self.cfg.extra_copies = n;
        self
    }

    /// Compress every packet at the given zlib level (`-z`,
    /// Fig. 6.11/B.3).
    pub fn compress(mut self, level: u8) -> MeasurementApp {
        self.cfg.compress_level = Some(level.min(9));
        self
    }

    /// Write the first `bytes` of every packet to disk (`-t -tsl`,
    /// Fig. 6.14).
    pub fn write_headers(mut self, bytes: u32) -> MeasurementApp {
        self.cfg.disk_write_bytes = Some(bytes);
        self
    }

    /// Pipe whole packets to a gzip process at the given level
    /// (the Fig. 6.12 `tcpdump -w sniffer_pipe` setup).
    pub fn pipe_to_gzip(mut self, level: u8) -> MeasurementApp {
        self.cfg.pipe_to_gzip = Some(level.min(9));
        self
    }

    /// Use the memory-mapped libpcap variant (Fig. 6.15).
    pub fn mmap(mut self) -> MeasurementApp {
        self.cfg.mmap = true;
        self
    }

    /// Keep per-packet records in the report.
    pub fn record(mut self) -> MeasurementApp {
        self.cfg.record = true;
        self
    }

    /// The final application configuration.
    pub fn build(self) -> AppConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composition() {
        let cfg = MeasurementApp::new()
            .snaplen(1515)
            .extra_copies(50)
            .compress(3)
            .write_headers(76)
            .build();
        assert_eq!(cfg.snaplen, 1515);
        assert_eq!(cfg.extra_copies, 50);
        assert_eq!(cfg.compress_level, Some(3));
        assert_eq!(cfg.disk_write_bytes, Some(76));
        assert!(!cfg.mmap);
    }

    #[test]
    fn filter_option() {
        let cfg = MeasurementApp::new()
            .filter("udp dst port 9")
            .unwrap()
            .build();
        assert!(cfg.filter.is_some());
        assert!(MeasurementApp::new().filter("!bogus!").is_err());
    }

    #[test]
    fn compression_level_clamped() {
        let cfg = MeasurementApp::new().compress(42).build();
        assert_eq!(cfg.compress_level, Some(9));
    }

    #[test]
    fn pipe_and_mmap() {
        let cfg = MeasurementApp::new().pipe_to_gzip(3).build();
        assert_eq!(cfg.pipe_to_gzip, Some(3));
        let cfg = MeasurementApp::new().mmap().record().build();
        assert!(cfg.mmap && cfg.record);
    }
}
