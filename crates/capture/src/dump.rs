//! Savefile output: turn a run's captured-packet records back into a pcap
//! file (`pcap_dump_open`/`pcap_dump` territory).
//!
//! Kernel buffers store packet *metadata*; the byte content of a
//! generated packet is fully determined by its sequence number and the
//! generator seed, so the dumper regenerates the frames it writes. This
//! is the path the `trace_recorder` example uses.

use pcs_oskernel::CapturedPacket;
use pcs_pcapfile::PcapWriter;
use pcs_wire::SimPacket;
use std::collections::HashMap;
use std::io::{self, Write};

/// Writes captured packets into a pcap savefile, resolving packet bytes
/// through a caller-provided index of generated packets.
pub struct Dumper<'a, W: Write> {
    writer: PcapWriter<W>,
    index: &'a HashMap<u64, SimPacket>,
}

impl<'a, W: Write> Dumper<'a, W> {
    /// Create a dumper over `sink` with the given snaplen and an index
    /// from sequence number to the generated packet.
    pub fn new(
        sink: W,
        snaplen: u32,
        index: &'a HashMap<u64, SimPacket>,
    ) -> io::Result<Dumper<'a, W>> {
        Ok(Dumper {
            writer: PcapWriter::new(sink, snaplen)?,
            index,
        })
    }

    /// Write one captured packet; unknown sequence numbers are skipped
    /// (returns false).
    pub fn dump(&mut self, cap: &CapturedPacket) -> io::Result<bool> {
        let pkt = match self.index.get(&cap.seq) {
            Some(p) => p,
            None => return Ok(false),
        };
        let data = pkt.materialize(cap.caplen);
        self.writer
            .write_packet(cap.recv_ns, cap.frame_len, &data)?;
        Ok(true)
    }

    /// Write a whole run's captures; returns the number written.
    pub fn dump_all(&mut self, caps: &[CapturedPacket]) -> io::Result<u64> {
        let mut n = 0;
        for c in caps {
            if self.dump(c)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Finish and return the sink.
    pub fn finish(self) -> io::Result<W> {
        self.writer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_pcapfile::PcapReader;
    use pcs_wire::MacAddr;
    use std::net::Ipv4Addr;

    fn pkt(seq: u64, len: u32) -> SimPacket {
        SimPacket::build_udp(
            seq,
            seq * 100,
            len,
            MacAddr::ZERO,
            MacAddr::BROADCAST,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            9,
            9,
        )
    }

    #[test]
    fn roundtrips_to_readable_pcap() {
        let mut index = HashMap::new();
        for seq in 0..5u64 {
            index.insert(seq, pkt(seq, 100 + seq as u32 * 10));
        }
        let caps: Vec<CapturedPacket> = (0..5u64)
            .map(|seq| CapturedPacket {
                seq,
                gen_ns: seq * 100,
                recv_ns: seq * 100 + 50,
                caplen: 76,
                frame_len: 100 + seq as u32 * 10,
            })
            .collect();
        let mut d = Dumper::new(Vec::new(), 76, &index).unwrap();
        assert_eq!(d.dump_all(&caps).unwrap(), 5);
        let file = d.finish().unwrap();
        let recs = PcapReader::new(&file).unwrap().records().unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[0].data.len(), 76);
        assert_eq!(recs[4].orig_len, 140);
        // The frame bytes are the regenerated ones.
        assert_eq!(&recs[2].data[..], &index[&2].materialize(76)[..]);
    }

    #[test]
    fn unknown_seq_skipped() {
        let index = HashMap::new();
        let cap = CapturedPacket {
            seq: 42,
            gen_ns: 0,
            recv_ns: 0,
            caplen: 60,
            frame_len: 60,
        };
        let mut d = Dumper::new(Vec::new(), 96, &index).unwrap();
        assert!(!d.dump(&cap).unwrap());
        assert_eq!(d.dump_all(&[cap]).unwrap(), 0);
    }
}
