//! # pcs-capture — the libpcap-style capture API
//!
//! The user-space face of the Schneider (2005) reproduction:
//!
//! * [`session::Pcap`] — the `pcap_open_live` / `pcap_compile` /
//!   `pcap_setfilter` / `pcap_stats` surface (thesis §2.1.3), lowered onto
//!   the simulated capture stacks;
//! * [`app::MeasurementApp`] — the thesis' `createDist`-as-capture-app
//!   with its load options (extra copies, compression, header tracing,
//!   piping to gzip, the mmap variant);
//! * [`dump::Dumper`] — savefile output for captured packets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod dump;
pub mod session;

pub use app::MeasurementApp;
pub use dump::Dumper;
pub use session::{Pcap, PcapError, PcapStat};
