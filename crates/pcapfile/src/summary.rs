//! Trace summarization: counting packets by size, the way the thesis'
//! `createDist` tool does it with `ipsumdump` / its own fast C reader
//! (§4.2.1). Only IPv4 packets are counted and the *IP total length* is
//! used (matching `createDist`'s callback, Appendix A.1.2, which discards
//! non-IP packets).

use pcs_wire::{EtherType, EthernetFrame, Ipv4Header};
use std::collections::BTreeMap;

/// A histogram of packet sizes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SizeHistogram {
    counts: BTreeMap<u32, u64>,
    total: u64,
    non_ip: u64,
}

impl SizeHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one packet of the given size.
    pub fn add(&mut self, size: u32) {
        *self.counts.entry(size).or_insert(0) += 1;
        self.total += 1;
    }

    /// Count a raw Ethernet frame: parses the headers and counts the IP
    /// total length; non-IP frames are tallied separately and otherwise
    /// ignored.
    pub fn add_frame(&mut self, frame: &[u8]) {
        let parsed = EthernetFrame::parse(frame)
            .ok()
            .filter(|eth| eth.ethertype() == EtherType::Ipv4)
            .and_then(|eth| Ipv4Header::parse(eth.payload()).ok());
        match parsed {
            Some(ip) => self.add(ip.total_len as u32),
            None => self.non_ip += 1,
        }
    }

    /// Total IPv4 packets counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Frames that were not parseable IPv4 and were skipped.
    pub fn non_ip(&self) -> u64 {
        self.non_ip
    }

    /// Iterate `(size, count)` in ascending size order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&s, &c)| (s, c))
    }

    /// The count for one exact size.
    pub fn count(&self, size: u32) -> u64 {
        self.counts.get(&size).copied().unwrap_or(0)
    }

    /// Number of distinct sizes seen.
    pub fn distinct_sizes(&self) -> usize {
        self.counts.len()
    }

    /// Mean packet size (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u128 = self
            .counts
            .iter()
            .map(|(&s, &c)| s as u128 * c as u128)
            .sum();
        sum as f64 / self.total as f64
    }

    /// The `n` most frequent sizes, descending by count (ties broken by
    /// smaller size first), with their fractions of the total.
    pub fn top_n(&self, n: usize) -> Vec<(u32, u64, f64)> {
        let mut v: Vec<(u32, u64)> = self.counts.iter().map(|(&s, &c)| (s, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v.into_iter()
            .map(|(s, c)| (s, c, c as f64 / self.total as f64))
            .collect()
    }

    /// The serialized `dist` format of `createDist`:
    /// one `<size><sep><count>` line per size.
    pub fn to_dist_format(&self, sep: char) -> String {
        let mut out = String::new();
        for (s, c) in self.iter() {
            out.push_str(&format!("{s}{sep}{c}\n"));
        }
        out
    }

    /// Parse the `dist` format back (`<size><sep><count>` lines).
    pub fn from_dist_format(text: &str, sep: char) -> Result<SizeHistogram, String> {
        let mut h = SizeHistogram::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(2, sep);
            let size: u32 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing size", ln + 1))?
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad size: {e}", ln + 1))?;
            let count: u64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing count", ln + 1))?
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad count: {e}", ln + 1))?;
            h.counts
                .entry(size)
                .and_modify(|c| *c += count)
                .or_insert(count);
            h.total += count;
        }
        Ok(h)
    }

    /// Build from a pcap byte buffer, counting every parseable IPv4 record.
    pub fn from_pcap(data: &[u8]) -> Result<SizeHistogram, crate::PcapError> {
        let mut reader = crate::PcapReader::new(data)?;
        let mut h = SizeHistogram::new();
        while let Some(rec) = reader.next_record()? {
            h.add_frame(&rec.data);
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PcapWriter;
    use pcs_wire::{MacAddr, SimPacket};
    use std::net::Ipv4Addr;

    fn frame(len: u32) -> Vec<u8> {
        SimPacket::build_udp(
            0,
            0,
            len,
            MacAddr::ZERO,
            MacAddr::BROADCAST,
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            9,
            9,
        )
        .materialize(len)
    }

    #[test]
    fn counts_ip_total_length() {
        let mut h = SizeHistogram::new();
        h.add_frame(&frame(60));
        h.add_frame(&frame(60));
        h.add_frame(&frame(1514));
        assert_eq!(h.total(), 3);
        // IP total length = frame - 14.
        assert_eq!(h.count(46), 2);
        assert_eq!(h.count(1500), 1);
        assert_eq!(h.distinct_sizes(), 2);
    }

    #[test]
    fn skips_non_ip() {
        let mut h = SizeHistogram::new();
        let mut arp = frame(60);
        arp[12] = 0x08;
        arp[13] = 0x06;
        h.add_frame(&arp);
        h.add_frame(&[0u8; 5]); // unparseable
        assert_eq!(h.total(), 0);
        assert_eq!(h.non_ip(), 2);
    }

    #[test]
    fn mean_and_top_n() {
        let mut h = SizeHistogram::new();
        for _ in 0..6 {
            h.add(40);
        }
        for _ in 0..3 {
            h.add(1500);
        }
        h.add(576);
        assert!((h.mean() - (6.0 * 40.0 + 3.0 * 1500.0 + 576.0) / 10.0).abs() < 1e-9);
        let top = h.top_n(2);
        assert_eq!(top[0].0, 40);
        assert!((top[0].2 - 0.6).abs() < 1e-12);
        assert_eq!(top[1].0, 1500);
    }

    #[test]
    fn dist_format_roundtrip() {
        let mut h = SizeHistogram::new();
        h.add(40);
        h.add(40);
        h.add(1500);
        let text = h.to_dist_format(' ');
        assert_eq!(text, "40 2\n1500 1\n");
        let back = SizeHistogram::from_dist_format(&text, ' ').unwrap();
        assert_eq!(back, h);
        // Alternate separator.
        let back = SizeHistogram::from_dist_format("40:2\n1500:1", ':').unwrap();
        assert_eq!(back.count(40), 2);
        assert!(SizeHistogram::from_dist_format("garbage", ' ').is_err());
    }

    #[test]
    fn from_pcap_counts_records() {
        let mut w = PcapWriter::new(Vec::new(), 65535).unwrap();
        for len in [60u32, 60, 576, 1514] {
            let f = frame(len);
            w.write_packet(0, len, &f).unwrap();
        }
        let file = w.finish().unwrap();
        let h = SizeHistogram::from_pcap(&file).unwrap();
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(46), 2);
        assert_eq!(h.count(562), 1);
        assert_eq!(h.count(1500), 1);
    }
}
