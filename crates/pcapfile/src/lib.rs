//! # pcs-pcapfile — pcap savefile reading and writing
//!
//! The classic libpcap savefile format (as written by `tcpdump -w` and read
//! by every analysis tool the thesis mentions), plus the trace-summary
//! helper the `createDist` tool uses to turn traces into packet-size
//! distributions (thesis §4.2.1, Appendix A.1).
//!
//! Both byte orders are read; files are written in the host-independent
//! little-endian convention with microsecond timestamps, format version
//! 2.4, LINKTYPE_ETHERNET.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reader;
pub mod summary;
pub mod writer;

pub use reader::{PcapError, PcapReader, Record};
pub use summary::SizeHistogram;
pub use writer::PcapWriter;

/// Magic for microsecond-timestamp pcap files.
pub const MAGIC_USEC: u32 = 0xa1b2_c3d4;
/// Magic for nanosecond-timestamp pcap files.
pub const MAGIC_NSEC: u32 = 0xa1b2_3c4d;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// The global header length.
pub const GLOBAL_HEADER_LEN: usize = 24;
/// The per-record header length.
pub const RECORD_HEADER_LEN: usize = 16;
