//! Reading pcap savefiles (both byte orders, µs and ns timestamps).

use crate::{GLOBAL_HEADER_LEN, MAGIC_NSEC, MAGIC_USEC, RECORD_HEADER_LEN};

/// One captured packet record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Capture timestamp in nanoseconds since the epoch.
    pub ts_ns: u64,
    /// Original length of the packet on the wire.
    pub orig_len: u32,
    /// The captured bytes (at most the file's snaplen).
    pub data: Vec<u8>,
}

/// Reading failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// Not a pcap file (bad magic).
    BadMagic(u32),
    /// Header or record truncated.
    Truncated,
    /// A record claims more captured bytes than the file's snaplen allows.
    OversizedRecord {
        /// The record's included length.
        incl_len: u32,
        /// The file's snaplen.
        snaplen: u32,
    },
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::BadMagic(m) => write!(f, "bad pcap magic {m:#010x}"),
            PcapError::Truncated => write!(f, "truncated pcap data"),
            PcapError::OversizedRecord { incl_len, snaplen } => {
                write!(f, "record incl_len {incl_len} exceeds snaplen {snaplen}")
            }
        }
    }
}

impl std::error::Error for PcapError {}

/// An in-memory pcap reader; iterate with [`PcapReader::next_record`] or
/// via [`IntoIterator`].
pub struct PcapReader<'a> {
    data: &'a [u8],
    pos: usize,
    big_endian: bool,
    nanos: bool,
    snaplen: u32,
}

impl<'a> PcapReader<'a> {
    /// Parse the global header.
    pub fn new(data: &'a [u8]) -> Result<PcapReader<'a>, PcapError> {
        if data.len() < GLOBAL_HEADER_LEN {
            return Err(PcapError::Truncated);
        }
        let magic_le = u32::from_le_bytes(data[0..4].try_into().expect("4"));
        let magic_be = u32::from_be_bytes(data[0..4].try_into().expect("4"));
        let (big_endian, nanos) = match (magic_le, magic_be) {
            (MAGIC_USEC, _) => (false, false),
            (MAGIC_NSEC, _) => (false, true),
            (_, MAGIC_USEC) => (true, false),
            (_, MAGIC_NSEC) => (true, true),
            _ => return Err(PcapError::BadMagic(magic_le)),
        };
        let read_u32 = |off: usize| -> u32 {
            let b: [u8; 4] = data[off..off + 4].try_into().expect("4");
            if big_endian {
                u32::from_be_bytes(b)
            } else {
                u32::from_le_bytes(b)
            }
        };
        let snaplen = read_u32(16);
        Ok(PcapReader {
            data,
            pos: GLOBAL_HEADER_LEN,
            big_endian,
            nanos,
            snaplen,
        })
    }

    /// The file's snapshot length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    fn read_u32(&self, off: usize) -> u32 {
        let b: [u8; 4] = self.data[off..off + 4].try_into().expect("4");
        if self.big_endian {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    }

    /// Read the next record; `Ok(None)` at a clean end of file.
    pub fn next_record(&mut self) -> Result<Option<Record>, PcapError> {
        if self.pos == self.data.len() {
            return Ok(None);
        }
        if self.pos + RECORD_HEADER_LEN > self.data.len() {
            return Err(PcapError::Truncated);
        }
        let ts_sec = self.read_u32(self.pos) as u64;
        let ts_frac = self.read_u32(self.pos + 4) as u64;
        let incl_len = self.read_u32(self.pos + 8);
        let orig_len = self.read_u32(self.pos + 12);
        // Guard against corrupt headers producing huge allocations.
        if incl_len > self.snaplen.max(65_535) {
            return Err(PcapError::OversizedRecord {
                incl_len,
                snaplen: self.snaplen,
            });
        }
        let start = self.pos + RECORD_HEADER_LEN;
        let end = start + incl_len as usize;
        if end > self.data.len() {
            return Err(PcapError::Truncated);
        }
        self.pos = end;
        let ts_ns = if self.nanos {
            ts_sec * 1_000_000_000 + ts_frac
        } else {
            ts_sec * 1_000_000_000 + ts_frac * 1_000
        };
        Ok(Some(Record {
            ts_ns,
            orig_len,
            data: self.data[start..end].to_vec(),
        }))
    }

    /// Collect every record (failing on the first malformed one).
    pub fn records(mut self) -> Result<Vec<Record>, PcapError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::PcapWriter;

    fn sample_file() -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new(), 1514).unwrap();
        w.write_packet(1_000_000, 60, &[1u8; 60]).unwrap();
        w.write_packet(2_000_000, 1514, &[2u8; 1514]).unwrap();
        w.write_packet(3_500_000, 200, &[3u8; 200]).unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip() {
        let file = sample_file();
        let r = PcapReader::new(&file).unwrap();
        assert_eq!(r.snaplen(), 1514);
        let recs = r.records().unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].ts_ns, 1_000_000); // µs-rounded
        assert_eq!(recs[0].orig_len, 60);
        assert_eq!(recs[1].data.len(), 1514);
        assert_eq!(recs[2].data, vec![3u8; 200]);
    }

    #[test]
    fn big_endian_files_read_back() {
        // Hand-build a big-endian file with one record.
        let mut f = Vec::new();
        f.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        f.extend_from_slice(&2u16.to_be_bytes());
        f.extend_from_slice(&4u16.to_be_bytes());
        f.extend_from_slice(&0u32.to_be_bytes());
        f.extend_from_slice(&0u32.to_be_bytes());
        f.extend_from_slice(&96u32.to_be_bytes());
        f.extend_from_slice(&1u32.to_be_bytes());
        f.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        f.extend_from_slice(&5u32.to_be_bytes()); // ts_usec
        f.extend_from_slice(&4u32.to_be_bytes()); // incl
        f.extend_from_slice(&100u32.to_be_bytes()); // orig
        f.extend_from_slice(&[9u8; 4]);
        let recs = PcapReader::new(&f).unwrap().records().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ts_ns, 7_000_005_000);
        assert_eq!(recs[0].orig_len, 100);
    }

    #[test]
    fn nanosecond_magic() {
        let mut f = Vec::new();
        f.extend_from_slice(&MAGIC_NSEC.to_le_bytes());
        f.extend_from_slice(&[0u8; 12]);
        f.extend_from_slice(&96u32.to_le_bytes());
        f.extend_from_slice(&1u32.to_le_bytes());
        f.extend_from_slice(&1u32.to_le_bytes());
        f.extend_from_slice(&42u32.to_le_bytes()); // 42 ns
        f.extend_from_slice(&0u32.to_le_bytes());
        f.extend_from_slice(&0u32.to_le_bytes());
        let recs = PcapReader::new(&f).unwrap().records().unwrap();
        assert_eq!(recs[0].ts_ns, 1_000_000_042);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(matches!(
            PcapReader::new(&[0u8; 24]),
            Err(PcapError::BadMagic(_))
        ));
        assert!(matches!(
            PcapReader::new(&[0u8; 10]),
            Err(PcapError::Truncated)
        ));
        let mut file = sample_file();
        file.truncate(file.len() - 5);
        let r = PcapReader::new(&file).unwrap();
        assert!(matches!(r.records(), Err(PcapError::Truncated)));
    }

    #[test]
    fn rejects_oversized_records() {
        let mut w = PcapWriter::new(Vec::new(), 64).unwrap();
        w.write_packet(0, 64, &[0u8; 64]).unwrap();
        let mut file = w.finish().unwrap();
        // Corrupt incl_len to something absurd.
        file[32..36].copy_from_slice(&0x7fff_ffffu32.to_le_bytes());
        let r = PcapReader::new(&file).unwrap();
        assert!(matches!(
            r.records(),
            Err(PcapError::OversizedRecord { .. })
        ));
    }
}
