//! Writing pcap savefiles.

use crate::{GLOBAL_HEADER_LEN, LINKTYPE_ETHERNET, MAGIC_USEC};
use std::io::{self, Write};

/// Streaming pcap writer over any [`Write`] sink.
///
/// Timestamps are taken in nanoseconds (the simulation's native unit) and
/// stored with microsecond resolution, like the 2005-era libpcap did.
pub struct PcapWriter<W: Write> {
    sink: W,
    snaplen: u32,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header.
    pub fn new(mut sink: W, snaplen: u32) -> io::Result<PcapWriter<W>> {
        let mut hdr = Vec::with_capacity(GLOBAL_HEADER_LEN);
        hdr.extend_from_slice(&MAGIC_USEC.to_le_bytes());
        hdr.extend_from_slice(&2u16.to_le_bytes()); // version major
        hdr.extend_from_slice(&4u16.to_le_bytes()); // version minor
        hdr.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        hdr.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        hdr.extend_from_slice(&snaplen.to_le_bytes());
        hdr.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        sink.write_all(&hdr)?;
        Ok(PcapWriter {
            sink,
            snaplen,
            packets: 0,
        })
    }

    /// Append one packet. `data` is the captured bytes (already truncated
    /// to at most the snaplen by the capture path; this writer truncates
    /// again defensively), `orig_len` the original wire length.
    pub fn write_packet(&mut self, ts_ns: u64, orig_len: u32, data: &[u8]) -> io::Result<()> {
        let incl = (data.len() as u32).min(self.snaplen);
        let mut rec = Vec::with_capacity(16 + incl as usize);
        rec.extend_from_slice(&((ts_ns / 1_000_000_000) as u32).to_le_bytes());
        rec.extend_from_slice(&(((ts_ns % 1_000_000_000) / 1_000) as u32).to_le_bytes());
        rec.extend_from_slice(&incl.to_le_bytes());
        rec.extend_from_slice(&orig_len.to_le_bytes());
        self.sink.write_all(&rec)?;
        self.sink.write_all(&data[..incl as usize])?;
        self.packets += 1;
        Ok(())
    }

    /// Number of packets written.
    pub fn packet_count(&self) -> u64 {
        self.packets
    }

    /// The configured snapshot length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Flush and return the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_global_header() {
        let w = PcapWriter::new(Vec::new(), 96).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), GLOBAL_HEADER_LEN);
        assert_eq!(&buf[0..4], &MAGIC_USEC.to_le_bytes());
        assert_eq!(u32::from_le_bytes(buf[16..20].try_into().unwrap()), 96);
        assert_eq!(u32::from_le_bytes(buf[20..24].try_into().unwrap()), 1);
    }

    #[test]
    fn truncates_to_snaplen() {
        let mut w = PcapWriter::new(Vec::new(), 8).unwrap();
        w.write_packet(1_500_000_000, 100, &[0xaa; 100]).unwrap();
        assert_eq!(w.packet_count(), 1);
        let buf = w.finish().unwrap();
        // 24 global + 16 record + 8 data
        assert_eq!(buf.len(), 48);
        // ts_sec = 1, ts_usec = 500000
        assert_eq!(u32::from_le_bytes(buf[24..28].try_into().unwrap()), 1);
        assert_eq!(u32::from_le_bytes(buf[28..32].try_into().unwrap()), 500_000);
        assert_eq!(u32::from_le_bytes(buf[32..36].try_into().unwrap()), 8);
        assert_eq!(u32::from_le_bytes(buf[36..40].try_into().unwrap()), 100);
    }
}
