//! Property tests: the savefile writer and reader are exact inverses.

use pcs_pcapfile::{PcapReader, PcapWriter, SizeHistogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_read_roundtrip(
        snaplen in 32u32..4096,
        records in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..512)),
            0..40
        ),
    ) {
        let mut w = PcapWriter::new(Vec::new(), snaplen).unwrap();
        for (ts_us, data) in &records {
            let ts_ns = *ts_us as u64 * 1000;
            w.write_packet(ts_ns, data.len() as u32, data).unwrap();
        }
        prop_assert_eq!(w.packet_count(), records.len() as u64);
        let file = w.finish().unwrap();

        let r = PcapReader::new(&file).unwrap();
        prop_assert_eq!(r.snaplen(), snaplen);
        let recs = r.records().unwrap();
        prop_assert_eq!(recs.len(), records.len());
        for (rec, (ts_us, data)) in recs.iter().zip(&records) {
            prop_assert_eq!(rec.ts_ns, *ts_us as u64 * 1000);
            prop_assert_eq!(rec.orig_len as usize, data.len());
            let expect = &data[..data.len().min(snaplen as usize)];
            prop_assert_eq!(&rec.data[..], expect);
        }
    }

    /// Truncating a valid file anywhere inside a record is detected.
    #[test]
    fn truncation_detected(cut in 25usize..120) {
        let mut w = PcapWriter::new(Vec::new(), 1514).unwrap();
        w.write_packet(1_000, 100, &[7u8; 100]).unwrap();
        let file = w.finish().unwrap();
        let cut = cut.min(file.len() - 1);
        let r = PcapReader::new(&file[..cut]);
        // An Err means the header itself was truncated — also a detection.
        if let Ok(reader) = r {
            prop_assert!(reader.records().is_err());
        }
    }

    /// The reader never panics on arbitrary bytes.
    #[test]
    fn reader_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(r) = PcapReader::new(&data) {
            let _ = r.records();
        }
    }

    /// Histogram totals equal the sum of inserted counts and the dist
    /// format round-trips.
    #[test]
    fn histogram_roundtrip(sizes in proptest::collection::vec(40u32..1500, 1..200)) {
        let mut h = SizeHistogram::new();
        for &s in &sizes {
            h.add(s);
        }
        prop_assert_eq!(h.total(), sizes.len() as u64);
        let text = h.to_dist_format(' ');
        let back = SizeHistogram::from_dist_format(&text, ' ').unwrap();
        prop_assert_eq!(back, h);
    }
}
