//! The process-global, content-addressed stream chunk cache.
//!
//! The testbed generates *one* stream per (workload, rate, repeat) and
//! feeds it to every sniffer through the optical splitter — yet a sweep
//! that evaluates several SUT sets at the same measurement point used to
//! regenerate that identical stream once per cell. This cache shares the
//! generation: streams are addressed by a 128-bit [`Fingerprintable`]
//! digest of everything that determines their content (generator config,
//! pacing rate, per-repeat seed), the first cell to need a stream
//! generates and publishes its [`Chunk`]s, and every concurrent or later
//! cell at the same key subscribes to the published chunks instead of
//! running the generator again.
//!
//! Publication is incremental: a [`StreamPublisher`] appends chunks as
//! the producing cell pulls them, and a [`StreamSubscriber`] blocks only
//! when it catches up with the producer — concurrent cells overlap, they
//! do not serialize behind a fully generated stream. Subscribed chunks
//! are the *same allocations* the producer made (`Arc` clones), so a
//! shared stream is resident exactly once no matter how many cells read
//! it.
//!
//! Residency is bounded: completed streams are evicted least-recently-
//! used once the cache exceeds its byte budget. Eviction only unlinks a
//! stream from the cache — cells still holding its chunks keep them
//! alive until they finish — so it can never corrupt an in-flight cell,
//! it only forfeits future sharing.
//!
//! [`Fingerprintable`]: pcs_des::Fingerprintable

use crate::generator::TimedPacket;
use crate::source::{Chunk, PacketSource};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// 128-bit content address of a stream: the finished fingerprint of the
/// full generator configuration plus rate and per-repeat seed.
pub type StreamKey = (u64, u64);

/// Default byte budget for resident cached streams (1 GiB).
pub const DEFAULT_STREAM_CACHE_BYTES: u64 = 1 << 30;

/// Resident bytes of one chunk (packets are inline, no heap payload).
pub fn chunk_bytes(chunk: &Chunk) -> u64 {
    (chunk.len() * std::mem::size_of::<TimedPacket>()) as u64
}

/// Shared publication state of one stream.
struct StreamState {
    chunks: Vec<Chunk>,
    /// The producer finished (or abandoned) the stream.
    done: bool,
    /// The producer was dropped before the stream completed; subscribers
    /// must fail loudly instead of treating the prefix as the stream.
    abandoned: bool,
}

struct SharedStream {
    state: Mutex<StreamState>,
    progress: Condvar,
}

impl SharedStream {
    fn new() -> SharedStream {
        SharedStream {
            state: Mutex::new(StreamState {
                chunks: Vec::new(),
                done: false,
                abandoned: false,
            }),
            progress: Condvar::new(),
        }
    }
}

/// One cache slot: the stream plus the bookkeeping eviction needs.
struct CacheEntry {
    stream: Arc<SharedStream>,
    /// Bytes published so far (final size once `done`).
    bytes: u64,
    /// Completed streams are evictable; in-progress ones are pinned.
    done: bool,
    /// LRU clock value of the most recent acquire.
    last_used: u64,
}

#[derive(Default)]
struct CacheMap {
    entries: HashMap<StreamKey, CacheEntry>,
    clock: u64,
}

/// What [`StreamCache::acquire`] hands the caller: either the duty to
/// generate (and thereby publish), or a subscription to chunks someone
/// else is generating or has generated.
pub enum StreamRole<'a> {
    /// No stream at this key yet — the caller must generate it, routing
    /// every chunk through the publisher.
    Produce(StreamPublisher<'a>),
    /// The stream exists (possibly still being generated) — consume the
    /// published chunks instead of regenerating.
    Subscribe(StreamSubscriber),
}

/// A content-addressed cache of generated packet streams.
pub struct StreamCache {
    map: Mutex<CacheMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    resident: AtomicU64,
    peak_resident: AtomicU64,
}

impl Default for StreamCache {
    fn default() -> StreamCache {
        StreamCache::new()
    }
}

impl StreamCache {
    /// A fresh, empty cache.
    pub fn new() -> StreamCache {
        StreamCache {
            map: Mutex::new(CacheMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            peak_resident: AtomicU64::new(0),
        }
    }

    /// The process-global cache every streaming cell consults.
    pub fn global() -> &'static StreamCache {
        static GLOBAL: OnceLock<StreamCache> = OnceLock::new();
        GLOBAL.get_or_init(StreamCache::new)
    }

    /// Acquire the stream at `key`: the first caller becomes the
    /// producer, everyone else a subscriber. `budget_bytes` is the
    /// resident-byte bound enforced (by LRU eviction of completed
    /// streams) while this acquisition publishes.
    pub fn acquire(&self, key: StreamKey, budget_bytes: u64) -> StreamRole<'_> {
        let mut map = self.map.lock().expect("stream cache poisoned");
        map.clock += 1;
        let clock = map.clock;
        if let Some(entry) = map.entries.get_mut(&key) {
            entry.last_used = clock;
            let stream = Arc::clone(&entry.stream);
            drop(map);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return StreamRole::Subscribe(StreamSubscriber { stream, next: 0 });
        }
        let stream = Arc::new(SharedStream::new());
        map.entries.insert(
            key,
            CacheEntry {
                stream: Arc::clone(&stream),
                bytes: 0,
                done: false,
                last_used: clock,
            },
        );
        drop(map);
        self.misses.fetch_add(1, Ordering::Relaxed);
        StreamRole::Produce(StreamPublisher {
            cache: self,
            key,
            stream,
            budget_bytes,
            finished: false,
        })
    }

    /// Streams served by subscription instead of regeneration.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Streams that had to be generated.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Bytes of stream data currently resident in the cache.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// High-water mark of [`StreamCache::resident_bytes`].
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident.load(Ordering::Relaxed)
    }

    /// Number of streams currently in the cache (including in-progress).
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("stream cache poisoned")
            .entries
            .len()
    }

    /// Whether the cache holds no streams.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evict every *completed* stream (a "cold" cache for benchmarks and
    /// determinism tests); in-progress streams stay pinned.
    pub fn clear(&self) {
        let mut map = self.map.lock().expect("stream cache poisoned");
        let done: Vec<StreamKey> = map
            .entries
            .iter()
            .filter(|(_, e)| e.done)
            .map(|(k, _)| *k)
            .collect();
        for key in done {
            if let Some(entry) = map.entries.remove(&key) {
                self.resident.fetch_sub(entry.bytes, Ordering::Relaxed);
            }
        }
    }

    /// Account `bytes` of newly published stream data against `key`.
    fn note_published(&self, key: StreamKey, bytes: u64, budget_bytes: u64) {
        let mut map = self.map.lock().expect("stream cache poisoned");
        if let Some(entry) = map.entries.get_mut(&key) {
            entry.bytes += bytes;
            let now = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
            self.peak_resident.fetch_max(now, Ordering::Relaxed);
            Self::trim(&mut map, &self.resident, budget_bytes);
        }
    }

    /// Mark `key` complete (evictable) and enforce the byte budget, or —
    /// when `abandoned` — unlink it so later cells regenerate.
    fn note_done(&self, key: StreamKey, abandoned: bool, budget_bytes: u64) {
        let mut map = self.map.lock().expect("stream cache poisoned");
        if abandoned {
            if let Some(entry) = map.entries.remove(&key) {
                self.resident.fetch_sub(entry.bytes, Ordering::Relaxed);
            }
            return;
        }
        if let Some(entry) = map.entries.get_mut(&key) {
            entry.done = true;
        }
        Self::trim(&mut map, &self.resident, budget_bytes);
    }

    /// Evict completed streams, least recently used first, until resident
    /// bytes fit the budget. In-progress streams never move; cells still
    /// holding an evicted stream's chunks keep them alive on their own.
    fn trim(map: &mut CacheMap, resident: &AtomicU64, budget_bytes: u64) {
        while resident.load(Ordering::Relaxed) > budget_bytes {
            let victim = map
                .entries
                .iter()
                .filter(|(_, e)| e.done)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(key) => {
                    let entry = map.entries.remove(&key).expect("victim vanished");
                    resident.fetch_sub(entry.bytes, Ordering::Relaxed);
                }
                None => break, // only pinned in-progress streams remain
            }
        }
    }
}

/// The producing side of one cached stream. Obtained from
/// [`StreamCache::acquire`]; normally driven through
/// [`PublishingSource`], which tees a generator's chunks into it.
pub struct StreamPublisher<'a> {
    cache: &'a StreamCache,
    key: StreamKey,
    stream: Arc<SharedStream>,
    budget_bytes: u64,
    finished: bool,
}

impl StreamPublisher<'_> {
    /// Publish one generated chunk to every subscriber.
    pub fn publish(&mut self, chunk: &Chunk) {
        {
            let mut state = self.stream.state.lock().expect("stream poisoned");
            state.chunks.push(Arc::clone(chunk));
        }
        self.stream.progress.notify_all();
        self.cache
            .note_published(self.key, chunk_bytes(chunk), self.budget_bytes);
    }

    /// Mark the stream complete: subscribers observe end of stream once
    /// they drain the published chunks.
    pub fn finish(mut self) {
        self.complete(false);
    }

    fn complete(&mut self, abandoned: bool) {
        if self.finished {
            return;
        }
        self.finished = true;
        {
            let mut state = self.stream.state.lock().expect("stream poisoned");
            state.done = true;
            state.abandoned = abandoned;
        }
        self.stream.progress.notify_all();
        self.cache.note_done(self.key, abandoned, self.budget_bytes);
    }
}

impl Drop for StreamPublisher<'_> {
    fn drop(&mut self) {
        // A producer dropped mid-stream (panic unwinding a cell) must not
        // leave subscribers waiting forever or, worse, let them mistake
        // the published prefix for the whole stream.
        self.complete(true);
    }
}

/// A [`PacketSource`] that tees every chunk of an inner source into a
/// [`StreamPublisher`] — how the producing cell generates for itself and
/// for every subscriber at once.
pub struct PublishingSource<'a, S: PacketSource> {
    inner: S,
    publisher: Option<StreamPublisher<'a>>,
}

impl<'a, S: PacketSource> PublishingSource<'a, S> {
    /// Tee `inner` through `publisher`.
    pub fn new(inner: S, publisher: StreamPublisher<'a>) -> PublishingSource<'a, S> {
        PublishingSource {
            inner,
            publisher: Some(publisher),
        }
    }
}

impl<S: PacketSource> PacketSource for PublishingSource<'_, S> {
    fn next_chunk(&mut self) -> Option<Chunk> {
        match self.inner.next_chunk() {
            Some(chunk) => {
                if let Some(publisher) = &mut self.publisher {
                    publisher.publish(&chunk);
                }
                Some(chunk)
            }
            None => {
                if let Some(publisher) = self.publisher.take() {
                    publisher.finish();
                }
                None
            }
        }
    }
}

/// The consuming side of one cached stream: a [`PacketSource`] over the
/// published chunks, blocking only while it is caught up with a still-
/// publishing producer.
pub struct StreamSubscriber {
    stream: Arc<SharedStream>,
    next: usize,
}

impl PacketSource for StreamSubscriber {
    fn next_chunk(&mut self) -> Option<Chunk> {
        let mut state = self.stream.state.lock().expect("stream poisoned");
        loop {
            if self.next < state.chunks.len() {
                let chunk = Arc::clone(&state.chunks[self.next]);
                self.next += 1;
                return Some(chunk);
            }
            if state.done {
                assert!(
                    !state.abandoned,
                    "stream cache producer abandoned its stream mid-publication"
                );
                return None;
            }
            state = self.stream.progress.wait(state).expect("stream poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, TxModel};
    use crate::procfs::PktgenConfig;
    use crate::source::{ChunkedGenerator, SourcePackets};

    fn gen(count: u64, seed: u64) -> ChunkedGenerator {
        ChunkedGenerator::new(
            Generator::new(
                PktgenConfig {
                    count,
                    ..PktgenConfig::default()
                },
                TxModel::syskonnect(),
                seed,
            ),
            128,
        )
    }

    fn drain(mut source: impl PacketSource) -> Vec<Chunk> {
        let mut out = Vec::new();
        while let Some(c) = source.next_chunk() {
            out.push(c);
        }
        out
    }

    #[test]
    fn first_acquire_produces_second_subscribes_to_identical_chunks() {
        let cache = StreamCache::new();
        let key = (1, 1);
        let produced = match cache.acquire(key, DEFAULT_STREAM_CACHE_BYTES) {
            StreamRole::Produce(p) => drain(PublishingSource::new(gen(1_000, 7), p)),
            StreamRole::Subscribe(_) => panic!("empty cache must elect a producer"),
        };
        let subscribed = match cache.acquire(key, DEFAULT_STREAM_CACHE_BYTES) {
            StreamRole::Produce(_) => panic!("published stream must be subscribable"),
            StreamRole::Subscribe(s) => drain(s),
        };
        assert_eq!(produced.len(), subscribed.len());
        for (a, b) in produced.iter().zip(&subscribed) {
            assert!(
                Arc::ptr_eq(a, b),
                "shared chunks must be the same allocation"
            );
            assert_eq!(a, b);
        }
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        let bytes: u64 = produced.iter().map(chunk_bytes).sum();
        assert_eq!(cache.resident_bytes(), bytes);
        assert_eq!(cache.peak_resident_bytes(), bytes);
    }

    #[test]
    fn concurrent_subscriber_overlaps_the_producer() {
        let cache = StreamCache::new();
        let key = (2, 2);
        let publisher = match cache.acquire(key, DEFAULT_STREAM_CACHE_BYTES) {
            StreamRole::Produce(p) => p,
            StreamRole::Subscribe(_) => unreachable!(),
        };
        let subscriber = match cache.acquire(key, DEFAULT_STREAM_CACHE_BYTES) {
            StreamRole::Produce(_) => unreachable!(),
            StreamRole::Subscribe(s) => s,
        };
        let reference: Vec<_> = SourcePackets::new(gen(2_000, 9)).collect();
        std::thread::scope(|scope| {
            let consumer = scope.spawn(move || SourcePackets::new(subscriber).collect::<Vec<_>>());
            let produced = drain(PublishingSource::new(gen(2_000, 9), publisher));
            assert!(!produced.is_empty());
            let consumed = consumer.join().expect("subscriber thread");
            assert_eq!(consumed, reference);
        });
    }

    #[test]
    fn lru_eviction_keeps_residency_within_budget() {
        let cache = StreamCache::new();
        // Publish two streams under a budget that fits only one.
        let first = match cache.acquire((3, 1), u64::MAX) {
            StreamRole::Produce(p) => drain(PublishingSource::new(gen(600, 1), p)),
            StreamRole::Subscribe(_) => unreachable!(),
        };
        let first_bytes: u64 = first.iter().map(chunk_bytes).sum();
        let budget = first_bytes + first_bytes / 2;
        match cache.acquire((3, 2), budget) {
            StreamRole::Produce(p) => drain(PublishingSource::new(gen(600, 2), p)),
            StreamRole::Subscribe(_) => unreachable!(),
        };
        // The older stream was evicted; the newer one is resident.
        assert_eq!(cache.len(), 1);
        assert!(cache.resident_bytes() <= budget);
        match cache.acquire((3, 1), budget) {
            StreamRole::Produce(_) => {} // evicted => regenerate
            StreamRole::Subscribe(_) => panic!("evicted stream must not be subscribable"),
        };
    }

    #[test]
    fn clear_evicts_completed_streams_only() {
        let cache = StreamCache::new();
        match cache.acquire((4, 1), u64::MAX) {
            StreamRole::Produce(p) => drain(PublishingSource::new(gen(100, 3), p)),
            StreamRole::Subscribe(_) => unreachable!(),
        };
        let _pinned = match cache.acquire((4, 2), u64::MAX) {
            StreamRole::Produce(p) => p, // in progress, never published
            StreamRole::Subscribe(_) => unreachable!(),
        };
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert_eq!(cache.len(), 1, "in-progress stream stays pinned");
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "abandoned")]
    fn abandoned_producer_fails_subscribers_loudly() {
        let cache = StreamCache::new();
        let publisher = match cache.acquire((5, 1), u64::MAX) {
            StreamRole::Produce(p) => p,
            StreamRole::Subscribe(_) => unreachable!(),
        };
        let subscriber = match cache.acquire((5, 1), u64::MAX) {
            StreamRole::Produce(_) => unreachable!(),
            StreamRole::Subscribe(s) => s,
        };
        drop(publisher); // producer dies before finishing
        assert!(cache.is_empty(), "abandoned stream must be unlinked");
        drain(subscriber);
    }

    #[test]
    fn empty_stream_round_trips() {
        let cache = StreamCache::new();
        match cache.acquire((6, 1), u64::MAX) {
            StreamRole::Produce(p) => {
                assert!(drain(PublishingSource::new(gen(0, 1), p)).is_empty())
            }
            StreamRole::Subscribe(_) => unreachable!(),
        };
        match cache.acquire((6, 1), u64::MAX) {
            StreamRole::Produce(_) => panic!("empty stream is still a published stream"),
            StreamRole::Subscribe(s) => assert!(drain(s).is_empty()),
        };
    }
}
