//! The packet generator proper: turns a [`PktgenConfig`] into a timed,
//! reproducible stream of [`SimPacket`]s.
//!
//! The generator models the `gen` machine of the testbed (§3.3): a dual
//! AMD Athlon MP with a Syskonnect SK-98xx fiber NIC. Its achievable rate
//! is limited by two things: the wire (1 Gbit/s plus per-frame overhead)
//! and a per-packet transmit cost covering the kernel/driver path — which
//! is what keeps real pktgen slightly below line speed (938 Mbit/s with
//! 1500-byte frames on the Syskonnect, §4.1.3) and is also why small
//! packets cannot saturate the link.

use crate::procfs::{PktgenConfig, SizeSource};
use pcs_des::{Pcg32, SimDuration, SimTime};
use pcs_wire::{ethernet, SimPacket};

/// Transmit-side limits of the generating machine + NIC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxModel {
    /// Link rate in bits per second.
    pub link_bps: u64,
    /// Fixed per-packet transmit cost (kernel + driver + DMA setup).
    pub per_packet_ns: u64,
}

impl TxModel {
    /// The Syskonnect SK-98xx on `gen`: reaches ~938 Mbit/s with
    /// 1500-byte frames.
    pub fn syskonnect() -> TxModel {
        TxModel {
            link_bps: 1_000_000_000,
            per_packet_ns: 600,
        }
    }

    /// A Netgear GA-series card: ~930 Mbit/s at 1500 bytes (§4.1.3).
    pub fn netgear() -> TxModel {
        TxModel {
            link_bps: 1_000_000_000,
            per_packet_ns: 711,
        }
    }

    /// The Intel 82544 cards: ~890 Mbit/s at 1500 bytes (§4.1.3).
    pub fn intel() -> TxModel {
        TxModel {
            link_bps: 1_000_000_000,
            per_packet_ns: 1291,
        }
    }

    /// Time the NIC needs to put a frame of `frame_len` bytes on the wire
    /// (including preamble/CRC/IFG overhead).
    pub fn wire_time(&self, frame_len: u32) -> SimDuration {
        let wire_bytes = ethernet::wire_bytes(frame_len as usize) as u64;
        SimDuration::for_bits(wire_bytes * 8, self.link_bps)
    }

    /// Minimum spacing between consecutive frames of the given size: the
    /// wire time plus the per-packet software/DMA cost (not overlapped —
    /// which is what keeps pktgen at 938 rather than 984 Mbit/s with
    /// 1500-byte frames).
    pub fn min_gap(&self, frame_len: u32) -> SimDuration {
        self.wire_time(frame_len) + SimDuration::from_nanos(self.per_packet_ns)
    }

    /// The achievable *frame* data rate in Mbit/s for fixed-size frames
    /// (frame bytes per second × 8, the way the thesis quotes rates).
    pub fn max_rate_mbps(&self, frame_len: u32) -> f64 {
        let gap = self.min_gap(frame_len).as_secs_f64();
        (frame_len as f64 * 8.0) / gap / 1e6
    }
}

/// One generated packet with its transmit timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedPacket {
    /// Time the last bit leaves the generator.
    pub time: SimTime,
    /// The packet.
    pub packet: SimPacket,
}

/// Statistics of a finished generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenStats {
    /// Packets emitted.
    pub packets: u64,
    /// Total frame bytes emitted.
    pub bytes: u64,
    /// Timestamp of the last packet.
    pub elapsed: SimDuration,
    /// Achieved frame data rate in Mbit/s.
    pub rate_mbps: f64,
}

/// The packet generator.
pub struct Generator {
    config: PktgenConfig,
    tx: TxModel,
    rng: Pcg32,
    /// Target gap enforced by rate pacing (None = as fast as possible).
    target_gap: Option<f64>,
    /// Mean packet-train length for bursty pacing (1 = evenly spaced).
    mean_burst: u32,
    /// Packets left in the current back-to-back train.
    burst_left: u32,
    /// The ideal (paced) cumulative schedule in nanoseconds.
    ideal_ns: f64,
    seq: u64,
    now: SimTime,
    bytes: u64,
}

impl Generator {
    /// Create a generator. `seed` fully determines the packet stream
    /// (§3.2 "Reproducibility").
    pub fn new(config: PktgenConfig, tx: TxModel, seed: u64) -> Generator {
        Generator {
            config,
            tx,
            rng: Pcg32::new(seed, 0x9e37),
            target_gap: None,
            mean_burst: 1,
            burst_left: 0,
            ideal_ns: 0.0,
            seq: 0,
            now: SimTime::ZERO,
            bytes: 0,
        }
    }

    /// Emit packets in back-to-back trains of (geometrically distributed)
    /// mean length `mean_burst`, idling between trains so the long-run
    /// rate still matches the target. Models the burstiness of real
    /// traffic that the thesis' §2.5 discussion demands of any workload —
    /// "for every imaginable buffer size there will be a long enough
    /// burst … to completely consume the available buffer space".
    pub fn set_burstiness(&mut self, mean_burst: u32) {
        self.mean_burst = mean_burst.max(1);
    }

    /// Pace the generator to approximate `rate_mbps` of frame data
    /// (the thesis sweeps 50–950 Mbit/s). The per-packet gap is derived
    /// from the mean packet size of the distribution.
    pub fn set_target_rate(&mut self, rate_mbps: f64, mean_frame_len: f64) {
        assert!(rate_mbps > 0.0, "rate must be positive");
        // seconds per packet = bits per packet / bits per second
        self.target_gap = Some(mean_frame_len * 8.0 / (rate_mbps * 1e6));
    }

    /// Remove rate pacing (generate at the NIC's maximum).
    pub fn set_full_speed(&mut self) {
        self.target_gap = None;
    }

    /// The generator's configuration.
    pub fn config(&self) -> &PktgenConfig {
        &self.config
    }

    fn next_size(&mut self) -> u32 {
        match &self.config.size {
            SizeSource::Fixed(n) => *n,
            SizeSource::Distribution(d) => {
                // The distribution speaks IP total lengths; frames carry a
                // 14-byte Ethernet header on top, and at least the
                // 42 bytes of headers.
                let ip_len = d.sample(&mut self.rng);
                (ip_len + ethernet::HEADER_LEN as u32).max(42)
            }
        }
    }

    /// Generate the next packet, or `None` once `count` is reached.
    pub fn next_packet(&mut self) -> Option<TimedPacket> {
        if self.seq >= self.config.count {
            return None;
        }
        let size = self.next_size();
        // Spacing: the NIC's physical minimum, any configured delay, and
        // rate pacing, whichever is largest.
        let mut gap = self.tx.min_gap(size);
        if self.config.delay_ns > 0 {
            let d = SimDuration::from_nanos(self.config.delay_ns);
            if d > gap {
                gap = d;
            }
        }
        if let Some(target) = self.target_gap {
            // Ideal cumulative schedule: one packet every `target`
            // seconds. Packets never launch before their train's ideal
            // slot, but a wire-limited stream is allowed to fall behind
            // and catch up later (token-bucket semantics), so the long-run
            // rate matches the target whenever the wire permits it.
            self.ideal_ns += target * 1e9;
            let start_of_train = if self.mean_burst <= 1 {
                true
            } else if self.burst_left > 0 {
                self.burst_left -= 1;
                false
            } else {
                // Geometric train length with the configured mean.
                let p = 1.0 / self.mean_burst as f64;
                let u = self.rng.gen_f64().max(1e-12);
                let train = (u.ln() / (1.0 - p).max(1e-12).ln()).ceil() as u32;
                self.burst_left = train.clamp(1, 16 * self.mean_burst) - 1;
                true
            };
            let earliest = self.now + gap;
            if start_of_train && self.ideal_ns > earliest.as_nanos() as f64 {
                self.now = SimTime::from_nanos(self.ideal_ns as u64);
            } else {
                self.now = earliest;
            }
        } else {
            self.now += gap;
        }

        let src_mac = self
            .config
            .src_mac
            .offset(self.seq % self.config.src_mac_count.max(1));
        let packet = SimPacket::build_udp(
            self.seq,
            self.now.as_nanos(),
            size,
            src_mac,
            self.config.dst_mac,
            self.config.src_ip,
            self.config.dst_ip,
            self.config.udp_src_port,
            self.config.udp_dst_port,
        );
        self.seq += 1;
        self.bytes += size as u64;
        Some(TimedPacket {
            time: self.now,
            packet,
        })
    }

    /// Run to completion, returning the stats (and discarding packets —
    /// use [`Generator::next_packet`] to consume them).
    pub fn run_stats(mut self) -> GenStats {
        while self.next_packet().is_some() {}
        self.stats()
    }

    /// Statistics so far.
    pub fn stats(&self) -> GenStats {
        let elapsed = self.now.since(SimTime::ZERO);
        let secs = elapsed.as_secs_f64();
        GenStats {
            packets: self.seq,
            bytes: self.bytes,
            elapsed,
            rate_mbps: if secs > 0.0 {
                self.bytes as f64 * 8.0 / secs / 1e6
            } else {
                0.0
            },
        }
    }
}

impl Iterator for Generator {
    type Item = TimedPacket;

    fn next(&mut self) -> Option<TimedPacket> {
        self.next_packet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{DistConfig, TwoStageDist};
    use crate::procfs::PktgenControl;

    fn small_config(count: u64) -> PktgenConfig {
        PktgenConfig {
            count,
            ..PktgenConfig::default()
        }
    }

    #[test]
    fn fixed_size_full_speed_hits_thesis_rates() {
        // §4.1.3: ~938 Mbit/s Syskonnect, ~930 Netgear, ~890 Intel with
        // 1500-byte packets.
        for (tx, lo, hi) in [
            (TxModel::syskonnect(), 933.0, 943.0),
            (TxModel::netgear(), 925.0, 935.0),
            (TxModel::intel(), 885.0, 895.0),
        ] {
            let rate = tx.max_rate_mbps(1500);
            assert!((lo..hi).contains(&rate), "rate {rate} outside [{lo},{hi})");
        }
    }

    #[test]
    fn small_packets_cannot_reach_line_speed() {
        let tx = TxModel::syskonnect();
        let rate = tx.max_rate_mbps(64);
        assert!(
            rate < 600.0,
            "64-byte frames should be per-packet limited, got {rate}"
        );
    }

    #[test]
    fn generates_exactly_count_packets() {
        let mut g = Generator::new(small_config(1000), TxModel::syskonnect(), 1);
        let mut n = 0;
        while g.next_packet().is_some() {
            n += 1;
        }
        assert_eq!(n, 1000);
        assert_eq!(g.stats().packets, 1000);
    }

    #[test]
    fn timestamps_strictly_increase() {
        let g = Generator::new(small_config(2000), TxModel::syskonnect(), 7);
        let mut last = SimTime::ZERO;
        for tp in g {
            assert!(tp.time > last);
            last = tp.time;
        }
    }

    #[test]
    fn identical_seeds_identical_streams() {
        let mk = || {
            let mut c = PktgenControl::new();
            for cmd in PktgenControl::render_dist_commands(
                &TwoStageDist::from_counts(
                    vec![(40u32, 500u64), (1500, 300), (600, 200)],
                    &DistConfig::default(),
                )
                .unwrap(),
                1000,
            ) {
                c.pgset(&cmd).unwrap();
            }
            c.pgset("count 500").unwrap();
            Generator::new(c.config, TxModel::syskonnect(), 99)
        };
        let a: Vec<_> = mk().collect();
        let b: Vec<_> = mk().collect();
        assert_eq!(a, b);
        // Different seed differs.
        let mut c = mk();
        c.rng = Pcg32::new(100, 0x9e37);
        let d: Vec<_> = c.collect();
        assert_ne!(a, d);
    }

    #[test]
    fn rate_pacing_approximates_target() {
        let mut g = Generator::new(small_config(50_000), TxModel::syskonnect(), 3);
        g.set_target_rate(200.0, 1500.0);
        let stats = g.run_stats();
        assert!(
            (stats.rate_mbps - 200.0).abs() < 10.0,
            "achieved {} Mbit/s",
            stats.rate_mbps
        );
    }

    #[test]
    fn source_macs_cycle() {
        let g = Generator::new(small_config(9), TxModel::syskonnect(), 5);
        let macs: Vec<_> = g
            .map(|tp| {
                pcs_wire::EthernetFrame::parse(tp.packet.stored_bytes())
                    .unwrap()
                    .src()
            })
            .collect();
        assert_eq!(macs[0], pcs_wire::MacAddr::ZERO);
        assert_eq!(macs[1], pcs_wire::MacAddr::ZERO.offset(1));
        assert_eq!(macs[2], pcs_wire::MacAddr::ZERO.offset(2));
        assert_eq!(macs[3], pcs_wire::MacAddr::ZERO);
        assert_eq!(macs[8], pcs_wire::MacAddr::ZERO.offset(2));
    }

    #[test]
    fn distribution_sizes_include_ethernet_header() {
        let mut c = PktgenControl::new();
        c.pgset("dist 1000 20 1500 1 1").unwrap();
        c.pgset("outl 1500 900").unwrap();
        c.pgset("hist 100 100").unwrap();
        c.pgset("flag PKTSIZE_REAL").unwrap();
        c.pgset("count 100").unwrap();
        let g = Generator::new(c.config, TxModel::syskonnect(), 11);
        for tp in g {
            // IP length 1500 -> frame 1514; bins around 100 -> ~114-134.
            assert!(tp.packet.frame_len == 1514 || tp.packet.frame_len < 200);
        }
    }

    #[test]
    fn configured_delay_slows_generation() {
        let mut cfg = small_config(1000);
        cfg.delay_ns = 1_000_000; // 1 ms per packet
        let g = Generator::new(cfg, TxModel::syskonnect(), 2);
        let stats = {
            let mut g = g;
            while g.next_packet().is_some() {}
            g.stats()
        };
        assert!(stats.elapsed >= SimDuration::from_millis(999));
    }
}
