//! The `createDist` tool pipeline (thesis Appendix A.1): conversions
//! between packet-size representations.
//!
//! `createDist` accepts *sizes* (a raw list), *dist* (size–count lines),
//! *trace* (a pcap file) or *live* input and produces *sizes*, *dist* or
//! *procfs* (pgset command) output. This module is the library behind the
//! `createdist` example binary; the capture-application role of the
//! original tool lives in `pcs-capture`.

use crate::dist::{DistConfig, DistError, TwoStageDist};
use crate::procfs::PktgenControl;
use pcs_des::Pcg32;
use pcs_pcapfile::{PcapError, SizeHistogram};

/// Input representations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// Whitespace-separated packet sizes.
    Sizes,
    /// `<size> <count>` lines.
    Dist,
    /// A pcap savefile.
    Trace,
}

/// Output representations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// Whitespace-separated packet sizes drawn from the distribution.
    Sizes {
        /// How many sizes to draw (default 10 000 000 in the original).
        count: u64,
        /// RNG seed.
        seed: u64,
    },
    /// `<size> <count>` lines.
    Dist,
    /// pgset commands for the enhanced kernel packet generator,
    /// optionally wrapped in `pgset "..."` (the `-s` flag).
    Procfs {
        /// Wrap each line in `pgset "…"`.
        surround_pgset: bool,
    },
}

/// Conversion failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CreateDistError {
    /// Malformed textual input.
    Parse(String),
    /// Malformed pcap input.
    Pcap(PcapError),
    /// Distribution construction failed.
    Dist(DistError),
}

impl core::fmt::Display for CreateDistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CreateDistError::Parse(s) => write!(f, "parse error: {s}"),
            CreateDistError::Pcap(e) => write!(f, "pcap error: {e}"),
            CreateDistError::Dist(e) => write!(f, "distribution error: {e}"),
        }
    }
}

impl std::error::Error for CreateDistError {}

impl From<PcapError> for CreateDistError {
    fn from(e: PcapError) -> Self {
        CreateDistError::Pcap(e)
    }
}

impl From<DistError> for CreateDistError {
    fn from(e: DistError) -> Self {
        CreateDistError::Dist(e)
    }
}

/// Read any textual/binary input into a size histogram.
pub fn read_input(
    kind: InputKind,
    data: &[u8],
    field_sep: char,
) -> Result<SizeHistogram, CreateDistError> {
    match kind {
        InputKind::Sizes => {
            let text =
                std::str::from_utf8(data).map_err(|e| CreateDistError::Parse(e.to_string()))?;
            let mut h = SizeHistogram::new();
            for tok in text.split_whitespace() {
                let size: u32 = tok
                    .parse()
                    .map_err(|_| CreateDistError::Parse(format!("bad size '{tok}'")))?;
                h.add(size);
            }
            Ok(h)
        }
        InputKind::Dist => {
            let text =
                std::str::from_utf8(data).map_err(|e| CreateDistError::Parse(e.to_string()))?;
            SizeHistogram::from_dist_format(text, field_sep).map_err(CreateDistError::Parse)
        }
        InputKind::Trace => Ok(SizeHistogram::from_pcap(data)?),
    }
}

/// Render a histogram in the requested output representation.
pub fn write_output(
    hist: &SizeHistogram,
    kind: OutputKind,
    cfg: &DistConfig,
    field_sep: char,
) -> Result<String, CreateDistError> {
    match kind {
        OutputKind::Dist => Ok(hist.to_dist_format(field_sep)),
        OutputKind::Procfs { surround_pgset } => {
            let dist = TwoStageDist::from_counts(hist.iter(), cfg)?;
            let cmds = PktgenControl::render_dist_commands(&dist, cfg.precision);
            let mut out = String::new();
            for c in cmds {
                if surround_pgset {
                    out.push_str(&format!("pgset \"{c}\"\n"));
                } else {
                    out.push_str(&c);
                    out.push('\n');
                }
            }
            Ok(out)
        }
        OutputKind::Sizes { count, seed } => {
            let dist = TwoStageDist::from_counts(hist.iter(), cfg)?;
            let mut rng = Pcg32::new(seed, 0xd15f);
            let mut out = String::new();
            for i in 0..count {
                out.push_str(&dist.sample(&mut rng).to_string());
                out.push(if (i + 1) % 16 == 0 { '\n' } else { ' ' });
            }
            if !out.ends_with('\n') {
                out.push('\n');
            }
            Ok(out)
        }
    }
}

/// The full pipeline: parse input, convert, render output.
pub fn convert(
    input_kind: InputKind,
    data: &[u8],
    output_kind: OutputKind,
    cfg: &DistConfig,
    field_sep: char,
) -> Result<String, CreateDistError> {
    let hist = read_input(input_kind, data, field_sep)?;
    write_output(&hist, output_kind, cfg, field_sep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_to_dist() {
        let out = convert(
            InputKind::Sizes,
            b"40 40 40 1500 1500 576",
            OutputKind::Dist,
            &DistConfig::default(),
            ' ',
        )
        .unwrap();
        assert_eq!(out, "40 3\n576 1\n1500 2\n");
    }

    #[test]
    fn dist_to_procfs() {
        let out = convert(
            InputKind::Dist,
            b"40 600\n1500 400\n",
            OutputKind::Procfs {
                surround_pgset: false,
            },
            &DistConfig::default(),
            ' ',
        )
        .unwrap();
        assert!(out.starts_with("dist 1000 20 1500"));
        assert!(out.contains("outl 40 600"));
        assert!(out.contains("outl 1500 400"));
        assert!(out.ends_with("flag PKTSIZE_REAL\n"));
        // The emitted commands must be accepted by the control interface.
        let mut c = PktgenControl::new();
        for line in out.lines() {
            c.pgset(line).unwrap();
        }
        assert!(c.pktsize_real());
    }

    #[test]
    fn surround_pgset_wraps_lines() {
        let out = convert(
            InputKind::Dist,
            b"40 1000\n",
            OutputKind::Procfs {
                surround_pgset: true,
            },
            &DistConfig::default(),
            ' ',
        )
        .unwrap();
        for line in out.lines() {
            assert!(
                line.starts_with("pgset \"") && line.ends_with('"'),
                "{line}"
            );
        }
    }

    #[test]
    fn dist_to_sizes_and_back() {
        let out = convert(
            InputKind::Dist,
            b"40 700\n1500 300\n",
            OutputKind::Sizes {
                count: 10_000,
                seed: 42,
            },
            &DistConfig::default(),
            ' ',
        )
        .unwrap();
        // Feed the sizes back in and check the distribution survives.
        let h = read_input(InputKind::Sizes, out.as_bytes(), ' ').unwrap();
        assert_eq!(h.total(), 10_000);
        let f40 = h.count(40) as f64 / 10_000.0;
        assert!((f40 - 0.7).abs() < 0.03, "f40 {f40}");
    }

    #[test]
    fn trace_input() {
        use pcs_pcapfile::PcapWriter;
        use pcs_wire::{MacAddr, SimPacket};
        use std::net::Ipv4Addr;
        let mut w = PcapWriter::new(Vec::new(), 65535).unwrap();
        for len in [60u32, 60, 1514] {
            let p = SimPacket::build_udp(
                0,
                0,
                len,
                MacAddr::ZERO,
                MacAddr::BROADCAST,
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                9,
                9,
            );
            w.write_packet(0, len, &p.materialize(len)).unwrap();
        }
        let file = w.finish().unwrap();
        let h = read_input(InputKind::Trace, &file, ' ').unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(46), 2); // IP total length
    }

    #[test]
    fn errors_reported() {
        assert!(convert(
            InputKind::Sizes,
            b"40 nonsense",
            OutputKind::Dist,
            &DistConfig::default(),
            ' '
        )
        .is_err());
        assert!(read_input(InputKind::Trace, b"not a pcap", ' ').is_err());
        assert!(matches!(
            convert(
                InputKind::Sizes,
                b"",
                OutputKind::Procfs {
                    surround_pgset: false
                },
                &DistConfig::default(),
                ' '
            ),
            Err(CreateDistError::Dist(DistError::Empty))
        ));
    }
}
