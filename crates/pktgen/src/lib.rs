//! # pcs-pktgen — the enhanced Linux Kernel Packet Generator
//!
//! The thesis' central engineering contribution (Chapter 4, Appendix A):
//! a workload generator that emits UDP packets whose sizes follow an
//! empirical distribution, fast enough to saturate Gigabit Ethernet, and
//! fully reproducible from a seed.
//!
//! * [`dist`] — the two-stage (outliers + bins) distribution
//!   representation and the construction math of §4.2;
//! * [`mwn`] — a synthetic stand-in for the proprietary 24 h MWN trace
//!   with the statistical properties the thesis reports;
//! * [`procfs`] — the `pgset` command interface including the new `dist`,
//!   `outl`, `hist` commands and the `DIST_READY`/`PKTSIZE_REAL` flags;
//! * [`generator`] — the paced packet source with the transmit-rate
//!   limits of the testbed's NICs;
//! * [`createdist`] — the `createDist` conversion pipeline between
//!   sizes/dist/trace/procfs representations;
//! * [`source`] — the chunked [`PacketSource`] streaming interface the
//!   testbed's splitter broadcasts to its sniffers, and the shared
//!   [`PacketRef`] packet references of the clone-free injection path;
//! * [`streamcache`] — the process-global, content-addressed
//!   [`StreamCache`] that generates each distinct stream at most once
//!   and shares its chunks across measurement cells.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod createdist;
pub mod dist;
pub mod fingerprint;
pub mod generator;
pub mod mwn;
pub mod procfs;
pub mod replay;
pub mod source;
pub mod streamcache;

pub use createdist::{convert, InputKind, OutputKind};
pub use dist::{DistConfig, DistError, TwoStageDist};
pub use generator::{GenStats, Generator, TimedPacket, TxModel};
pub use mwn::{mwn_counts, mwn_mean};
pub use procfs::{CmdError, PktgenConfig, PktgenControl, SizeSource};
pub use replay::{replay_pcap, replay_rate_mbps, TraceReplay};
pub use source::{
    Chunk, ChunkedGenerator, MaterializedSource, PacketRef, PacketSource, SourcePackets,
    SourceRefs, DEFAULT_CHUNK_PACKETS,
};
pub use streamcache::{
    chunk_bytes, PublishingSource, StreamCache, StreamKey, StreamPublisher, StreamRole,
    StreamSubscriber, DEFAULT_STREAM_CACHE_BYTES,
};
