//! Trace replay — the TCPivo / tcpreplay approach the thesis evaluates
//! and rejects in §4.1.1.
//!
//! Replaying a captured trace gives perfect *realness* and
//! *reproducibility*, but the thesis measures such tools topping out
//! around 480 Mbit/s — a per-packet software cost far above the kernel
//! generator's. [`TraceReplay`] reproduces both the capability and the
//! limitation: it replays pcap records with original (optionally rescaled)
//! timing, floor-limited by a replay-tool transmit model whose per-packet
//! cost is calibrated to that ~480 Mbit/s ceiling.

use crate::generator::{TimedPacket, TxModel};
use pcs_des::SimTime;
use pcs_pcapfile::Record;
use pcs_wire::SimPacket;

/// The transmit model of a user-space replay tool (gettimeofday + write
/// per packet): ~2.5 µs of software per packet on the 2005 `gen` machine,
/// which caps 1500-byte replay at roughly the 480 Mbit/s the thesis
/// reports (Lange 2004, cited by the thesis).
pub fn replay_tool_tx() -> TxModel {
    TxModel {
        link_bps: 1_000_000_000,
        per_packet_ns: 12_600,
    }
}

/// Replays pcap records as a timed packet source.
pub struct TraceReplay {
    records: std::vec::IntoIter<Record>,
    /// Multiply inter-packet gaps by this (1.0 = original timing;
    /// smaller = faster).
    time_scale: f64,
    tx: TxModel,
    base_ts: Option<u64>,
    now: SimTime,
    seq: u64,
}

impl TraceReplay {
    /// Replay `records` at original timing through the replay tool's
    /// transmit model.
    pub fn new(records: Vec<Record>) -> TraceReplay {
        TraceReplay {
            records: records.into_iter(),
            time_scale: 1.0,
            tx: replay_tool_tx(),
            base_ts: None,
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    /// Rescale the trace's inter-packet timing (0.5 = twice as fast).
    /// The replay tool's own per-packet cost still applies, which is what
    /// bounds the achievable rate no matter how far the trace is sped up.
    pub fn with_time_scale(mut self, scale: f64) -> TraceReplay {
        assert!(scale >= 0.0 && scale.is_finite(), "bad time scale");
        self.time_scale = scale;
        self
    }

    /// Replace the transmit model (e.g. kernel-level replay).
    pub fn with_tx(mut self, tx: TxModel) -> TraceReplay {
        self.tx = tx;
        self
    }
}

impl Iterator for TraceReplay {
    type Item = TimedPacket;

    fn next(&mut self) -> Option<TimedPacket> {
        let rec = self.records.next()?;
        let base = *self.base_ts.get_or_insert(rec.ts_ns);
        let trace_offset = rec.ts_ns.saturating_sub(base) as f64 * self.time_scale;
        let scheduled = SimTime::from_nanos(trace_offset as u64);
        // The tool cannot send faster than its per-packet cost + the wire.
        let frame_len = rec.orig_len.max(60);
        let earliest = self.now + self.tx.min_gap(frame_len);
        self.now = if scheduled > earliest {
            scheduled
        } else {
            earliest
        };

        let packet = SimPacket::from_bytes(self.seq, self.now.as_nanos(), frame_len, &rec.data);
        self.seq += 1;
        Some(TimedPacket {
            time: self.now,
            packet,
        })
    }
}

/// Convenience: the achieved replay rate of a whole trace in Mbit/s.
pub fn replay_rate_mbps(packets: &[TimedPacket]) -> f64 {
    if packets.len() < 2 {
        return 0.0;
    }
    let bytes: u64 = packets.iter().map(|p| p.packet.frame_len as u64).sum();
    let dur = packets
        .last()
        .expect("non-empty")
        .time
        .since(packets[0].time);
    let secs = dur.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / secs / 1e6
}

/// A convenience wrapper: replay a pcap byte buffer.
pub fn replay_pcap(data: &[u8]) -> Result<TraceReplay, pcs_pcapfile::PcapError> {
    let records = pcs_pcapfile::PcapReader::new(data)?.records()?;
    Ok(TraceReplay::new(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_pcapfile::PcapWriter;
    use pcs_wire::MacAddr;
    use std::net::Ipv4Addr;

    fn trace(n: u64, gap_ns: u64, frame_len: u32) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new(), 65_535).unwrap();
        for i in 0..n {
            let p = SimPacket::build_udp(
                i,
                i * gap_ns,
                frame_len,
                MacAddr::ZERO,
                MacAddr::BROADCAST,
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                9,
                9,
            );
            w.write_packet(i * gap_ns, frame_len, &p.materialize(frame_len))
                .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn replays_with_original_timing() {
        // 1 ms gaps: far slower than the tool limit, so timing is honored.
        let file = trace(10, 1_000_000, 200);
        let pkts: Vec<_> = replay_pcap(&file).unwrap().collect();
        assert_eq!(pkts.len(), 10);
        // The very first send carries the tool's startup cost, which
        // shifts the first gap slightly; the steady-state gaps honour the
        // trace timing.
        for w in pkts[1..].windows(2) {
            let gap = w[1].time.since(w[0].time).as_nanos();
            assert!(
                (999_000..=1_001_000).contains(&gap),
                "gap {gap} should be ~1ms"
            );
        }
        // Packet bytes survive the round trip.
        assert_eq!(pkts[3].packet.frame_len, 200);
        assert!(pkts[3].packet.ipv4().is_some());
    }

    #[test]
    fn tool_cost_caps_the_rate_near_the_thesis_number() {
        // A trace recorded back-to-back at line speed cannot be replayed
        // at line speed: §4.1.1 reports ~480 Mbit/s with 1500-byte
        // packets.
        let file = trace(2_000, 1_000, 1500); // 1 µs gaps in the trace
        let pkts: Vec<_> = replay_pcap(&file).unwrap().collect();
        let rate = replay_rate_mbps(&pkts);
        assert!(
            (430.0..520.0).contains(&rate),
            "replay rate {rate} outside the thesis band"
        );
    }

    #[test]
    fn time_scale_accelerates_until_the_tool_limit() {
        let file = trace(500, 1_000_000, 1500);
        let original: Vec<_> = replay_pcap(&file).unwrap().collect();
        let spedup: Vec<_> = replay_pcap(&file).unwrap().with_time_scale(0.001).collect();
        assert!(replay_rate_mbps(&spedup) > replay_rate_mbps(&original) * 10.0);
        // But never past the tool limit.
        assert!(replay_rate_mbps(&spedup) < 520.0);
    }

    #[test]
    fn kernel_tx_lifts_the_ceiling() {
        let file = trace(2_000, 1_000, 1500);
        let pkts: Vec<_> = replay_pcap(&file)
            .unwrap()
            .with_tx(TxModel::syskonnect())
            .collect();
        let rate = replay_rate_mbps(&pkts);
        assert!(rate > 900.0, "kernel-level replay reaches {rate}");
    }

    #[test]
    fn empty_and_single_packet_traces() {
        let file = trace(0, 0, 100);
        assert_eq!(replay_pcap(&file).unwrap().count(), 0);
        let file = trace(1, 0, 100);
        let pkts: Vec<_> = replay_pcap(&file).unwrap().collect();
        assert_eq!(pkts.len(), 1);
        assert_eq!(replay_rate_mbps(&pkts), 0.0);
    }
}
