//! [`Fingerprintable`] implementations for the generator-side
//! configuration types, used by the testbed's run cache to key cells
//! field by field instead of through `Debug` renderings.

use crate::dist::TwoStageDist;
use crate::generator::TxModel;
use crate::procfs::{PktgenConfig, SizeSource};
use pcs_des::{Fingerprint, Fingerprintable};

impl Fingerprintable for TxModel {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.u64(self.link_bps);
        fp.u64(self.per_packet_ns);
    }
}

impl Fingerprintable for TwoStageDist {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.f64(self.outlier_fraction());
        fp.u32(self.binsize());
        fp.u32(self.max_size());
        fp.seq(&self.outlier_entries());
        fp.seq(&self.bin_entries());
    }
}

impl Fingerprintable for SizeSource {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        match self {
            SizeSource::Fixed(size) => {
                fp.tag(0);
                fp.u32(*size);
            }
            SizeSource::Distribution(dist) => {
                fp.tag(1);
                dist.fingerprint(fp);
            }
        }
    }
}

impl Fingerprintable for PktgenConfig {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.u64(self.count);
        fp.u64(self.delay_ns);
        self.size.fingerprint(fp);
        fp.raw(&self.src_ip.octets());
        fp.raw(&self.dst_ip.octets());
        fp.raw(&self.src_mac.0);
        fp.raw(&self.dst_mac.0);
        fp.u64(self.src_mac_count);
        fp.u16(self.udp_src_port);
        fp.u16(self.udp_dst_port);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mwn::mwn_counts;
    use crate::DistConfig;

    fn key<T: Fingerprintable>(v: &T) -> (u64, u64) {
        let mut fp = Fingerprint::new();
        v.fingerprint(&mut fp);
        fp.finish()
    }

    #[test]
    fn size_sources_do_not_alias() {
        let counts = mwn_counts(1_000_000);
        let dist =
            TwoStageDist::from_counts(counts.iter().map(|(&s, &c)| (s, c)), &DistConfig::default())
                .unwrap();
        let fixed = SizeSource::Fixed(64);
        let from_dist = SizeSource::Distribution(dist.clone());
        assert_ne!(key(&fixed), key(&from_dist));
        assert_eq!(key(&from_dist), key(&SizeSource::Distribution(dist)));
    }

    #[test]
    fn config_fields_all_participate() {
        let base = PktgenConfig::default();
        let variants = [
            PktgenConfig {
                count: base.count + 1,
                ..base.clone()
            },
            PktgenConfig {
                delay_ns: base.delay_ns + 1,
                ..base.clone()
            },
            PktgenConfig {
                src_mac_count: base.src_mac_count + 1,
                ..base.clone()
            },
            PktgenConfig {
                udp_dst_port: base.udp_dst_port.wrapping_add(1),
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(key(&base), key(v));
        }
    }

    #[test]
    fn tx_models_are_distinct() {
        assert_ne!(key(&TxModel::syskonnect()), key(&TxModel::netgear()));
        assert_ne!(key(&TxModel::syskonnect()), key(&TxModel::intel()));
    }
}
