//! Chunked packet sources: the streaming interface between the generator
//! and its consumers.
//!
//! The testbed feeds one generated stream through a passive optical
//! splitter to all sniffers *simultaneously* (thesis §3.1) — nothing in
//! that path ever holds the whole run in memory. [`PacketSource`] is the
//! software equivalent: a pull-based stream of fixed-size chunks
//! (`Arc<[TimedPacket]>`), cheap to clone per consumer, small enough
//! (~4k packets) that a generator thread and several machine simulations
//! overlap instead of serializing behind a fully materialized
//! `Vec<TimedPacket>`. MoonGen-style software pipelines win exactly this
//! way: small batched buffers between producer and consumers.

use crate::generator::{Generator, TimedPacket};
use std::sync::Arc;

/// One immutable chunk of consecutively generated packets. `Arc`-shared:
/// broadcasting a chunk to N consumers copies a pointer, not packets.
pub type Chunk = Arc<[TimedPacket]>;

/// Default packets per chunk. Large enough to amortize queue handoffs,
/// small enough that a chunk of worst-case frames stays comfortably in
/// cache and pipeline memory stays bounded.
pub const DEFAULT_CHUNK_PACKETS: usize = 4096;

/// A pull-based source of packet chunks.
///
/// Implementors yield consecutive, time-ordered chunks until the stream
/// ends. Chunks may be of any non-zero size (the last chunk is usually
/// short); consumers must not assume a fixed size.
pub trait PacketSource {
    /// The next chunk, or `None` once the stream is exhausted.
    fn next_chunk(&mut self) -> Option<Chunk>;
}

/// A [`Generator`] cut into fixed-size chunks.
///
/// ```
/// use pcs_pktgen::{ChunkedGenerator, Generator, PacketSource, PktgenConfig, TxModel};
///
/// let gen = Generator::new(
///     PktgenConfig { count: 10_000, ..PktgenConfig::default() },
///     TxModel::syskonnect(),
///     42,
/// );
/// let mut source = ChunkedGenerator::new(gen, 4096);
/// let mut total = 0;
/// while let Some(chunk) = source.next_chunk() {
///     assert!(chunk.len() <= 4096);
///     total += chunk.len();
/// }
/// assert_eq!(total, 10_000);
/// ```
pub struct ChunkedGenerator {
    gen: Generator,
    chunk_packets: usize,
}

impl ChunkedGenerator {
    /// Chunk `gen`'s stream into at most `chunk_packets` packets each
    /// (clamped to ≥ 1).
    pub fn new(gen: Generator, chunk_packets: usize) -> ChunkedGenerator {
        ChunkedGenerator {
            gen,
            chunk_packets: chunk_packets.max(1),
        }
    }

    /// The wrapped generator (for stats after the stream ends).
    pub fn generator(&self) -> &Generator {
        &self.gen
    }
}

impl PacketSource for ChunkedGenerator {
    fn next_chunk(&mut self) -> Option<Chunk> {
        let mut chunk = Vec::with_capacity(self.chunk_packets);
        while chunk.len() < self.chunk_packets {
            match self.gen.next_packet() {
                Some(tp) => chunk.push(tp),
                None => break,
            }
        }
        if chunk.is_empty() {
            None
        } else {
            Some(chunk.into())
        }
    }
}

/// A materialized packet list replayed as a chunk stream (the reference
/// path, and the adapter for pcap replays or test vectors).
pub struct MaterializedSource {
    packets: Arc<Vec<TimedPacket>>,
    pos: usize,
    chunk_packets: usize,
}

impl MaterializedSource {
    /// Stream `packets` in chunks of at most `chunk_packets` (clamped to
    /// ≥ 1). The underlying storage is shared, but each chunk is its own
    /// allocation (chunks must be `Arc<[TimedPacket]>`).
    pub fn new(packets: Arc<Vec<TimedPacket>>, chunk_packets: usize) -> MaterializedSource {
        MaterializedSource {
            packets,
            pos: 0,
            chunk_packets: chunk_packets.max(1),
        }
    }
}

impl PacketSource for MaterializedSource {
    fn next_chunk(&mut self) -> Option<Chunk> {
        if self.pos >= self.packets.len() {
            return None;
        }
        let end = (self.pos + self.chunk_packets).min(self.packets.len());
        let chunk: Chunk = self.packets[self.pos..end].to_vec().into();
        self.pos = end;
        Some(chunk)
    }
}

/// Flatten any [`PacketSource`] back into per-packet iteration (clones
/// each packet out of its shared chunk).
pub struct SourcePackets<S: PacketSource> {
    source: S,
    chunk: Option<Chunk>,
    idx: usize,
}

impl<S: PacketSource> SourcePackets<S> {
    /// Iterate `source` packet by packet.
    pub fn new(source: S) -> SourcePackets<S> {
        SourcePackets {
            source,
            chunk: None,
            idx: 0,
        }
    }
}

impl<S: PacketSource> Iterator for SourcePackets<S> {
    type Item = TimedPacket;

    fn next(&mut self) -> Option<TimedPacket> {
        loop {
            if let Some(chunk) = &self.chunk {
                if self.idx < chunk.len() {
                    let tp = chunk[self.idx].clone();
                    self.idx += 1;
                    return Some(tp);
                }
            }
            self.chunk = Some(self.source.next_chunk()?);
            self.idx = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TxModel;
    use crate::procfs::PktgenConfig;

    fn gen(count: u64) -> Generator {
        Generator::new(
            PktgenConfig {
                count,
                ..PktgenConfig::default()
            },
            TxModel::syskonnect(),
            7,
        )
    }

    #[test]
    fn chunked_generator_preserves_the_exact_stream() {
        let direct: Vec<TimedPacket> = gen(10_000).collect();
        for chunk_packets in [1usize, 1009, 4096, 100_000] {
            let streamed: Vec<TimedPacket> =
                SourcePackets::new(ChunkedGenerator::new(gen(10_000), chunk_packets)).collect();
            assert_eq!(direct, streamed, "chunk={chunk_packets}");
        }
    }

    #[test]
    fn chunk_sizes_are_bounded_and_cover_the_count() {
        let mut source = ChunkedGenerator::new(gen(10_000), 4096);
        let mut sizes = Vec::new();
        while let Some(c) = source.next_chunk() {
            sizes.push(c.len());
        }
        assert_eq!(sizes, vec![4096, 4096, 1808]);
    }

    #[test]
    fn empty_generator_yields_no_chunks() {
        let mut source = ChunkedGenerator::new(gen(0), 4096);
        assert!(source.next_chunk().is_none());
        assert!(source.next_chunk().is_none());
    }

    #[test]
    fn zero_chunk_size_is_clamped() {
        let mut source = ChunkedGenerator::new(gen(3), 0);
        let mut n = 0;
        while let Some(c) = source.next_chunk() {
            assert_eq!(c.len(), 1);
            n += c.len();
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn materialized_source_replays_identically() {
        let all: Arc<Vec<TimedPacket>> = Arc::new(gen(5_000).collect());
        for chunk_packets in [1usize, 1009, 4096] {
            let replayed: Vec<TimedPacket> =
                SourcePackets::new(MaterializedSource::new(Arc::clone(&all), chunk_packets))
                    .collect();
            assert_eq!(*all, replayed, "chunk={chunk_packets}");
        }
    }
}
