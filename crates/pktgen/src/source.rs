//! Chunked packet sources: the streaming interface between the generator
//! and its consumers.
//!
//! The testbed feeds one generated stream through a passive optical
//! splitter to all sniffers *simultaneously* (thesis §3.1) — nothing in
//! that path ever holds the whole run in memory. [`PacketSource`] is the
//! software equivalent: a pull-based stream of fixed-size chunks
//! (`Arc<[TimedPacket]>`), cheap to clone per consumer, small enough
//! (~4k packets) that a generator thread and several machine simulations
//! overlap instead of serializing behind a fully materialized
//! `Vec<TimedPacket>`. MoonGen-style software pipelines win exactly this
//! way: small batched buffers between producer and consumers.

use crate::generator::{Generator, TimedPacket};
use pcs_des::SimTime;
use pcs_wire::SimPacket;
use std::sync::Arc;

/// One immutable chunk of consecutively generated packets. `Arc`-shared:
/// broadcasting a chunk to N consumers copies a pointer, not packets.
pub type Chunk = Arc<[TimedPacket]>;

/// Default packets per chunk. Large enough to amortize queue handoffs,
/// small enough that a chunk of worst-case frames stays comfortably in
/// cache and pipeline memory stays bounded.
pub const DEFAULT_CHUNK_PACKETS: usize = 4096;

/// A pull-based source of packet chunks.
///
/// Implementors yield consecutive, time-ordered chunks until the stream
/// ends. Chunks may be of any non-zero size (the last chunk is usually
/// short); consumers must not assume a fixed size.
pub trait PacketSource {
    /// The next chunk, or `None` once the stream is exhausted.
    fn next_chunk(&mut self) -> Option<Chunk>;
}

/// A shared reference to one packet inside a [`Chunk`]: the zero-copy
/// currency of the pipeline's hot path.
///
/// Cloning a `PacketRef` bumps the chunk's refcount and copies an index —
/// it never copies packet bytes. The machine simulations inject arrivals
/// as `PacketRef`s, so a chunk broadcast to N sniffers is read in place
/// by all of them and freed once the last one is done with it.
#[derive(Clone)]
pub struct PacketRef {
    chunk: Chunk,
    idx: usize,
}

impl PacketRef {
    /// A reference to packet `idx` of `chunk`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds — a `PacketRef` always points at
    /// a real packet.
    pub fn new(chunk: Chunk, idx: usize) -> PacketRef {
        assert!(idx < chunk.len(), "PacketRef index out of bounds");
        PacketRef { chunk, idx }
    }

    /// The referenced timed packet.
    pub fn get(&self) -> &TimedPacket {
        &self.chunk[self.idx]
    }

    /// Transmit timestamp of the referenced packet.
    pub fn time(&self) -> SimTime {
        self.get().time
    }

    /// The referenced packet itself.
    pub fn packet(&self) -> &SimPacket {
        &self.get().packet
    }
}

impl std::ops::Deref for PacketRef {
    type Target = TimedPacket;

    fn deref(&self) -> &TimedPacket {
        self.get()
    }
}

impl std::fmt::Debug for PacketRef {
    // A derived Debug would print the whole backing chunk.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketRef")
            .field("seq", &self.get().packet.seq)
            .field("idx", &self.idx)
            .finish()
    }
}

impl PartialEq for PacketRef {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

impl Eq for PacketRef {}

/// A [`Generator`] cut into fixed-size chunks.
///
/// ```
/// use pcs_pktgen::{ChunkedGenerator, Generator, PacketSource, PktgenConfig, TxModel};
///
/// let gen = Generator::new(
///     PktgenConfig { count: 10_000, ..PktgenConfig::default() },
///     TxModel::syskonnect(),
///     42,
/// );
/// let mut source = ChunkedGenerator::new(gen, 4096);
/// let mut total = 0;
/// while let Some(chunk) = source.next_chunk() {
///     assert!(chunk.len() <= 4096);
///     total += chunk.len();
/// }
/// assert_eq!(total, 10_000);
/// ```
pub struct ChunkedGenerator {
    gen: Generator,
    chunk_packets: usize,
}

impl ChunkedGenerator {
    /// Chunk `gen`'s stream into at most `chunk_packets` packets each
    /// (clamped to ≥ 1).
    pub fn new(gen: Generator, chunk_packets: usize) -> ChunkedGenerator {
        ChunkedGenerator {
            gen,
            chunk_packets: chunk_packets.max(1),
        }
    }

    /// The wrapped generator (for stats after the stream ends).
    pub fn generator(&self) -> &Generator {
        &self.gen
    }
}

impl PacketSource for ChunkedGenerator {
    fn next_chunk(&mut self) -> Option<Chunk> {
        let mut chunk = Vec::with_capacity(self.chunk_packets);
        while chunk.len() < self.chunk_packets {
            match self.gen.next_packet() {
                Some(tp) => chunk.push(tp),
                None => break,
            }
        }
        if chunk.is_empty() {
            None
        } else {
            Some(chunk.into())
        }
    }
}

/// A materialized packet list replayed as a chunk stream (the reference
/// path, and the adapter for pcap replays or test vectors).
pub struct MaterializedSource {
    packets: Arc<Vec<TimedPacket>>,
    pos: usize,
    chunk_packets: usize,
}

impl MaterializedSource {
    /// Stream `packets` in chunks of at most `chunk_packets` (clamped to
    /// ≥ 1). The underlying storage is shared, but each chunk is its own
    /// allocation (chunks must be `Arc<[TimedPacket]>`).
    pub fn new(packets: Arc<Vec<TimedPacket>>, chunk_packets: usize) -> MaterializedSource {
        MaterializedSource {
            packets,
            pos: 0,
            chunk_packets: chunk_packets.max(1),
        }
    }
}

impl PacketSource for MaterializedSource {
    fn next_chunk(&mut self) -> Option<Chunk> {
        if self.pos >= self.packets.len() {
            return None;
        }
        let end = (self.pos + self.chunk_packets).min(self.packets.len());
        let chunk: Chunk = self.packets[self.pos..end].to_vec().into();
        self.pos = end;
        Some(chunk)
    }
}

/// Flatten any [`PacketSource`] back into per-packet iteration, cloning
/// each packet out of its shared chunk. This is the *owned* (reference)
/// flattening; the hot path uses [`SourceRefs`], which yields
/// [`PacketRef`]s without copying packet bytes.
pub struct SourcePackets<S: PacketSource> {
    source: S,
    /// Invariant between calls: `idx <= chunk.len()`, and `idx ==
    /// chunk.len()` exactly when the current chunk is exhausted. Starts
    /// on an empty sentinel chunk so the first `next` refills.
    chunk: Chunk,
    idx: usize,
}

impl<S: PacketSource> SourcePackets<S> {
    /// Iterate `source` packet by packet.
    pub fn new(source: S) -> SourcePackets<S> {
        SourcePackets {
            source,
            chunk: Arc::from(Vec::new()),
            idx: 0,
        }
    }
}

impl<S: PacketSource> Iterator for SourcePackets<S> {
    type Item = TimedPacket;

    fn next(&mut self) -> Option<TimedPacket> {
        // Chunk exhaustion is handled once per chunk: the refill loop
        // only runs when the previous chunk is fully consumed (sources
        // yield non-empty chunks, so it iterates once in practice).
        while self.idx == self.chunk.len() {
            self.chunk = self.source.next_chunk()?;
            self.idx = 0;
        }
        let tp = self.chunk[self.idx].clone();
        self.idx += 1;
        Some(tp)
    }
}

/// Flatten any [`PacketSource`] into per-packet [`PacketRef`]s — the
/// clone-free twin of [`SourcePackets`]. Each item costs one refcount
/// bump on the current chunk; packet bytes are never copied.
pub struct SourceRefs<S: PacketSource> {
    source: S,
    /// Same invariant as [`SourcePackets`]: `idx == chunk.len()` marks
    /// exhaustion, starting from an empty sentinel.
    chunk: Chunk,
    idx: usize,
}

impl<S: PacketSource> SourceRefs<S> {
    /// Iterate `source` packet by packet, by shared reference.
    pub fn new(source: S) -> SourceRefs<S> {
        SourceRefs {
            source,
            chunk: Arc::from(Vec::new()),
            idx: 0,
        }
    }
}

impl<S: PacketSource> Iterator for SourceRefs<S> {
    type Item = PacketRef;

    fn next(&mut self) -> Option<PacketRef> {
        while self.idx == self.chunk.len() {
            self.chunk = self.source.next_chunk()?;
            self.idx = 0;
        }
        let r = PacketRef {
            chunk: Arc::clone(&self.chunk),
            idx: self.idx,
        };
        self.idx += 1;
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TxModel;
    use crate::procfs::PktgenConfig;

    fn gen(count: u64) -> Generator {
        Generator::new(
            PktgenConfig {
                count,
                ..PktgenConfig::default()
            },
            TxModel::syskonnect(),
            7,
        )
    }

    #[test]
    fn chunked_generator_preserves_the_exact_stream() {
        let direct: Vec<TimedPacket> = gen(10_000).collect();
        for chunk_packets in [1usize, 1009, 4096, 100_000] {
            let streamed: Vec<TimedPacket> =
                SourcePackets::new(ChunkedGenerator::new(gen(10_000), chunk_packets)).collect();
            assert_eq!(direct, streamed, "chunk={chunk_packets}");
        }
    }

    #[test]
    fn chunk_sizes_are_bounded_and_cover_the_count() {
        let mut source = ChunkedGenerator::new(gen(10_000), 4096);
        let mut sizes = Vec::new();
        while let Some(c) = source.next_chunk() {
            sizes.push(c.len());
        }
        assert_eq!(sizes, vec![4096, 4096, 1808]);
    }

    #[test]
    fn empty_generator_yields_no_chunks() {
        let mut source = ChunkedGenerator::new(gen(0), 4096);
        assert!(source.next_chunk().is_none());
        assert!(source.next_chunk().is_none());
    }

    #[test]
    fn zero_chunk_size_is_clamped() {
        let mut source = ChunkedGenerator::new(gen(3), 0);
        let mut n = 0;
        while let Some(c) = source.next_chunk() {
            assert_eq!(c.len(), 1);
            n += c.len();
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn source_refs_match_cloned_iteration_without_copying() {
        let direct: Vec<TimedPacket> = gen(5_000).collect();
        for chunk_packets in [1usize, 1009, 4096] {
            let refs: Vec<PacketRef> =
                SourceRefs::new(ChunkedGenerator::new(gen(5_000), chunk_packets)).collect();
            assert_eq!(refs.len(), direct.len(), "chunk={chunk_packets}");
            for (r, tp) in refs.iter().zip(&direct) {
                assert_eq!(r.get(), tp, "chunk={chunk_packets}");
                assert_eq!(r.time(), tp.time);
                assert_eq!(r.packet(), &tp.packet);
            }
        }
    }

    #[test]
    fn packet_refs_share_their_chunk() {
        let mut source = ChunkedGenerator::new(gen(100), 64);
        let chunk = source.next_chunk().unwrap();
        let a = PacketRef::new(Arc::clone(&chunk), 0);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.chunk, &b.chunk), "clone must share storage");
        assert_eq!(a.packet().seq, 0);
        assert_eq!(format!("{a:?}"), "PacketRef { seq: 0, idx: 0 }");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn packet_ref_rejects_out_of_bounds_index() {
        let mut source = ChunkedGenerator::new(gen(4), 4);
        let chunk = source.next_chunk().unwrap();
        PacketRef::new(chunk, 4);
    }

    #[test]
    fn materialized_source_replays_identically() {
        let all: Arc<Vec<TimedPacket>> = Arc::new(gen(5_000).collect());
        for chunk_packets in [1usize, 1009, 4096] {
            let replayed: Vec<TimedPacket> =
                SourcePackets::new(MaterializedSource::new(Arc::clone(&all), chunk_packets))
                    .collect();
            assert_eq!(*all, replayed, "chunk={chunk_packets}");
        }
    }
}
