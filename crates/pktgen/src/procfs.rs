//! The `/proc` control interface of the (enhanced) Linux Kernel Packet
//! Generator.
//!
//! The real pktgen is configured by writing `pgset` command strings into
//! `/proc/net/pktgen/<dev>`; the thesis adds three commands — `dist`,
//! `outl` and `hist` — plus the `PKTSIZE_REAL` / `DIST_READY` flags
//! (Appendix A.2.2). This module parses the same command language into a
//! [`PktgenConfig`] and enforces the same state machine: the distribution
//! must be complete (`DIST_READY`) before `flag PKTSIZE_REAL` succeeds.

use crate::dist::{DistError, TwoStageDist};
use pcs_wire::MacAddr;
use std::net::Ipv4Addr;

/// How packet sizes are chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeSource {
    /// Every packet has the same size (`pkt_size N`), like stock pktgen.
    Fixed(u32),
    /// Sizes follow a two-stage distribution (`flag PKTSIZE_REAL`).
    Distribution(TwoStageDist),
}

/// Generator configuration, mirroring the pktgen procfs parameters used by
/// the thesis' measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct PktgenConfig {
    /// Number of packets per run (`count`). The thesis uses 10⁶.
    pub count: u64,
    /// Artificial inter-packet gap in nanoseconds (`delay`).
    pub delay_ns: u64,
    /// Packet size source.
    pub size: SizeSource,
    /// Source IP (`src_min`).
    pub src_ip: Ipv4Addr,
    /// Destination IP (`dst`).
    pub dst_ip: Ipv4Addr,
    /// Source MAC base (`src_mac`).
    pub src_mac: MacAddr,
    /// Destination MAC (`dst_mac`).
    pub dst_mac: MacAddr,
    /// Cycle the source MAC through this many addresses starting at
    /// `src_mac` (`src_mac_count`); the thesis cycles through 3.
    pub src_mac_count: u64,
    /// UDP source port.
    pub udp_src_port: u16,
    /// UDP destination port.
    pub udp_dst_port: u16,
}

impl Default for PktgenConfig {
    fn default() -> Self {
        // The addressing used for the thesis measurements (§6.3.2).
        PktgenConfig {
            count: 1_000_000,
            delay_ns: 0,
            size: SizeSource::Fixed(1500),
            src_ip: Ipv4Addr::new(192, 168, 10, 100),
            dst_ip: Ipv4Addr::new(192, 168, 10, 12),
            src_mac: MacAddr::ZERO,
            dst_mac: MacAddr::new(0x00, 0x0e, 0x0c, 0x01, 0x02, 0x03),
            src_mac_count: 3,
            udp_src_port: 9,
            udp_dst_port: 9,
        }
    }
}

/// In-flight distribution entry state (between `dist` and the final
/// `outl`/`hist` line).
#[derive(Debug, Clone, Default)]
struct PendingDist {
    precision: u32,
    binsize: u32,
    max_size: u32,
    want_outl: usize,
    want_hist: usize,
    outl: Vec<(u32, u32)>,
    hist: Vec<(u32, u32)>,
}

/// The procfs-style control endpoint: feed it `pgset` command strings.
#[derive(Debug, Clone, Default)]
pub struct PktgenControl {
    /// The accumulated configuration.
    pub config: PktgenConfig,
    pending: Option<PendingDist>,
    ready_dist: Option<TwoStageDist>,
    dist_ready: bool,
    pktsize_real: bool,
}

/// A command error, with the offending command echoed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdError {
    /// The command that failed.
    pub command: String,
    /// Why.
    pub message: String,
}

impl core::fmt::Display for CmdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pgset \"{}\": {}", self.command, self.message)
    }
}

impl std::error::Error for CmdError {}

impl From<DistError> for CmdError {
    fn from(e: DistError) -> Self {
        CmdError {
            command: String::new(),
            message: e.to_string(),
        }
    }
}

impl PktgenControl {
    /// A control endpoint with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the entered distribution is complete (the `DIST_READY`
    /// flag of the thesis' enhancement).
    pub fn dist_ready(&self) -> bool {
        self.dist_ready
    }

    /// Whether distribution-based sizing is active (`PKTSIZE_REAL`).
    pub fn pktsize_real(&self) -> bool {
        self.pktsize_real
    }

    /// Apply one `pgset` command line.
    pub fn pgset(&mut self, command: &str) -> Result<(), CmdError> {
        let err = |msg: &str| CmdError {
            command: command.to_string(),
            message: msg.to_string(),
        };
        let mut parts = command.split_whitespace();
        let verb = parts.next().ok_or_else(|| err("empty command"))?;
        let args: Vec<&str> = parts.collect();
        let num = |s: &str| -> Result<u64, CmdError> {
            s.parse().map_err(|_| err(&format!("bad number '{s}'")))
        };
        match verb {
            "count" => {
                self.config.count = num(args.first().ok_or_else(|| err("missing count"))?)?;
            }
            "delay" => {
                self.config.delay_ns = num(args.first().ok_or_else(|| err("missing delay"))?)?;
            }
            "pkt_size" => {
                let n = num(args.first().ok_or_else(|| err("missing size"))?)? as u32;
                if !(42..=1514).contains(&n) {
                    return Err(err("pkt_size out of range (42..=1514)"));
                }
                self.config.size = SizeSource::Fixed(n);
                self.pktsize_real = false;
            }
            "dst" => {
                self.config.dst_ip = args
                    .first()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad destination IP"))?;
            }
            "src_min" => {
                self.config.src_ip = args
                    .first()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad source IP"))?;
            }
            "dst_mac" => {
                self.config.dst_mac = args
                    .first()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad destination MAC"))?;
            }
            "src_mac" => {
                self.config.src_mac = args
                    .first()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad source MAC"))?;
            }
            "src_mac_count" => {
                self.config.src_mac_count =
                    num(args.first().ok_or_else(|| err("missing count"))?)?.max(1);
            }
            "udp_src_port" => {
                self.config.udp_src_port =
                    num(args.first().ok_or_else(|| err("missing port"))?)? as u16;
            }
            "udp_dst_port" => {
                self.config.udp_dst_port =
                    num(args.first().ok_or_else(|| err("missing port"))?)? as u16;
            }
            // --- the thesis' enhancement (Appendix A.2.2) ---
            "dist" => {
                if args.len() != 5 {
                    return Err(err(
                        "usage: dist <precision> <hist_width> <max_size> <num_outl> <num_hist>",
                    ));
                }
                let precision = num(args[0])? as u32;
                let binsize = num(args[1])? as u32;
                let max_size = num(args[2])? as u32;
                let want_outl = num(args[3])? as usize;
                let want_hist = num(args[4])? as usize;
                if precision == 0 || binsize == 0 || max_size == 0 {
                    return Err(err("dist parameters must be positive"));
                }
                self.pending = Some(PendingDist {
                    precision,
                    binsize,
                    max_size,
                    want_outl,
                    want_hist,
                    outl: Vec::new(),
                    hist: Vec::new(),
                });
                self.dist_ready = false;
                self.pktsize_real = false;
            }
            "outl" | "hist" => {
                if args.len() != 2 {
                    return Err(err("usage: outl|hist <size> <cells>"));
                }
                let size = num(args[0])? as u32;
                let cells = num(args[1])? as u32;
                let pending = self
                    .pending
                    .as_mut()
                    .ok_or_else(|| err("no 'dist' command in progress"))?;
                if verb == "outl" {
                    if pending.outl.len() >= pending.want_outl {
                        return Err(err("more outl lines than announced"));
                    }
                    pending.outl.push((size, cells));
                } else {
                    if pending.hist.len() >= pending.want_hist {
                        return Err(err("more hist lines than announced"));
                    }
                    pending.hist.push((size, cells));
                }
                self.check_dist_complete().map_err(|e| CmdError {
                    command: command.to_string(),
                    message: e.message,
                })?;
            }
            "flag" => match args.first().copied() {
                Some("PKTSIZE_REAL") => {
                    // Only succeeds once the distribution is complete —
                    // the DIST_READY gate of the thesis' module.
                    if !self.dist_ready {
                        return Err(err("distribution not ready (DIST_READY unset)"));
                    }
                    let d = self.ready_dist.clone().expect("ready implies built");
                    self.config.size = SizeSource::Distribution(d);
                    self.pktsize_real = true;
                }
                Some(other) => return Err(err(&format!("unknown flag '{other}'"))),
                None => return Err(err("missing flag name")),
            },
            other => return Err(err(&format!("unknown command '{other}'"))),
        }
        Ok(())
    }

    /// The thesis' `check_dist_complete()`: once the announced number of
    /// `outl` and `hist` lines has arrived, build the arrays and set
    /// DIST_READY.
    fn check_dist_complete(&mut self) -> Result<(), CmdError> {
        let done = match &self.pending {
            Some(p) => p.outl.len() == p.want_outl && p.hist.len() == p.want_hist,
            None => false,
        };
        if !done {
            return Ok(());
        }
        let p = self.pending.take().expect("checked above");
        let dist = TwoStageDist::from_entries(p.precision, p.binsize, p.max_size, &p.outl, &p.hist)
            .map_err(|e| CmdError {
                command: String::new(),
                message: e.to_string(),
            })?;
        self.ready_dist = Some(dist);
        self.dist_ready = true;
        Ok(())
    }

    /// Render a complete distribution as the pgset command sequence that
    /// reproduces it (what `createDist -O procfs` emits).
    pub fn render_dist_commands(dist: &TwoStageDist, precision: u32) -> Vec<String> {
        let outl = dist.outlier_entries();
        let hist = dist.bin_entries();
        let mut cmds = Vec::with_capacity(outl.len() + hist.len() + 2);
        cmds.push(format!(
            "dist {} {} {} {} {}",
            precision,
            dist.binsize(),
            dist.max_size(),
            outl.len(),
            hist.len()
        ));
        for (size, cells) in outl {
            cmds.push(format!("outl {size} {cells}"));
        }
        for (size, cells) in hist {
            cmds.push(format!("hist {size} {cells}"));
        }
        cmds.push("flag PKTSIZE_REAL".to_string());
        cmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DistConfig;

    #[test]
    fn basic_parameters() {
        let mut c = PktgenControl::new();
        c.pgset("count 500000").unwrap();
        c.pgset("delay 1200").unwrap();
        c.pgset("pkt_size 64").unwrap();
        c.pgset("dst 192.168.10.12").unwrap();
        c.pgset("src_min 192.168.10.100").unwrap();
        c.pgset("dst_mac 00:0e:0c:01:02:03").unwrap();
        c.pgset("src_mac 00:00:00:00:00:00").unwrap();
        c.pgset("src_mac_count 3").unwrap();
        assert_eq!(c.config.count, 500_000);
        assert_eq!(c.config.delay_ns, 1200);
        assert_eq!(c.config.size, SizeSource::Fixed(64));
        assert_eq!(c.config.src_mac_count, 3);
    }

    #[test]
    fn errors_reported_with_command() {
        let mut c = PktgenControl::new();
        let e = c.pgset("pkt_size banana").unwrap_err();
        assert!(e.message.contains("bad number"));
        assert!(c.pgset("pkt_size 9999").is_err());
        assert!(c.pgset("frobnicate 1").is_err());
        assert!(c.pgset("").is_err());
        assert!(c.pgset("dst not.an.ip").is_err());
    }

    #[test]
    fn distribution_state_machine() {
        let mut c = PktgenControl::new();
        // PKTSIZE_REAL before any distribution: refused.
        assert!(c.pgset("flag PKTSIZE_REAL").is_err());

        c.pgset("dist 1000 20 1500 2 1").unwrap();
        assert!(!c.dist_ready());
        // outl/hist before dist announcement done.
        c.pgset("outl 40 600").unwrap();
        assert!(!c.dist_ready());
        c.pgset("outl 1500 300").unwrap();
        assert!(!c.dist_ready());
        c.pgset("hist 100 100").unwrap();
        assert!(c.dist_ready());
        c.pgset("flag PKTSIZE_REAL").unwrap();
        assert!(c.pktsize_real());
        assert!(matches!(c.config.size, SizeSource::Distribution(_)));
    }

    #[test]
    fn too_many_entry_lines_rejected() {
        let mut c = PktgenControl::new();
        c.pgset("dist 1000 20 1500 1 1").unwrap();
        c.pgset("outl 40 500").unwrap();
        // The announcement said one outl line.
        assert!(c.pgset("outl 52 100").is_err());
    }

    #[test]
    fn entry_lines_require_dist() {
        let mut c = PktgenControl::new();
        assert!(c.pgset("outl 40 100").is_err());
        assert!(c.pgset("hist 100 100").is_err());
    }

    #[test]
    fn render_commands_roundtrip() {
        let counts = vec![(40u32, 500u64), (1500, 300), (700, 100), (720, 100)];
        let dist = TwoStageDist::from_counts(counts, &DistConfig::default()).unwrap();
        let cmds = PktgenControl::render_dist_commands(&dist, 1000);
        let mut c = PktgenControl::new();
        for cmd in &cmds {
            c.pgset(cmd).unwrap_or_else(|e| panic!("{e}"));
        }
        assert!(c.pktsize_real());
        match &c.config.size {
            SizeSource::Distribution(d) => {
                assert_eq!(d.outlier_entries(), dist.outlier_entries());
                assert_eq!(d.bin_entries(), dist.bin_entries());
            }
            _ => panic!("distribution not installed"),
        }
    }

    #[test]
    fn pkt_size_clears_pktsize_real() {
        let mut c = PktgenControl::new();
        c.pgset("dist 1000 20 1500 1 1").unwrap();
        c.pgset("outl 40 500").unwrap();
        c.pgset("hist 100 100").unwrap();
        c.pgset("flag PKTSIZE_REAL").unwrap();
        c.pgset("pkt_size 1500").unwrap();
        assert!(!c.pktsize_real());
        assert_eq!(c.config.size, SizeSource::Fixed(1500));
    }
}
