//! A synthetic stand-in for the thesis' 24-hour MWN uplink trace.
//!
//! The real trace (captured at the Munich Scientific Network's G-WiN
//! uplink) is not publicly available; this module reconstructs a packet
//! size distribution with the properties the thesis reports about it:
//!
//! * dominant peaks at 40, 52 and 1500 bytes, visible peaks at 552, 576
//!   and in the 1420–1500 range (Fig. 4.1);
//! * the three most frequent sizes cover more than 55 % of all packets and
//!   the top twenty more than 75 % (Fig. 4.2);
//! * a mean packet size of about 645 bytes (§6.3.1 derives 645 B from the
//!   distribution used for generation);
//! * no jumbo frames (§4.2.1);
//! * a long, roughly power-law tail over all other sizes (the log-scale
//!   scatter of Fig. 4.1).

use std::collections::BTreeMap;

/// The named peaks: `(size, per-mille-of-total)`. The remaining mass forms
/// the `1/size` tail.
const PEAKS: &[(u32, u32)] = &[
    (40, 250),   // TCP ACKs
    (52, 130),   // ACKs with timestamp options
    (1500, 220), // full MTU
    (1460, 40),  // MSS data without options
    (1480, 30),
    (576, 40), // classic fragment/PMTU default
    (552, 30),
    (1420, 15),
    (1452, 10),
    (1454, 8),
    (1440, 7),
    (1492, 7), // PPPoE MTU
    (44, 12),
    (48, 12),
    (57, 7),
    (60, 10),
    (64, 10),
    (1400, 5),
    (1300, 4),
    (628, 3),
];

/// Per-mille of the total that belongs to the tail.
const TAIL_PERMILLE: u32 = 1000 - {
    // const-evaluated sum of the peak shares
    let mut sum = 0u32;
    let mut i = 0;
    while i < PEAKS.len() {
        sum += PEAKS[i].1;
        i += 1;
    }
    sum
};

/// Smallest size in the distribution (an IPv4 header + TCP header).
pub const MIN_SIZE: u32 = 40;
/// Largest size (no jumbo frames).
pub const MAX_SIZE: u32 = 1500;

/// Build the synthetic MWN packet-size histogram, scaled to roughly
/// `total` packets (a 24 h trace in the thesis has ~10⁹; tests use less).
pub fn mwn_counts(total: u64) -> BTreeMap<u32, u64> {
    assert!(total >= 1_000_000, "need at least 1e6 packets for fidelity");
    let mut counts: BTreeMap<u32, u64> = BTreeMap::new();

    // Tail: mass proportional to 1/size over [MIN_SIZE, MAX_SIZE].
    let tail_total = total * TAIL_PERMILLE as u64 / 1000;
    let norm: f64 = (MIN_SIZE..=MAX_SIZE).map(|s| 1.0 / s as f64).sum();
    for s in MIN_SIZE..=MAX_SIZE {
        let c = (tail_total as f64 * (1.0 / s as f64) / norm).round() as u64;
        if c > 0 {
            counts.insert(s, c);
        }
    }

    // Peaks on top.
    for &(size, permille) in PEAKS {
        let c = total * permille as u64 / 1000;
        *counts.entry(size).or_insert(0) += c;
    }
    counts
}

/// The mean packet size of the synthetic distribution.
pub fn mwn_mean(counts: &BTreeMap<u32, u64>) -> f64 {
    let total: u64 = counts.values().sum();
    let weighted: u128 = counts.iter().map(|(&s, &c)| s as u128 * c as u128).sum();
    weighted as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn top_fraction(counts: &BTreeMap<u32, u64>, n: usize) -> (Vec<u32>, f64) {
        let total: u64 = counts.values().sum();
        let mut v: Vec<(u32, u64)> = counts.iter().map(|(&s, &c)| (s, c)).collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let top: u64 = v.iter().take(n).map(|&(_, c)| c).sum();
        (
            v.iter().take(n).map(|&(s, _)| s).collect(),
            top as f64 / total as f64,
        )
    }

    #[test]
    fn top_three_are_40_52_1500_and_cover_majority() {
        let counts = mwn_counts(100_000_000);
        let (sizes, frac) = top_fraction(&counts, 3);
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![40, 52, 1500], "top sizes: {sizes:?}");
        assert!(frac > 0.55, "top-3 fraction {frac}");
    }

    #[test]
    fn top_twenty_cover_three_quarters() {
        let counts = mwn_counts(100_000_000);
        let (_, frac) = top_fraction(&counts, 20);
        assert!(frac > 0.75, "top-20 fraction {frac}");
    }

    #[test]
    fn mean_is_near_645() {
        let counts = mwn_counts(100_000_000);
        let mean = mwn_mean(&counts);
        assert!(
            (595.0..=695.0).contains(&mean),
            "mean {mean} outside thesis band"
        );
    }

    #[test]
    fn no_jumbo_frames_and_no_tiny_fragments() {
        let counts = mwn_counts(10_000_000);
        assert!(counts.keys().all(|&s| (MIN_SIZE..=MAX_SIZE).contains(&s)));
    }

    #[test]
    fn tail_is_broad() {
        // The scatter plot shows essentially every size occupied.
        let counts = mwn_counts(1_000_000_000);
        assert!(counts.len() > 1200, "only {} distinct sizes", counts.len());
    }

    #[test]
    fn scales_linearly() {
        let a = mwn_counts(1_000_000);
        let b = mwn_counts(10_000_000);
        let fa = a[&40] as f64 / 1_000_000.0;
        let fb = b[&40] as f64 / 10_000_000.0;
        assert!((fa - fb).abs() < 0.01);
    }
}
