//! The two-stage packet-size-distribution representation of thesis §4.2.
//!
//! High packet rates forbid per-packet hash lookups, so the enhanced Linux
//! Kernel Packet Generator represents a size distribution as two plain
//! arrays of `precision` (ρ) cells each:
//!
//! * the **outliers array** — sizes whose probability is at least the
//!   outlier bound `p_Ωbound` get `round(p_i·ρ)` cells holding the exact
//!   size; remaining cells hold −1 ("miss");
//! * the **bins array** — the non-outlier probability mass, folded into
//!   bins of `binsize` (σ) consecutive sizes; each bin gets cells
//!   proportional to its summed probability, holding the bin's base size.
//!
//! Sampling (thesis Fig. 4.3): draw a random cell from the outliers array;
//! on a miss, draw a cell from the bins array and add uniform jitter in
//! `[0, σ)`. This module implements the construction math of §4.2.3
//! (Eqs. 4.1–4.10) and the sampling procedure.

use pcs_des::Pcg32;
use std::collections::BTreeMap;

/// Construction parameters (names and defaults from thesis §4.2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistConfig {
    /// ρ — cells per array. Default 1000.
    pub precision: u32,
    /// σ_bin — sizes per second-stage bin. Default 20.
    pub binsize: u32,
    /// N_ps — largest size the distribution considers. Default 1500.
    pub max_size: u32,
    /// p_Ωbound — minimum fraction for a size to become a first-stage
    /// outlier. Default 2‰.
    pub outlier_bound: f64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            precision: 1000,
            binsize: 20,
            max_size: 1500,
            outlier_bound: 0.002,
        }
    }
}

/// Errors from building a distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// No packets counted.
    Empty,
    /// A parameter is zero or inconsistent.
    BadConfig(&'static str),
}

impl core::fmt::Display for DistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DistError::Empty => write!(f, "empty size distribution"),
            DistError::BadConfig(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for DistError {}

/// The compiled two-stage representation.
///
/// ```
/// use pcs_pktgen::{TwoStageDist, DistConfig};
/// use pcs_des::Pcg32;
///
/// // 60% 40-byte ACKs, 40% full-size packets.
/// let dist = TwoStageDist::from_counts(
///     [(40u32, 600u64), (1500, 400)],
///     &DistConfig::default(),
/// ).unwrap();
/// let mut rng = Pcg32::new(42, 0);
/// let size = dist.sample(&mut rng);
/// assert!(size == 40 || size == 1500);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoStageDist {
    /// ρ cells: packet size, or `None` for "fall through to stage two".
    outliers: Vec<Option<u16>>,
    /// ρ cells: bin base size.
    bins: Vec<u16>,
    /// σ_bin.
    binsize: u32,
    /// N_ps.
    max_size: u32,
}

impl TwoStageDist {
    /// Build from `(size, count)` pairs per Eqs. 4.1–4.10.
    pub fn from_counts<I>(counts: I, cfg: &DistConfig) -> Result<TwoStageDist, DistError>
    where
        I: IntoIterator<Item = (u32, u64)>,
    {
        if cfg.precision == 0 {
            return Err(DistError::BadConfig("precision must be positive"));
        }
        if cfg.binsize == 0 {
            return Err(DistError::BadConfig("binsize must be positive"));
        }
        if cfg.max_size == 0 || cfg.max_size > u16::MAX as u32 {
            return Err(DistError::BadConfig("max_size out of range"));
        }

        // Eq. 4.1: fractions p_i = c_i / c_all (sizes beyond N_ps are
        // clamped into the last bin position, matching the kernel module's
        // bounded arrays).
        let mut c: BTreeMap<u32, u64> = BTreeMap::new();
        for (size, count) in counts {
            let s = size.clamp(1, cfg.max_size);
            *c.entry(s).or_insert(0) += count;
        }
        let call: u64 = c.values().sum();
        if call == 0 {
            return Err(DistError::Empty);
        }

        // Eq. 4.2: the outlier set Ω.
        let rho = cfg.precision as usize;
        let mut outlier_cells: Vec<(u16, usize)> = Vec::new();
        let mut used = 0usize;
        for (&size, &count) in &c {
            let p = count as f64 / call as f64;
            if p >= cfg.outlier_bound {
                let cells = (p * rho as f64).round() as usize;
                if cells > 0 {
                    outlier_cells.push((size as u16, cells));
                    used += cells;
                }
            }
        }
        // Rounding can slightly overshoot ρ; trim from the smallest
        // still-populated outliers (least distortion).
        while used > rho {
            let smallest = outlier_cells
                .iter_mut()
                .filter(|(_, cells)| *cells > 0)
                .min_by_key(|(_, cells)| *cells)
                .expect("used > 0 implies a populated entry");
            smallest.1 -= 1;
            used -= 1;
        }
        outlier_cells.retain(|&(_, cells)| cells > 0);

        let mut outliers = Vec::with_capacity(rho);
        for &(size, cells) in &outlier_cells {
            outliers.extend(std::iter::repeat_n(Some(size), cells));
        }
        outliers.resize(rho, None);

        // Eqs. 4.3–4.5: bin the non-outlier mass.
        let outlier_sizes: std::collections::BTreeSet<u32> =
            outlier_cells.iter().map(|&(size, _)| size as u32).collect();
        let nbin = cfg.max_size.div_ceil(cfg.binsize) as usize;
        let mut b = vec![0u64; nbin];
        let mut b_total = 0u64;
        for (&size, &count) in &c {
            if outlier_sizes.contains(&size) {
                continue;
            }
            let j = ((size - 1) / cfg.binsize) as usize;
            b[j] += count;
            b_total += count;
        }

        // Bins array: cells_j ∝ b_j / b_total (Eq. 4.10 analogue). When
        // every packet is an outlier, stage two is never consulted; fill
        // with the most common outlier size so a (rounding-induced) miss
        // still produces a sensible size.
        let mut bins = Vec::with_capacity(rho);
        if b_total == 0 {
            let fallback = outlier_cells
                .iter()
                .max_by_key(|&&(_, cells)| cells)
                .map(|&(size, _)| size)
                .expect("call > 0 implies at least one outlier");
            bins.resize(rho, fallback);
        } else {
            let mut acc = 0f64;
            let mut filled = 0usize;
            for (j, &bj) in b.iter().enumerate() {
                if bj == 0 {
                    continue;
                }
                acc += bj as f64 / b_total as f64 * rho as f64;
                let want = (acc.round() as usize).min(rho);
                let base = (j as u32 * cfg.binsize + 1).min(cfg.max_size) as u16;
                while filled < want {
                    bins.push(base);
                    filled += 1;
                }
            }
            // Guarantee full coverage despite floating-point rounding.
            let last = *bins.last().expect("b_total > 0 fills at least one");
            bins.resize(rho, last);
        }

        Ok(TwoStageDist {
            outliers,
            bins,
            binsize: cfg.binsize,
            max_size: cfg.max_size,
        })
    }

    /// Draw one packet size (thesis Fig. 4.3 / `mod_cur_pktsize()`).
    pub fn sample(&self, rng: &mut Pcg32) -> u32 {
        let rho = self.outliers.len() as u32;
        let idx = rng.gen_below(rho) as usize;
        if let Some(size) = self.outliers[idx] {
            return size as u32;
        }
        let idx = rng.gen_below(rho) as usize;
        let base = self.bins[idx] as u32;
        let jitter = rng.gen_below(self.binsize);
        (base + jitter).min(self.max_size)
    }

    /// The fraction of stage-one cells that resolve directly (outlier
    /// mass as represented).
    pub fn outlier_fraction(&self) -> f64 {
        let hits = self.outliers.iter().filter(|c| c.is_some()).count();
        hits as f64 / self.outliers.len() as f64
    }

    /// σ_bin.
    pub fn binsize(&self) -> u32 {
        self.binsize
    }

    /// N_ps.
    pub fn max_size(&self) -> u32 {
        self.max_size
    }

    /// Iterate `(size, cells)` runs of the outliers array, merged — the
    /// `outl` lines of the procfs format.
    pub fn outlier_entries(&self) -> Vec<(u32, u32)> {
        let mut map: BTreeMap<u16, u32> = BTreeMap::new();
        for cell in self.outliers.iter().flatten() {
            *map.entry(*cell).or_insert(0) += 1;
        }
        map.into_iter().map(|(s, c)| (s as u32, c)).collect()
    }

    /// Iterate `(base size, cells)` runs of the bins array — the `hist`
    /// lines of the procfs format.
    pub fn bin_entries(&self) -> Vec<(u32, u32)> {
        let mut map: BTreeMap<u16, u32> = BTreeMap::new();
        for &cell in &self.bins {
            *map.entry(cell).or_insert(0) += 1;
        }
        map.into_iter().map(|(s, c)| (s as u32, c)).collect()
    }

    /// Rebuild from procfs-style entries (`outl` and `hist` lines plus the
    /// `dist` parameters). Used by the kernel-module model.
    pub fn from_entries(
        precision: u32,
        binsize: u32,
        max_size: u32,
        outl: &[(u32, u32)],
        hist: &[(u32, u32)],
    ) -> Result<TwoStageDist, DistError> {
        if precision == 0 || binsize == 0 {
            return Err(DistError::BadConfig("precision/binsize must be positive"));
        }
        if max_size == 0 || max_size > u16::MAX as u32 {
            return Err(DistError::BadConfig("max_size out of range"));
        }
        let rho = precision as usize;
        let mut outliers = Vec::with_capacity(rho);
        for &(size, cells) in outl {
            if size > max_size {
                return Err(DistError::BadConfig("outlier size exceeds max_size"));
            }
            outliers.extend(std::iter::repeat_n(Some(size as u16), cells as usize));
        }
        if outliers.len() > rho {
            return Err(DistError::BadConfig("outlier cells exceed precision"));
        }
        outliers.resize(rho, None);

        let mut bins = Vec::with_capacity(rho);
        for &(size, cells) in hist {
            if size > max_size {
                return Err(DistError::BadConfig("bin base exceeds max_size"));
            }
            bins.extend(std::iter::repeat_n(size as u16, cells as usize));
        }
        if bins.len() > rho {
            return Err(DistError::BadConfig("bin cells exceed precision"));
        }
        if bins.is_empty() {
            return Err(DistError::BadConfig("no bin entries"));
        }
        let last = *bins.last().expect("non-empty");
        bins.resize(rho, last);

        Ok(TwoStageDist {
            outliers,
            bins,
            binsize,
            max_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_counts() -> Vec<(u32, u64)> {
        // 50% at 40, 25% at 1500, 25% spread across 100..120 (each mid
        // size carries 1.25% -- below the 2% outlier bound used in tests).
        let mut v = vec![(40u32, 50_000u64), (1500, 25_000)];
        for s in 100..120 {
            v.push((s, 1_250));
        }
        v
    }

    fn test_cfg() -> DistConfig {
        DistConfig {
            outlier_bound: 0.02,
            ..DistConfig::default()
        }
    }

    #[test]
    fn outliers_get_first_stage_cells() {
        let d = TwoStageDist::from_counts(simple_counts(), &test_cfg()).unwrap();
        let outl = d.outlier_entries();
        // 40 and 1500 must be outliers with ~500 and ~250 cells.
        let cells_40 = outl.iter().find(|&&(s, _)| s == 40).unwrap().1;
        let cells_1500 = outl.iter().find(|&&(s, _)| s == 1500).unwrap().1;
        assert!((495..=505).contains(&cells_40), "{cells_40}");
        assert!((245..=255).contains(&cells_1500), "{cells_1500}");
        assert!((d.outlier_fraction() - 0.75).abs() < 0.02);
    }

    #[test]
    fn sampling_matches_input_distribution() {
        let d = TwoStageDist::from_counts(simple_counts(), &test_cfg()).unwrap();
        let mut rng = Pcg32::new(42, 1);
        let n = 200_000;
        let mut count_40 = 0u64;
        let mut count_1500 = 0u64;
        let mut count_mid = 0u64;
        for _ in 0..n {
            match d.sample(&mut rng) {
                40 => count_40 += 1,
                1500 => count_1500 += 1,
                // Stage two quantizes to bins of 20 and re-jitters, so
                // the mid mass lands anywhere in its bins' span.
                s if (81..=120).contains(&s) => count_mid += 1,
                other => panic!("unexpected size {other}"),
            }
        }
        let f40 = count_40 as f64 / n as f64;
        let f1500 = count_1500 as f64 / n as f64;
        let fmid = count_mid as f64 / n as f64;
        assert!((f40 - 0.5).abs() < 0.02, "f40={f40}");
        assert!((f1500 - 0.25).abs() < 0.02, "f1500={f1500}");
        assert!((fmid - 0.25).abs() < 0.02, "fmid={fmid}");
    }

    #[test]
    fn bins_receive_jitter_within_binsize() {
        // All mass below the outlier bound: everything goes to stage two.
        let counts: Vec<(u32, u64)> = (200..1400).map(|s| (s, 1)).collect();
        let cfg = DistConfig {
            outlier_bound: 0.01,
            ..DistConfig::default()
        };
        let d = TwoStageDist::from_counts(counts, &cfg).unwrap();
        assert_eq!(d.outlier_fraction(), 0.0);
        let mut rng = Pcg32::new(7, 7);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((181..=1419).contains(&s), "sample {s} outside bin range");
        }
    }

    #[test]
    fn single_size_degenerates_gracefully() {
        let d = TwoStageDist::from_counts([(1500u32, 10u64)], &DistConfig::default()).unwrap();
        let mut rng = Pcg32::new(1, 2);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1500);
        }
    }

    #[test]
    fn empty_and_bad_config_rejected() {
        let empty: Vec<(u32, u64)> = vec![];
        assert_eq!(
            TwoStageDist::from_counts(empty, &DistConfig::default()),
            Err(DistError::Empty)
        );
        let cfg = DistConfig {
            precision: 0,
            ..DistConfig::default()
        };
        assert!(TwoStageDist::from_counts([(40u32, 1u64)], &cfg).is_err());
    }

    #[test]
    fn sizes_beyond_max_clamp() {
        let cfg = DistConfig::default();
        let d = TwoStageDist::from_counts([(9000u32, 100u64)], &cfg).unwrap();
        let mut rng = Pcg32::new(3, 3);
        for _ in 0..100 {
            assert!(d.sample(&mut rng) <= 1500);
        }
    }

    #[test]
    fn entries_roundtrip() {
        let d = TwoStageDist::from_counts(simple_counts(), &test_cfg()).unwrap();
        let outl = d.outlier_entries();
        let hist = d.bin_entries();
        let d2 = TwoStageDist::from_entries(1000, 20, 1500, &outl, &hist).unwrap();
        // Same representation ⇒ same samples under the same seed.
        let mut r1 = Pcg32::new(9, 9);
        let mut r2 = Pcg32::new(9, 9);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut r1), d2.sample(&mut r2));
        }
    }

    #[test]
    fn from_entries_validates() {
        assert!(TwoStageDist::from_entries(10, 20, 1500, &[(40, 11)], &[(100, 1)]).is_err());
        assert!(TwoStageDist::from_entries(10, 20, 1500, &[(2000, 1)], &[(100, 1)]).is_err());
        assert!(TwoStageDist::from_entries(10, 20, 1500, &[(40, 1)], &[]).is_err());
        assert!(TwoStageDist::from_entries(0, 20, 1500, &[], &[(100, 1)]).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = TwoStageDist::from_counts(simple_counts(), &test_cfg()).unwrap();
        let mut a = Pcg32::new(1234, 5);
        let mut b = Pcg32::new(1234, 5);
        let sa: Vec<u32> = (0..100).map(|_| d.sample(&mut a)).collect();
        let sb: Vec<u32> = (0..100).map(|_| d.sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }
}
