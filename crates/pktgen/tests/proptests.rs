//! Property tests for the distribution machinery and the generator.

use pcs_des::Pcg32;
use pcs_pktgen::{
    DistConfig, Generator, PktgenConfig, PktgenControl, SizeSource, TwoStageDist, TxModel,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_counts() -> impl Strategy<Value = BTreeMap<u32, u64>> {
    proptest::collection::btree_map(40u32..=1500, 1u64..100_000, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Samples always stay within the representable size range.
    #[test]
    fn samples_in_range(counts in arb_counts(), seed in any::<u64>()) {
        let d = TwoStageDist::from_counts(
            counts.iter().map(|(&s, &c)| (s, c)),
            &DistConfig::default(),
        ).unwrap();
        let mut rng = Pcg32::new(seed, 3);
        for _ in 0..2_000 {
            let s = d.sample(&mut rng);
            prop_assert!((1..=1500).contains(&s), "sample {s}");
        }
    }

    /// Heavy outliers keep (approximately) their probability mass.
    #[test]
    fn outlier_mass_preserved(heavy_frac in 0.2f64..0.8, seed in any::<u64>()) {
        let heavy = (heavy_frac * 100_000.0) as u64;
        let rest = 100_000 - heavy;
        let mut counts = BTreeMap::new();
        counts.insert(1500u32, heavy);
        // Spread the rest thinly (below the outlier bound).
        for s in 100..1100u32 {
            counts.insert(s, rest / 1000);
        }
        let d = TwoStageDist::from_counts(
            counts.iter().map(|(&s, &c)| (s, c)),
            &DistConfig::default(),
        ).unwrap();
        let mut rng = Pcg32::new(seed, 5);
        let n = 30_000u32;
        let hits = (0..n).filter(|_| d.sample(&mut rng) == 1500).count();
        let measured = hits as f64 / n as f64;
        prop_assert!(
            (measured - heavy_frac).abs() < 0.05,
            "mass {heavy_frac} vs measured {measured}"
        );
    }

    /// The procfs entry serialization reproduces identical arrays.
    #[test]
    fn entries_roundtrip(counts in arb_counts()) {
        let d = TwoStageDist::from_counts(
            counts.iter().map(|(&s, &c)| (s, c)),
            &DistConfig::default(),
        ).unwrap();
        let d2 = TwoStageDist::from_entries(
            1000,
            d.binsize(),
            d.max_size(),
            &d.outlier_entries(),
            &d.bin_entries(),
        ).unwrap();
        let mut a = Pcg32::new(1, 1);
        let mut b = Pcg32::new(1, 1);
        for _ in 0..500 {
            prop_assert_eq!(d.sample(&mut a), d2.sample(&mut b));
        }
    }

    /// The full pgset command sequence emitted for any distribution is
    /// accepted by the control interface.
    #[test]
    fn rendered_commands_accepted(counts in arb_counts()) {
        let d = TwoStageDist::from_counts(
            counts.iter().map(|(&s, &c)| (s, c)),
            &DistConfig::default(),
        ).unwrap();
        let mut ctl = PktgenControl::new();
        for cmd in PktgenControl::render_dist_commands(&d, 1000) {
            ctl.pgset(&cmd).unwrap();
        }
        prop_assert!(ctl.pktsize_real());
    }

    /// Generator timestamps are strictly monotonic and the packet count
    /// is exact, for any configuration.
    #[test]
    fn generator_monotonic(count in 1u64..2_000, rate in 50f64..900.0, burst in 1u32..64, seed in any::<u64>()) {
        let cfg = PktgenConfig { count, ..PktgenConfig::default() };
        let mut g = Generator::new(cfg, TxModel::syskonnect(), seed);
        g.set_target_rate(rate, 659.0);
        g.set_burstiness(burst);
        let mut last = pcs_des::SimTime::ZERO;
        let mut n = 0u64;
        for tp in g {
            prop_assert!(tp.time > last, "timestamps must increase");
            last = tp.time;
            n += 1;
        }
        prop_assert_eq!(n, count);
    }

    /// Paced generation achieves (long-run) at most the wire limit and
    /// approximately the requested rate when feasible.
    #[test]
    fn pacing_rate_bounds(rate in 100f64..800.0, seed in any::<u64>()) {
        let cfg = PktgenConfig { count: 20_000, size: SizeSource::Fixed(1514), ..PktgenConfig::default() };
        let mut g = Generator::new(cfg, TxModel::syskonnect(), seed);
        g.set_target_rate(rate, 1514.0);
        let stats = g.run_stats();
        prop_assert!(stats.rate_mbps <= 945.0, "over wire limit: {}", stats.rate_mbps);
        prop_assert!(
            (stats.rate_mbps - rate).abs() / rate < 0.05,
            "target {rate} achieved {}",
            stats.rate_mbps
        );
    }
}
