//! `experiments` — regenerate every table and figure of the thesis'
//! evaluation.
//!
//! ```text
//! experiments list
//! experiments run <id>... [--scale quick|standard|full] [--jobs N]
//!                         [--chunk N] [--depth N]
//!                         [--stream-cache on|off|BYTES[K|M|G]] [--csv-dir DIR]
//!                         [--trace PATH[:FILTER]] [--profile]
//!                         [--faults SPEC[:SEED]] [--oracle]
//! experiments all [--scale ...] [--jobs N] [--chunk N] [--depth N]
//!                 [--stream-cache ...] [--csv-dir DIR]
//!                 [--trace PATH[:FILTER]] [--profile]
//!                 [--faults SPEC[:SEED]] [--oracle]
//! ```
//!
//! Output is a text table per experiment (capture rate and CPU usage per
//! system under test, like the thesis' plots read as numbers), plus
//! optional CSV files for plotting.
//!
//! `--jobs N` bounds the worker pool (default: all host cores). Whole
//! experiments run concurrently, and each experiment's sweep cells are
//! further spread over the remaining workers. Inside each cell the
//! generator streams `--chunk N`-packet chunks (default 4096; `0`
//! selects the materialized reference path) through bounded per-sniffer
//! queues of `--depth N` chunks (default 4). Identical packet streams —
//! the same (workload, rate, repeat) measured over different SUT sets —
//! are generated once and shared through a content-addressed,
//! byte-budgeted cache (`--stream-cache on|off|BYTES[K|M|G]`, default
//! on at 1 GiB). The simulation is deterministic, so any job count,
//! chunk size, queue depth or stream-cache setting produces
//! byte-identical tables and CSV files; the summary reports
//! per-experiment wall-clock plus how many sweep cells were simulated vs
//! served from the in-process run cache (with hit rates as
//! percentages), how many packet streams were generated vs shared, and
//! the peak resident stream bytes.
//!
//! `--trace PATH[:FILTER]` records every simulated packet's lifecycle —
//! wire arrival, NIC ring, bus transfer, filter verdict, kernel buffer,
//! application delivery, disk write — into Chrome trace-event JSON at
//! `PATH` (loadable in Perfetto / `chrome://tracing`) plus a flat CSV
//! sibling, and prints a per-stage drop-attribution table whose rows sum
//! *exactly* to generated − delivered for every SUT. `FILTER` selects
//! stages (e.g. `drops`, `wire,app`; see EXPERIMENTS.md). Tracing is an
//! observation layer: tables and CSVs stay byte-identical, and `--trace
//! off` (or omitting the flag) runs the branch-cheap untraced path.
//! `--profile` prints host-side execution profiling per experiment:
//! total/max cell wall time, worker-pool utilization, cache service
//! times. Profiling reads the host clock, so its numbers (unlike
//! everything else) vary run to run.
//!
//! `--ledger PATH` writes the run ledger: one deterministic JSON
//! manifest recording every cell's 128-bit config fingerprint, achieved
//! rate, exact drop attribution, metrics dump, exact latency
//! percentiles, and the per-CPU per-work-kind stage-time account. The
//! ledger is byte-identical at any `--jobs`/`--chunk`/`--depth`/
//! `--stream-cache` setting (the `--profile` block is the documented
//! host-side exception), so `cmp` on two ledgers is a determinism
//! check and `experiments obs diff A.json B.json [--fail-on-drift]`
//! ranks exactly what moved between two runs. `--profile-json PATH`
//! writes the host-side `--profile` numbers as standalone JSON.
//!
//! `--faults SPEC[:SEED]` arms a deterministic fault plan — seeded
//! windows of NIC-ring stalls, bus-contention bursts, IRQ jitter,
//! kernel-buffer shrinks, application pauses, splitter hiccups and
//! stream-cache squeezes (`SPEC` is fault names joined with `+`, or
//! `chaos` for all of them; see EXPERIMENTS.md). The same `SPEC:SEED`
//! produces byte-identical tables and CSVs at any `--jobs`, `--chunk`,
//! `--depth` or `--stream-cache` setting. `--oracle` validates every
//! cell against the sim-wide invariant oracle (packet conservation,
//! buffer bounds, monotonic clocks, rate sanity) and reports how many
//! cells passed; a violation aborts the run.

use pcs_core::{all_experiments, ExecConfig, PipelineConfig, Scale};
use pcs_faultsim::FaultPlan;
use pcs_obs::{
    diff_ledgers, render_ledger, render_profile, ExperimentProfile, HostProfile, Ledger, LedgerMeta,
};
use pcs_testbed::{available_parallelism, parallel_ordered, parse_stream_cache_bytes};
use pcs_trace::{export, DropAttribution, StageFilter, TraceCollector, TraceSpec};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// Parse `--trace`'s `PATH[:FILTER]` argument (`off` disables tracing).
///
/// The suffix after the last `:` is taken as a stage filter only when it
/// parses as one; anything else falls back to treating the whole argument
/// as the path, so paths that merely contain a colon (`C:\t.json`,
/// `out:1/x.json`) still work.
fn parse_trace_arg(arg: &str) -> Option<(String, StageFilter)> {
    if arg == "off" {
        return None;
    }
    if let Some((path, filter)) = arg.rsplit_once(':') {
        if !path.is_empty() {
            if let Ok(filter) = StageFilter::parse(filter) {
                return Some((path.to_string(), filter));
            }
        }
    }
    Some((arg.to_string(), StageFilter::all()))
}

/// Parse one of the integer execution knobs (`--jobs`, `--chunk`,
/// `--depth`). All three share one error-message shape; they differ only
/// in the smallest value they accept (`--chunk 0` selects the
/// materialized path, the other two need at least 1).
fn parse_knob(flag: &str, min: usize, arg: &str) -> Result<usize, String> {
    let kind = if min == 0 { "non-negative" } else { "positive" };
    arg.parse::<usize>()
        .ok()
        .filter(|&n| n >= min)
        .ok_or_else(|| format!("{flag} wants a {kind} integer, got '{arg}'"))
}

/// Report a bad argument and exit with the CLI-error status.
fn bail(msg: String) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Percentage helper for the cache summary: `part` out of `whole`.
fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  experiments list\n  experiments run <id>... [--scale quick|standard|full] [--jobs N] [--chunk N] [--depth N] [--stream-cache on|off|BYTES[K|M|G]] [--csv-dir DIR] [--trace PATH[:FILTER]] [--ledger PATH] [--profile] [--profile-json PATH] [--faults SPEC[:SEED]] [--oracle]\n  experiments all [--scale quick|standard|full] [--jobs N] [--chunk N] [--depth N] [--stream-cache on|off|BYTES[K|M|G]] [--csv-dir DIR] [--trace PATH[:FILTER]] [--ledger PATH] [--profile] [--profile-json PATH] [--faults SPEC[:SEED]] [--oracle]\n  experiments obs diff <A.json> <B.json> [--fail-on-drift] [--top N]\n\nScales: quick (40k packets, 5 rates), standard (300k, 10), full (1M, 19 — the thesis' ladder).\n--jobs N: worker-pool size (default: all host cores); results are identical at any N.\n--chunk N: packets per streamed chunk (default 4096; 0 = materialize the whole run first).\n--depth N: bounded splitter-queue depth in chunks per sniffer (default 4).\n--stream-cache: share identical packet streams across cells through a byte-budgeted\n                content-addressed cache (default on = 1 GiB; off regenerates per cell).\nAll four are execution knobs: tables and CSVs are byte-identical for any setting.\n--trace PATH[:FILTER]: write packet-lifecycle traces as Chrome trace-event JSON to PATH\n                (Perfetto-loadable) plus a CSV sibling, and print per-stage drop\n                attribution. FILTER picks stages: all, drops, wire, nic, bus, filter,\n                kernel, app, disk, sched (per-CPU scheduler dispatch timelines) or exact\n                stage names, comma-separated. 'off' disables.\n--ledger PATH: write the run ledger — a deterministic JSON manifest of every cell's\n                config fingerprint, achieved rate, drop attribution, metrics, exact\n                latency percentiles and per-CPU stage-time account. Byte-identical at\n                any --jobs/--chunk/--depth/--stream-cache; feed two ledgers to\n                `experiments obs diff` to rank what changed between runs.\n--profile: print host-side execution profiling (cell wall times, pool utilization,\n                cache service latencies) to stderr (and embed it in the ledger, the\n                one host-side block there).\n--profile-json PATH: write the host-side profile as standalone JSON.\n--faults SPEC[:SEED]: arm a deterministic fault plan. SPEC is fault names joined\n                with '+' (ringstall busburst irqjitter kshrink apppause preempt\n                hiccup squeeze), or 'chaos' for all, or 'off' (default). Same SPEC:SEED =>\n                byte-identical output at any --jobs/--chunk/--depth/--stream-cache.\n--oracle: validate every cell against the sim-wide invariant oracle (packet\n                conservation, buffer bounds, clock monotonicity, rate sanity);\n                any violation aborts the run.\nobs diff A B: load two ledgers, match cells by label, and rank every numeric\n                observable that moved (fingerprint changes reported first).\n                --fail-on-drift exits 1 on any difference; --top N caps the\n                drifts printed per cell (default 8)."
    );
    std::process::exit(2);
}

/// `experiments obs diff A.json B.json [--fail-on-drift] [--top N]`.
fn obs_main(args: &[String]) {
    if args.first().map(String::as_str) != Some("diff") || args.len() < 3 {
        usage();
    }
    let (a_path, b_path) = (&args[1], &args[2]);
    let mut fail_on_drift = false;
    let mut top = 8usize;
    let mut i = 3;
    while i < args.len() {
        match args[i].as_str() {
            "--fail-on-drift" => fail_on_drift = true,
            "--top" => {
                i += 1;
                let n = args.get(i).unwrap_or_else(|| usage());
                top = parse_knob("--top", 1, n).unwrap_or_else(|msg| bail(msg));
            }
            _ => usage(),
        }
        i += 1;
    }
    let load = |path: &String| -> Ledger {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| bail(format!("cannot read ledger '{path}': {e}")));
        Ledger::parse(&text).unwrap_or_else(|e| bail(format!("'{path}' is not a ledger: {e}")))
    };
    let report = diff_ledgers(&load(a_path), &load(b_path));
    print!("{}", report.render(top));
    if fail_on_drift && report.has_drift() {
        eprintln!("obs diff: drift detected between '{a_path}' and '{b_path}' (--fail-on-drift)");
        std::process::exit(1);
    }
}

/// First pair of output paths that would overwrite each other, if any.
///
/// `--trace`, `--ledger`, `--profile-json` and the per-experiment CSVs
/// are all written at the end of the run; two flags aimed at one path
/// would silently clobber hours of sweep output, so the run refuses to
/// start instead.
fn find_collision(outputs: &[(String, String)]) -> Option<(String, String, String)> {
    for (i, (fa, pa)) in outputs.iter().enumerate() {
        for (fb, pb) in &outputs[i + 1..] {
            if std::path::Path::new(pa) == std::path::Path::new(pb) {
                return Some((fa.clone(), fb.clone(), pa.clone()));
            }
        }
    }
    None
}

/// Where `--trace PATH` puts its flat-CSV sibling: `PATH` with a `.csv`
/// extension, or `PATH.events.csv` when that would collide with `PATH`
/// itself.
fn trace_csv_sibling(path: &str) -> String {
    let p = std::path::Path::new(path).with_extension("csv");
    let p = p.to_string_lossy().into_owned();
    if p == *path {
        format!("{path}.events.csv")
    } else {
        p
    }
}

/// Fail fast when an output file's directory does not exist (the file is
/// written only after the whole sweep — hours at `--scale full`).
fn require_parent_dir(flag: &str, path: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            bail(format!(
                "{flag}: directory '{}' does not exist (create it first)",
                parent.display()
            ));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "list" => {
            println!("{:<12} DESCRIPTION", "ID");
            for (id, desc, _) in all_experiments() {
                println!("{id:<12} {desc}");
            }
        }
        "obs" => obs_main(&args[1..]),
        "run" | "all" => {
            let mut ids: Vec<String> = Vec::new();
            let mut scale = Scale::standard();
            let mut scale_name = "standard".to_string();
            let mut csv_dir: Option<String> = None;
            let mut jobs = available_parallelism();
            let mut pipeline = PipelineConfig::default();
            let mut trace: Option<(String, StageFilter)> = None;
            let mut ledger: Option<String> = None;
            let mut profile = false;
            let mut profile_json: Option<String> = None;
            let mut faults: Option<FaultPlan> = None;
            let mut oracle = false;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--chunk" => {
                        i += 1;
                        let n = args.get(i).unwrap_or_else(|| usage());
                        pipeline.chunk_packets =
                            parse_knob("--chunk", 0, n).unwrap_or_else(|msg| bail(msg));
                    }
                    "--depth" => {
                        i += 1;
                        let n = args.get(i).unwrap_or_else(|| usage());
                        pipeline.depth_chunks =
                            parse_knob("--depth", 1, n).unwrap_or_else(|msg| bail(msg));
                    }
                    "--stream-cache" => {
                        i += 1;
                        let n = args.get(i).unwrap_or_else(|| usage());
                        pipeline.stream_cache_bytes =
                            parse_stream_cache_bytes(n).unwrap_or_else(|msg| bail(msg));
                    }
                    "--scale" => {
                        i += 1;
                        let name = args.get(i).unwrap_or_else(|| usage());
                        scale = Scale::by_name(name).unwrap_or_else(|| {
                            eprintln!("unknown scale '{name}'");
                            std::process::exit(2);
                        });
                        scale_name = name.clone();
                    }
                    "--jobs" => {
                        i += 1;
                        let n = args.get(i).unwrap_or_else(|| usage());
                        jobs = parse_knob("--jobs", 1, n).unwrap_or_else(|msg| bail(msg));
                    }
                    "--faults" => {
                        i += 1;
                        let n = args.get(i).unwrap_or_else(|| usage());
                        faults = FaultPlan::parse(n).unwrap_or_else(|msg| bail(msg));
                    }
                    "--oracle" => oracle = true,
                    "--csv-dir" => {
                        i += 1;
                        csv_dir = Some(args.get(i).unwrap_or_else(|| usage()).clone());
                    }
                    "--trace" => {
                        i += 1;
                        let n = args.get(i).unwrap_or_else(|| usage());
                        trace = parse_trace_arg(n);
                    }
                    "--ledger" => {
                        i += 1;
                        ledger = Some(args.get(i).unwrap_or_else(|| usage()).clone());
                    }
                    "--profile" => profile = true,
                    "--profile-json" => {
                        i += 1;
                        profile_json = Some(args.get(i).unwrap_or_else(|| usage()).clone());
                    }
                    other if other.starts_with("--") => usage(),
                    other => ids.push(other.to_string()),
                }
                i += 1;
            }
            let registry = all_experiments();
            let selected: Vec<_> = if args[0] == "all" {
                registry
            } else {
                if ids.is_empty() {
                    usage();
                }
                let mut sel = Vec::new();
                for id in &ids {
                    match registry.iter().find(|(rid, _, _)| rid == id) {
                        Some(e) => sel.push(*e),
                        None => {
                            eprintln!("unknown experiment '{id}' (try `experiments list`)");
                            std::process::exit(2);
                        }
                    }
                }
                sel
            };
            if let Some(dir) = &csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
            }
            // Fail fast: the trace JSON (and its CSV sibling, which lands
            // in the same directory) is written after the whole sweep, so
            // make sure its directory exists before any work starts.
            if let Some((path, _)) = &trace {
                if let Some(parent) = std::path::Path::new(path).parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent).expect("create trace dir");
                    }
                }
            }
            // Same for the ledger and profile JSON — but these directories
            // must already exist (a typo'd --ledger path should not grow a
            // directory tree, it should stop the run before any work).
            if let Some(path) = &ledger {
                require_parent_dir("--ledger", path);
            }
            if let Some(path) = &profile_json {
                require_parent_dir("--profile-json", path);
            }
            // Refuse output paths that would overwrite each other: the
            // trace JSON + its CSV sibling, the ledger, the profile JSON
            // and every per-experiment CSV land after the sweep finishes.
            let mut outputs: Vec<(String, String)> = Vec::new();
            if let Some((path, _)) = &trace {
                outputs.push(("--trace".into(), path.clone()));
                outputs.push(("--trace (csv sibling)".into(), trace_csv_sibling(path)));
            }
            if let Some(path) = &ledger {
                outputs.push(("--ledger".into(), path.clone()));
            }
            if let Some(path) = &profile_json {
                outputs.push(("--profile-json".into(), path.clone()));
            }
            if let Some(dir) = &csv_dir {
                for (id, _, _) in &selected {
                    outputs.push((
                        format!("--csv-dir ({id})"),
                        format!("{dir}/{}.csv", id.replace('/', "_")),
                    ));
                }
            }
            if let Some((fa, fb, path)) = find_collision(&outputs) {
                bail(format!(
                    "output collision: {fa} and {fb} both write to '{path}'"
                ));
            }
            // Two-level pool: up to `outer` experiments in flight, each
            // sweeping its cells over `inner` workers, ≈ jobs total.
            let outer = jobs.min(selected.len().max(1));
            let inner = (jobs / outer).max(1);
            eprintln!(
                "== {} experiment(s), --jobs {jobs} ({outer} concurrent × {inner} cell workers)",
                selected.len()
            );
            let faults = faults.map(Arc::new);
            if let Some(plan) = &faults {
                eprintln!("== faults armed: {plan}");
            }
            // `--trace` and `--ledger` share the collector. A ledger
            // without a trace uses the empty stage filter: no events are
            // buffered, but metrics, latency digests, attributions and
            // stage times still accumulate per cell.
            let collector = if trace.is_some() || ledger.is_some() {
                let filter = trace
                    .as_ref()
                    .map(|(_, filter)| *filter)
                    .unwrap_or_else(StageFilter::none);
                Some(Arc::new(TraceCollector::new(TraceSpec {
                    filter,
                    ..TraceSpec::default()
                })))
            } else {
                None
            };
            let stage_times = ledger.is_some();
            let host_profiling = profile || profile_json.is_some();
            let t_all = Instant::now();
            let results = parallel_ordered(selected, outer, |_, (id, desc, run)| {
                let mut exec = ExecConfig::with_jobs(inner)
                    .with_pipeline(pipeline)
                    .with_oracle(oracle)
                    .with_stage_times(stage_times);
                if let Some(plan) = &faults {
                    exec = exec.with_faults(Arc::clone(plan));
                }
                if let Some(collector) = &collector {
                    exec = exec.with_trace(Arc::clone(collector));
                }
                if host_profiling {
                    exec.stats.enable_profiling();
                }
                let t0 = Instant::now();
                let e = run(&scale, &exec);
                let wall = t0.elapsed().as_secs_f64();
                eprintln!(
                    "== {id} finished in {wall:.1}s ({} cells run, {} cached; {} streams generated, {} shared)",
                    exec.stats.cells_run(),
                    exec.stats.cells_cached(),
                    exec.stats.streams_generated(),
                    exec.stats.streams_shared()
                );
                (id, desc, e, wall, exec)
            });
            // Tables and CSVs are emitted in registry order regardless of
            // completion order, so the output is byte-stable at any -j.
            let mut total_run = 0u64;
            let mut total_cached = 0u64;
            let mut total_generated = 0u64;
            let mut total_shared = 0u64;
            let mut peak_stream_bytes = 0u64;
            for (id, _desc, e, _wall, exec) in &results {
                total_run += exec.stats.cells_run();
                total_cached += exec.stats.cells_cached();
                total_generated += exec.stats.streams_generated();
                total_shared += exec.stats.streams_shared();
                peak_stream_bytes = peak_stream_bytes.max(exec.stats.peak_stream_bytes());
                println!("{}", e.to_table());
                if let Some(dir) = &csv_dir {
                    let path = format!("{dir}/{}.csv", id.replace('/', "_"));
                    let mut f = std::fs::File::create(&path).expect("create csv");
                    f.write_all(e.to_csv().as_bytes()).expect("write csv");
                    eprintln!("== wrote {path}");
                }
            }
            eprintln!("== summary ({:.1}s wall):", t_all.elapsed().as_secs_f64());
            for (id, desc, _e, wall, exec) in &results {
                eprintln!(
                    "==   {id:<12} {wall:>7.1}s  {:>5} cells run  {:>5} cached  {:>4} streams gen  {:>4} shared  {:>8.1} MiB peak  ({desc})",
                    exec.stats.cells_run(),
                    exec.stats.cells_cached(),
                    exec.stats.streams_generated(),
                    exec.stats.streams_shared(),
                    exec.stats.peak_stream_bytes() as f64 / (1024.0 * 1024.0)
                );
            }
            eprintln!(
                "== total: {total_run} cells run, {total_cached} served from cache ({:.1}% hit rate); {total_generated} streams generated, {total_shared} shared ({:.1}% share rate), {:.1} MiB peak resident",
                percent(total_cached, total_run + total_cached),
                percent(total_shared, total_generated + total_shared),
                peak_stream_bytes as f64 / (1024.0 * 1024.0)
            );
            if oracle {
                let validated: u64 = results
                    .iter()
                    .map(|(_, _, _, _, exec)| exec.stats.cells_validated())
                    .sum();
                eprintln!("== oracle: {validated} cells validated, every invariant held");
            }
            if profile {
                eprintln!("== profile (host-side; varies run to run):");
                for (id, _desc, _e, wall, exec) in &results {
                    let s = &exec.stats;
                    let busy = s.cell_wall_ns() as f64 / 1e9;
                    let util = percent(s.cell_wall_ns(), (wall * 1e9) as u64 * inner as u64);
                    let hits = s.cells_cached().max(1);
                    let subs = s.streams_shared().max(1);
                    eprintln!(
                        "==   {id:<12} sim {busy:>7.2}s over {inner} worker(s) ({util:.1}% pool util)  slowest cell {:.2}s  run-cache hit {:.1} µs avg  stream subscribe {:.1} µs avg",
                        s.cell_wall_ns_max() as f64 / 1e9,
                        s.run_cache_hit_ns() as f64 / 1e3 / hits as f64,
                        s.stream_subscribe_ns() as f64 / 1e3 / subs as f64
                    );
                    let p = s.sim_pools();
                    eprintln!(
                        "==   {id:<12} sim buffer pools: {} gets, {} misses ({:.4}% — sim high-water {}), {} recycled",
                        p.gets(),
                        p.misses(),
                        percent(p.misses(), p.gets()),
                        p.high_water(),
                        p.recycled()
                    );
                    let b = s.sim_batches();
                    let mode = match (b.sims_batched(), b.sims_unbatched()) {
                        (0, 0) => "unused".to_owned(),
                        (_, 0) => format!("on(cap={})", pcs_oskernel::BATCH_COALESCE_CAP),
                        (0, _) => "off".to_owned(),
                        _ => format!("mixed(cap={})", pcs_oskernel::BATCH_COALESCE_CAP),
                    };
                    eprintln!(
                        "==   {id:<12} sim batching {mode}: {} runs, {} coalesced (max run {}), alpha memo {}/{} hits, size memo {}/{} hits",
                        b.runs(),
                        b.coalesced(),
                        b.max_run(),
                        b.alpha_hits(),
                        b.alpha_hits() + b.alpha_misses(),
                        b.size_hits(),
                        b.size_hits() + b.size_misses()
                    );
                }
            }
            if let Some((path, _)) = &trace {
                let collector = collector.as_ref().expect("trace implies a collector");
                let cells = collector.cells();
                let json = export::chrome_trace_json(&cells);
                export::validate_json(&json).expect("generated trace JSON must be valid");
                std::fs::write(path, &json).expect("write trace json");
                eprintln!(
                    "== wrote {path} ({} traced cells; load in Perfetto)",
                    cells.len()
                );
                let csv_path = trace_csv_sibling(path);
                std::fs::write(&csv_path, export::events_csv(&cells)).expect("write trace csv");
                eprintln!("== wrote {csv_path}");
                // Per-SUT drop attribution, totalled over every traced
                // cell. Each row partitions its generated packets
                // exactly: generated = delivered + the seven loss
                // buckets (summed over the SUT's applications).
                let mut by_sut: BTreeMap<String, DropAttribution> = BTreeMap::new();
                for cell in &cells {
                    for sut in &cell.suts {
                        let entry = by_sut.entry(sut.label.clone()).or_default();
                        for attr in &sut.attributions {
                            entry.absorb(attr);
                        }
                    }
                }
                eprintln!("== drop attribution (all traced cells, per SUT):");
                eprint!("==   {:<24}", "sut");
                for col in DropAttribution::COLUMNS {
                    eprint!(" {col:>w$}", w = col.len().max(10));
                }
                eprintln!();
                for (label, attr) in &by_sut {
                    assert!(attr.balanced(), "{label}: attribution must balance");
                    eprint!("==   {label:<24}");
                    for (col, v) in DropAttribution::COLUMNS.iter().zip(attr.values()) {
                        eprint!(" {v:>w$}", w = col.len().max(10));
                    }
                    eprintln!();
                }
            }
            // Host-side profile roll-up, shared by the ledger's profile
            // block and --profile-json. Wall-clock numbers: never part of
            // the deterministic surface.
            let host_profile = host_profiling.then(|| HostProfile {
                experiments: results
                    .iter()
                    .map(|(id, _desc, _e, wall, exec)| {
                        let s = &exec.stats;
                        let p = s.sim_pools();
                        let b = s.sim_batches();
                        ExperimentProfile {
                            id: (*id).to_string(),
                            wall_s: *wall,
                            cells_run: s.cells_run(),
                            cells_cached: s.cells_cached(),
                            streams_generated: s.streams_generated(),
                            streams_shared: s.streams_shared(),
                            peak_stream_bytes: s.peak_stream_bytes(),
                            cell_wall_ns: s.cell_wall_ns(),
                            cell_wall_ns_max: s.cell_wall_ns_max(),
                            run_cache_hit_ns: s.run_cache_hit_ns(),
                            stream_subscribe_ns: s.stream_subscribe_ns(),
                            pool_gets: p.gets(),
                            pool_misses: p.misses(),
                            pool_recycled: p.recycled(),
                            pool_high_water: p.high_water(),
                            batch_sims_on: b.sims_batched(),
                            batch_sims_off: b.sims_unbatched(),
                            batch_coalesce_cap: if b.sims_batched() > 0 {
                                pcs_oskernel::BATCH_COALESCE_CAP
                            } else {
                                0
                            },
                            batch_runs: b.runs(),
                            batch_coalesced: b.coalesced(),
                            batch_max_run: b.max_run(),
                            batch_alpha_hits: b.alpha_hits(),
                            batch_alpha_misses: b.alpha_misses(),
                            batch_size_hits: b.size_hits(),
                            batch_size_misses: b.size_misses(),
                        }
                    })
                    .collect(),
            });
            if let Some(path) = &ledger {
                let collector = collector.as_ref().expect("ledger implies a collector");
                let cells = collector.cells();
                let meta = LedgerMeta {
                    scale: scale_name.clone(),
                    experiments: results.iter().map(|(id, ..)| (*id).to_string()).collect(),
                    faults: faults.as_ref().map(|plan| plan.to_string()),
                };
                // The profile block is embedded only under --profile: a
                // bare --ledger stays fully deterministic (cmp-able).
                let embedded = if profile { host_profile.as_ref() } else { None };
                let json = render_ledger(&meta, &cells, embedded);
                export::validate_json(&json).expect("generated ledger JSON must be valid");
                std::fs::write(path, &json).expect("write ledger");
                eprintln!(
                    "== wrote {path} ({} cells; compare runs with `experiments obs diff`)",
                    cells.len()
                );
            }
            if let Some(path) = &profile_json {
                let p = host_profile
                    .as_ref()
                    .expect("profile-json implies profiling");
                let json = render_profile(p);
                export::validate_json(&json).expect("generated profile JSON must be valid");
                std::fs::write(path, &json).expect("write profile json");
                eprintln!("== wrote {path} (host-side profile; varies run to run)");
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_argument_parses() {
        assert_eq!(parse_trace_arg("off"), None);
        assert_eq!(
            parse_trace_arg("out.json"),
            Some(("out.json".into(), StageFilter::all()))
        );
        assert_eq!(
            parse_trace_arg("out.json:drops"),
            Some(("out.json".into(), StageFilter::drops()))
        );
        let (path, filter) = parse_trace_arg("t.json:wire,app").unwrap();
        assert_eq!(path, "t.json");
        assert_ne!(filter, StageFilter::all());
        // A colon suffix that isn't a stage filter is part of the path.
        assert_eq!(
            parse_trace_arg("C:\\t.json"),
            Some(("C:\\t.json".into(), StageFilter::all()))
        );
        assert_eq!(
            parse_trace_arg("out:1/x.json"),
            Some(("out:1/x.json".into(), StageFilter::all()))
        );
    }

    #[test]
    fn trace_csv_sibling_never_collides_with_the_trace() {
        assert_eq!(trace_csv_sibling("t.json"), "t.csv");
        assert_eq!(trace_csv_sibling("out/t.json"), "out/t.csv");
        // Already-.csv trace paths get a distinct sibling.
        assert_eq!(trace_csv_sibling("t.csv"), "t.csv.events.csv");
        assert_eq!(trace_csv_sibling("noext"), "noext.csv");
    }

    #[test]
    fn output_collisions_are_detected() {
        let outputs = vec![
            ("--trace".to_string(), "out/a.json".to_string()),
            ("--trace (csv sibling)".to_string(), "out/a.csv".to_string()),
            ("--ledger".to_string(), "out/b.json".to_string()),
        ];
        assert_eq!(find_collision(&outputs), None);
        let mut clash = outputs.clone();
        clash.push(("--profile-json".to_string(), "out/b.json".to_string()));
        assert_eq!(
            find_collision(&clash),
            Some((
                "--ledger".to_string(),
                "--profile-json".to_string(),
                "out/b.json".to_string()
            ))
        );
        // Path comparison, not string comparison: a redundant ./ still
        // collides.
        let mut dotted = outputs.clone();
        dotted.push(("--ledger 2".to_string(), "out/./b.json".to_string()));
        assert!(find_collision(&dotted).is_some());
    }

    #[test]
    fn percent_is_safe_on_zero() {
        assert_eq!(percent(1, 0), 0.0);
        assert_eq!(percent(1, 4), 25.0);
    }

    #[test]
    fn knob_errors_share_one_shape() {
        assert_eq!(
            parse_knob("--chunk", 0, "x").unwrap_err(),
            "--chunk wants a non-negative integer, got 'x'"
        );
        assert_eq!(
            parse_knob("--depth", 1, "0").unwrap_err(),
            "--depth wants a positive integer, got '0'"
        );
        assert_eq!(
            parse_knob("--jobs", 1, "-3").unwrap_err(),
            "--jobs wants a positive integer, got '-3'"
        );
        assert_eq!(parse_knob("--chunk", 0, "0"), Ok(0));
        assert_eq!(parse_knob("--depth", 1, "4"), Ok(4));
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            // The three parsers take attacker-ish strings straight from
            // argv: no byte soup may panic them. The vendored proptest
            // has no String strategy, so fuzz bytes and lossily decode.
            #[test]
            fn trace_arg_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
                let arg = String::from_utf8_lossy(&bytes).into_owned();
                let _ = parse_trace_arg(&arg);
            }

            #[test]
            fn stream_cache_arg_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
                let arg = String::from_utf8_lossy(&bytes).into_owned();
                let _ = parse_stream_cache_bytes(&arg);
            }

            #[test]
            fn knob_arg_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64), min in 0usize..2) {
                let arg = String::from_utf8_lossy(&bytes).into_owned();
                let _ = parse_knob("--jobs", min, &arg);
            }

            #[test]
            fn faults_arg_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
                let arg = String::from_utf8_lossy(&bytes).into_owned();
                let _ = FaultPlan::parse(&arg);
            }

            // Valid inputs round-trip exactly.
            #[test]
            fn knob_round_trips(n in 0usize..1_000_000) {
                prop_assert_eq!(parse_knob("--chunk", 0, &n.to_string()), Ok(n));
                if n >= 1 {
                    prop_assert_eq!(parse_knob("--depth", 1, &n.to_string()), Ok(n));
                }
            }

            #[test]
            fn stream_cache_round_trips(n in 0u64..4_096) {
                prop_assert_eq!(parse_stream_cache_bytes(&n.to_string()), Ok(n));
                prop_assert_eq!(parse_stream_cache_bytes(&format!("{n}K")), Ok(n << 10));
                prop_assert_eq!(parse_stream_cache_bytes(&format!("{n}M")), Ok(n << 20));
                prop_assert_eq!(parse_stream_cache_bytes(&format!("{n}G")), Ok(n << 30));
            }

            #[test]
            fn trace_arg_plain_paths_round_trip(bytes in proptest::collection::vec(any::<u8>(), 1..32)) {
                // Colon- and 'off'-free paths must come back verbatim with
                // the identity filter.
                let path: String = bytes
                    .iter()
                    .map(|b| char::from(b'a' + (b % 26)))
                    .collect();
                prop_assume!(path != "off");
                prop_assert_eq!(
                    parse_trace_arg(&path),
                    Some((path.clone(), StageFilter::all()))
                );
                // And a known-good stage suffix is split off.
                let (p, f) = parse_trace_arg(&format!("{path}:drops")).unwrap();
                prop_assert_eq!(p, path);
                prop_assert_eq!(f, StageFilter::drops());
            }
        }
    }
}
