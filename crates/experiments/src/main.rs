//! `experiments` — regenerate every table and figure of the thesis'
//! evaluation.
//!
//! ```text
//! experiments list
//! experiments run <id>... [--scale quick|standard|full] [--csv-dir DIR]
//! experiments all [--scale ...] [--csv-dir DIR]
//! ```
//!
//! Output is a text table per experiment (capture rate and CPU usage per
//! system under test, like the thesis' plots read as numbers), plus
//! optional CSV files for plotting.

use pcs_core::{all_experiments, Scale};
use std::io::Write;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage:\n  experiments list\n  experiments run <id>... [--scale quick|standard|full] [--csv-dir DIR]\n  experiments all [--scale quick|standard|full] [--csv-dir DIR]\n\nScales: quick (40k packets, 5 rates), standard (300k, 10), full (1M, 19 — the thesis' ladder)."
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "list" => {
            println!("{:<12} DESCRIPTION", "ID");
            for (id, desc, _) in all_experiments() {
                println!("{id:<12} {desc}");
            }
        }
        "run" | "all" => {
            let mut ids: Vec<String> = Vec::new();
            let mut scale = Scale::standard();
            let mut csv_dir: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--scale" => {
                        i += 1;
                        let name = args.get(i).unwrap_or_else(|| usage());
                        scale = Scale::by_name(name).unwrap_or_else(|| {
                            eprintln!("unknown scale '{name}'");
                            std::process::exit(2);
                        });
                    }
                    "--csv-dir" => {
                        i += 1;
                        csv_dir = Some(args.get(i).unwrap_or_else(|| usage()).clone());
                    }
                    other if other.starts_with("--") => usage(),
                    other => ids.push(other.to_string()),
                }
                i += 1;
            }
            let registry = all_experiments();
            let selected: Vec<_> = if args[0] == "all" {
                registry.iter().collect()
            } else {
                if ids.is_empty() {
                    usage();
                }
                let mut sel = Vec::new();
                for id in &ids {
                    match registry.iter().find(|(rid, _, _)| rid == id) {
                        Some(e) => sel.push(e),
                        None => {
                            eprintln!("unknown experiment '{id}' (try `experiments list`)");
                            std::process::exit(2);
                        }
                    }
                }
                sel
            };
            if let Some(dir) = &csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
            }
            for (id, desc, run) in selected {
                eprintln!("== running {id}: {desc}");
                let t0 = Instant::now();
                let e = run(&scale);
                eprintln!("== {id} finished in {:.1}s", t0.elapsed().as_secs_f64());
                println!("{}", e.to_table());
                if let Some(dir) = &csv_dir {
                    let path = format!("{dir}/{}.csv", id.replace('/', "_"));
                    let mut f = std::fs::File::create(&path).expect("create csv");
                    f.write_all(e.to_csv().as_bytes()).expect("write csv");
                    eprintln!("== wrote {path}");
                }
            }
        }
        _ => usage(),
    }
}
