//! Disk / RAID write model and the bonnie++-style benchmark (Fig. 6.13).
//!
//! The sniffers carry 3ware 7000-series ATA RAID controllers with ≥450 GB
//! attached. Fig. 6.13 shows none of them can sustain line-rate writes
//! (125 MB/s); writing only 76-byte headers (~13.56 MB/s at line rate) is
//! comfortably below every machine's limit.

use serde::{Deserialize, Serialize};

/// Sequential-write characteristics of a machine's RAID set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Maximum sustained sequential write in bytes/second.
    pub max_write_bytes_per_sec: u64,
    /// CPU cost per written byte in nanoseconds (page-cache copy +
    /// driver), charged to the writing process.
    pub cpu_ns_per_byte: f64,
    /// Fixed CPU cost per write-back completion interrupt.
    pub irq_ns: u64,
}

impl DiskModel {
    /// A 3ware 7000-series RAID as measured on the Opteron boxes
    /// (calibrated to the Fig. 6.13 shape: fastest of the four).
    pub fn raid_opteron() -> DiskModel {
        DiskModel {
            max_write_bytes_per_sec: 88_000_000,
            cpu_ns_per_byte: 0.9,
            irq_ns: 2_000,
        }
    }

    /// The same controller family on the Xeon boxes (slower effective
    /// write, higher relative CPU).
    pub fn raid_xeon() -> DiskModel {
        DiskModel {
            max_write_bytes_per_sec: 64_000_000,
            cpu_ns_per_byte: 0.7,
            irq_ns: 2_000,
        }
    }

    /// Time the device needs to retire `bytes` of writeback.
    pub fn write_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.max_write_bytes_per_sec as f64 * 1e9).ceil() as u64
    }

    /// CPU nanoseconds charged to a process writing `bytes`.
    pub fn cpu_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.cpu_ns_per_byte).ceil() as u64
    }
}

/// Result of the bonnie++-style sequential write benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteBenchResult {
    /// Achieved throughput in bytes/second.
    pub bytes_per_sec: f64,
    /// CPU utilisation of the writer (0..1).
    pub cpu_utilisation: f64,
}

/// Run the analytic bonnie++ equivalent: stream `total_bytes` to disk on
/// a CPU with the given clock and report throughput + CPU share.
pub fn write_benchmark(disk: &DiskModel, total_bytes: u64) -> WriteBenchResult {
    let disk_time = disk.write_ns(total_bytes) as f64;
    let cpu_time = disk.cpu_ns(total_bytes) as f64;
    // Writeback overlaps CPU work; the wall clock is the larger of the
    // two, CPU share is cpu_time over wall time.
    let wall = disk_time.max(cpu_time);
    WriteBenchResult {
        bytes_per_sec: total_bytes as f64 / wall * 1e9,
        cpu_utilisation: cpu_time / wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_machine_reaches_line_rate() {
        // Fig. 6.13's black line: 125 MB/s would be needed.
        for d in [DiskModel::raid_opteron(), DiskModel::raid_xeon()] {
            assert!(d.max_write_bytes_per_sec < 125_000_000);
        }
    }

    #[test]
    fn header_stream_is_comfortable() {
        // Fig. 6.13's blue line: 13.56 MB/s of 76-byte headers.
        for d in [DiskModel::raid_opteron(), DiskModel::raid_xeon()] {
            assert!(d.max_write_bytes_per_sec > 13_560_000 * 2);
        }
    }

    #[test]
    fn benchmark_reports_disk_bound_throughput() {
        let d = DiskModel::raid_opteron();
        let r = write_benchmark(&d, 1_000_000_000);
        assert!((r.bytes_per_sec - 88e6).abs() / 88e6 < 0.01);
        assert!(r.cpu_utilisation > 0.0 && r.cpu_utilisation < 1.0);
    }

    #[test]
    fn write_and_cpu_costs_scale() {
        let d = DiskModel::raid_xeon();
        assert_eq!(d.write_ns(0), 0);
        assert!(d.write_ns(64_000_000) >= 999_000_000);
        assert_eq!(d.cpu_ns(1000), 700);
    }
}
