//! Memory-subsystem models: shared front-side bus vs per-socket
//! controllers.
//!
//! §2.4: on the Xeon, "every memory access … must share the bandwidth of
//! the front side bus with any inter-processor communication and the
//! normal I/O of the system" — NIC DMA eats into the copy bandwidth the
//! capture stack needs, and a second copying CPU halves it again. The
//! Opteron's integrated controllers and HyperTransport links keep those
//! flows apart.

use serde::{Deserialize, Serialize};

/// How the machine reaches its RAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemoryKind {
    /// One bus shared by all CPUs and all DMA (Intel Xeon, §2.4 Fig.
    /// 2.5a).
    SharedFsb {
        /// Total sustainable bus bandwidth in bytes/second.
        bus_bytes_per_sec: u64,
    },
    /// A controller per socket; DMA rides HyperTransport (AMD Opteron,
    /// Fig. 2.5b).
    PerSocket {
        /// Per-socket sustainable bandwidth in bytes/second.
        socket_bytes_per_sec: u64,
    },
}

/// The memory system plus cache behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    /// Bus organisation.
    pub kind: MemoryKind,
    /// Bandwidth multiplier for copies whose working set fits in L2
    /// (copy-from-cache is substantially faster).
    pub cached_factor: f64,
}

impl MemorySystem {
    /// The Xeon testbed machines: ~3.2 GB/s FSB (533 MT/s × 8 B, derated
    /// for protocol overhead). Netburst's L2 gives copies less of a boost
    /// than K8's — the thesis' memcpy-load experiment (Fig. 6.10) has the
    /// Opterons clearly ahead.
    pub fn xeon() -> MemorySystem {
        MemorySystem {
            kind: MemoryKind::SharedFsb {
                bus_bytes_per_sec: 3_200_000_000,
            },
            cached_factor: 2.26,
        }
    }

    /// The Opteron testbed machines: ~2.7 GB/s sustained per socket
    /// (dual-channel DDR333 derated).
    pub fn opteron() -> MemorySystem {
        MemorySystem {
            kind: MemoryKind::PerSocket {
                socket_bytes_per_sec: 2_700_000_000,
            },
            cached_factor: 3.4,
        }
    }

    /// Effective bandwidth available to **one** CPU performing a copy,
    /// given the current DMA byte rate into memory, how many *other* CPUs
    /// are concurrently moving memory, and whether the source data is
    /// expected L2-resident.
    ///
    /// A copy reads and writes every byte, so it costs 2× its size in bus
    /// traffic; cached copies skip the read from DRAM.
    pub fn copy_bandwidth(
        &self,
        dma_bytes_per_sec: u64,
        other_active_copiers: u32,
        cached: bool,
    ) -> f64 {
        let base = match self.kind {
            MemoryKind::SharedFsb { bus_bytes_per_sec } => {
                let avail = (bus_bytes_per_sec as f64 - dma_bytes_per_sec as f64).max(1e8);
                // Copies move two bytes of bus traffic per payload byte,
                // and concurrent copiers share the bus.
                avail / 2.0 / (1 + other_active_copiers) as f64
            }
            MemoryKind::PerSocket {
                socket_bytes_per_sec,
            } => {
                // DMA lands via HyperTransport without crossing this
                // socket's controller; other sockets have their own.
                socket_bytes_per_sec as f64 / 2.0
            }
        };
        if cached {
            base * self.cached_factor
        } else {
            base
        }
    }

    /// Nanoseconds to copy `bytes` under the given contention conditions.
    pub fn copy_ns(
        &self,
        bytes: u64,
        dma_bytes_per_sec: u64,
        other_active_copiers: u32,
        cached: bool,
    ) -> u64 {
        let bw = self.copy_bandwidth(dma_bytes_per_sec, other_active_copiers, cached);
        (bytes as f64 / bw * 1e9).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_steals_fsb_bandwidth_on_xeon_only() {
        let x = MemorySystem::xeon();
        let o = MemorySystem::opteron();
        let quiet_x = x.copy_bandwidth(0, 0, false);
        let busy_x = x.copy_bandwidth(120_000_000, 0, false);
        assert!(busy_x < quiet_x);
        let quiet_o = o.copy_bandwidth(0, 0, false);
        let busy_o = o.copy_bandwidth(120_000_000, 0, false);
        assert_eq!(quiet_o, busy_o, "Opteron DMA must not contend");
    }

    #[test]
    fn concurrent_copiers_share_the_fsb() {
        let x = MemorySystem::xeon();
        let alone = x.copy_bandwidth(0, 0, false);
        let shared = x.copy_bandwidth(0, 1, false);
        assert!((alone / shared - 2.0).abs() < 1e-9);
        // Opteron sockets are independent.
        let o = MemorySystem::opteron();
        assert_eq!(o.copy_bandwidth(0, 0, false), o.copy_bandwidth(0, 1, false));
    }

    #[test]
    fn cached_copies_are_faster() {
        for m in [MemorySystem::xeon(), MemorySystem::opteron()] {
            assert!(m.copy_bandwidth(0, 0, true) > m.copy_bandwidth(0, 0, false));
        }
    }

    #[test]
    fn copy_ns_scales_linearly() {
        let o = MemorySystem::opteron();
        let t1 = o.copy_ns(1_000, 0, 0, false);
        let t2 = o.copy_ns(2_000, 0, 0, false);
        assert!((t2 as f64 / t1 as f64 - 2.0).abs() < 0.01);
        // 1350 MB/s effective => ~741ns per KB.
        assert!((700..800).contains(&t1), "t1={t1}");
    }

    #[test]
    fn bandwidth_floor_under_extreme_dma() {
        let x = MemorySystem::xeon();
        // Even absurd DMA rates leave a minimum floor.
        let bw = x.copy_bandwidth(u64::MAX, 0, false);
        assert!(bw > 0.0);
    }
}
