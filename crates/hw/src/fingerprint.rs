//! Field-by-field [`Fingerprintable`] implementations for the hardware
//! models, so the run cache can key cells without relying on `Debug`
//! renderings (see `pcs_des::fingerprint`).

use crate::bus::{PciBus, PciKind};
use crate::cost::OsKind;
use crate::cpu::{CpuArch, CpuSpec};
use crate::disk::DiskModel;
use crate::machine::MachineSpec;
use crate::memory::{MemoryKind, MemorySystem};
use crate::nic::{InterruptScheme, NicModel};
use pcs_des::{Fingerprint, Fingerprintable};

impl Fingerprintable for CpuArch {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.tag(match self {
            CpuArch::XeonNetburst => 0,
            CpuArch::OpteronK8 => 1,
        });
    }
}

impl Fingerprintable for CpuSpec {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        self.arch.fingerprint(fp);
        fp.u64(self.clock_hz);
        fp.u64(self.l2_bytes);
        fp.u32(self.sockets);
        fp.bool(self.hyperthreading);
    }
}

impl Fingerprintable for MemoryKind {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        match self {
            MemoryKind::SharedFsb { bus_bytes_per_sec } => {
                fp.tag(0);
                fp.u64(*bus_bytes_per_sec);
            }
            MemoryKind::PerSocket {
                socket_bytes_per_sec,
            } => {
                fp.tag(1);
                fp.u64(*socket_bytes_per_sec);
            }
        }
    }
}

impl Fingerprintable for MemorySystem {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        self.kind.fingerprint(fp);
        fp.f64(self.cached_factor);
    }
}

impl Fingerprintable for PciKind {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.tag(match self {
            PciKind::Pci32 => 0,
            PciKind::Pci64 => 1,
            PciKind::PciX => 2,
        });
    }
}

impl Fingerprintable for PciBus {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        self.kind.fingerprint(fp);
        fp.f64(self.efficiency);
    }
}

impl Fingerprintable for InterruptScheme {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        match self {
            InterruptScheme::PerPacket => fp.tag(0),
            InterruptScheme::Moderated { min_gap_ns } => {
                fp.tag(1);
                fp.u64(*min_gap_ns);
            }
            InterruptScheme::Polling { interval_ns } => {
                fp.tag(2);
                fp.u64(*interval_ns);
            }
        }
    }
}

impl Fingerprintable for NicModel {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.u32(self.rx_fifo_bytes);
        fp.u32(self.rx_ring_slots);
        self.interrupts.fingerprint(fp);
    }
}

impl Fingerprintable for DiskModel {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.u64(self.max_write_bytes_per_sec);
        fp.f64(self.cpu_ns_per_byte);
        fp.u64(self.irq_ns);
    }
}

impl Fingerprintable for OsKind {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.tag(match self {
            OsKind::Linux26 => 0,
            OsKind::FreeBsd54 => 1,
            OsKind::FreeBsd521 => 2,
        });
    }
}

impl Fingerprintable for MachineSpec {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.str(self.name);
        self.cpu.fingerprint(fp);
        self.memory.fingerprint(fp);
        self.pci.fingerprint(fp);
        self.nic.fingerprint(fp);
        self.disk.fingerprint(fp);
        self.os.fingerprint(fp);
        fp.u64(self.ram_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(m: &MachineSpec) -> (u64, u64) {
        let mut fp = Fingerprint::new();
        m.fingerprint(&mut fp);
        fp.finish()
    }

    #[test]
    fn machines_have_distinct_fingerprints() {
        let machines = MachineSpec::all_sniffers();
        for (i, a) in machines.iter().enumerate() {
            for b in machines.iter().skip(i + 1) {
                assert_ne!(key(a), key(b), "{} vs {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn mode_switches_change_the_fingerprint() {
        let base = MachineSpec::snipe();
        assert_ne!(key(&base), key(&base.single_cpu()));
        assert_ne!(key(&base), key(&base.with_hyperthreading()));
        assert_ne!(key(&base), key(&base.with_os(OsKind::FreeBsd54)));
        assert_eq!(key(&base), key(&MachineSpec::snipe()));
    }
}
