//! I/O bus models (PCI variants).
//!
//! §2.2.3: "even the PCI bus can be the bottleneck in a fully utilized
//! Gigabit Ethernet environment" — standard PCI's theoretical 133 MB/s is
//! shared between devices and protocol overhead, which is why the testbed
//! machines use PCI-64. The bus model tracks the aggregate byte rate of
//! its devices (NIC DMA plus disk I/O) and reports whether demand exceeds
//! supply.

use serde::{Deserialize, Serialize};

/// PCI flavours of the era.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PciKind {
    /// 32-bit / 33 MHz: 133 MB/s theoretical.
    Pci32,
    /// 64-bit / 66 MHz: 533 MB/s theoretical.
    Pci64,
    /// PCI-X 64-bit / 133 MHz: 1066 MB/s theoretical.
    PciX,
}

/// A PCI bus with an efficiency-derated usable bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PciBus {
    /// Flavour.
    pub kind: PciKind,
    /// Fraction of theoretical bandwidth that is actually usable
    /// (arbitration, burst setup; ~0.7 for PCI of the era).
    pub efficiency: f64,
}

impl PciBus {
    /// Construct with the standard efficiency derating.
    pub fn new(kind: PciKind) -> PciBus {
        PciBus {
            kind,
            efficiency: 0.7,
        }
    }

    /// Theoretical peak in bytes/second.
    pub fn theoretical_bytes_per_sec(&self) -> u64 {
        match self.kind {
            PciKind::Pci32 => 133_000_000,
            PciKind::Pci64 => 533_000_000,
            PciKind::PciX => 1_066_000_000,
        }
    }

    /// Usable bandwidth in bytes/second.
    pub fn usable_bytes_per_sec(&self) -> u64 {
        (self.theoretical_bytes_per_sec() as f64 * self.efficiency) as u64
    }

    /// Given aggregate demand from all attached devices, the fraction of
    /// each device's transfer that actually goes through (1.0 = no
    /// saturation). The NIC model uses this to overflow its FIFO.
    pub fn service_fraction(&self, demand_bytes_per_sec: u64) -> f64 {
        let cap = self.usable_bytes_per_sec();
        if demand_bytes_per_sec <= cap {
            1.0
        } else {
            cap as f64 / demand_bytes_per_sec as f64
        }
    }

    /// Time to move `bytes` across the bus assuming sole use.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.usable_bytes_per_sec() as f64 * 1e9).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pci32_cannot_sustain_gigabit_with_overheads() {
        // Gigabit line rate is 125 MB/s of frame data; usable PCI32 is
        // ~93 MB/s -> saturation.
        let bus = PciBus::new(PciKind::Pci32);
        assert!(bus.usable_bytes_per_sec() < 125_000_000);
        assert!(bus.service_fraction(125_000_000) < 1.0);
    }

    #[test]
    fn pci64_sustains_gigabit() {
        let bus = PciBus::new(PciKind::Pci64);
        assert!(bus.usable_bytes_per_sec() > 125_000_000);
        assert_eq!(bus.service_fraction(125_000_000), 1.0);
        // Even with a disk writing 50 MB/s alongside.
        assert_eq!(bus.service_fraction(175_000_000), 1.0);
    }

    #[test]
    fn service_fraction_degrades_proportionally() {
        let bus = PciBus::new(PciKind::Pci32);
        let cap = bus.usable_bytes_per_sec();
        let f = bus.service_fraction(cap * 2);
        assert!((f - 0.5).abs() < 0.01);
    }

    #[test]
    fn transfer_time() {
        let bus = PciBus::new(PciKind::Pci64);
        let ns = bus.transfer_ns(373_100); // ~1ms at 373.1 MB/s usable
        assert!((900_000..1_100_000).contains(&ns), "{ns}");
    }
}
