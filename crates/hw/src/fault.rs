//! NIC/bus-level fault-injection hooks.
//!
//! The machine simulation carries an `Option<Box<dyn …>>` of this trait;
//! `None` — no fault plan armed — costs exactly one branch per arrival,
//! the same zero-cost-when-off pattern the trace sink uses. An armed
//! implementation must derive its answers **only** from the simulated
//! clock (`now_ns`) and its own seeded state, never from host time or
//! call order, so a faulted run stays byte-identical at any worker
//! count or pipeline shape.
//!
//! The macro-batched engine (DESIGN.md §17) preserves the per-arrival
//! hook contract exactly: a coalesced NIC run re-executes the full
//! arrival handler — including every hook consultation, at the same
//! `now_ns`, in the same order — for each packet in the run, so a
//! fault-window edge splits a batch at precisely the arrival that
//! crosses it. Hook implementations need no batch awareness, and
//! stateful hooks observe the identical call sequence under
//! `PCS_NO_BATCH=1` (proved by the `batching_is_invisible` suite).

/// Deterministic NIC/bus fault hooks, consulted on the simulation clock.
///
/// Every method has a no-fault default, so an implementation overrides
/// only the faults its plan arms.
pub trait NicBusFault: Send {
    /// Effective RX descriptor ring size at `now_ns`, given the
    /// configured `base` slot count. A "ring stall" fault returns a
    /// smaller value while a stall window is active — as if the driver
    /// stopped replenishing descriptors.
    fn ring_slots(&mut self, _now_ns: u64, base: usize) -> usize {
        base
    }

    /// Extra demand (bytes/s) on the shared I/O bus at `now_ns` — foreign
    /// DMA traffic contending with the NIC during a bus-burst window.
    fn bus_extra_demand_bps(&mut self, _now_ns: u64) -> u64 {
        0
    }

    /// Additional interrupt hold-off at `now_ns`: how many nanoseconds
    /// the NIC must wait before it may fire (0 = no jitter). While an
    /// IRQ-jitter window is active this returns the time remaining until
    /// the window closes.
    fn irq_extra_gap_ns(&mut self, _now_ns: u64) -> u64 {
        0
    }
}

/// Deterministic CPU-scheduler fault hooks, consulted at work-item
/// dispatch on the simulation clock.
///
/// Models a host scheduler preempting the capture machine's workers: an
/// armed implementation returns extra occupancy (in nanoseconds) charged
/// to the CPU before the dispatched work item's own cost, as if a
/// foreign task held the core. The same determinism contract as
/// [`NicBusFault`] applies: answers derive only from `now_ns`, the CPU
/// index, and seeded state.
pub trait SchedFault: Send {
    /// Extra nanoseconds CPU `cpu` is held by a preempting task when a
    /// work item is dispatched at `now_ns` (0 = no preemption).
    fn preempt_extra_ns(&mut self, _now_ns: u64, _cpu: usize) -> u64 {
        0
    }
}
