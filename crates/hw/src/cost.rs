//! The calibrated OS-path cost model.
//!
//! The thesis measures four OS/architecture combinations end to end; it
//! does not decompose per-packet costs. This model assigns nanosecond
//! costs to each step of the two capture stacks (interrupt entry, driver
//! receive work, softirq demux, filter evaluation, buffer copies, the
//! syscall read path, per-packet user-space work), **calibrated so that
//! the simulated capture-rate curves reproduce the thesis' figures**: who
//! wins, where the drop knees sit, and by roughly what factor (see
//! `DESIGN.md` §6 for the target list). The relative magnitudes follow
//! the mechanisms the thesis describes: FreeBSD pays two kernel copies
//! but reads whole buffers per syscall; Linux avoids one copy but pays a
//! syscall per packet; Netburst pays more cycles for interrupts, context
//! switches and uncached memory traffic than K8.

use crate::cpu::CpuArch;
use serde::{Deserialize, Serialize};

/// Operating systems under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OsKind {
    /// Linux 2.6.11 (LSF / PF_PACKET capture stack).
    Linux26,
    /// FreeBSD 5.4 (BPF device capture stack).
    FreeBsd54,
    /// FreeBSD 5.2.1 — the older release of Fig. B.1, with the
    /// Giant-locked network stack (higher per-packet kernel cost).
    FreeBsd521,
}

impl OsKind {
    /// True for the FreeBSD family (BPF double-buffer stack).
    pub fn is_freebsd(&self) -> bool {
        matches!(self, OsKind::FreeBsd54 | OsKind::FreeBsd521)
    }
}

/// Per-step costs in nanoseconds (on the machine's CPUs at full speed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OsCosts {
    /// Hardware interrupt entry/exit/ack (per interrupt, not per packet).
    pub irq_ns: u64,
    /// Driver receive work per packet (descriptor, mbuf/skb alloc+init).
    pub rx_pkt_ns: u64,
    /// Linux softirq protocol demux per packet (0 for FreeBSD, which does
    /// everything in the interrupt, §2.1.1–2.1.2).
    pub softirq_pkt_ns: u64,
    /// Per (packet × attached capture consumer): BPF tap bookkeeping on
    /// FreeBSD, skb clone + queue insert on Linux.
    pub tap_pkt_ns: u64,
    /// Per executed BPF filter instruction.
    pub filter_insn_ns: f64,
    /// Syscall entry/exit.
    pub syscall_ns: u64,
    /// Dequeue + header handling inside a per-packet receive syscall
    /// (Linux path).
    pub recv_pkt_ns: u64,
    /// Process wakeup + context switch, charged per wakeup batch.
    pub wakeup_ns: u64,
    /// Per-packet user-space work of the capture application/libpcap.
    pub user_pkt_ns: u64,
    /// Extra per-packet cost the application pays for kernel/app
    /// contention (socket-queue locks, cacheline bouncing), scaled by the
    /// kernel CPU's utilisation.
    pub contention_ns: u64,
    /// CPU cycles per byte for zlib-style compression at levels 0–9
    /// (per-byte cost is in *cycles* because compression is core-bound —
    /// this is what gives the higher-clocked Xeons their Fig. 6.11
    /// advantage).
    pub compress_cycles_per_byte: [f64; 10],
    /// Per-call overhead of a user-space `memcpy` (the Fig. 6.10 load).
    pub memcpy_call_ns: u64,
    /// Writing to a pipe / reading from it: per-byte cost in ns.
    pub pipe_ns_per_byte: f64,
    /// Fixed cost per pipe syscall.
    pub pipe_syscall_ns: u64,
}

/// Compression cost table shared by all systems (cycles per byte by
/// level; level 0 stores with CRC only).
const COMPRESS_CYCLES: [f64; 10] = [
    8.0,   // 0: store + crc
    30.0,  // 1
    40.0,  // 2
    55.0,  // 3  (the Fig. 6.11 level)
    75.0,  // 4
    95.0,  // 5
    130.0, // 6
    170.0, // 7
    230.0, // 8
    320.0, // 9  (the Fig. B.3 level: overloads everything)
];

/// The calibrated cost table for an OS/architecture pair.
pub fn os_costs(os: OsKind, arch: CpuArch) -> OsCosts {
    use CpuArch::*;
    use OsKind::*;
    match (os, arch) {
        // FreeBSD on Opteron — the thesis' overall winner (moorhen):
        // short interrupt path, everything done in interrupt context,
        // cheap bulk copyout.
        (FreeBsd54, OpteronK8) => OsCosts {
            irq_ns: 1_400,
            rx_pkt_ns: 3_200,
            softirq_pkt_ns: 0,
            tap_pkt_ns: 280,
            filter_insn_ns: 6.0,
            syscall_ns: 400,
            recv_pkt_ns: 0,
            wakeup_ns: 2_200,
            user_pkt_ns: 1_300,
            contention_ns: 250,
            compress_cycles_per_byte: COMPRESS_CYCLES,
            memcpy_call_ns: 25,
            pipe_ns_per_byte: 0.9,
            pipe_syscall_ns: 900,
        },
        // FreeBSD on Xeon (flamingo) — the thesis' weakest system: the
        // 5.x interrupt-thread path is expensive in Netburst cycles and
        // both kernel copies fight the FSB.
        (FreeBsd54, XeonNetburst) => OsCosts {
            irq_ns: 3_200,
            rx_pkt_ns: 6_100,
            softirq_pkt_ns: 0,
            tap_pkt_ns: 500,
            filter_insn_ns: 4.0,
            syscall_ns: 520,
            recv_pkt_ns: 0,
            wakeup_ns: 4_400,
            user_pkt_ns: 1_200,
            contention_ns: 350,
            compress_cycles_per_byte: COMPRESS_CYCLES,
            memcpy_call_ns: 20,
            pipe_ns_per_byte: 1.1,
            pipe_syscall_ns: 1_100,
        },
        // Linux on Opteron (swan): cheap kernel path (no second copy),
        // expensive per-packet receive syscalls.
        (Linux26, OpteronK8) => OsCosts {
            irq_ns: 1_400,
            rx_pkt_ns: 1_400,
            softirq_pkt_ns: 2_400,
            tap_pkt_ns: 700,
            filter_insn_ns: 30.0,
            syscall_ns: 700,
            recv_pkt_ns: 700,
            wakeup_ns: 2_200,
            user_pkt_ns: 700,
            contention_ns: 700,
            compress_cycles_per_byte: COMPRESS_CYCLES,
            memcpy_call_ns: 25,
            pipe_ns_per_byte: 0.9,
            pipe_syscall_ns: 900,
        },
        // Linux on Xeon (snipe): like swan but with Netburst's pricier
        // syscalls/interrupts, partly offset by the higher clock.
        (Linux26, XeonNetburst) => OsCosts {
            irq_ns: 3_000,
            rx_pkt_ns: 1_600,
            softirq_pkt_ns: 2_800,
            tap_pkt_ns: 800,
            filter_insn_ns: 22.0,
            syscall_ns: 900,
            recv_pkt_ns: 850,
            wakeup_ns: 4_000,
            user_pkt_ns: 750,
            contention_ns: 700,
            compress_cycles_per_byte: COMPRESS_CYCLES,
            memcpy_call_ns: 20,
            pipe_ns_per_byte: 1.1,
            pipe_syscall_ns: 1_100,
        },
        // FreeBSD 5.2.1 (Fig. B.1): the Giant-locked stack costs ~35 %
        // more per packet in the kernel than 5.4.
        (FreeBsd521, arch) => {
            let mut c = os_costs(FreeBsd54, arch);
            c.rx_pkt_ns = c.rx_pkt_ns * 135 / 100;
            c.tap_pkt_ns = c.tap_pkt_ns * 135 / 100;
            c.wakeup_ns = c.wakeup_ns * 120 / 100;
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freebsd_does_all_work_in_interrupt_context() {
        for arch in [CpuArch::OpteronK8, CpuArch::XeonNetburst] {
            let c = os_costs(OsKind::FreeBsd54, arch);
            assert_eq!(c.softirq_pkt_ns, 0);
            assert_eq!(c.recv_pkt_ns, 0, "FreeBSD reads whole buffers");
        }
    }

    #[test]
    fn linux_pays_per_packet_syscalls() {
        for arch in [CpuArch::OpteronK8, CpuArch::XeonNetburst] {
            let c = os_costs(OsKind::Linux26, arch);
            assert!(c.softirq_pkt_ns > 0);
            assert!(c.recv_pkt_ns > 0);
            assert!(c.syscall_ns > os_costs(OsKind::FreeBsd54, arch).syscall_ns);
        }
    }

    #[test]
    fn netburst_interrupts_cost_more() {
        for os in [OsKind::Linux26, OsKind::FreeBsd54] {
            let xeon = os_costs(os, CpuArch::XeonNetburst);
            let opteron = os_costs(os, CpuArch::OpteronK8);
            assert!(xeon.irq_ns > opteron.irq_ns);
            assert!(xeon.wakeup_ns > opteron.wakeup_ns);
        }
    }

    #[test]
    fn old_freebsd_is_slower() {
        for arch in [CpuArch::OpteronK8, CpuArch::XeonNetburst] {
            let old = os_costs(OsKind::FreeBsd521, arch);
            let new = os_costs(OsKind::FreeBsd54, arch);
            assert!(old.rx_pkt_ns > new.rx_pkt_ns);
        }
    }

    #[test]
    fn compression_levels_monotonic() {
        let c = os_costs(OsKind::Linux26, CpuArch::OpteronK8);
        for w in c.compress_cycles_per_byte.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn oskind_family() {
        assert!(OsKind::FreeBsd54.is_freebsd());
        assert!(OsKind::FreeBsd521.is_freebsd());
        assert!(!OsKind::Linux26.is_freebsd());
    }
}
