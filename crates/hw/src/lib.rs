//! # pcs-hw — hardware models of the 2005 capture testbed
//!
//! The physical substrate of the Schneider (2005) reproduction: CPU
//! architectures (Intel Xeon/Netburst vs AMD Opteron/K8), their memory
//! subsystems (shared front-side bus vs per-socket controllers +
//! HyperTransport), PCI bus variants, the Intel 82544EI receive NIC, the
//! 3ware RAID sets, the calibrated OS-path cost tables, and the four
//! machine presets of thesis Fig. 2.4 (swan, moorhen, flamingo, snipe).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod cost;
pub mod cpu;
pub mod disk;
pub mod fault;
pub mod fingerprint;
pub mod machine;
pub mod memory;
pub mod nic;

pub use bus::{PciBus, PciKind};
pub use cost::{os_costs, OsCosts, OsKind};
pub use cpu::{CpuArch, CpuSpec};
pub use disk::{write_benchmark, DiskModel, WriteBenchResult};
pub use fault::{NicBusFault, SchedFault};
pub use machine::MachineSpec;
pub use memory::{MemoryKind, MemorySystem};
pub use nic::{InterruptScheme, NicModel};
