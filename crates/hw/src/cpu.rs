//! CPU models: Intel Xeon (Netburst) vs AMD Opteron (K8).
//!
//! The two architectures the thesis purchased (Fig. 2.4): dual Intel Xeon
//! 3.06 GHz (512 kB L2, shared front-side bus, Hyperthreading-capable) and
//! dual AMD Opteron 244 at 1.8 GHz (1 MB L2, per-CPU memory controllers,
//! HyperTransport links). §2.4 explains why the interconnect difference
//! matters for capturing: every Xeon memory access — including NIC DMA —
//! shares the FSB, while Opterons keep DMA and inter-processor traffic off
//! the memory path.

use serde::{Deserialize, Serialize};

/// Processor microarchitecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuArch {
    /// Intel Xeon (Netburst): high clock, long pipeline (expensive
    /// interrupts/syscalls in cycles), shared front-side bus.
    XeonNetburst,
    /// AMD Opteron (K8): lower clock, short pipeline, integrated memory
    /// controller per socket.
    OpteronK8,
}

/// A processor complex: sockets, clock, cache, SMT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Microarchitecture.
    pub arch: CpuArch,
    /// Core clock in Hz.
    pub clock_hz: u64,
    /// L2 cache per socket in bytes.
    pub l2_bytes: u64,
    /// Populated sockets (1 in the "no SMP" experiments, 2 otherwise).
    pub sockets: u32,
    /// Hyperthreading enabled (Xeon only): two virtual CPUs per socket.
    pub hyperthreading: bool,
}

impl CpuSpec {
    /// The thesis' Xeon configuration (3.06 GHz, 512 kB L2).
    pub fn xeon(sockets: u32, hyperthreading: bool) -> CpuSpec {
        CpuSpec {
            arch: CpuArch::XeonNetburst,
            clock_hz: 3_060_000_000,
            l2_bytes: 512 * 1024,
            sockets,
            hyperthreading,
        }
    }

    /// The thesis' Opteron 244 configuration (1.8 GHz, 1 MB L2).
    pub fn opteron(sockets: u32) -> CpuSpec {
        CpuSpec {
            arch: CpuArch::OpteronK8,
            clock_hz: 1_800_000_000,
            l2_bytes: 1024 * 1024,
            sockets,
            hyperthreading: false,
        }
    }

    /// Number of schedulable CPUs the OS sees.
    pub fn logical_cpus(&self) -> u32 {
        if self.hyperthreading {
            self.sockets * 2
        } else {
            self.sockets
        }
    }

    /// Convert a cycle count into nanoseconds on this CPU at full speed.
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        // ns = cycles * 1e9 / clock_hz, rounded up.
        let num = cycles as u128 * 1_000_000_000u128;
        num.div_ceil(self.clock_hz as u128) as u64
    }

    /// Throughput factor of one *virtual* CPU when its Hyperthreading
    /// sibling is also busy. Netburst SMT yields ~1.1× combined throughput,
    /// i.e. each sibling runs at ~0.55× (§6.3.7 finds the net effect on
    /// capturing is a wash).
    pub fn smt_factor(&self) -> f64 {
        if self.hyperthreading {
            0.55
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_thesis_inventory() {
        let x = CpuSpec::xeon(2, false);
        assert_eq!(x.clock_hz, 3_060_000_000);
        assert_eq!(x.l2_bytes, 512 * 1024);
        assert_eq!(x.logical_cpus(), 2);
        let o = CpuSpec::opteron(2);
        assert_eq!(o.l2_bytes, 1024 * 1024);
        assert!(!o.hyperthreading);
    }

    #[test]
    fn hyperthreading_doubles_logical_cpus() {
        assert_eq!(CpuSpec::xeon(2, true).logical_cpus(), 4);
        assert_eq!(CpuSpec::xeon(1, true).logical_cpus(), 2);
        assert_eq!(CpuSpec::xeon(2, false).logical_cpus(), 2);
    }

    #[test]
    fn cycles_to_ns_rounds_up() {
        let o = CpuSpec::opteron(1); // 1.8 GHz: 1 cycle = 0.55..ns
        assert_eq!(o.cycles_to_ns(0), 0);
        assert_eq!(o.cycles_to_ns(1800), 1000);
        assert_eq!(o.cycles_to_ns(1), 1);
        let x = CpuSpec::xeon(1, false);
        assert_eq!(x.cycles_to_ns(3_060_000_000), 1_000_000_000);
    }

    #[test]
    fn smt_factor() {
        assert_eq!(CpuSpec::xeon(2, true).smt_factor(), 0.55);
        assert_eq!(CpuSpec::xeon(2, false).smt_factor(), 1.0);
        assert_eq!(CpuSpec::opteron(2).smt_factor(), 1.0);
    }
}
