//! Machine presets: the thesis' four systems under test (Fig. 2.4).
//!
//! | Name     | Architecture              | OS            |
//! |----------|---------------------------|---------------|
//! | swan     | AMD Opteron 244 (1024 kB) | Linux 2.6.11  |
//! | moorhen  | AMD Opteron 244 (1024 kB) | FreeBSD 5.4   |
//! | flamingo | Intel Xeon 3.06 (512 kB)  | FreeBSD 5.4   |
//! | snipe    | Intel Xeon 3.06 (512 kB)  | Linux 2.6.11  |
//!
//! All carry 2 GB RAM, an Intel 82544EI fiber GbE controller on PCI-64,
//! and a 3ware 7000 ATA RAID.

use crate::bus::{PciBus, PciKind};
use crate::cost::{os_costs, OsCosts, OsKind};
use crate::cpu::{CpuArch, CpuSpec};
use crate::disk::DiskModel;
use crate::memory::MemorySystem;
use crate::nic::NicModel;
use serde::{Deserialize, Serialize};

/// A complete system under test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Hostname in the testbed.
    pub name: &'static str,
    /// Processor complex.
    pub cpu: CpuSpec,
    /// Memory subsystem.
    pub memory: MemorySystem,
    /// I/O bus the NIC and RAID share.
    pub pci: PciBus,
    /// Capture NIC.
    pub nic: NicModel,
    /// RAID set.
    pub disk: DiskModel,
    /// Installed operating system.
    pub os: OsKind,
    /// RAM in bytes (2 GB on all sniffers).
    pub ram_bytes: u64,
}

impl MachineSpec {
    /// swan: Linux 2.6.11 on dual Opteron 244.
    pub fn swan() -> MachineSpec {
        MachineSpec {
            name: "swan",
            cpu: CpuSpec::opteron(2),
            memory: MemorySystem::opteron(),
            pci: PciBus::new(PciKind::Pci64),
            nic: NicModel::intel_82544(),
            disk: DiskModel::raid_opteron(),
            os: OsKind::Linux26,
            ram_bytes: 2 << 30,
        }
    }

    /// moorhen: FreeBSD 5.4 on dual Opteron 244.
    pub fn moorhen() -> MachineSpec {
        MachineSpec {
            name: "moorhen",
            os: OsKind::FreeBsd54,
            ..MachineSpec::swan()
        }
    }

    /// flamingo: FreeBSD 5.4 on dual Xeon 3.06 GHz.
    pub fn flamingo() -> MachineSpec {
        MachineSpec {
            name: "flamingo",
            cpu: CpuSpec::xeon(2, false),
            memory: MemorySystem::xeon(),
            pci: PciBus::new(PciKind::Pci64),
            nic: NicModel::intel_82544(),
            disk: DiskModel::raid_xeon(),
            os: OsKind::FreeBsd54,
            ram_bytes: 2 << 30,
        }
    }

    /// snipe: Linux 2.6.11 on dual Xeon 3.06 GHz.
    pub fn snipe() -> MachineSpec {
        MachineSpec {
            name: "snipe",
            os: OsKind::Linux26,
            ..MachineSpec::flamingo()
        }
    }

    /// gen: the workload generator — a dual AMD Athlon MP 2000+ with a
    /// PCI-64 bus and the Syskonnect fiber NIC (§3.3). Its transmit-side
    /// behaviour lives in `pcs-pktgen`'s transmit models; the preset is
    /// here for inventory completeness and for simulations that point a
    /// capture stack at the generator machine itself.
    pub fn gen() -> MachineSpec {
        MachineSpec {
            name: "gen",
            cpu: CpuSpec {
                arch: CpuArch::OpteronK8, // closest modelled microarch (K7 core)
                clock_hz: 1_667_000_000,
                l2_bytes: 256 * 1024,
                sockets: 2,
                hyperthreading: false,
            },
            memory: MemorySystem::opteron(),
            pci: PciBus::new(PciKind::Pci64),
            nic: NicModel::intel_82544(),
            disk: DiskModel::raid_opteron(),
            os: OsKind::Linux26,
            ram_bytes: 1 << 30,
        }
    }

    /// The four sniffers in the order the thesis plots them.
    pub fn all_sniffers() -> [MachineSpec; 4] {
        [
            MachineSpec::swan(),
            MachineSpec::snipe(),
            MachineSpec::moorhen(),
            MachineSpec::flamingo(),
        ]
    }

    /// This machine restricted to one processor ("no SMP" mode).
    pub fn single_cpu(mut self) -> MachineSpec {
        self.cpu.sockets = 1;
        self
    }

    /// Enable Hyperthreading (only meaningful on the Xeons).
    pub fn with_hyperthreading(mut self) -> MachineSpec {
        if self.cpu.arch == CpuArch::XeonNetburst {
            self.cpu.hyperthreading = true;
        }
        self
    }

    /// Swap the installed OS (e.g. FreeBSD 5.2.1 for Fig. B.1).
    pub fn with_os(mut self, os: OsKind) -> MachineSpec {
        self.os = os;
        self
    }

    /// The calibrated cost table for this machine.
    pub fn costs(&self) -> OsCosts {
        os_costs(self.os, self.cpu.arch)
    }

    /// A short OS/arch label, e.g. "Linux/AMD - swan".
    pub fn label(&self) -> String {
        let os = match self.os {
            OsKind::Linux26 => "Linux",
            OsKind::FreeBsd54 => "FreeBSD",
            OsKind::FreeBsd521 => "FreeBSD-5.2.1",
        };
        let arch = match self.cpu.arch {
            CpuArch::OpteronK8 => "AMD",
            CpuArch::XeonNetburst => "Intel",
        };
        format!("{os}/{arch} - {}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_fig_2_4() {
        let swan = MachineSpec::swan();
        assert_eq!(swan.cpu.arch, CpuArch::OpteronK8);
        assert_eq!(swan.os, OsKind::Linux26);
        let moorhen = MachineSpec::moorhen();
        assert_eq!(moorhen.cpu.arch, CpuArch::OpteronK8);
        assert_eq!(moorhen.os, OsKind::FreeBsd54);
        let flamingo = MachineSpec::flamingo();
        assert_eq!(flamingo.cpu.arch, CpuArch::XeonNetburst);
        assert_eq!(flamingo.os, OsKind::FreeBsd54);
        let snipe = MachineSpec::snipe();
        assert_eq!(snipe.cpu.arch, CpuArch::XeonNetburst);
        assert_eq!(snipe.os, OsKind::Linux26);
        for m in MachineSpec::all_sniffers() {
            assert_eq!(m.ram_bytes, 2 << 30);
            assert_eq!(m.cpu.sockets, 2);
            assert!(!m.cpu.hyperthreading);
        }
    }

    #[test]
    fn gen_preset() {
        let g = MachineSpec::gen();
        assert_eq!(g.name, "gen");
        assert_eq!(g.cpu.sockets, 2);
        assert_eq!(g.os, OsKind::Linux26);
    }

    #[test]
    fn labels() {
        assert_eq!(MachineSpec::swan().label(), "Linux/AMD - swan");
        assert_eq!(MachineSpec::flamingo().label(), "FreeBSD/Intel - flamingo");
    }

    #[test]
    fn mode_switches() {
        let m = MachineSpec::moorhen().single_cpu();
        assert_eq!(m.cpu.logical_cpus(), 1);
        let h = MachineSpec::snipe().with_hyperthreading();
        assert_eq!(h.cpu.logical_cpus(), 4);
        // HT is a no-op on Opterons.
        let o = MachineSpec::swan().with_hyperthreading();
        assert_eq!(o.cpu.logical_cpus(), 2);
        let old = MachineSpec::moorhen().with_os(OsKind::FreeBsd521);
        assert!(old.costs().rx_pkt_ns > MachineSpec::moorhen().costs().rx_pkt_ns);
    }
}
