//! Receive-side NIC model (Intel 82544EI and friends).
//!
//! The card verifies the checksum, strips the preamble, DMAs the frame
//! into host memory through the PCI bus, and raises an interrupt (§2.1).
//! The model carries the two loss points a real card has: the on-chip RX
//! FIFO (overflow when the bus can't drain it) and the host descriptor
//! ring (overflow when the kernel doesn't replenish buffers fast enough),
//! plus the interrupt scheme — per-packet by default, since "every
//! received packet generates one interrupt" (§2.2.1), with optional
//! moderation as offered by the era's Intel/Syskonnect cards.

use serde::{Deserialize, Serialize};

/// Interrupt generation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InterruptScheme {
    /// One interrupt per received packet (the thesis' baseline).
    PerPacket,
    /// Hardware interrupt moderation: at most one interrupt per
    /// `min_gap_ns` nanoseconds; packets arriving in between are picked up
    /// by the same interrupt ("gathering some interrupts before
    /// originating one", §2.2.1).
    Moderated {
        /// Minimum spacing between interrupts.
        min_gap_ns: u64,
    },
    /// Device polling (FreeBSD `polling(4)` / Linux NAPI, §2.2.1): the
    /// kernel visits the ring every `interval_ns` instead of taking
    /// receive interrupts, bounding the interrupt load at any packet rate
    /// — the Mogul/Ramakrishnan livelock remedy. The per-visit entry cost
    /// is a fraction of a full interrupt.
    Polling {
        /// Poll period.
        interval_ns: u64,
    },
}

/// Receive NIC parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicModel {
    /// On-chip receive FIFO in bytes (64 kB on the 82544).
    pub rx_fifo_bytes: u32,
    /// Host descriptor ring slots (the e1000 default of 256).
    pub rx_ring_slots: u32,
    /// Interrupt policy.
    pub interrupts: InterruptScheme,
}

impl NicModel {
    /// The Intel 82544EI GBit fiber controller in the sniffers.
    pub fn intel_82544() -> NicModel {
        NicModel {
            rx_fifo_bytes: 64 * 1024,
            rx_ring_slots: 256,
            interrupts: InterruptScheme::PerPacket,
        }
    }

    /// The same card with hardware interrupt moderation enabled
    /// (an extension measurement; not the thesis default).
    pub fn intel_82544_moderated(min_gap_us: u64) -> NicModel {
        NicModel {
            interrupts: InterruptScheme::Moderated {
                min_gap_ns: min_gap_us * 1000,
            },
            ..NicModel::intel_82544()
        }
    }

    /// The card driven by device polling at the given period
    /// (FreeBSD `kern.polling` / NAPI style, §2.2.1).
    pub fn intel_82544_polling(interval_us: u64) -> NicModel {
        NicModel {
            interrupts: InterruptScheme::Polling {
                interval_ns: interval_us.max(1) * 1000,
            },
            ..NicModel::intel_82544()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let n = NicModel::intel_82544();
        assert_eq!(n.rx_fifo_bytes, 65536);
        assert_eq!(n.rx_ring_slots, 256);
        assert_eq!(n.interrupts, InterruptScheme::PerPacket);
        let m = NicModel::intel_82544_moderated(100);
        assert_eq!(
            m.interrupts,
            InterruptScheme::Moderated {
                min_gap_ns: 100_000
            }
        );
        let p = NicModel::intel_82544_polling(50);
        assert_eq!(
            p.interrupts,
            InterruptScheme::Polling {
                interval_ns: 50_000
            }
        );
    }
}
