//! Property tests for the machine simulation: conservation and
//! determinism must hold for *any* workload and configuration.

use pcs_hw::MachineSpec;
use pcs_oskernel::{AppConfig, BufferConfig, MachineFaults, MachineSim, RunReport, SimConfig};
use pcs_pktgen::{Generator, PktgenConfig, SizeSource, TxModel};
use pcs_trace::{CellTrace, SutTrace, TraceSink, TraceSpec};
use proptest::prelude::*;

fn source(
    count: u64,
    rate: f64,
    burst: u32,
    seed: u64,
) -> impl Iterator<Item = (pcs_des::SimTime, pcs_wire::SimPacket)> {
    let cfg = PktgenConfig {
        count,
        size: SizeSource::Fixed(659),
        ..PktgenConfig::default()
    };
    let mut g = Generator::new(cfg, TxModel::syskonnect(), seed);
    g.set_target_rate(rate, 659.0);
    g.set_burstiness(burst);
    g.map(|tp| (tp.time, tp.packet))
}

fn arb_machine() -> impl Strategy<Value = MachineSpec> {
    prop_oneof![
        Just(MachineSpec::swan()),
        Just(MachineSpec::snipe()),
        Just(MachineSpec::moorhen()),
        Just(MachineSpec::flamingo()),
        Just(MachineSpec::swan().single_cpu()),
        Just(MachineSpec::moorhen().single_cpu()),
        Just(MachineSpec::snipe().with_hyperthreading()),
    ]
}

proptest! {
    // Each case runs a small simulation; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packet conservation: every offered packet is accounted exactly
    /// once per application (received, buffer-dropped, pool-dropped or
    /// filter-rejected) or dropped at the NIC ring.
    #[test]
    fn conservation(
        spec in arb_machine(),
        count in 500u64..4_000,
        rate in 100f64..900.0,
        burst in 1u32..100,
        napps in 1usize..4,
        small_buffers in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let buffers = if small_buffers {
            BufferConfig::default_buffers()
        } else {
            BufferConfig::increased()
        };
        let cfg = SimConfig {
            buffers,
            apps: vec![AppConfig::plain(); napps],
            ..SimConfig::default()
        };
        let r = MachineSim::new(spec, cfg).run(source(count, rate, burst, seed));
        prop_assert_eq!(r.offered, count);
        for a in &r.apps {
            let s = a.stats;
            prop_assert_eq!(
                a.received + s.dropped_buffer + s.dropped_pool + s.rejected + r.nic_ring_drops,
                r.offered,
                "conservation violated on {}", r.machine
            );
            prop_assert_eq!(s.delivered, a.received);
            prop_assert!(a.received_bytes >= a.received * 42);
        }
        // CPU accounting covers the elapsed time.
        for acct in &r.final_acct {
            prop_assert!(acct.total() <= r.elapsed.as_nanos() + 1_000_000);
        }
    }

    /// Bitwise determinism: identical inputs give identical reports.
    #[test]
    fn determinism(
        count in 500u64..2_000,
        rate in 100f64..900.0,
        seed in any::<u64>(),
    ) {
        let run = || {
            MachineSim::new(MachineSpec::flamingo(), SimConfig::default())
                .run(source(count, rate, 16, seed))
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.apps[0].received, b.apps[0].received);
        prop_assert_eq!(a.elapsed, b.elapsed);
        prop_assert_eq!(a.final_acct, b.final_acct);
        prop_assert_eq!(a.nic_ring_drops, b.nic_ring_drops);
    }

    /// Monotonicity: offering the same packets more slowly never reduces
    /// the capture rate (single app, plain capture).
    #[test]
    fn slower_is_never_worse(
        count in 1_000u64..3_000,
        seed in any::<u64>(),
    ) {
        let run = |rate: f64| {
            MachineSim::new(MachineSpec::flamingo().single_cpu(), SimConfig::default())
                .run(source(count, rate, 16, seed))
                .capture_rate(0)
        };
        let slow = run(200.0);
        let fast = run(860.0);
        prop_assert!(slow + 1e-9 >= fast, "slow {slow} vs fast {fast}");
    }
}

/// A ring-stall hook (RX ring pinned to one slot) for the pooling
/// differential test: faults exercise the preempt-split and
/// ring-overflow paths that touch pooled buffers.
struct Stall;
impl pcs_hw::NicBusFault for Stall {
    fn ring_slots(&mut self, _now_ns: u64, _base: usize) -> usize {
        1
    }
}
impl pcs_hw::SchedFault for Stall {}
impl MachineFaults for Stall {}

/// A constant-preemption hook (2 µs per dispatch), splitting work items
/// mid-segment — the path that must carry the cached duration and the
/// spilled segment vector correctly through the pool.
struct Preempt;
impl pcs_hw::NicBusFault for Preempt {}
impl pcs_hw::SchedFault for Preempt {
    fn preempt_extra_ns(&mut self, _now_ns: u64, _cpu: usize) -> u64 {
        2_000
    }
}
impl MachineFaults for Preempt {}

/// A kernel-buffer-shrink window (capacity cut to 1/4 between 1 ms and
/// 3 ms of sim time) for the batching differential test: the
/// buffer_permille hook is consulted on every delivery, so a coalesced
/// NIC run must observe the window edge at exactly the same arrival as
/// the per-packet engine.
struct Kshrink;
impl pcs_hw::NicBusFault for Kshrink {}
impl pcs_hw::SchedFault for Kshrink {}
impl MachineFaults for Kshrink {
    fn buffer_permille(&mut self, now_ns: u64) -> u32 {
        if (1_000_000..3_000_000).contains(&now_ns) {
            250
        } else {
            1000
        }
    }
}

/// Render a traced report's exports exactly as the sweep exporter
/// would: pooled and unpooled runs must agree on every exported byte,
/// not just on the report struct.
fn rendered_exports(r: &RunReport) -> (String, String) {
    let cell = CellTrace {
        label: format!("prop {}", r.machine),
        key: 1,
        achieved_mbps: 0.0,
        suts: vec![SutTrace {
            label: r.machine.clone(),
            report: r.trace.as_deref().expect("traced run").clone(),
            attributions: r.attributions(),
            stage_times: r.stage_times.clone(),
        }],
    };
    let cells = std::slice::from_ref(&cell);
    (
        pcs_trace::export::chrome_trace_json(cells),
        pcs_trace::export::events_csv(cells),
    )
}

proptest! {
    // Two full runs per case; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pooling is invisible: a pooled run and a pool-disabled run (the
    /// `PCS_NO_POOL=1` escape hatch) produce byte-identical reports —
    /// and, when traced, byte-identical trace exports — across
    /// machines, rates, app counts and fault plans. Only allocator
    /// traffic may differ.
    #[test]
    fn pooling_is_invisible(
        spec in arb_machine(),
        count in 500u64..2_500,
        rate in 100f64..900.0,
        burst in 1u32..64,
        napps in 1usize..3,
        traced in any::<bool>(),
        fault in 0u8..3,
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig {
            apps: vec![AppConfig::plain(); napps],
            ..SimConfig::default()
        };
        let run = |pooled: bool| {
            let mut sim = MachineSim::new(spec, cfg.clone()).with_pooling(pooled);
            if traced {
                sim = sim.with_trace(TraceSink::bounded(TraceSpec::default()));
            }
            let hooks: Option<Box<dyn MachineFaults>> = match fault {
                1 => Some(Box::new(Stall)),
                2 => Some(Box::new(Preempt)),
                _ => None,
            };
            sim.with_faults(hooks).run(source(count, rate, burst, seed))
        };
        let pooled = run(true);
        let unpooled = run(false);
        prop_assert_eq!(format!("{pooled:?}"), format!("{unpooled:?}"));
        if traced {
            let (json_a, csv_a) = rendered_exports(&pooled);
            let (json_b, csv_b) = rendered_exports(&unpooled);
            prop_assert_eq!(json_a, json_b);
            prop_assert_eq!(csv_a, csv_b);
        }
    }

    /// Batching is invisible: the macro-batched engine (lazy arrival
    /// admission + NIC-run coalescing + cost-model memos) and the
    /// legacy per-packet engine (the `PCS_NO_BATCH=1` escape hatch)
    /// produce byte-identical reports — and, when traced, byte-identical
    /// trace exports and run-ledger documents — across machines, rates,
    /// app counts, trace filters (including `sched`, whose dispatch
    /// order pins the exact event interleaving) and fault plans
    /// (kshrink / preempt / ringstall, whose hooks must fire at exactly
    /// the same arrival inside a coalesced run).
    #[test]
    fn batching_is_invisible(
        spec in arb_machine(),
        count in 500u64..2_500,
        rate in 100f64..900.0,
        burst in 1u32..64,
        napps in 1usize..3,
        filter in 0u8..4,
        fault in 0u8..4,
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig {
            apps: vec![AppConfig::plain(); napps],
            ..SimConfig::default()
        };
        let run = |batched: bool| {
            let mut sim = MachineSim::new(spec, cfg.clone())
                .with_batching(batched)
                .with_stage_times(true);
            let spec = match filter {
                1 => Some(TraceSpec::default()),
                2 => Some(TraceSpec { filter: pcs_trace::StageFilter::drops(), ..TraceSpec::default() }),
                3 => {
                    let mut f = pcs_trace::StageFilter::sched();
                    for s in pcs_trace::Stage::ALL {
                        f.insert(s);
                    }
                    Some(TraceSpec { filter: f, ..TraceSpec::default() })
                }
                _ => None,
            };
            if let Some(spec) = spec {
                sim = sim.with_trace(TraceSink::bounded(spec));
            }
            let hooks: Option<Box<dyn MachineFaults>> = match fault {
                1 => Some(Box::new(Stall)),
                2 => Some(Box::new(Preempt)),
                3 => Some(Box::new(Kshrink)),
                _ => None,
            };
            sim.with_faults(hooks).run(source(count, rate, burst, seed))
        };
        let batched = run(true);
        let legacy = run(false);
        prop_assert_eq!(format!("{batched:?}"), format!("{legacy:?}"));
        if filter != 0 {
            let (json_a, csv_a) = rendered_exports(&batched);
            let (json_b, csv_b) = rendered_exports(&legacy);
            prop_assert_eq!(json_a, json_b);
            prop_assert_eq!(csv_a, csv_b);
            prop_assert_eq!(rendered_ledger(&batched), rendered_ledger(&legacy));
        }
    }
}

/// Render a traced report as the full `--ledger` document, exactly as
/// the experiments CLI would: the batched and per-packet engines must
/// agree on every ledger byte, not just on the report struct.
fn rendered_ledger(r: &RunReport) -> String {
    let cell = CellTrace {
        label: format!("prop {}", r.machine),
        key: 1,
        achieved_mbps: 0.0,
        suts: vec![SutTrace {
            label: r.machine.clone(),
            report: r.trace.as_deref().expect("traced run").clone(),
            attributions: r.attributions(),
            stage_times: r.stage_times.clone(),
        }],
    };
    let meta = pcs_obs::LedgerMeta {
        scale: "prop".to_owned(),
        experiments: vec!["batching_is_invisible".to_owned()],
        faults: None,
    };
    pcs_obs::render_ledger(&meta, std::slice::from_ref(&cell), None)
}
