//! Behavioural tests for the machine simulator: conservation laws,
//! determinism, and the qualitative mechanisms each capture stack must
//! exhibit.

use pcs_hw::MachineSpec;
use pcs_oskernel::{AppConfig, BufferConfig, MachineSim, RunReport, SimConfig};
use pcs_pktgen::{DistConfig, Generator, PktgenConfig, SizeSource, TwoStageDist, TxModel};

/// A generator over the synthetic MWN distribution at a given rate.
fn source(
    count: u64,
    rate_mbps: f64,
    seed: u64,
) -> impl Iterator<Item = (pcs_des::SimTime, pcs_wire::SimPacket)> {
    let counts = pcs_pktgen::mwn_counts(1_000_000);
    let dist =
        TwoStageDist::from_counts(counts.iter().map(|(&s, &c)| (s, c)), &DistConfig::default())
            .unwrap();
    let mean = pcs_pktgen::mwn_mean(&counts) + 14.0;
    let cfg = PktgenConfig {
        count,
        size: SizeSource::Distribution(dist),
        ..PktgenConfig::default()
    };
    let mut g = Generator::new(cfg, TxModel::syskonnect(), seed);
    g.set_target_rate(rate_mbps, mean);
    g.set_burstiness(16);
    g.map(|tp| (tp.time, tp.packet))
}

fn run(spec: MachineSpec, cfg: SimConfig, count: u64, rate: f64, seed: u64) -> RunReport {
    MachineSim::new(spec, cfg).run(source(count, rate, seed))
}

#[test]
fn low_rate_everyone_captures_everything() {
    for spec in MachineSpec::all_sniffers() {
        let r = run(spec, SimConfig::default(), 20_000, 100.0, 1);
        assert_eq!(r.offered, 20_000, "{}", r.machine);
        assert_eq!(
            r.apps[0].received, 20_000,
            "{} dropped at 100 Mbit/s: {:?}",
            r.machine, r.apps[0].stats
        );
        assert_eq!(r.nic_ring_drops, 0, "{}", r.machine);
    }
}

#[test]
fn conservation_of_packets() {
    for spec in MachineSpec::all_sniffers() {
        for rate in [300.0, 950.0] {
            let r = run(spec.single_cpu(), SimConfig::default(), 30_000, rate, 2);
            let a = &r.apps[0];
            let s = a.stats;
            let total =
                a.received + s.dropped_buffer + s.dropped_pool + s.rejected + r.nic_ring_drops;
            assert_eq!(
                total, r.offered,
                "{} at {rate}: received {} + drops must equal offered {}",
                r.machine, a.received, r.offered
            );
            assert_eq!(s.accepted + s.rejected + r.nic_ring_drops, r.offered);
            assert_eq!(s.delivered, a.received + s.app_residue);
            // The per-stage attribution must partition the offered
            // packets exactly (the paper's loss-localization identity).
            let attr = r.attribution(0);
            assert!(attr.balanced(), "{}: {attr:?}", r.machine);
            assert_eq!(attr.generated, r.offered);
        }
    }
}

#[test]
fn deterministic_given_seed() {
    let spec = MachineSpec::swan();
    let a = run(spec, SimConfig::default(), 10_000, 500.0, 7);
    let b = run(spec, SimConfig::default(), 10_000, 500.0, 7);
    assert_eq!(a.apps[0].received, b.apps[0].received);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.final_acct, b.final_acct);
    let c = run(spec, SimConfig::default(), 10_000, 500.0, 8);
    // A different seed gives a different packet stream; byte totals
    // virtually never coincide.
    assert_ne!(a.apps[0].received_bytes, c.apps[0].received_bytes);
}

#[test]
fn cpu_time_is_conserved() {
    let r = run(
        MachineSpec::moorhen(),
        SimConfig::default(),
        10_000,
        400.0,
        3,
    );
    for (i, acct) in r.final_acct.iter().enumerate() {
        let total = acct.total();
        let elapsed = r.elapsed.as_nanos();
        // Accounting must cover the whole run within one work item of
        // slack.
        assert!(
            total <= elapsed && total >= elapsed - elapsed / 20,
            "cpu{i}: accounted {total} vs elapsed {elapsed}"
        );
    }
}

#[test]
fn overload_degrades_capture_and_reports_busy_cpu() {
    // flamingo single-CPU at the top rate is the thesis' canonical
    // overload case (§6.3.1).
    let spec = MachineSpec::flamingo().single_cpu();
    let r = run(spec, SimConfig::default(), 60_000, 950.0, 4);
    let rate = r.capture_rate(0);
    assert!(rate < 0.9, "expected heavy loss, captured {rate}");
    assert!(
        r.load_cpu_usage() > 0.9,
        "overloaded CPU should be pegged during load: {}",
        r.load_cpu_usage()
    );
    // moorhen handles the same load single-CPU (the headline result).
    let m = run(
        MachineSpec::moorhen().single_cpu(),
        SimConfig::default(),
        60_000,
        950.0,
        4,
    );
    assert!(
        m.capture_rate(0) > rate + 0.2,
        "moorhen {} should clearly beat flamingo {rate}",
        m.capture_rate(0)
    );
}

#[test]
fn second_cpu_helps() {
    for spec in [MachineSpec::swan(), MachineSpec::flamingo()] {
        let up = run(spec.single_cpu(), SimConfig::default(), 40_000, 950.0, 5);
        let smp = run(spec, SimConfig::default(), 40_000, 950.0, 5);
        assert!(
            smp.capture_rate(0) >= up.capture_rate(0) - 0.02,
            "{}: SMP {} must not be worse than UP {}",
            spec.name,
            smp.capture_rate(0),
            up.capture_rate(0)
        );
    }
}

#[test]
fn bigger_buffers_help_linux() {
    // The default 110 kB rmem holds ~50 full-size packets; bursty trains
    // overflow it long before the CPU runs out (§6.3.1). Rates near the
    // knee make the contrast sharp without needing million-packet runs.
    let spec = MachineSpec::swan().single_cpu();
    let small = SimConfig {
        buffers: BufferConfig::default_buffers(),
        ..SimConfig::default()
    };
    let big = SimConfig {
        buffers: BufferConfig::increased(),
        ..SimConfig::default()
    };
    let r_small = run(spec, small, 150_000, 800.0, 6);
    let r_big = run(spec, big, 150_000, 800.0, 6);
    assert!(
        r_big.capture_rate(0) > r_small.capture_rate(0),
        "128MB ({}) must beat 108kB ({})",
        r_big.capture_rate(0),
        r_small.capture_rate(0)
    );
}

#[test]
fn reject_all_filter_captures_nothing_cheaply() {
    let mut cfg = SimConfig::default();
    cfg.apps[0].filter = Some(pcs_bpf::programs::reject_all());
    let r = run(MachineSpec::moorhen(), cfg, 10_000, 500.0, 9);
    assert_eq!(r.apps[0].received, 0);
    assert_eq!(r.apps[0].stats.rejected, 10_000);
}

#[test]
fn fig65_filter_accepts_all_generated_packets() {
    let mut cfg = SimConfig::default();
    cfg.apps[0].filter = Some(pcs_bpf::programs::fig65_program(65_535).unwrap());
    let r = run(MachineSpec::moorhen(), cfg, 10_000, 300.0, 10);
    assert_eq!(r.apps[0].stats.rejected, 0);
    assert_eq!(r.apps[0].received, 10_000);
}

#[test]
fn multiple_apps_each_get_their_own_stream() {
    let cfg = SimConfig {
        apps: vec![AppConfig::plain(), AppConfig::plain()],
        ..SimConfig::default()
    };
    for spec in [MachineSpec::moorhen(), MachineSpec::swan()] {
        let r = run(spec, cfg.clone(), 15_000, 200.0, 11);
        assert_eq!(r.apps.len(), 2);
        for a in &r.apps {
            assert_eq!(a.received, 15_000, "{} app starved", r.machine);
        }
    }
}

#[test]
fn linux_collapses_with_many_apps_freebsd_degrades() {
    let cfg = SimConfig {
        apps: vec![AppConfig::plain(); 8],
        ..SimConfig::default()
    };
    let lin = run(MachineSpec::swan(), cfg.clone(), 300_000, 900.0, 12);
    let bsd = run(MachineSpec::moorhen(), cfg, 300_000, 900.0, 12);
    let (_, bsd_worst, bsd_best) = {
        let (w, b) = bsd.worst_best();
        (0, w, b)
    };
    assert!(
        lin.mean_capture_rate() < bsd.mean_capture_rate() - 0.1,
        "Linux mean {} must fall well below FreeBSD {}",
        lin.mean_capture_rate(),
        bsd.mean_capture_rate()
    );
    assert!(
        lin.mean_capture_rate() < 0.45,
        "Linux should approach collapse: {}",
        lin.mean_capture_rate()
    );
    // FreeBSD shares evenly (§1.2: ~5% deviation).
    assert!(
        bsd_best - bsd_worst < 0.25,
        "FreeBSD spread too wide: {bsd_worst}..{bsd_best}"
    );
}

#[test]
fn disk_writing_accounts_bytes() {
    let mut cfg = SimConfig::default();
    cfg.apps[0].disk_write_bytes = Some(76);
    let r = run(MachineSpec::moorhen(), cfg, 20_000, 300.0, 13);
    assert_eq!(r.apps[0].received, 20_000);
    // 76 bytes per packet (or less for tiny packets).
    assert!(r.disk_bytes > 19_000 * 70, "disk bytes {}", r.disk_bytes);
    assert!(r.disk_bytes <= 20_000 * 76);
}

#[test]
fn pipe_to_gzip_flows_and_terminates() {
    let mut cfg = SimConfig::default();
    cfg.apps[0].pipe_to_gzip = Some(3);
    let r = run(MachineSpec::swan(), cfg, 15_000, 300.0, 14);
    assert!(r.pipe_bytes > 0);
    assert!(
        r.apps[0].received > 14_000,
        "received {}",
        r.apps[0].received
    );
}

#[test]
fn mmap_beats_plain_linux_under_load() {
    // Keep the buffer small relative to the run so steady-state
    // throughput (not buffer absorption) decides the outcome.
    let buffers = BufferConfig::symmetric(4 << 20);
    let plain = SimConfig {
        buffers,
        ..SimConfig::default()
    };
    let mut mm = SimConfig {
        buffers,
        ..SimConfig::default()
    };
    mm.apps[0].mmap = true;
    let spec = MachineSpec::snipe().single_cpu();
    let r_plain = run(spec, plain, 80_000, 950.0, 15);
    let r_mmap = run(spec, mm, 80_000, 950.0, 15);
    assert!(
        r_mmap.capture_rate(0) > r_plain.capture_rate(0) + 0.1,
        "mmap {} must clearly beat plain {}",
        r_mmap.capture_rate(0),
        r_plain.capture_rate(0)
    );
}

#[test]
fn hyperthreading_runs_and_stays_close() {
    let base = run(
        MachineSpec::snipe(),
        SimConfig::default(),
        30_000,
        800.0,
        16,
    );
    let ht = run(
        MachineSpec::snipe().with_hyperthreading(),
        SimConfig::default(),
        30_000,
        800.0,
        16,
    );
    let diff = (base.capture_rate(0) - ht.capture_rate(0)).abs();
    assert!(diff < 0.15, "HT should neither help nor hurt much: {diff}");
}

#[test]
fn samples_are_cumulative_and_cover_the_run() {
    let r = run(
        MachineSpec::moorhen(),
        SimConfig::default(),
        30_000,
        300.0,
        17,
    );
    assert!(!r.samples.is_empty());
    for w in r.samples.windows(2) {
        assert!(w[0].t < w[1].t);
        for (a, b) in w[0].per_cpu.iter().zip(&w[1].per_cpu) {
            assert!(b.total() >= a.total(), "accounting must be cumulative");
        }
    }
}

#[test]
fn snaplen_limits_received_bytes() {
    let mut cfg = SimConfig::default();
    cfg.apps[0].snaplen = 76;
    let r = run(MachineSpec::swan(), cfg, 10_000, 200.0, 18);
    assert!(r.apps[0].received_bytes <= 76 * 10_000);
    assert!(r.apps[0].received_bytes >= 40 * 10_000);
}

#[test]
fn pci32_cannot_carry_a_loaded_gigabit_link() {
    // §2.2.3: "even the PCI bus can be the bottleneck" — a machine on
    // standard PCI drops frames before the kernel ever sees them, while
    // the PCI-64 testbed machines do not.
    use pcs_hw::{PciBus, PciKind};
    let mut spec = MachineSpec::moorhen();
    spec.pci = PciBus::new(PciKind::Pci32);
    let r = run(spec, SimConfig::default(), 60_000, 900.0, 21);
    assert!(
        r.nic_ring_drops > 5_000,
        "PCI32 must drop at the bus: {} drops",
        r.nic_ring_drops
    );
    let ok = run(
        MachineSpec::moorhen(),
        SimConfig::default(),
        60_000,
        900.0,
        21,
    );
    assert_eq!(ok.nic_ring_drops, 0, "PCI-64 carries the link");
}

#[test]
fn interrupt_moderation_cuts_interrupt_overhead() {
    use pcs_hw::NicModel;
    let mut spec = MachineSpec::moorhen();
    spec.nic = NicModel::intel_82544_moderated(100);
    let moderated = run(spec, SimConfig::default(), 30_000, 300.0, 22);
    let stock = run(
        MachineSpec::moorhen(),
        SimConfig::default(),
        30_000,
        300.0,
        22,
    );
    assert_eq!(moderated.apps[0].received, 30_000);
    let irq_mod: u64 = moderated.final_acct.iter().map(|a| a.irq).sum();
    let irq_stock: u64 = stock.final_acct.iter().map(|a| a.irq).sum();
    assert!(
        irq_mod < irq_stock,
        "moderation must amortize interrupt entry cost: {irq_mod} vs {irq_stock}"
    );
}

/// Zero heap allocations per packet in steady state: pooled buffers are
/// only allocated on a miss, and with pooling on they are never
/// destroyed — so the miss counter is the pool's high-water mark. Under
/// a stationary load the mark depends on transient queue depth only,
/// not on how long the run is: sixteen times the packets must not
/// allocate a single extra buffer after warm-up.
#[test]
fn pool_high_water_stabilizes_after_warmup() {
    // Fixed-size packets at a fixed rate: the backlog depth — and with
    // it the buffer high-water mark — is reached within the first few
    // interrupts. (The MWN-distribution `source` above is deliberately
    // bursty; its extreme-value tail deepens with run length, which is
    // a property of that workload, not of the pool.)
    let run = |count: u64| {
        let cfg = pcs_pktgen::PktgenConfig {
            count,
            size: SizeSource::Fixed(659),
            ..pcs_pktgen::PktgenConfig::default()
        };
        let mut g = Generator::new(cfg, TxModel::syskonnect(), 42);
        g.set_target_rate(400.0, 659.0);
        g.set_burstiness(16);
        let probe = std::sync::Arc::new(pcs_des::PoolProbe::new());
        MachineSim::new(MachineSpec::swan(), SimConfig::default())
            .with_pool_probe(std::sync::Arc::clone(&probe))
            .run(g.map(|tp| (tp.time, tp.packet)));
        probe
    };
    let short = run(2_500);
    let long = run(40_000);
    assert_eq!(
        short.misses(),
        long.misses(),
        "pool misses must stop after warm-up: {} for 2.5k packets vs {} for 40k",
        short.misses(),
        long.misses()
    );
    assert_eq!(long.high_water(), long.misses());
    // The pool is actually exercised: a longer run recycles more
    // buffers through the same small high-water set.
    assert!(long.misses() <= 16, "high-water {} buffers", long.misses());
    assert!(long.gets() > short.gets());
    assert!(long.recycled() > short.recycled());
    assert!(long.recycled() >= long.gets() - long.misses());
}
