//! The `PCS_NO_POOL` escape hatch: setting it in the environment must
//! disable buffer recycling (so allocator-level tools see every buffer
//! individually) without changing one byte of the report.
//!
//! This lives in its own test binary because it mutates the process
//! environment — integration-test files run as separate processes, so
//! the variable cannot leak into tests that assert pool statistics.

use pcs_des::PoolProbe;
use pcs_hw::MachineSpec;
use pcs_oskernel::{MachineSim, SimConfig};
use pcs_pktgen::{Generator, PktgenConfig, SizeSource, TxModel};
use std::sync::Arc;

fn source(count: u64, seed: u64) -> impl Iterator<Item = (pcs_des::SimTime, pcs_wire::SimPacket)> {
    let cfg = PktgenConfig {
        count,
        size: SizeSource::Fixed(659),
        ..PktgenConfig::default()
    };
    let mut g = Generator::new(cfg, TxModel::syskonnect(), seed);
    g.set_target_rate(400.0, 659.0);
    g.set_burstiness(16);
    g.map(|tp| (tp.time, tp.packet))
}

#[test]
fn pcs_no_pool_disables_recycling_without_changing_output() {
    let run = |no_pool: Option<&str>| {
        match no_pool {
            Some(v) => std::env::set_var("PCS_NO_POOL", v),
            None => std::env::remove_var("PCS_NO_POOL"),
        }
        let probe = Arc::new(PoolProbe::new());
        let report = MachineSim::new(MachineSpec::swan(), SimConfig::default())
            .with_pool_probe(Arc::clone(&probe))
            .run(source(3_000, 42));
        (format!("{report:?}"), probe)
    };

    let (disabled, p_off) = run(Some("1"));
    let (enabled, p_on) = run(None);

    // Byte-identical output either way — only allocator traffic moves.
    assert_eq!(disabled, enabled);

    // Disabled: the free list never fills, so every hand-out allocates
    // and nothing is recycled.
    assert_eq!(p_off.misses(), p_off.gets());
    assert_eq!(p_off.recycled(), 0);

    // Enabled: the steady state runs out of the free list.
    assert!(p_on.misses() < p_on.gets());
    assert!(p_on.recycled() > 0);

    // "0" and "" mean "leave pooling on", like an unset variable.
    let (zero, p_zero) = run(Some("0"));
    assert_eq!(zero, enabled);
    assert!(p_zero.misses() < p_zero.gets());
    std::env::remove_var("PCS_NO_POOL");
}
