//! Batch-splitting boundaries: a coalesced NIC run must end exactly
//! where an intervening event begins.
//!
//! The macro-batched engine admits consecutive arrivals as one run only
//! while the next arrival precedes every heap event. These tests pin
//! the two boundary families that matter — IRQ/ring-full activity and
//! fault-window edges — by checking that (a) the batched and per-packet
//! engines stay byte-identical under each, and (b) the batch probe
//! shows the runs really did coalesce and really did split.

use pcs_des::BatchProbe;
use pcs_hw::MachineSpec;
use pcs_oskernel::{MachineFaults, MachineSim, SimConfig, BATCH_COALESCE_CAP};
use pcs_pktgen::{Generator, PktgenConfig, SizeSource, TxModel};
use std::sync::Arc;

fn source(
    count: u64,
    rate: f64,
    burst: u32,
    seed: u64,
) -> impl Iterator<Item = (pcs_des::SimTime, pcs_wire::SimPacket)> {
    let cfg = PktgenConfig {
        count,
        size: SizeSource::Fixed(659),
        ..PktgenConfig::default()
    };
    let mut g = Generator::new(cfg, TxModel::syskonnect(), seed);
    g.set_target_rate(rate, 659.0);
    g.set_burstiness(burst);
    g.map(|tp| (tp.time, tp.packet))
}

/// Run the same workload batched and per-packet; assert byte-identical
/// reports and return the batched side's probe.
fn differential(
    spec: MachineSpec,
    hooks: impl Fn() -> Option<Box<dyn MachineFaults>>,
    count: u64,
    rate: f64,
    burst: u32,
) -> Arc<BatchProbe> {
    let probe = Arc::new(BatchProbe::new());
    let batched = MachineSim::new(spec, SimConfig::default())
        .with_batching(true)
        .with_batch_probe(Arc::clone(&probe))
        .with_faults(hooks())
        .run(source(count, rate, burst, 1234));
    let legacy = MachineSim::new(spec, SimConfig::default())
        .with_batching(false)
        .with_faults(hooks())
        .run(source(count, rate, burst, 1234));
    assert_eq!(format!("{batched:?}"), format!("{legacy:?}"));
    probe
}

/// An RX ring pinned to one slot: every arrival beyond the first finds
/// the ring full, and the IRQ machinery runs continuously.
struct TinyRing;
impl pcs_hw::NicBusFault for TinyRing {
    fn ring_slots(&mut self, _now_ns: u64, _base: usize) -> usize {
        1
    }
}
impl pcs_hw::SchedFault for TinyRing {}
impl MachineFaults for TinyRing {}

/// A kernel-buffer-shrink window between 1 ms and 3 ms of sim time.
struct Window;
impl pcs_hw::NicBusFault for Window {}
impl pcs_hw::SchedFault for Window {}
impl MachineFaults for Window {
    fn buffer_permille(&mut self, now_ns: u64) -> u32 {
        if (1_000_000..3_000_000).contains(&now_ns) {
            250
        } else {
            1000
        }
    }
}

#[test]
fn dense_bursts_coalesce_and_respect_the_cap() {
    // Flamingo at near line rate drives long back-to-back arrival runs
    // with no intervening events, deep enough to hit the cap. (A
    // multi-CPU swan, by contrast, nearly always has a CPU event
    // between arrivals — coalescing is workload-dependent by design.)
    let probe = differential(MachineSpec::flamingo(), || None, 4_000, 950.0, 64);
    assert!(probe.runs() > 0, "the NIC processed at least one run");
    assert!(
        probe.coalesced() > 0,
        "a dense burst must coalesce consecutive arrivals into one run"
    );
    assert_eq!(
        probe.max_run(),
        BATCH_COALESCE_CAP,
        "a near-line-rate burst must reach (and never exceed) the coalesce cap"
    );
}

#[test]
fn runs_split_at_ring_full_boundaries() {
    // With the ring pinned to one slot, IRQ-gate and kernel events fire
    // between arrivals continuously, so coalesced runs must split far
    // more often than on the healthy ring — and the output must still
    // not move by one byte.
    let healthy = differential(MachineSpec::flamingo(), || None, 4_000, 860.0, 64);
    let stalled = differential(
        MachineSpec::flamingo(),
        || Some(Box::new(TinyRing)),
        4_000,
        860.0,
        64,
    );
    assert!(stalled.runs() > 0);
    let healthy_mean = healthy.coalesced() as f64 / healthy.runs() as f64;
    let stalled_mean = stalled.coalesced() as f64 / stalled.runs() as f64;
    assert!(
        stalled_mean < healthy_mean,
        "ring-full IRQ traffic must shorten coalesced runs \
         (stalled mean {stalled_mean:.2} vs healthy mean {healthy_mean:.2})"
    );
}

#[test]
fn runs_split_at_fault_window_boundaries() {
    // The shrink window's hook is consulted per delivery; the batched
    // engine must observe the 1 ms and 3 ms edges at exactly the same
    // arrival as the per-packet engine (byte-equality inside
    // `differential` proves it — a run crossing an edge out of order
    // would move drop counts between buckets).
    let probe = differential(
        MachineSpec::swan().single_cpu(),
        || Some(Box::new(Window)),
        4_000,
        700.0,
        32,
    );
    assert!(probe.runs() > 0);
    assert!(probe.coalesced() > 0);
}

#[test]
fn single_cpu_and_hyperthreaded_machines_coalesce_identically_to_legacy() {
    for spec in [
        MachineSpec::moorhen().single_cpu(),
        MachineSpec::snipe().with_hyperthreading(),
        MachineSpec::flamingo(),
    ] {
        let probe = differential(spec, || None, 2_000, 500.0, 16);
        assert!(probe.sims_batched() == 1 && probe.sims_unbatched() == 0);
    }
}

#[test]
fn explicit_batching_off_never_touches_the_cursor() {
    let probe = Arc::new(BatchProbe::new());
    let _ = MachineSim::new(MachineSpec::swan(), SimConfig::default())
        .with_batching(false)
        .with_batch_probe(Arc::clone(&probe))
        .run(source(1_000, 400.0, 16, 7));
    assert_eq!(probe.sims_unbatched(), 1);
    assert_eq!(probe.runs(), 0, "per-packet engine records no runs");
    assert_eq!(probe.coalesced(), 0);
    assert_eq!(
        probe.alpha_hits() + probe.alpha_misses(),
        0,
        "memos are disabled with batching off"
    );
}
