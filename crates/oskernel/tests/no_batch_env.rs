//! The `PCS_NO_BATCH` escape hatch: setting it in the environment must
//! fall back to the legacy per-packet engine (every arrival
//! heap-scheduled individually, no coalescing, no cost-model memos)
//! without changing one byte of the report.
//!
//! This lives in its own test binary because it mutates the process
//! environment — integration-test files run as separate processes, so
//! the variable cannot leak into tests that assert batch statistics.

use pcs_des::BatchProbe;
use pcs_hw::MachineSpec;
use pcs_oskernel::{MachineSim, SimConfig};
use pcs_pktgen::{Generator, PktgenConfig, SizeSource, TxModel};
use std::sync::Arc;

fn source(count: u64, seed: u64) -> impl Iterator<Item = (pcs_des::SimTime, pcs_wire::SimPacket)> {
    let cfg = PktgenConfig {
        count,
        size: SizeSource::Fixed(659),
        ..PktgenConfig::default()
    };
    let mut g = Generator::new(cfg, TxModel::syskonnect(), seed);
    g.set_target_rate(400.0, 659.0);
    g.set_burstiness(16);
    g.map(|tp| (tp.time, tp.packet))
}

#[test]
fn pcs_no_batch_disables_batching_without_changing_output() {
    let run = |no_batch: Option<&str>| {
        match no_batch {
            Some(v) => std::env::set_var("PCS_NO_BATCH", v),
            None => std::env::remove_var("PCS_NO_BATCH"),
        }
        let probe = Arc::new(BatchProbe::new());
        let report = MachineSim::new(MachineSpec::swan(), SimConfig::default())
            .with_batch_probe(Arc::clone(&probe))
            .run(source(3_000, 42));
        (format!("{report:?}"), probe)
    };

    let (disabled, p_off) = run(Some("1"));
    let (enabled, p_on) = run(None);

    // Byte-identical output either way — only hot-path cost moves.
    assert_eq!(disabled, enabled);

    // Disabled: the legacy engine records no runs and the memos stay
    // cold.
    assert_eq!(p_off.sims_unbatched(), 1);
    assert_eq!(p_off.runs(), 0);
    assert_eq!(p_off.coalesced(), 0);
    assert_eq!(p_off.alpha_hits() + p_off.alpha_misses(), 0);

    // Enabled (the default): arrivals coalesce and the memos serve
    // hits.
    assert_eq!(p_on.sims_batched(), 1);
    assert!(p_on.runs() > 0);
    assert!(p_on.alpha_hits() + p_on.alpha_misses() > 0);

    // "0" and "" mean "leave batching on", like an unset variable.
    let (zero, p_zero) = run(Some("0"));
    assert_eq!(zero, enabled);
    assert_eq!(p_zero.sims_batched(), 1);
    std::env::remove_var("PCS_NO_BATCH");
}
