//! The typed event and work-item vocabulary of the machine simulation.
//!
//! Everything the event loop schedules or executes is named here:
//! [`SimEvent`] is what sits in the pcs-des pending-event queue,
//! [`Work`] is what sits on a CPU's run queue, and [`Completion`] is
//! what a finished work item triggers. Making these first-class types
//! (instead of inlined branches of a monolithic loop) is what lets the
//! scheduler trace them (`--trace …:sched`) and the fault layer perturb
//! them (`--faults preempt:…`) without touching stage logic.

use crate::cpustate::CpuState;
use crate::stack::CapturedPacket;
use pcs_pktgen::PacketRef;
use pcs_trace::{WorkKind, APP_NONE};
use pcs_wire::SimPacket;

/// A packet injected into the NIC: either owned outright (ad-hoc
/// streams, tests) or a shared reference into a generator chunk (the
/// zero-copy pipeline path — one refcount bump instead of a packet copy
/// per sniffer per packet).
#[derive(Debug)]
pub(crate) enum PacketView {
    Owned(Box<SimPacket>),
    Shared(PacketRef),
}

impl PacketView {
    pub(crate) fn packet(&self) -> &SimPacket {
        match self {
            PacketView::Owned(p) => p,
            PacketView::Shared(r) => r.packet(),
        }
    }
}

/// Simulation events: everything the pending-event queue can deliver.
#[derive(Debug)]
pub(crate) enum SimEvent {
    /// A frame has fully arrived at the NIC.
    Arrival(PacketView),
    /// A CPU finished its current work item.
    CpuFree(usize),
    /// An interrupt may fire now (moderation gap elapsed).
    IrqGate,
    /// A sleeping application resumes (I/O throttle or pipe space).
    AppResume(usize),
    /// A chunk of dirty data reached the platters.
    WritebackDone,
    /// Periodic cpusage-style accounting sample.
    Sample,
}

/// What a finished work item triggers.
#[derive(Debug)]
pub(crate) enum Completion {
    KernelBatch,
    AppCopyout {
        app: usize,
    },
    AppChunk {
        app: usize,
        packets: u64,
        bytes: u64,
        recorded: Vec<CapturedPacket>,
        /// (seq, gen_ns, caplen) per packet, captured only when tracing:
        /// app-delivery events and the wire→app latency histogram are
        /// recorded when the chunk's processing completes.
        traced: Vec<(u64, u64, u32)>,
    },
    GzipChunk {
        bytes: u64,
    },
    None,
}

/// A piece of CPU work.
pub(crate) struct Work {
    /// What kind of work this is — the scheduler-trace vocabulary.
    pub(crate) kind: WorkKind,
    /// (state, ns) segments; executed as one uninterruptible span.
    pub(crate) segments: Vec<(CpuState, u64)>,
    pub(crate) complete: Completion,
}

impl Work {
    pub(crate) fn duration(&self) -> u64 {
        self.segments.iter().map(|s| s.1).sum()
    }

    /// The application this work belongs to, for scheduler traces
    /// ([`APP_NONE`] for kernel/helper work).
    pub(crate) fn sched_app(&self) -> u16 {
        match &self.complete {
            Completion::AppCopyout { app } => *app as u16,
            Completion::AppChunk { app, .. } => *app as u16,
            _ => APP_NONE,
        }
    }
}
