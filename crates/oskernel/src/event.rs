//! The typed event and work-item vocabulary of the machine simulation.
//!
//! Everything the event loop schedules or executes is named here:
//! [`SimEvent`] is what sits in the pcs-des pending-event queue,
//! [`Work`] is what sits on a CPU's run queue, and [`Completion`] is
//! what a finished work item triggers. Making these first-class types
//! (instead of inlined branches of a monolithic loop) is what lets the
//! scheduler trace them (`--trace …:sched`) and the fault layer perturb
//! them (`--faults preempt:…`) without touching stage logic.
//!
//! ## Hot-path memory shape
//!
//! These types are built and torn down once per interrupt batch or app
//! chunk, so their layout is part of the allocation-free hot path
//! (DESIGN.md §15): segments live inline in a [`pcs_des::SegVec`] (no
//! per-`Work` heap allocation), the work's total duration is cached at
//! construction instead of re-summed at every dispatch, and the
//! `recorded`/`traced` buffers in [`Completion::AppChunk`] are pooled
//! vectors recycled when the completion is consumed.

use crate::cpustate::CpuState;
use crate::stack::CapturedPacket;
use pcs_des::{SegVec, SimTime};
use pcs_pktgen::PacketRef;
use pcs_trace::{WorkKind, APP_NONE};
use pcs_wire::SimPacket;

/// A work item's `(state, ns)` segment list: at most two at
/// construction (kernel batch, app chunk) plus one fault split, so
/// four inline slots never spill in practice.
pub(crate) type Segments = SegVec<(CpuState, u64), 4>;

/// A packet injected into the NIC: either owned outright (ad-hoc
/// streams, tests; the box comes from the scheduler's recycling pool)
/// or a shared reference into a generator chunk (the zero-copy pipeline
/// path — one refcount bump instead of a packet copy per sniffer per
/// packet).
#[derive(Debug)]
pub(crate) enum PacketView {
    Owned(Box<SimPacket>),
    Shared(PacketRef),
}

impl PacketView {
    pub(crate) fn packet(&self) -> &SimPacket {
        match self {
            PacketView::Owned(p) => p,
            PacketView::Shared(r) => r.packet(),
        }
    }
}

/// One pending arrival as pulled from the injection source, before the
/// NIC stage turns it into a [`PacketView`]. Owned packets travel by
/// value so the box they end up in can come from the sim's recycling
/// pool instead of a fresh allocation per packet.
pub(crate) enum ArrivalFeed {
    /// An owned packet and its arrival time ([`crate::sim::MachineSim::run`]).
    Owned(SimTime, SimPacket),
    /// A shared reference into a generator chunk
    /// ([`crate::sim::MachineSim::run_refs`]).
    Shared(PacketRef),
}

/// Simulation events: everything the pending-event queue can deliver.
///
/// Entries sit in the event queue by the hundreds, so the enum must
/// stay small: every variant's payload is at most a [`PacketView`]
/// (pointer-sized box or chunk reference — already indirect, nothing
/// worth boxing further); a compile-time check in this module's tests
/// keeps it that way.
#[derive(Debug)]
pub(crate) enum SimEvent {
    /// A frame has fully arrived at the NIC.
    Arrival(PacketView),
    /// A CPU finished its current work item.
    CpuFree(usize),
    /// An interrupt may fire now (moderation gap elapsed).
    IrqGate,
    /// A sleeping application resumes (I/O throttle or pipe space).
    AppResume(usize),
    /// A chunk of dirty data reached the platters.
    WritebackDone,
    /// Periodic cpusage-style accounting sample.
    Sample,
}

/// What a finished work item triggers.
#[derive(Debug)]
pub(crate) enum Completion {
    KernelBatch,
    AppCopyout {
        app: usize,
    },
    AppChunk {
        app: usize,
        packets: u64,
        bytes: u64,
        /// Pooled buffer, recycled by the CPU stage after the packets
        /// are appended to the app's capture log.
        recorded: Vec<CapturedPacket>,
        /// (seq, gen_ns, caplen) per packet, captured only when tracing:
        /// app-delivery events and the wire→app latency histogram are
        /// recorded when the chunk's processing completes. Pooled like
        /// `recorded`.
        traced: Vec<(u64, u64, u32)>,
    },
    GzipChunk {
        bytes: u64,
    },
    None,
}

/// A piece of CPU work.
pub(crate) struct Work {
    /// What kind of work this is — the scheduler-trace vocabulary.
    pub(crate) kind: WorkKind,
    /// (state, ns) segments; executed as one uninterruptible span.
    pub(crate) segments: Segments,
    /// Cached sum of the segment durations, maintained by
    /// [`Work::stretch`] / [`Work::push_segment`] so dispatch never
    /// re-walks the segments.
    duration: u64,
    pub(crate) complete: Completion,
}

impl Work {
    /// Build a work item, caching the segment-duration sum.
    pub(crate) fn new(kind: WorkKind, segments: Segments, complete: Completion) -> Work {
        let duration = segments.iter().map(|s| s.1).sum();
        Work {
            kind,
            segments,
            duration,
            complete,
        }
    }

    pub(crate) fn duration(&self) -> u64 {
        self.duration
    }

    /// Scale every segment by `scale` (the SMT sibling stretch),
    /// recomputing the cached duration with the exact per-segment f64
    /// rounding — and u64 summation order — of the pre-cache code.
    pub(crate) fn stretch(&mut self, scale: f64) {
        let mut total = 0u64;
        for seg in self.segments.iter_mut() {
            seg.1 = (seg.1 as f64 * scale) as u64;
            total += seg.1;
        }
        self.duration = total;
    }

    /// Append one segment, carrying the cached duration through the
    /// split instead of re-summing.
    pub(crate) fn push_segment(&mut self, state: CpuState, ns: u64) {
        self.segments.push((state, ns));
        self.duration += ns;
    }

    /// The application this work belongs to, for scheduler traces
    /// ([`APP_NONE`] for kernel/helper work).
    pub(crate) fn sched_app(&self) -> u16 {
        match &self.complete {
            Completion::AppCopyout { app } => *app as u16,
            Completion::AppChunk { app, .. } => *app as u16,
            _ => APP_NONE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_event_stays_small() {
        // EventQueue entries are (time, seq, event); the event payload
        // must not outgrow the Arrival variant's pointer-sized views.
        assert!(
            std::mem::size_of::<SimEvent>() <= 40,
            "SimEvent grew to {} bytes — box the large variant",
            std::mem::size_of::<SimEvent>()
        );
    }

    #[test]
    fn work_duration_is_cached_and_maintained() {
        let mut w = Work::new(
            WorkKind::KernelBatch,
            Segments::from_slice(&[(CpuState::Irq, 100), (CpuState::SoftIrq, 50)]),
            Completion::KernelBatch,
        );
        assert_eq!(w.duration(), 150);
        w.push_segment(CpuState::System, 25);
        assert_eq!(w.duration(), 175);
        assert_eq!(w.segments.len(), 3);
        // Stretch rounds each segment exactly like the original loop.
        w.stretch(0.5);
        let resummed: u64 = w.segments.iter().map(|s| s.1).sum();
        assert_eq!(w.duration(), resummed);
        assert_eq!(w.duration(), 50 + 25 + 12);
    }
}
