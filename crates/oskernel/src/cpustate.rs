//! Per-CPU time accounting, in the states `cpusage` samples (Chapter 5).
//!
//! Linux exposes seven states (user, nice, system, iowait, irq, softirq,
//! idle), FreeBSD five (user, nice, system, interrupt, idle) — the
//! trimusage script keys off that difference (Appendix A.4).

/// CPU execution states.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CpuState {
    /// User-mode application work.
    User,
    /// Niced user work (unused by the testbed, present for fidelity).
    Nice,
    /// Kernel work on behalf of a process (syscalls, copies).
    System,
    /// Waiting on I/O with nothing else runnable (Linux accounting).
    IoWait,
    /// Hardware interrupt context.
    Irq,
    /// Software interrupt context (Linux; folded into Irq on FreeBSD).
    SoftIrq,
    /// Nothing to do (the default state — what an inline segment slot
    /// holds before it is written).
    #[default]
    Idle,
}

/// Accumulated nanoseconds per state for one CPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuAccounting {
    /// ns in user mode.
    pub user: u64,
    /// ns niced.
    pub nice: u64,
    /// ns in system mode.
    pub system: u64,
    /// ns in iowait.
    pub iowait: u64,
    /// ns in hard-interrupt context.
    pub irq: u64,
    /// ns in soft-interrupt context.
    pub softirq: u64,
    /// ns idle.
    pub idle: u64,
}

impl CpuAccounting {
    /// Add `ns` to one state's bucket.
    pub fn add(&mut self, state: CpuState, ns: u64) {
        match state {
            CpuState::User => self.user += ns,
            CpuState::Nice => self.nice += ns,
            CpuState::System => self.system += ns,
            CpuState::IoWait => self.iowait += ns,
            CpuState::Irq => self.irq += ns,
            CpuState::SoftIrq => self.softirq += ns,
            CpuState::Idle => self.idle += ns,
        }
    }

    /// Total accounted time.
    pub fn total(&self) -> u64 {
        self.user + self.nice + self.system + self.iowait + self.irq + self.softirq + self.idle
    }

    /// Total non-idle time (iowait counts as idle-like, as `top` does).
    pub fn busy(&self) -> u64 {
        self.user + self.nice + self.system + self.irq + self.softirq
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &CpuAccounting) -> CpuAccounting {
        CpuAccounting {
            user: self.user - earlier.user,
            nice: self.nice - earlier.nice,
            system: self.system - earlier.system,
            iowait: self.iowait - earlier.iowait,
            irq: self.irq - earlier.irq,
            softirq: self.softirq - earlier.softirq,
            idle: self.idle - earlier.idle,
        }
    }

    /// Busy fraction over the accounted interval (0 when empty).
    pub fn utilisation(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.busy() as f64 / total as f64
        }
    }

    /// Kernel-side fraction (system+irq+softirq) of the interval.
    pub fn kernel_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.system + self.irq + self.softirq) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_state() {
        let mut a = CpuAccounting::default();
        a.add(CpuState::User, 100);
        a.add(CpuState::Irq, 50);
        a.add(CpuState::Idle, 850);
        assert_eq!(a.total(), 1000);
        assert_eq!(a.busy(), 150);
        assert!((a.utilisation() - 0.15).abs() < 1e-12);
        assert!((a.kernel_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn snapshot_difference() {
        let mut a = CpuAccounting::default();
        a.add(CpuState::System, 30);
        let snap = a;
        a.add(CpuState::System, 20);
        a.add(CpuState::Idle, 50);
        let d = a.since(&snap);
        assert_eq!(d.system, 20);
        assert_eq!(d.idle, 50);
        assert_eq!(d.total(), 70);
    }

    #[test]
    fn empty_accounting_is_zero_utilisation() {
        assert_eq!(CpuAccounting::default().utilisation(), 0.0);
        assert_eq!(CpuAccounting::default().kernel_fraction(), 0.0);
    }
}
