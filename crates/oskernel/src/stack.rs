//! The two capture-stack data structures (§2.1): FreeBSD's BPF device
//! with its STORE/HOLD double buffer and Linux's PF_PACKET socket queues
//! with shared, reference-counted packet memory — plus the memory-mapped
//! ring variant of the Fig. 6.15 patch.
//!
//! These are *pure* data structures: they track packets, bytes and drop
//! counters. CPU costs for the operations are charged by the machine
//! simulation (`sim`), which asks this module what happened (bytes
//! copied, filter instructions executed) and prices it.

use pcs_bpf::{vm, Insn};
use pcs_des::FastHash;
use pcs_wire::SimPacket;
use std::collections::HashMap;
use std::collections::VecDeque;

/// A captured packet as it sits in kernel buffers: metadata only; payload
/// bytes are virtual (their volume is accounted, their content
/// reconstructible from the generator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapturedPacket {
    /// Generator sequence number.
    pub seq: u64,
    /// Generation timestamp (ns).
    pub gen_ns: u64,
    /// Kernel receive timestamp (ns).
    pub recv_ns: u64,
    /// Captured bytes (≤ snaplen).
    pub caplen: u32,
    /// Original frame length.
    pub frame_len: u32,
}

/// Filter evaluation with a verdict cache.
///
/// Generated packets differ only in sequence-dependent fields (IP ident,
/// checksum, the pktgen payload stamp); the cache keys on the stored
/// header with those bytes masked, so any filter that doesn't inspect
/// them — including the thesis' Fig. 6.5 filter — gets exact verdicts at
/// hash-lookup speed. The *costs* still reflect the real instruction
/// count, which the VM reports on each miss.
#[derive(Debug, Clone)]
pub struct KernelFilter {
    prog: Vec<Insn>,
    /// Keyed access only (the deterministic [`FastHash`] is safe: verdict
    /// lookups never observe iteration order).
    cache: HashMap<(u32, [u8; pcs_wire::STORED_HEADER_LEN]), (u32, u32), FastHash>,
}

impl KernelFilter {
    /// Wrap a validated program.
    pub fn new(prog: Vec<Insn>) -> KernelFilter {
        KernelFilter {
            prog,
            cache: HashMap::default(),
        }
    }

    /// Number of instructions in the program.
    pub fn len(&self) -> usize {
        self.prog.len()
    }

    /// True for the trivial empty program (never constructed; appeases
    /// clippy's is_empty convention).
    pub fn is_empty(&self) -> bool {
        self.prog.is_empty()
    }

    /// Evaluate: returns `(accept_len, instructions_executed)`.
    pub fn check(&mut self, pkt: &SimPacket) -> (u32, u32) {
        let mut key_hdr = pkt.header;
        // For generator packets (identified by the pktgen payload magic)
        // the sequence-dependent bytes — IP ident (18..20), IP checksum
        // (24..26), seq+timestamp stamp (46..62) — are masked so the whole
        // stream shares a handful of cache keys. Arbitrary (replayed)
        // packets are cached under their exact bytes, which is always
        // sound: distinct packets get distinct keys.
        let is_pktgen = pcs_wire::PacketBytes::word(pkt, 42) == Some(pcs_wire::PKTGEN_MAGIC);
        if is_pktgen {
            for b in key_hdr.iter_mut().take(20).skip(18) {
                *b = 0;
            }
            for b in key_hdr.iter_mut().take(26).skip(24) {
                *b = 0;
            }
            for b in key_hdr.iter_mut().take(62).skip(46) {
                *b = 0;
            }
        }
        let key = (pkt.frame_len, key_hdr);
        if let Some(&v) = self.cache.get(&key) {
            return v;
        }
        let verdict = vm::run(&self.prog, pkt).unwrap_or(vm::Verdict {
            accept_len: 0,
            insns_executed: self.prog.len() as u32,
        });
        let v = (verdict.accept_len, verdict.insns_executed);
        // Bound the cache; generated workloads need a few thousand keys.
        if self.cache.len() < 65_536 {
            self.cache.insert(key, v);
        }
        v
    }
}

/// Drop/delivery counters of one capture consumer.
///
/// Together with the NIC-level counters in `RunReport` these buckets give
/// an exhaustive, no-special-cases account of every packet a consumer was
/// offered: `accepted + rejected` packets entered the stack, of which
/// `dropped_buffer + dropped_pool` died in the kernel, `kernel_residue +
/// app_residue` were still in flight when the run stopped, and `received`
/// (= `delivered - app_residue`) were fully processed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Packets the filter accepted (libpcap's `ps_recv`).
    pub accepted: u64,
    /// Packets the filter rejected.
    pub rejected: u64,
    /// Accepted packets dropped for lack of buffer space (`ps_drop`).
    pub dropped_buffer: u64,
    /// Accepted packets dropped because the shared kernel packet pool was
    /// exhausted (Linux refcounting, §6.3.3).
    pub dropped_pool: u64,
    /// Packets handed to the application.
    pub delivered: u64,
    /// Accepted + stored packets still sitting in a kernel buffer when the
    /// run stopped (set by `finalize_residue`).
    pub kernel_residue: u64,
    /// Packets handed to the application but not yet processed when the
    /// run stopped (set by the machine sim at shutdown).
    pub app_residue: u64,
}

impl StackStats {
    /// All kernel-level losses (buffer + pool), the uniform counterpart to
    /// the NIC-level `nic_ring_drops`.
    pub fn kernel_drops(&self) -> u64 {
        self.dropped_buffer + self.dropped_pool
    }
}

/// Which buffer killed a packet, when one did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DropKind {
    /// Not dropped (stored, or rejected by the filter before buffering).
    #[default]
    None,
    /// The consumer's kernel buffer (BPF double buffer, socket rmem, or
    /// mmap ring) was full.
    Buffer,
    /// The shared kernel packet pool was exhausted (Linux refcounting).
    Pool,
}

/// What happened when the kernel offered one packet to one consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliverOutcome {
    /// Filter accepted the packet.
    pub accepted: bool,
    /// Filter instructions executed (0 for no filter).
    pub filter_insns: u32,
    /// Bytes copied into a kernel buffer (BPF store copy / mmap ring
    /// copy; 0 for the pointer-queue Linux path and for drops).
    pub copied_bytes: u32,
    /// The packet was stored (not dropped).
    pub stored: bool,
    /// For accepted-but-not-stored packets: which buffer dropped it.
    pub drop: DropKind,
}

// ---------------------------------------------------------------------
// FreeBSD: the BPF device
// ---------------------------------------------------------------------

/// The per-packet buffer overhead of a BPF record (struct bpf_hdr,
/// word-aligned).
fn bpf_slot_bytes(caplen: u32) -> u64 {
    ((18 + caplen as u64) + 3) & !3
}

/// Capacity under a fault-injected shrink: `base` scaled by
/// `permille`/1000. Exact at 1000 (the no-fault fast path) so an
/// unfaulted run admits on precisely the configured bound.
fn scaled_capacity(base: u64, permille: u32) -> u64 {
    if permille == 1000 {
        base
    } else {
        base.saturating_mul(permille as u64) / 1000
    }
}

/// One `/dev/bpfN` device: filter + double buffer (§2.1.1, Fig. 2.1).
#[derive(Debug)]
pub struct BpfDevice {
    filter: Option<KernelFilter>,
    snaplen: u32,
    half_capacity: u64,
    /// Fault-injected capacity scale (1000 = full size).
    capacity_permille: u32,
    store: VecDeque<CapturedPacket>,
    store_bytes: u64,
    hold: VecDeque<CapturedPacket>,
    hold_bytes: u64,
    /// Counters.
    pub stats: StackStats,
}

impl BpfDevice {
    /// Create with the given buffer half size and snaplen.
    pub fn new(half_capacity: u64, snaplen: u32, filter: Option<Vec<Insn>>) -> BpfDevice {
        BpfDevice {
            filter: filter.map(KernelFilter::new),
            snaplen,
            half_capacity,
            capacity_permille: 1000,
            store: VecDeque::new(),
            store_bytes: 0,
            hold: VecDeque::new(),
            hold_bytes: 0,
            stats: StackStats::default(),
        }
    }

    /// Fault hook: scale the admission capacity to `permille`/1000 of
    /// the configured half size (1000 restores it). Already-stored
    /// packets are never evicted; only future admissions see the shrink.
    pub fn set_capacity_permille(&mut self, permille: u32) {
        self.capacity_permille = permille;
    }

    /// Offer one packet (called from interrupt context in the real
    /// kernel).
    pub fn deliver(&mut self, pkt: &SimPacket, recv_ns: u64) -> DeliverOutcome {
        let (accept_len, insns) = match &mut self.filter {
            Some(f) => f.check(pkt),
            None => (u32::MAX, 0),
        };
        if accept_len == 0 {
            self.stats.rejected += 1;
            return DeliverOutcome {
                accepted: false,
                filter_insns: insns,
                copied_bytes: 0,
                stored: false,
                drop: DropKind::None,
            };
        }
        self.stats.accepted += 1;
        let caplen = pkt.frame_len.min(accept_len).min(self.snaplen);
        let slot = bpf_slot_bytes(caplen);
        if self.store_bytes + slot > scaled_capacity(self.half_capacity, self.capacity_permille) {
            // STORE full and a packet is waiting: rotate if HOLD is free.
            if self.hold.is_empty() {
                std::mem::swap(&mut self.store, &mut self.hold);
                self.hold_bytes = self.store_bytes;
                self.store_bytes = 0;
            } else {
                self.stats.dropped_buffer += 1;
                return DeliverOutcome {
                    accepted: true,
                    filter_insns: insns,
                    copied_bytes: 0,
                    stored: false,
                    drop: DropKind::Buffer,
                };
            }
        }
        self.store_bytes += slot;
        self.store.push_back(CapturedPacket {
            seq: pkt.seq,
            gen_ns: pkt.gen_ns,
            recv_ns,
            caplen,
            frame_len: pkt.frame_len,
        });
        DeliverOutcome {
            accepted: true,
            filter_insns: insns,
            copied_bytes: caplen,
            stored: true,
            drop: DropKind::None,
        }
    }

    /// Application `read()`: returns the HOLD buffer contents (rotating
    /// first if HOLD is empty and STORE has data, per §2.1.1) along with
    /// the byte count copied to user space.
    pub fn read(&mut self) -> (Vec<CapturedPacket>, u64) {
        let mut pkts = VecDeque::new();
        let (_, bytes) = self.read_into(&mut pkts);
        (pkts.into(), bytes)
    }

    /// Allocation-free `read()`: appends the HOLD buffer contents to
    /// `out` (the application's pending queue) instead of building a
    /// fresh vector. Returns `(packets, bytes)` delivered.
    pub fn read_into(&mut self, out: &mut VecDeque<CapturedPacket>) -> (u64, u64) {
        if self.hold.is_empty() && !self.store.is_empty() {
            std::mem::swap(&mut self.store, &mut self.hold);
            self.hold_bytes = self.store_bytes;
            self.store_bytes = 0;
        }
        let bytes = self.hold_bytes;
        self.hold_bytes = 0;
        let n = self.hold.len() as u64;
        out.extend(self.hold.drain(..));
        self.stats.delivered += n;
        (n, bytes)
    }

    /// True when a read would return data.
    pub fn readable(&self) -> bool {
        !self.hold.is_empty() || !self.store.is_empty()
    }

    /// Bytes currently buffered (both halves).
    pub fn buffered_bytes(&self) -> u64 {
        self.store_bytes + self.hold_bytes
    }

    /// Packets currently buffered (both halves).
    pub fn buffered_packets(&self) -> u64 {
        (self.store.len() + self.hold.len()) as u64
    }

    /// End-of-run accounting: record packets still buffered as
    /// `kernel_residue` so the attribution identity stays exact for runs
    /// that stop with data in flight.
    pub fn finalize_residue(&mut self) {
        self.stats.kernel_residue = self.buffered_packets();
    }

    /// The buffer half size.
    pub fn half_capacity(&self) -> u64 {
        self.half_capacity
    }
}

// ---------------------------------------------------------------------
// Linux: PF_PACKET sockets over a shared refcounted pool
// ---------------------------------------------------------------------

/// skb truesize per packet: the 2.6 kernel charges the *allocated* size
/// (kmalloc rounds the data buffer up to a power of two) plus the skb
/// struct itself. This is why the default 110 kB `rmem` holds only ~50
/// full-size packets — central to the Fig. 6.2/6.3 buffer results.
fn skb_truesize(frame_len: u32) -> u64 {
    let data = (frame_len + 32).next_power_of_two().max(256) as u64;
    data + 244
}

/// One PF_PACKET socket (§2.1.2, Fig. 2.2) or its mmap-ring variant.
#[derive(Debug)]
pub struct LsfSocket {
    filter: Option<KernelFilter>,
    snaplen: u32,
    /// Per-socket receive budget in bytes (rmem).
    rmem: u64,
    /// Fault-injected capacity scale (1000 = full size).
    capacity_permille: u32,
    queue: VecDeque<CapturedPacket>,
    queue_bytes: u64,
    /// mmap variant: ring capacity replaces the rmem accounting and the
    /// kernel copies `caplen` bytes instead of queuing a reference.
    pub mmap: bool,
    /// Counters.
    pub stats: StackStats,
}

impl LsfSocket {
    /// Create a socket with the given receive budget.
    pub fn new(rmem: u64, snaplen: u32, filter: Option<Vec<Insn>>, mmap: bool) -> LsfSocket {
        LsfSocket {
            filter: filter.map(KernelFilter::new),
            snaplen,
            rmem,
            capacity_permille: 1000,
            queue: VecDeque::new(),
            queue_bytes: 0,
            mmap,
            stats: StackStats::default(),
        }
    }

    /// Fault hook: scale the admission budget to `permille`/1000 of the
    /// configured rmem/ring size (1000 restores it). Queued packets are
    /// never evicted; only future admissions see the shrink.
    pub fn set_capacity_permille(&mut self, permille: u32) {
        self.capacity_permille = permille;
    }

    /// True when packets await the application.
    pub fn readable(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Packets queued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// End-of-run accounting: record packets still queued as
    /// `kernel_residue` (see [`BpfDevice::finalize_residue`]).
    pub fn finalize_residue(&mut self) {
        self.stats.kernel_residue = self.queue.len() as u64;
    }

    /// Dequeue up to `max` packets (the application's recvfrom loop /
    /// ring scan). Returns packets and the bytes that will be copied to
    /// user space (0 for mmap: the copy happened on the kernel side).
    pub fn dequeue(&mut self, max: usize) -> (Vec<CapturedPacket>, u64) {
        let mut out = Vec::with_capacity(self.queue.len().min(max));
        let copy_bytes = self.dequeue_into(max, &mut out);
        (out, copy_bytes)
    }

    /// Allocation-free `dequeue`: appends up to `max` packets to `out`
    /// (a pooled buffer) and returns the bytes that will be copied to
    /// user space.
    pub fn dequeue_into(&mut self, max: usize, out: &mut Vec<CapturedPacket>) -> u64 {
        let n = self.queue.len().min(max);
        let mut copy_bytes = 0u64;
        for _ in 0..n {
            let p = self.queue.pop_front().expect("len checked");
            self.queue_bytes -= self.charge_of(&p);
            if !self.mmap {
                copy_bytes += p.caplen as u64;
            }
            out.push(p);
        }
        self.stats.delivered += n as u64;
        copy_bytes
    }

    fn charge_of(&self, p: &CapturedPacket) -> u64 {
        if self.mmap {
            (p.caplen as u64 + 32 + 15) & !15
        } else {
            skb_truesize(p.frame_len)
        }
    }
}

/// The Linux-side kernel state: every socket plus the shared packet pool.
///
/// §6.3.3: "Linux uses reference counting for the packets in kernel
/// memory. If any application does not release the claim for a packet
/// this packet is kept forever, blocking kernel memory. Once the kernel
/// memory buffer is full, every further incoming packet will be dropped."
#[derive(Debug)]
pub struct LsfState {
    /// The sockets (one per capture application).
    pub sockets: Vec<LsfSocket>,
    /// Shared pool capacity in bytes.
    pool_capacity: u64,
    /// Fault-injected capacity scale (1000 = full size).
    capacity_permille: u32,
    pool_bytes: u64,
    /// seq → (remaining refs, pooled truesize) for refcounted packets.
    /// Three keyed operations per packet on the softirq path, so the
    /// map uses the deterministic [`FastHash`] (iteration order is
    /// never observed — only `get_mut`/`insert`/`remove` by seq).
    refs: HashMap<u64, (u32, u64), FastHash>,
    /// Per-call delivery scratch, reused so the per-packet softirq path
    /// never allocates (DESIGN.md §15).
    outcomes: Vec<DeliverOutcome>,
    /// Per-call filter-verdict scratch (pass 1 of [`LsfState::deliver`]).
    accepts: Vec<Option<u32>>,
}

impl LsfState {
    /// Build the kernel state for `sockets`, sharing a pool of
    /// `pool_capacity` bytes.
    pub fn new(sockets: Vec<LsfSocket>, pool_capacity: u64) -> LsfState {
        LsfState {
            sockets,
            pool_capacity,
            capacity_permille: 1000,
            pool_bytes: 0,
            refs: HashMap::default(),
            outcomes: Vec::new(),
            accepts: Vec::new(),
        }
    }

    /// Fault hook: scale the pool and every socket's budget to
    /// `permille`/1000 of their configured sizes (1000 restores them).
    pub fn set_capacity_permille(&mut self, permille: u32) {
        self.capacity_permille = permille;
        for s in &mut self.sockets {
            s.set_capacity_permille(permille);
        }
    }

    /// Offer one packet to every socket (the softirq path). Returns one
    /// outcome per socket, borrowed from internal scratch that the next
    /// `deliver` call reuses — the per-packet path allocates nothing.
    pub fn deliver(&mut self, pkt: &SimPacket, recv_ns: u64) -> &[DeliverOutcome] {
        let outcomes = &mut self.outcomes;
        outcomes.clear();
        // Pass 1: filters.
        let accepts = &mut self.accepts;
        accepts.clear();
        for s in &mut self.sockets {
            let (accept_len, insns) = match &mut s.filter {
                Some(f) => f.check(pkt),
                None => (u32::MAX, 0),
            };
            if accept_len == 0 {
                s.stats.rejected += 1;
                accepts.push(None);
            } else {
                s.stats.accepted += 1;
                accepts.push(Some(pkt.frame_len.min(accept_len).min(s.snaplen)));
            }
            outcomes.push(DeliverOutcome {
                accepted: accept_len != 0,
                filter_insns: insns,
                copied_bytes: 0,
                stored: false,
                drop: DropKind::None,
            });
        }
        let truesize = skb_truesize(pkt.frame_len);
        let any_accept = accepts.iter().any(|a| a.is_some());
        if !any_accept {
            return &self.outcomes;
        }
        // Pool admission: one charge per packet regardless of how many
        // sockets reference it.
        let non_mmap_accepts = accepts
            .iter()
            .zip(&self.sockets)
            .filter(|(a, s)| a.is_some() && !s.mmap)
            .count() as u32;
        let pool_ok = non_mmap_accepts == 0
            || self.pool_bytes + truesize
                <= scaled_capacity(self.pool_capacity, self.capacity_permille);
        let mut refs = 0u32;
        for (i, s) in self.sockets.iter_mut().enumerate() {
            let caplen = match accepts[i] {
                Some(c) => c,
                None => continue,
            };
            let cap = CapturedPacket {
                seq: pkt.seq,
                gen_ns: pkt.gen_ns,
                recv_ns,
                caplen,
                frame_len: pkt.frame_len,
            };
            if s.mmap {
                // mmap ring: bounded by its own ring bytes; kernel copies
                // caplen into the ring.
                let charge = s.charge_of(&cap);
                if s.queue_bytes + charge <= scaled_capacity(s.rmem, s.capacity_permille) {
                    s.queue_bytes += charge;
                    s.queue.push_back(cap);
                    outcomes[i].copied_bytes = caplen;
                    outcomes[i].stored = true;
                } else {
                    s.stats.dropped_buffer += 1;
                    outcomes[i].drop = DropKind::Buffer;
                }
                continue;
            }
            if !pool_ok {
                s.stats.dropped_pool += 1;
                outcomes[i].drop = DropKind::Pool;
                continue;
            }
            let charge = skb_truesize(pkt.frame_len);
            if s.queue_bytes + charge <= scaled_capacity(s.rmem, s.capacity_permille) {
                s.queue_bytes += charge;
                s.queue.push_back(cap);
                outcomes[i].stored = true;
                refs += 1;
            } else {
                s.stats.dropped_buffer += 1;
                outcomes[i].drop = DropKind::Buffer;
            }
        }
        if refs > 0 {
            self.pool_bytes += truesize;
            self.refs.insert(pkt.seq, (refs, truesize));
        }
        &self.outcomes
    }

    /// Release one reference per packet dequeued by a (non-mmap) socket.
    pub fn release(&mut self, seqs: &[u64]) {
        for &seq in seqs {
            self.release_seq(seq);
        }
    }

    /// Release a single packet reference (the allocation-free variant of
    /// [`LsfState::release`] — no seq vector needed).
    pub fn release_seq(&mut self, seq: u64) {
        if let Some((refs, truesize)) = self.refs.get_mut(&seq) {
            *refs -= 1;
            if *refs == 0 {
                self.pool_bytes -= *truesize;
                self.refs.remove(&seq);
            }
        }
    }

    /// Current pool usage in bytes.
    pub fn pool_bytes(&self) -> u64 {
        self.pool_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_wire::MacAddr;
    use std::net::Ipv4Addr;

    fn pkt(seq: u64, len: u32) -> SimPacket {
        SimPacket::build_udp(
            seq,
            seq * 1000,
            len,
            MacAddr::ZERO.offset(seq % 3),
            MacAddr::new(0, 0xe, 0xc, 1, 2, 3),
            Ipv4Addr::new(192, 168, 10, 100),
            Ipv4Addr::new(192, 168, 10, 12),
            9,
            9,
        )
    }

    // ---- BPF device ----

    #[test]
    fn bpf_stores_and_reads() {
        let mut d = BpfDevice::new(10_000, 65_535, None);
        for i in 0..5 {
            let o = d.deliver(&pkt(i, 100), i * 10);
            assert!(o.accepted && o.stored);
            assert_eq!(o.copied_bytes, 100);
        }
        assert!(d.readable());
        let (pkts, bytes) = d.read();
        assert_eq!(pkts.len(), 5);
        assert_eq!(bytes, 5 * bpf_slot_bytes(100));
        assert_eq!(d.stats.delivered, 5);
        assert!(!d.readable());
    }

    #[test]
    fn bpf_rotates_when_store_full_and_drops_when_both_full() {
        // Each 100-byte packet occupies 120 bytes; half holds 2.
        let mut d = BpfDevice::new(240, 65_535, None);
        assert!(d.deliver(&pkt(0, 100), 0).stored);
        assert!(d.deliver(&pkt(1, 100), 0).stored);
        // Third packet: store full, hold empty -> rotation, stored.
        assert!(d.deliver(&pkt(2, 100), 0).stored);
        assert!(d.deliver(&pkt(3, 100), 0).stored);
        // Fifth: store full, hold full -> drop.
        let o = d.deliver(&pkt(4, 100), 0);
        assert!(o.accepted && !o.stored);
        assert_eq!(d.stats.dropped_buffer, 1);
        // Read returns the HOLD half (packets 0,1), then the next read
        // rotates and returns 2,3.
        let (a, _) = d.read();
        assert_eq!(a.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![0, 1]);
        let (b, _) = d.read();
        assert_eq!(b.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn bpf_snaplen_truncates() {
        let mut d = BpfDevice::new(100_000, 76, None);
        let o = d.deliver(&pkt(0, 1500), 0);
        assert_eq!(o.copied_bytes, 76);
        let (pkts, _) = d.read();
        assert_eq!(pkts[0].caplen, 76);
        assert_eq!(pkts[0].frame_len, 1500);
    }

    #[test]
    fn bpf_filter_rejects_and_counts() {
        let prog = pcs_bpf::compile("tcp", 65_535).unwrap();
        let mut d = BpfDevice::new(100_000, 65_535, Some(prog));
        let o = d.deliver(&pkt(0, 100), 0);
        assert!(!o.accepted);
        assert!(o.filter_insns > 0);
        assert_eq!(d.stats.rejected, 1);
        assert!(!d.readable());
    }

    #[test]
    fn filter_cache_hits_are_exact() {
        let prog = pcs_bpf::programs::fig65_program(65_535).unwrap();
        let mut f = KernelFilter::new(prog.clone());
        // Two packets with the same shape but different seq: one miss,
        // one hit, identical verdicts.
        let a = f.check(&pkt(0, 750));
        let b = f.check(&pkt(3, 750)); // same MAC (seq%3==0), same size
        assert_eq!(a, b);
        assert_eq!(a.1 as usize, prog.len() - 1);
        // Different size is a different key but same verdict here.
        let c = f.check(&pkt(1, 1000));
        assert!(c.0 > 0);
    }

    // ---- LSF ----

    fn lsf(n: usize, rmem: u64, pool: u64) -> LsfState {
        let sockets = (0..n)
            .map(|_| LsfSocket::new(rmem, 65_535, None, false))
            .collect();
        LsfState::new(sockets, pool)
    }

    #[test]
    fn lsf_delivers_to_all_sockets() {
        let mut l = lsf(3, 1 << 20, 1 << 20);
        let o = l.deliver(&pkt(0, 500), 7);
        assert_eq!(o.len(), 3);
        assert!(o.iter().all(|x| x.accepted && x.stored));
        // Pool charged once.
        assert_eq!(l.pool_bytes(), skb_truesize(500));
        for s in &l.sockets {
            assert_eq!(s.queue_len(), 1);
        }
    }

    #[test]
    fn lsf_pool_exhaustion_blocks_everyone() {
        // Pool fits exactly one packet; socket rmem is large.
        let mut l = lsf(2, 1 << 20, skb_truesize(500));
        assert!(l.deliver(&pkt(0, 500), 0).iter().all(|o| o.stored));
        let o = l.deliver(&pkt(1, 500), 0);
        assert!(o.iter().all(|x| x.accepted && !x.stored));
        assert_eq!(l.sockets[0].stats.dropped_pool, 1);
        assert_eq!(l.sockets[1].stats.dropped_pool, 1);
        // One socket dequeues: pool still held by the other's reference.
        let (pkts, _) = l.sockets[0].dequeue(10);
        l.release(&pkts.iter().map(|p| p.seq).collect::<Vec<_>>());
        assert_eq!(l.pool_bytes(), skb_truesize(500));
        let o = l.deliver(&pkt(2, 500), 0);
        assert!(o.iter().all(|x| !x.stored));
        // Second socket dequeues: pool frees, delivery works again.
        let (pkts, _) = l.sockets[1].dequeue(10);
        l.release(&pkts.iter().map(|p| p.seq).collect::<Vec<_>>());
        assert_eq!(l.pool_bytes(), 0);
        assert!(l.deliver(&pkt(3, 500), 0).iter().all(|x| x.stored));
    }

    #[test]
    fn lsf_per_socket_rmem_limits() {
        // Tiny rmem on socket 0, large on socket 1.
        let sockets = vec![
            LsfSocket::new(skb_truesize(500), 65_535, None, false),
            LsfSocket::new(1 << 20, 65_535, None, false),
        ];
        let mut l = LsfState::new(sockets, 1 << 20);
        assert!(l.deliver(&pkt(0, 500), 0)[0].stored);
        let o = l.deliver(&pkt(1, 500), 0);
        assert!(!o[0].stored, "socket 0 rmem full");
        assert!(o[1].stored, "socket 1 unaffected");
        assert_eq!(l.sockets[0].stats.dropped_buffer, 1);
    }

    #[test]
    fn lsf_dequeue_copies_bytes_and_releases() {
        let mut l = lsf(1, 1 << 20, 1 << 20);
        for i in 0..4 {
            l.deliver(&pkt(i, 200), 0);
        }
        let (pkts, bytes) = l.sockets[0].dequeue(2);
        assert_eq!(pkts.len(), 2);
        assert_eq!(bytes, 400);
        l.release(&pkts.iter().map(|p| p.seq).collect::<Vec<_>>());
        assert_eq!(l.pool_bytes(), 2 * skb_truesize(200));
    }

    #[test]
    fn mmap_ring_copies_in_kernel_and_ignores_pool() {
        let sockets = vec![LsfSocket::new(4096, 65_535, None, true)];
        // Pool of zero: mmap sockets must not need it.
        let mut l = LsfState::new(sockets, 0);
        let o = l.deliver(&pkt(0, 500), 0);
        assert!(o[0].stored);
        assert_eq!(o[0].copied_bytes, 500);
        assert_eq!(l.pool_bytes(), 0);
        let (pkts, user_copy) = l.sockets[0].dequeue(10);
        assert_eq!(pkts.len(), 1);
        assert_eq!(user_copy, 0, "mmap read copies nothing");
    }

    #[test]
    fn mmap_ring_overflows_at_ring_capacity() {
        let sockets = vec![LsfSocket::new(1100, 65_535, None, true)];
        let mut l = LsfState::new(sockets, 0);
        // Each 500-byte packet occupies align16(532) = 544 ring bytes.
        assert!(l.deliver(&pkt(0, 500), 0)[0].stored);
        assert!(l.deliver(&pkt(1, 500), 0)[0].stored);
        assert!(!l.deliver(&pkt(2, 500), 0)[0].stored);
        assert_eq!(l.sockets[0].stats.dropped_buffer, 1);
    }
}
