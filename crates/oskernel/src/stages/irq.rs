//! Interrupt fire: moderation/polling gates, the batch drain across the
//! bus, and kernel-side delivery into every consumer.

use super::{ArrivalSource, MAX_IRQ_BATCH};
use crate::cpustate::CpuState;
use crate::event::{Completion, PacketView, Segments, SimEvent, Work};
use crate::sim::{MachineSim, Stack};
use crate::stack::DropKind;
use pcs_des::{SimDuration, SimTime};
use pcs_hw::InterruptScheme;
use pcs_trace::{Stage, WorkKind, APP_NONE, SEQ_NONE};

/// Map one consumer's [`crate::stack::DeliverOutcome`] to its trace
/// stages: the filter verdict, and (for accepted packets) whether the
/// kernel stored or dropped it.
pub(crate) fn consumer_stages(o: &crate::stack::DeliverOutcome) -> (Stage, Option<Stage>) {
    if !o.accepted {
        (Stage::FilterReject, None)
    } else if o.stored {
        (Stage::FilterAccept, Some(Stage::KernelEnqueue))
    } else {
        let dropped = match o.drop {
            DropKind::Pool => Stage::KernelDropPool,
            _ => Stage::KernelDropBuffer,
        };
        (Stage::FilterAccept, Some(dropped))
    }
}

/// The interrupt stage: handles [`SimEvent::IrqGate`].
pub(crate) struct Irq;

impl super::Stage for Irq {
    const NAME: &'static str = "irq";

    fn on_event(sim: &mut MachineSim, now: SimTime, _ev: SimEvent, _src: ArrivalSource) {
        sim.try_fire_irq(now);
    }
}

impl MachineSim {
    pub(crate) fn try_fire_irq(&mut self, now: SimTime) {
        if self.irq_pending || self.ring.is_empty() {
            return;
        }
        if let Some(f) = self.faults.as_deref_mut() {
            let extra = f.irq_extra_gap_ns(now.as_nanos());
            if extra > 0 {
                let until = now + SimDuration::from_nanos(extra);
                if until > self.fault_irq_gate {
                    self.fault_irq_gate = until;
                    self.sched.queue.schedule(until, SimEvent::IrqGate);
                }
                return;
            }
        }
        match self.spec.nic.interrupts {
            InterruptScheme::Moderated { min_gap_ns } => {
                if now < self.next_irq_allowed {
                    self.sched
                        .queue
                        .schedule(self.next_irq_allowed, SimEvent::IrqGate);
                    return;
                }
                self.next_irq_allowed = now + SimDuration::from_nanos(min_gap_ns);
            }
            InterruptScheme::Polling { interval_ns } => {
                // The ring is only visited on the polling clock.
                if now < self.next_irq_allowed {
                    self.sched
                        .queue
                        .schedule(self.next_irq_allowed, SimEvent::IrqGate);
                    return;
                }
                self.next_irq_allowed = now + SimDuration::from_nanos(interval_ns);
            }
            InterruptScheme::PerPacket => {}
        }
        self.irq_pending = true;
        let n = self.ring.len().min(MAX_IRQ_BATCH);
        // Pooled batch scratch: the same buffer (and the boxes of owned
        // packets in it) circulate between interrupts, so draining the
        // ring allocates nothing in steady state.
        let mut batch = self.sched.pool.views.get();
        batch.reserve(n);
        for _ in 0..n {
            batch.push(self.ring.pop_front().expect("len checked"));
        }
        if self.trace.is_on() {
            let bytes: u64 = batch.iter().map(|v| v.packet().frame_len as u64).sum();
            self.trace.emit(
                now.as_nanos(),
                Stage::BusTransfer,
                SEQ_NONE,
                bytes,
                APP_NONE,
                n as u32,
            );
            if let Some(m) = self.trace.metrics_mut() {
                m.observe("irq_batch_packets", n as u64);
                m.inc("irq_fires", 1);
            }
        }
        if let Some(f) = self.faults.as_deref_mut() {
            let permille = f.buffer_permille(now.as_nanos());
            match &mut self.stack {
                Stack::Bpf(devs) => devs
                    .iter_mut()
                    .for_each(|d| d.set_capacity_permille(permille)),
                Stack::Lsf(l) => l.set_capacity_permille(permille),
            }
        }
        let work = self.kernel_batch_work(now, &batch);
        for view in batch.drain(..) {
            self.sched.pool.recycle_view(view);
        }
        self.sched.pool.views.put(batch);
        self.submit(now, 0, work, true);
    }

    pub(crate) fn kernel_batch_work(&mut self, now: SimTime, batch: &[PacketView]) -> Work {
        let c = &self.costs;
        // Per-consumer delivery cost is a pure function of the filter's
        // executed instruction count (the only per-packet input —
        // tap/filter unit costs are run constants), so it is served from
        // the size-keyed memo: streams with few packet-size classes stop
        // redoing the float arithmetic per consumer per packet.
        let tap_pkt_ns = c.tap_pkt_ns;
        let filter_insn_ns = c.filter_insn_ns;
        let freebsd = self.spec.os.is_freebsd();
        // A poll visit skips the interrupt entry/ack machinery.
        let mut irq_ns = match self.spec.nic.interrupts {
            InterruptScheme::Polling { .. } => c.irq_ns / 4,
            _ => c.irq_ns,
        };
        let mut soft_ns = 0u64;
        let recv_ns = now.as_nanos();
        let mut copy_total = 0u64;
        let tracing = self.trace.is_on();
        for view in batch {
            let pkt = view.packet();
            let per_pkt = c.rx_pkt_ns;
            let mut consumer_ns = 0u64;
            match &mut self.stack {
                Stack::Bpf(devs) => {
                    for (i, d) in devs.iter_mut().enumerate() {
                        let o = d.deliver(pkt, recv_ns);
                        consumer_ns += self.memo.consumer.get(o.filter_insns as u64, || {
                            tap_pkt_ns + (o.filter_insns as f64 * filter_insn_ns) as u64
                        });
                        copy_total += o.copied_bytes as u64;
                        if tracing {
                            let (verdict, kernel) = consumer_stages(&o);
                            let len = pkt.frame_len as u64;
                            self.trace.emit(recv_ns, verdict, pkt.seq, len, i as u16, 1);
                            if let Some(k) = kernel {
                                self.trace.emit(recv_ns, k, pkt.seq, len, i as u16, 1);
                            }
                        }
                    }
                }
                Stack::Lsf(l) => {
                    let outcomes = l.deliver(pkt, recv_ns);
                    for (i, o) in outcomes.iter().enumerate() {
                        consumer_ns += self.memo.consumer.get(o.filter_insns as u64, || {
                            tap_pkt_ns + (o.filter_insns as f64 * filter_insn_ns) as u64
                        });
                        copy_total += o.copied_bytes as u64;
                        if tracing {
                            let (verdict, kernel) = consumer_stages(o);
                            let len = pkt.frame_len as u64;
                            self.trace.emit(recv_ns, verdict, pkt.seq, len, i as u16, 1);
                            if let Some(k) = kernel {
                                self.trace.emit(recv_ns, k, pkt.seq, len, i as u16, 1);
                            }
                        }
                    }
                }
            }
            if freebsd {
                irq_ns += per_pkt + consumer_ns;
            } else {
                soft_ns += per_pkt + c.softirq_pkt_ns + consumer_ns;
            }
        }
        // Buffer copies: DMA-fresh data, uncached.
        let copy_ns = if copy_total > 0 {
            self.copy_ns(copy_total, false)
        } else {
            0
        };
        let mut segments = Segments::new();
        if freebsd {
            segments.push((CpuState::Irq, irq_ns + copy_ns));
        } else {
            segments.push((CpuState::Irq, irq_ns));
            segments.push((CpuState::SoftIrq, soft_ns + copy_ns));
        }
        Work::new(WorkKind::KernelBatch, segments, Completion::KernelBatch)
    }

    pub(crate) fn wake_readable_apps(&mut self, now: SimTime) {
        for app in 0..self.apps.len() {
            if self.apps[app].state == crate::sim::AppState::Blocked && self.consumer_readable(app)
            {
                self.app_try_work(now, app);
            }
        }
    }
}
