//! Wire arrival: PCI-bus admission, the RX descriptor ring, and the
//! arrival-rate estimator.

use super::ArrivalSource;
use crate::event::{ArrivalFeed, PacketView, SimEvent};
use crate::sim::MachineSim;
use pcs_des::{SimDuration, SimTime};
use pcs_trace::{Stage, APP_NONE};

/// The NIC stage: handles [`SimEvent::Arrival`].
pub(crate) struct Nic;

impl super::Stage for Nic {
    const NAME: &'static str = "nic";

    fn on_event(sim: &mut MachineSim, now: SimTime, ev: SimEvent, src: ArrivalSource) {
        let SimEvent::Arrival(pkt) = ev else {
            unreachable!("{} stage only handles arrivals", Self::NAME);
        };
        sim.on_arrival(now, pkt, src);
    }
}

impl MachineSim {
    fn on_arrival(&mut self, now: SimTime, pkt: PacketView, src: ArrivalSource) {
        self.offered += 1;
        let (seq, frame_len) = {
            let p = pkt.packet();
            (p.seq, p.frame_len as u64)
        };
        self.note_arrival(now, frame_len as u32);
        self.trace
            .emit(now.as_nanos(), Stage::Wire, seq, frame_len, APP_NONE, 1);
        // The NIC's FIFO drains across the PCI bus, which it
        // shares with the disk write-back traffic. When the
        // bus is oversubscribed only a fraction of the frames
        // make it to host memory (fractional credit keeps the
        // model deterministic).
        let mut demand = self.arrival_ema_bps as u64 + self.writeback_ema_bps as u64;
        let mut ring_slots = self.ring_slots;
        if let Some(f) = self.faults.as_deref_mut() {
            demand = demand.saturating_add(f.bus_extra_demand_bps(now.as_nanos()));
            ring_slots = f.ring_slots(now.as_nanos(), ring_slots);
        }
        self.pci_credit += self.spec.pci.service_fraction(demand);
        if self.pci_credit < 1.0 {
            self.nic_ring_drops += 1;
            self.sched.pool.recycle_view(pkt);
            self.trace.emit(
                now.as_nanos(),
                Stage::NicDropBus,
                seq,
                frame_len,
                APP_NONE,
                1,
            );
        } else {
            self.pci_credit -= 1.0;
            if self.ring.len() < ring_slots {
                self.ring.push_back(pkt);
                self.trace.emit(
                    now.as_nanos(),
                    Stage::NicEnqueue,
                    seq,
                    frame_len,
                    APP_NONE,
                    1,
                );
                if let Some(m) = self.trace.metrics_mut() {
                    m.observe("nic_ring_depth", self.ring.len() as u64);
                }
            } else {
                self.nic_ring_drops += 1;
                self.sched.pool.recycle_view(pkt);
                self.trace.emit(
                    now.as_nanos(),
                    Stage::NicDropRing,
                    seq,
                    frame_len,
                    APP_NONE,
                    1,
                );
            }
        }
        match src.next() {
            Some(feed) => self.schedule_arrival(feed),
            None => {
                self.source_done = true;
                self.load_end = Some(self.sample(now));
                self.stop_at = Some(now + SimDuration::from_nanos(self.drain_timeout_ns));
            }
        }
        self.try_fire_irq(now);
    }

    /// Turn one pulled [`ArrivalFeed`] into a queued arrival event.
    /// Owned packets land in a recycled box from the scheduler's pool.
    pub(crate) fn schedule_arrival(&mut self, feed: ArrivalFeed) {
        let (t, view) = match feed {
            ArrivalFeed::Owned(t, p) => (t, PacketView::Owned(self.sched.pool.box_packet(p))),
            ArrivalFeed::Shared(r) => (r.time(), PacketView::Shared(r)),
        };
        self.sched.queue.schedule(t, SimEvent::Arrival(view));
    }

    pub(crate) fn note_arrival(&mut self, now: SimTime, frame_len: u32) {
        let dt = now.since(self.last_arrival).as_nanos().max(1) as f64;
        let inst = frame_len as f64 * 1e9 / dt;
        let alpha = (-dt / 2e6).exp(); // ~2 ms smoothing
        self.arrival_ema_bps = self.arrival_ema_bps * alpha + inst * (1.0 - alpha);
        self.last_arrival = now;
    }
}
