//! Wire arrival: PCI-bus admission, the RX descriptor ring, and the
//! arrival-rate estimator.

use super::ArrivalSource;
use crate::event::{ArrivalFeed, PacketView, SimEvent};
use crate::sim::MachineSim;
use pcs_des::{SimDuration, SimTime};
use pcs_trace::{Stage, APP_NONE};

/// The NIC stage: handles [`SimEvent::Arrival`].
pub(crate) struct Nic;

impl super::Stage for Nic {
    const NAME: &'static str = "nic";

    fn on_event(sim: &mut MachineSim, now: SimTime, ev: SimEvent, src: ArrivalSource) {
        let SimEvent::Arrival(pkt) = ev else {
            unreachable!("{} stage only handles arrivals", Self::NAME);
        };
        sim.on_arrival(now, pkt, src);
    }
}

impl MachineSim {
    fn on_arrival(&mut self, now: SimTime, pkt: PacketView, src: ArrivalSource) {
        self.admit_arrival(now, pkt, src);
        if !self.batching {
            return;
        }
        // Macro-event coalescing: while the next arrival precedes every
        // queued event, admit it here instead of bouncing through the
        // main loop. This is exact, not approximate — the loop repeats
        // precisely the main loop's admission (same `precedes` check
        // over the same keys, same clock advance, same per-arrival
        // handler including the fault hooks, trace emissions, ring
        // bounds and IRQ gate), so any intervening event — a CpuFree, a
        // fault-window IRQ gate, the sample clock — splits the run
        // exactly where the unbatched engine would have interleaved it.
        // The main loop's stop_at check cannot be bypassed either:
        // stop_at is set only on source exhaustion, which leaves the
        // cursor empty and ends the run here.
        let mut run_len = 1u64;
        while run_len < crate::sim::BATCH_COALESCE_CAP
            && self.pending_arrival.precedes(self.sched.queue.peek_key())
        {
            let (t, view) = self
                .pending_arrival
                .take()
                .expect("cursor checked non-empty");
            self.sched.queue.advance_to(t);
            self.admit_arrival(t, view, src);
            run_len += 1;
        }
        self.batch_stats.note_run(run_len);
    }

    /// The per-arrival admission body: PCI credit, ring entry, the next
    /// source pull, and the IRQ gate. One call per packet, identical
    /// whether entered from the main loop or a coalesced run.
    fn admit_arrival(&mut self, now: SimTime, pkt: PacketView, src: ArrivalSource) {
        self.offered += 1;
        let (seq, frame_len) = {
            let p = pkt.packet();
            (p.seq, p.frame_len as u64)
        };
        self.note_arrival(now, frame_len as u32);
        self.trace
            .emit(now.as_nanos(), Stage::Wire, seq, frame_len, APP_NONE, 1);
        // The NIC's FIFO drains across the PCI bus, which it
        // shares with the disk write-back traffic. When the
        // bus is oversubscribed only a fraction of the frames
        // make it to host memory (fractional credit keeps the
        // model deterministic).
        let mut demand = self.arrival_ema_bps as u64 + self.writeback_ema_bps as u64;
        let mut ring_slots = self.ring_slots;
        if let Some(f) = self.faults.as_deref_mut() {
            demand = demand.saturating_add(f.bus_extra_demand_bps(now.as_nanos()));
            ring_slots = f.ring_slots(now.as_nanos(), ring_slots);
        }
        self.pci_credit += self.spec.pci.service_fraction(demand);
        if self.pci_credit < 1.0 {
            self.nic_ring_drops += 1;
            self.sched.pool.recycle_view(pkt);
            self.trace.emit(
                now.as_nanos(),
                Stage::NicDropBus,
                seq,
                frame_len,
                APP_NONE,
                1,
            );
        } else {
            self.pci_credit -= 1.0;
            if self.ring.len() < ring_slots {
                self.ring.push_back(pkt);
                self.trace.emit(
                    now.as_nanos(),
                    Stage::NicEnqueue,
                    seq,
                    frame_len,
                    APP_NONE,
                    1,
                );
                if let Some(m) = self.trace.metrics_mut() {
                    m.observe("nic_ring_depth", self.ring.len() as u64);
                }
            } else {
                self.nic_ring_drops += 1;
                self.sched.pool.recycle_view(pkt);
                self.trace.emit(
                    now.as_nanos(),
                    Stage::NicDropRing,
                    seq,
                    frame_len,
                    APP_NONE,
                    1,
                );
            }
        }
        match src.next() {
            Some(feed) => self.schedule_arrival(feed),
            None => {
                self.source_done = true;
                self.load_end = Some(self.sample(now));
                self.stop_at = Some(now + SimDuration::from_nanos(self.drain_timeout_ns));
            }
        }
        self.try_fire_irq(now);
    }

    /// Turn one pulled [`ArrivalFeed`] into the next arrival. Owned
    /// packets land in a recycled box from the scheduler's pool either
    /// way — boxing happens here, at the same program point in both
    /// branches, so pool traffic is identical batched and unbatched.
    /// Batched, the arrival waits in the admission cursor under a
    /// reserved heap sequence number (tie-breaking identical to the
    /// heap); unbatched, it is scheduled through the heap as always.
    pub(crate) fn schedule_arrival(&mut self, feed: ArrivalFeed) {
        let (t, view) = match feed {
            ArrivalFeed::Owned(t, p) => (t, PacketView::Owned(self.sched.pool.box_packet(p))),
            ArrivalFeed::Shared(r) => (r.time(), PacketView::Shared(r)),
        };
        if self.batching {
            let seq = self.sched.queue.reserve_seq();
            let key = pcs_des::EventQueue::<SimEvent>::admission_key(t, seq);
            self.pending_arrival.stash(key, view);
        } else {
            self.sched.queue.schedule(t, SimEvent::Arrival(view));
        }
    }

    pub(crate) fn note_arrival(&mut self, now: SimTime, frame_len: u32) {
        let dt = now.since(self.last_arrival).as_nanos().max(1) as f64;
        let inst = frame_len as f64 * 1e9 / dt;
        // ~2 ms smoothing; memoized (constant-gap streams repeat dt).
        let alpha = self.memo.alpha_arrival.get(dt, |dt| (-dt / 2e6).exp());
        self.arrival_ema_bps = self.arrival_ema_bps * alpha + inst * (1.0 - alpha);
        self.last_arrival = now;
    }
}
