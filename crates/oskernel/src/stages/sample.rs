//! Periodic cpusage-style accounting samples and drain detection.

use super::ArrivalSource;
use crate::cpustate::CpuState;
use crate::event::SimEvent;
use crate::report::CpuSample;
use crate::sim::{AppState, MachineSim};
use pcs_des::{SimDuration, SimTime};

/// The sampling stage: handles [`SimEvent::Sample`].
pub(crate) struct Sample;

impl super::Stage for Sample {
    const NAME: &'static str = "sample";

    fn on_event(sim: &mut MachineSim, now: SimTime, _ev: SimEvent, _src: ArrivalSource) {
        sim.samples.push(sim.sample(now));
        // Defensive kicks: restart any stalled background
        // consumer so sampling can't outlive real work.
        sim.schedule_writeback(now);
        sim.gzip_try_work(now);
        let done = sim.source_done && (sim.fully_drained() || sim.sched.queue.is_empty());
        if sim.sampling && !done {
            sim.sched
                .queue
                .schedule(now + SimDuration::from_millis(500), SimEvent::Sample);
        } else {
            sim.sampling = false;
        }
    }
}

impl MachineSim {
    pub(crate) fn sample(&self, t: SimTime) -> CpuSample {
        // Cumulative accounting including implicit idle up to `t`.
        let per_cpu = self
            .sched
            .cpus
            .iter()
            .map(|c| {
                let mut acct = c.acct;
                if c.current.is_none() && t > c.idle_since {
                    acct.add(CpuState::Idle, t.since(c.idle_since).as_nanos());
                }
                acct
            })
            .collect();
        CpuSample { t, per_cpu }
    }

    pub(crate) fn fully_drained(&self) -> bool {
        self.source_done
            && self.ring.is_empty()
            && !self.irq_pending
            && self.sched.cpus.iter().all(|c| !c.busy())
            && self.apps.iter().enumerate().all(|(i, a)| {
                a.state == AppState::Blocked && a.pending.is_empty() && !self.consumer_readable(i)
            })
            && self.dirty_bytes == 0
            && self.pipe_used == 0
    }
}
