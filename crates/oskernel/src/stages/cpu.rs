//! CPU completion: account the finished work item, run what it
//! triggers, and restart the CPU.

use super::ArrivalSource;
use crate::event::{Completion, SimEvent};
use crate::sim::MachineSim;
use pcs_des::SimTime;
use pcs_trace::Stage;

/// The CPU stage: handles [`SimEvent::CpuFree`].
pub(crate) struct Cpu;

impl super::Stage for Cpu {
    const NAME: &'static str = "cpu";

    fn on_event(sim: &mut MachineSim, now: SimTime, ev: SimEvent, _src: ArrivalSource) {
        let SimEvent::CpuFree(cpu) = ev else {
            unreachable!("{} stage only handles CpuFree", Self::NAME);
        };
        sim.cpu_free(now, cpu);
    }
}

impl MachineSim {
    fn cpu_free(&mut self, now: SimTime, cpu: usize) {
        let (mut work, kernel_ns) = self.sched.finish_current(now, cpu);
        if cpu == 0 && kernel_ns > 0 {
            self.note_kernel_busy(now, kernel_ns);
        }
        // Extract the completion and retire the work box before running
        // the handler, so the box is on the free list in time for any
        // work the handler itself submits.
        let complete = std::mem::replace(&mut work.complete, Completion::None);
        self.sched.pool.recycle_work(work);
        match complete {
            Completion::KernelBatch => {
                self.irq_pending = false;
                self.wake_readable_apps(now);
                self.try_fire_irq(now);
            }
            Completion::AppCopyout { app } => self.app_process_pending(now, app),
            Completion::AppChunk {
                app,
                packets,
                bytes,
                mut recorded,
                traced,
            } => {
                self.apps[app].received += packets;
                self.apps[app].received_bytes += bytes;
                self.apps[app].captured.append(&mut recorded);
                self.sched.pool.captured.put(recorded);
                if !traced.is_empty() {
                    let now_ns = now.as_nanos();
                    for &(seq, _, caplen) in &traced {
                        self.trace.emit(
                            now_ns,
                            Stage::AppDeliver,
                            seq,
                            caplen as u64,
                            app as u16,
                            1,
                        );
                    }
                    // One histogram lookup per chunk, not per packet; the
                    // recorded values and counts are identical. The
                    // quantile digest sees the same values: it is the
                    // mergeable (order-independent) summary the run
                    // ledger renders exact percentiles from.
                    if let Some(m) = self.trace.metrics_mut() {
                        let h = m.histogram_entry("wire_to_app_latency_ns");
                        for &(_, gen_ns, _) in &traced {
                            h.record(now_ns.saturating_sub(gen_ns));
                        }
                        let d = m.digest_entry("wire_to_app_latency_ns");
                        for &(_, gen_ns, _) in &traced {
                            d.record(now_ns.saturating_sub(gen_ns));
                        }
                    }
                }
                self.sched.pool.traced.put(traced);
                self.app_continue(now, app);
            }
            Completion::GzipChunk { bytes } => {
                self.pipe_used = self.pipe_used.saturating_sub(bytes);
                self.gzip_busy = false;
                // Wake pipe writers blocked on space.
                let writers = std::mem::take(&mut self.pipe_writers_asleep);
                for w in writers {
                    self.sched.queue.schedule(now, SimEvent::AppResume(w));
                }
                self.gzip_try_work(now);
            }
            Completion::None => {}
        }
        // A completion handler may already have started the next item on
        // this CPU (e.g. a wakeup submitting application work).
        if !self.sched.cpus[cpu].busy() {
            self.start_next(now, cpu);
        }
    }
}
