//! Disk write-back and the gzip helper process fed through the FIFO.

use super::{ArrivalSource, PIPE_CAPACITY, WRITEBACK_CHUNK};
use crate::cpustate::CpuState;
use crate::event::{Completion, Segments, SimEvent, Work};
use crate::sim::MachineSim;
use pcs_des::{SimDuration, SimTime};
use pcs_trace::{Stage, WorkKind, APP_NONE, SEQ_NONE};

/// The disk stage: handles [`SimEvent::WritebackDone`].
pub(crate) struct Disk;

impl super::Stage for Disk {
    const NAME: &'static str = "disk";

    fn on_event(sim: &mut MachineSim, now: SimTime, _ev: SimEvent, _src: ArrivalSource) {
        sim.writeback_done(now);
    }
}

impl MachineSim {
    fn writeback_done(&mut self, now: SimTime) {
        let chunk = WRITEBACK_CHUNK.min(self.dirty_bytes);
        self.dirty_bytes -= chunk;
        self.disk_bytes += chunk;
        self.writeback_scheduled = false;
        self.trace.emit(
            now.as_nanos(),
            Stage::DiskWrite,
            SEQ_NONE,
            chunk,
            APP_NONE,
            1,
        );
        // Track the write-back rate for PCI bus sharing. The smoothing
        // factor is memoized (steady write-back repeats the chunk gap).
        let dt = now.since(self.last_writeback).as_nanos().max(1) as f64;
        let inst = chunk as f64 * 1e9 / dt;
        let alpha = self.memo.alpha_writeback.get(dt, |dt| (-dt / 50e6).exp());
        self.writeback_ema_bps = self.writeback_ema_bps * alpha + inst * (1.0 - alpha);
        self.last_writeback = now;
        // Completion interrupt cost on CPU0.
        let w = Work::new(
            WorkKind::DiskIrq,
            Segments::from_slice(&[(CpuState::Irq, self.spec.disk.irq_ns)]),
            Completion::None,
        );
        self.submit(now, 0, w, true);
        self.schedule_writeback(now);
    }

    pub(crate) fn schedule_writeback(&mut self, now: SimTime) {
        if self.writeback_scheduled || self.dirty_bytes == 0 {
            return;
        }
        self.writeback_scheduled = true;
        let chunk = WRITEBACK_CHUNK.min(self.dirty_bytes);
        let t = now + SimDuration::from_nanos(self.spec.disk.write_ns(chunk));
        self.sched.queue.schedule(t, SimEvent::WritebackDone);
    }

    pub(crate) fn gzip_try_work(&mut self, now: SimTime) {
        if self.gzip_busy || self.pipe_used == 0 {
            return;
        }
        // Find the compression level from the piping app.
        let level = self
            .apps
            .iter()
            .find_map(|a| a.cfg.pipe_to_gzip)
            .unwrap_or(3);
        self.gzip_busy = true;
        let c = &self.costs;
        let bytes = self.pipe_used.min(PIPE_CAPACITY);
        let cycles = c.compress_cycles_per_byte[level.min(9) as usize];
        let compress_ns = (bytes as f64 * cycles * 1e9 / self.spec.cpu.clock_hz as f64) as u64;
        let read_ns = c.pipe_syscall_ns + (bytes as f64 * c.pipe_ns_per_byte) as u64;
        let work = Work::new(
            WorkKind::Gzip,
            Segments::from_slice(&[(CpuState::System, read_ns), (CpuState::User, compress_ns)]),
            Completion::GzipChunk { bytes },
        );
        // A fresh CPU-bound process lands wherever the scheduler finds
        // room — on either OS, migration across CPUs is routine for
        // whole processes.
        let cpu = self.least_loaded_cpu();
        self.submit(now, cpu, work, false);
    }
}
