//! Application work: reads from the capture stacks, chunked user-space
//! processing with the configured analysis loads, and the disk/pipe
//! throttles that put applications to sleep.

use super::{ArrivalSource, APP_CHUNK, DIRTY_LIMIT, PIPE_CAPACITY};
use crate::cpustate::CpuState;
use crate::event::{Completion, Segments, SimEvent, Work};
use crate::sim::{AppState, MachineSim, Stack};
use crate::stack::CapturedPacket;
use pcs_des::{SimDuration, SimTime};
use pcs_trace::WorkKind;

/// The application stage: handles [`SimEvent::AppResume`].
pub(crate) struct App;

impl super::Stage for App {
    const NAME: &'static str = "app";

    fn on_event(sim: &mut MachineSim, now: SimTime, ev: SimEvent, _src: ArrivalSource) {
        let SimEvent::AppResume(app) = ev else {
            unreachable!("{} stage only handles AppResume", Self::NAME);
        };
        sim.apps[app].state = AppState::Blocked;
        sim.app_try_work(now, app);
    }
}

impl MachineSim {
    pub(crate) fn consumer_readable(&self, app: usize) -> bool {
        match &self.stack {
            Stack::Bpf(devs) => devs[app].readable(),
            Stack::Lsf(l) => l.sockets[app].readable(),
        }
    }

    /// Start a read if the app is blocked and data is available.
    pub(crate) fn app_try_work(&mut self, now: SimTime, app: usize) {
        if self.apps[app].state != AppState::Blocked {
            return;
        }
        if self.fault_pause_app(now, app) {
            return;
        }
        if !self.apps[app].pending.is_empty() {
            self.apps[app].state = AppState::Running;
            self.app_process_pending(now, app);
            return;
        }

        if !self.consumer_readable(app) {
            return;
        }
        self.apps[app].state = AppState::Running;
        let c = &self.costs;
        match &mut self.stack {
            Stack::Bpf(devs) => {
                // One read() returns a whole buffer: syscall + bulk
                // copyout straight into the app's pending queue (no
                // intermediate vector), then per-packet user processing.
                let (_, bytes) = devs[app].read_into(&mut self.apps[app].pending);
                let cached = 2 * devs[app].half_capacity() <= self.spec.cpu.l2_bytes;
                let copy = self
                    .spec
                    .memory
                    .copy_ns(bytes, self.arrival_ema_bps as u64, 0, cached);
                let work = Work::new(
                    WorkKind::AppRead,
                    Segments::from_slice(&[(CpuState::System, c.wakeup_ns + c.syscall_ns + copy)]),
                    Completion::AppCopyout { app },
                );
                let cpu = self.app_run_cpu(app);
                self.submit(now, cpu, work, false);
            }
            Stack::Lsf(_) => {
                self.app_linux_chunk(now, app);
            }
        }
    }

    /// If an armed plan pauses `app` at `now`, park it until the window
    /// closes and return `true`.
    pub(crate) fn fault_pause_app(&mut self, now: SimTime, app: usize) -> bool {
        if let Some(f) = self.faults.as_deref_mut() {
            if let Some(resume_ns) = f.app_pause_until_ns(now.as_nanos(), app) {
                self.apps[app].state = AppState::Sleeping;
                self.sched.queue.schedule(
                    SimTime::from_nanos(resume_ns.max(now.as_nanos() + 1)),
                    SimEvent::AppResume(app),
                );
                return true;
            }
        }
        false
    }

    /// FreeBSD: process copied-out packets in user space, chunked.
    pub(crate) fn app_process_pending(&mut self, now: SimTime, app: usize) {
        if self.fault_pause_app(now, app) {
            return;
        }
        let n = self.apps[app].pending.len().min(APP_CHUNK);
        if n == 0 {
            self.app_continue(now, app);
            return;
        }
        // Pooled chunk scratch: the buffer only lives for this call and
        // goes back to the pool on every path.
        let mut pkts = self.sched.pool.captured.get();
        pkts.extend(self.apps[app].pending.drain(..n));
        let work = self.user_processing_work(app, &pkts, 0);
        match work {
            Ok(w) => {
                let cpu = self.app_run_cpu(app);
                self.submit(now, cpu, w, false);
            }
            Err(delay) => {
                // Throttled (disk or pipe): put the packets back and sleep.
                for p in pkts.drain(..).rev() {
                    self.apps[app].pending.push_front(p);
                }
                self.apps[app].state = AppState::Sleeping;
                if delay != u64::MAX {
                    self.sched.queue.schedule(
                        now + SimDuration::from_nanos(delay),
                        SimEvent::AppResume(app),
                    );
                }
            }
        }
        self.sched.pool.captured.put(pkts);
    }

    /// Linux: one chunk = up to APP_CHUNK recvfrom calls.
    pub(crate) fn app_linux_chunk(&mut self, now: SimTime, app: usize) {
        let c = &self.costs;
        // Pooled chunk scratch (returned to the pool on every exit path).
        let mut pkts = self.sched.pool.captured.get();
        let (copy_bytes, mmap) = match &mut self.stack {
            Stack::Lsf(l) => {
                let s = &mut l.sockets[app];
                let mmap = s.mmap;
                let bytes = s.dequeue_into(APP_CHUNK, &mut pkts);
                if !mmap {
                    for p in pkts.iter() {
                        l.release_seq(p.seq);
                    }
                }
                (bytes, mmap)
            }
            Stack::Bpf(_) => unreachable!("linux chunk on BPF stack"),
        };
        if pkts.is_empty() {
            self.sched.pool.captured.put(pkts);
            self.app_continue(now, app);
            return;
        }
        let syscalls = if mmap {
            // The mmap ring is scanned without syscalls; one poll() per
            // chunk keeps the app honest.
            c.syscall_ns
        } else {
            (c.syscall_ns + c.recv_pkt_ns + c.wakeup_ns / APP_CHUNK as u64) * pkts.len() as u64
        };
        let copy = if copy_bytes > 0 {
            self.copy_ns(copy_bytes, false)
        } else {
            0
        };
        match self.user_processing_work(app, &pkts, syscalls + copy) {
            Ok(w) => {
                let cpu = self.app_run_cpu(app);
                self.submit(now, cpu, w, false);
            }
            Err(delay) => {
                // Throttled: stash into pending (processed on resume with
                // zero syscall re-cost — acceptable).
                self.apps[app].pending.extend(pkts.drain(..));
                self.apps[app].state = AppState::Sleeping;
                if delay != u64::MAX {
                    self.sched.queue.schedule(
                        now + SimDuration::from_nanos(delay),
                        SimEvent::AppResume(app),
                    );
                }
            }
        }
        self.sched.pool.captured.put(pkts);
    }

    /// Per-packet user-space processing cost for a chunk, including the
    /// configured analysis loads. Returns `Err(delay_ns)` when the app
    /// must sleep first (dirty throttle / full pipe).
    pub(crate) fn user_processing_work(
        &mut self,
        app: usize,
        pkts: &[CapturedPacket],
        extra_system_ns: u64,
    ) -> Result<Work, u64> {
        let c = &self.costs;
        let cfg = &self.apps[app].cfg;
        let n = pkts.len() as u64;
        let cap_bytes: u64 = pkts.iter().map(|p| p.caplen as u64).sum();

        // Disk throttle check first.
        if cfg.disk_write_bytes.is_some() && self.dirty_bytes > DIRTY_LIMIT {
            let over = self.dirty_bytes - DIRTY_LIMIT / 2;
            return Err(self.spec.disk.write_ns(over));
        }
        // Pipe space check: the writer blocks until the reader frees
        // space; the resume comes from the gzip chunk completion, so no
        // timed event is scheduled (signalled by u64::MAX).
        if cfg.pipe_to_gzip.is_some() && self.pipe_used >= PIPE_CAPACITY {
            self.pipe_writers_asleep.push(app);
            return Err(u64::MAX);
        }

        // Contention grows with the number of sockets sharing the packet
        // pool and its refcounts (Linux); FreeBSD devices are independent.
        let sharers = if self.spec.os.is_freebsd() {
            1.0
        } else {
            1.0 + 0.5 * (self.apps.len() as f64 - 1.0)
        };
        let contention = (c.contention_ns as f64 * self.kernel_util * sharers) as u64;
        let mut user_ns = n * (c.user_pkt_ns + contention);
        if self.apps[app].cfg.mmap {
            // The mmap app skips the kernel round trip per packet; its
            // per-packet user cost shrinks to header parsing.
            user_ns = n * (c.user_pkt_ns / 2 + contention);
        }
        let mut system_ns = extra_system_ns;

        if cfg.extra_copies > 0 {
            // Fig. 6.10: N user-space memcpys of the packet; the data was
            // just touched, so these run mostly from cache.
            let per_copy =
                self.spec
                    .memory
                    .copy_ns(cap_bytes, self.arrival_ema_bps as u64, 0, true)
                    / n.max(1);
            user_ns += n * cfg.extra_copies as u64 * (c.memcpy_call_ns + per_copy);
        }
        if let Some(level) = cfg.compress_level {
            // Fig. 6.11: gzwrite per packet. Core-bound: cycles per byte.
            let cycles = c.compress_cycles_per_byte[level.min(9) as usize];
            let ns = (cap_bytes as f64 * cycles * 1e9 / self.spec.cpu.clock_hz as f64) as u64;
            user_ns += ns + n * 150; // gzwrite call overhead
        }
        if let Some(hdr) = cfg.disk_write_bytes {
            // Fig. 6.14: write the first `hdr` bytes of each packet.
            let bytes: u64 = pkts.iter().map(|p| (p.caplen.min(hdr)) as u64).sum();
            system_ns += self.spec.disk.cpu_ns(bytes) + c.syscall_ns * n / 8;
            self.dirty_bytes += bytes;
        }
        if cfg.pipe_to_gzip.is_some() {
            // Fig. 6.12: write whole packets into the FIFO.
            system_ns += n * c.pipe_syscall_ns / 4 + (cap_bytes as f64 * c.pipe_ns_per_byte) as u64;
            self.pipe_used += cap_bytes;
            self.pipe_bytes_total += cap_bytes;
        }
        // Pooled result buffers: they travel inside the completion and
        // come back to the pool when the chunk retires (cpu stage). The
        // disabled cases hand over an empty non-pooled Vec, which the
        // pool's put() ignores (capacity 0).
        let recorded = if self.apps[app].cfg.record {
            let mut r = self.sched.pool.captured.get();
            r.extend_from_slice(pkts);
            r
        } else {
            Vec::new()
        };
        let traced = if self.trace.is_on() {
            let mut t = self.sched.pool.traced.get();
            t.extend(pkts.iter().map(|p| (p.seq, p.gen_ns, p.caplen)));
            t
        } else {
            Vec::new()
        };

        Ok(Work::new(
            WorkKind::AppChunk,
            Segments::from_slice(&[(CpuState::System, system_ns), (CpuState::User, user_ns)]),
            Completion::AppChunk {
                app,
                packets: n,
                bytes: cap_bytes,
                recorded,
                traced,
            },
        ))
    }

    /// After a chunk: keep going if more data, otherwise block.
    pub(crate) fn app_continue(&mut self, now: SimTime, app: usize) {
        // Side effects that piggyback on chunk completion:
        self.schedule_writeback(now);
        self.gzip_try_work(now);

        if !self.apps[app].pending.is_empty() {
            self.app_process_pending(now, app);
            return;
        }
        if self.consumer_readable(app) {
            self.apps[app].state = AppState::Blocked;
            self.app_try_work(now, app);
        } else {
            self.apps[app].state = AppState::Blocked;
        }
    }
}
