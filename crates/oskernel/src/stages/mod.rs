//! The packet-lifecycle stages, one module per event kind.
//!
//! Each stage owns the handling of one [`SimEvent`] variant and the
//! helper logic that belongs to it:
//!
//! | stage                | event            | owns                                     |
//! |----------------------|------------------|------------------------------------------|
//! | [`nic::Nic`]         | `Arrival`        | PCI admission, RX ring, arrival EMA      |
//! | [`irq::Irq`]         | `IrqGate`        | interrupt schemes, batch drain, delivery |
//! | [`cpu::Cpu`]         | `CpuFree`        | completion dispatch, restart             |
//! | [`app::App`]         | `AppResume`      | reads, chunked user processing, throttles|
//! | [`disk::Disk`]       | `WritebackDone`  | write-back, gzip helper process          |
//! | [`sample::Sample`]   | `Sample`         | cpusage sampling, drain detection        |
//!
//! Stages implement the common [`Stage`] trait and are routed by
//! [`dispatch`]; they mutate the sim through `pub(crate)` fields and
//! submit work through the scheduler ([`crate::sched::Scheduler`]).
//! The split changes no behavior: handler bodies are the seed loop's
//! match arms, executed in the same order by the same event queue.

pub(crate) mod app;
pub(crate) mod cpu;
pub(crate) mod disk;
pub(crate) mod irq;
pub(crate) mod nic;
pub(crate) mod sample;

use crate::event::{ArrivalFeed, SimEvent};
use crate::sim::MachineSim;
use pcs_des::SimTime;

/// Maximum packets picked up by one interrupt batch.
pub(crate) const MAX_IRQ_BATCH: usize = 64;
/// Maximum packets processed per application work chunk.
pub(crate) const APP_CHUNK: usize = 64;
/// Pipe capacity (a classic 64 kB FIFO).
pub(crate) const PIPE_CAPACITY: u64 = 64 * 1024;
/// Write-back throttling threshold: an application writing to disk
/// blocks when this much dirty data is outstanding.
pub(crate) const DIRTY_LIMIT: u64 = 32 << 20;
/// Disk write-back granule.
pub(crate) const WRITEBACK_CHUNK: u64 = 1 << 20;

/// The timed packet source a stage may pull the next arrival from.
/// Items are [`ArrivalFeed`]s: owned packets travel unboxed so the NIC
/// stage can box them from the recycling pool.
pub(crate) type ArrivalSource<'a> = &'a mut dyn Iterator<Item = ArrivalFeed>;

/// One lifecycle stage: the handler for one event kind.
///
/// Contract: `on_event` is called exactly when the event queue pops an
/// event of the stage's kind, with `now` equal to the queue clock. A
/// stage may mutate any sim state, submit work to the scheduler, and
/// schedule further events at times `>= now`; it must not pop the
/// queue itself, and it may only pull `src` after consuming an
/// `Arrival` (one pull per arrival keeps chunked injection
/// order-equivalent to flat injection).
pub(crate) trait Stage {
    /// Stage name, for diagnostics and docs.
    const NAME: &'static str;
    /// Handle one dispatched event at sim-time `now`.
    fn on_event(sim: &mut MachineSim, now: SimTime, ev: SimEvent, src: ArrivalSource);
}

/// Route one popped event to its stage.
pub(crate) fn dispatch(sim: &mut MachineSim, now: SimTime, ev: SimEvent, src: ArrivalSource) {
    match ev {
        SimEvent::Arrival(_) => nic::Nic::on_event(sim, now, ev, src),
        SimEvent::IrqGate => irq::Irq::on_event(sim, now, ev, src),
        SimEvent::CpuFree(_) => cpu::Cpu::on_event(sim, now, ev, src),
        SimEvent::AppResume(_) => app::App::on_event(sim, now, ev, src),
        SimEvent::WritebackDone => disk::Disk::on_event(sim, now, ev, src),
        SimEvent::Sample => sample::Sample::on_event(sim, now, ev, src),
    }
}
