//! The per-machine discrete-event simulation: the [`MachineSim`] façade.
//!
//! One [`MachineSim`] models one system under test end to end: NIC ring,
//! interrupt batching, the OS capture stack (BPF device or PF_PACKET
//! sockets), CPUs with priority work queues and state accounting, capture
//! applications with their per-packet analysis loads, the disk write-back
//! path and pipes to helper processes.
//!
//! ## Execution model
//!
//! The simulation is event-scheduled: typed [`crate::event::SimEvent`]s
//! flow through the pcs-des queue owned by the
//! [`crate::sched::Scheduler`], and each event kind is handled by its
//! lifecycle stage module under [`crate::stages`]. CPUs execute *work
//! items* — bounded chunks of kernel or application work whose durations
//! come from the calibrated cost model ([`pcs_hw::OsCosts`]) and the
//! memory-system model. Kernel work (interrupt + stack processing) has
//! strict priority; application work is round-robin in chunks small
//! enough that interrupt latency stays realistic. This reproduces the
//! receive-livelock dynamics of Mogul & Ramakrishnan that the thesis
//! discusses in §2.2.1: as the packet rate grows, kernel work crowds out
//! the applications, buffers fill, and the capture rate collapses
//! gracefully (FreeBSD) or abruptly (Linux with its shared refcounted
//! pool).
//!
//! This module holds only the façade: construction, the run entry
//! points ([`MachineSim::run`], [`MachineSim::run_refs`],
//! [`MachineSim::run_source`]), and state shared across stages.

use crate::config::{AppConfig, SimConfig};
use crate::event::{ArrivalFeed, PacketView, SimEvent};
use crate::fault::MachineFaults;
use crate::report::{CpuSample, RunReport};
use crate::sched::Scheduler;
use crate::stack::{BpfDevice, CapturedPacket, LsfSocket, LsfState};
use crate::stages;
use pcs_des::{AdmissionCursor, BatchProbe, BatchStats, ExpMemo, PoolProbe, SimTime, SizeMemo};
use pcs_hw::{MachineSpec, OsCosts};
use pcs_pktgen::{PacketRef, PacketSource, SourceRefs};
use pcs_trace::TraceSink;
use pcs_wire::SimPacket;
use std::collections::VecDeque;
use std::sync::Arc;

/// Most consecutive arrivals one macro-batched admission run may absorb
/// before control returns to the main event loop. Mirrors
/// [`crate::stages::MAX_IRQ_BATCH`]: a coalesced run can at most fill
/// one interrupt's worth of ring slots, so capping at the same figure
/// bounds cursor dwell time without ever splitting a batch the IRQ path
/// could have taken whole.
pub const BATCH_COALESCE_CAP: u64 = 64;

/// Bit-exact memo tables for the per-packet path's pure cost
/// arithmetic. Every entry caches `f(input-bits)` keyed by the exact
/// input bits, so a hit returns precisely what recomputation would —
/// runs with the memos disabled are byte-identical.
pub(crate) struct CostMemo {
    /// `exp(-dt/2e6)` — the arrival-rate EMA smoothing factor.
    pub(crate) alpha_arrival: ExpMemo,
    /// `exp(-dt/5e6)` — the kernel-utilisation EMA smoothing factor.
    pub(crate) alpha_kernel: ExpMemo,
    /// `exp(-dt/50e6)` — the write-back EMA smoothing factor.
    pub(crate) alpha_writeback: ExpMemo,
    /// Per-consumer tap + filter nanoseconds, keyed by the filter's
    /// executed instruction count (constant per packet-size class).
    pub(crate) consumer: SizeMemo,
}

impl CostMemo {
    fn new(enabled: bool) -> CostMemo {
        CostMemo {
            alpha_arrival: ExpMemo::new(enabled),
            alpha_kernel: ExpMemo::new(enabled),
            alpha_writeback: ExpMemo::new(enabled),
            consumer: SizeMemo::new(enabled),
        }
    }

    fn set_enabled(&mut self, enabled: bool) {
        self.alpha_arrival.set_enabled(enabled);
        self.alpha_kernel.set_enabled(enabled);
        self.alpha_writeback.set_enabled(enabled);
        self.consumer.set_enabled(enabled);
    }

    /// (hits, misses) summed over the three EMA memos.
    pub(crate) fn alpha_counts(&self) -> (u64, u64) {
        (
            self.alpha_arrival.hits() + self.alpha_kernel.hits() + self.alpha_writeback.hits(),
            self.alpha_arrival.misses()
                + self.alpha_kernel.misses()
                + self.alpha_writeback.misses(),
        )
    }
}

/// Application run states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AppState {
    /// Waiting for data.
    Blocked,
    /// Has work queued or executing on its CPU.
    Running,
    /// Sleeping on an I/O throttle or a full pipe.
    Sleeping,
}

pub(crate) struct AppSim {
    pub(crate) cfg: AppConfig,
    pub(crate) cpu: usize,
    pub(crate) state: AppState,
    /// FreeBSD: packets copied out and awaiting user-space processing.
    pub(crate) pending: VecDeque<CapturedPacket>,
    /// Packets handed to the application (the thesis' capture count).
    pub(crate) received: u64,
    pub(crate) received_bytes: u64,
    /// Recorded packets when `cfg.record` is set.
    pub(crate) captured: Vec<CapturedPacket>,
}

pub(crate) enum Stack {
    Bpf(Vec<BpfDevice>),
    Lsf(LsfState),
}

/// The machine simulator. Feed it a timed packet stream via
/// [`MachineSim::run`].
///
/// ```
/// use pcs_oskernel::{MachineSim, SimConfig};
/// use pcs_hw::MachineSpec;
/// use pcs_pktgen::{Generator, PktgenConfig, TxModel};
///
/// let gen = Generator::new(
///     PktgenConfig { count: 1_000, ..PktgenConfig::default() },
///     TxModel::syskonnect(),
///     42,
/// );
/// let report = MachineSim::new(MachineSpec::moorhen(), SimConfig::default())
///     .run(gen.map(|tp| (tp.time, tp.packet)));
/// assert_eq!(report.offered, 1_000);
/// assert_eq!(report.apps[0].received, 1_000);
/// ```
pub struct MachineSim {
    pub(crate) spec: MachineSpec,
    pub(crate) costs: OsCosts,
    /// Sim clock + per-CPU run state (the event-scheduled core).
    pub(crate) sched: Scheduler,
    pub(crate) apps: Vec<AppSim>,
    pub(crate) stack: Stack,

    // NIC
    pub(crate) ring: VecDeque<PacketView>,
    pub(crate) ring_slots: usize,
    pub(crate) nic_ring_drops: u64,
    pub(crate) irq_pending: bool,
    pub(crate) next_irq_allowed: SimTime,

    // Rate estimators
    pub(crate) arrival_ema_bps: f64,
    pub(crate) last_arrival: SimTime,
    pub(crate) kernel_util: f64,
    pub(crate) last_kernel_update: SimTime,

    // Disk
    pub(crate) dirty_bytes: u64,
    pub(crate) writeback_scheduled: bool,
    pub(crate) disk_bytes: u64,
    /// Recent write-back byte rate (shares the PCI bus with the NIC).
    pub(crate) writeback_ema_bps: f64,
    pub(crate) last_writeback: SimTime,

    /// I/O bus admission: fractional credit per arriving frame when the
    /// PCI bus is oversubscribed (§2.2.3 — standard PCI cannot carry a
    /// loaded GbE link; PCI-64 can).
    pub(crate) pci_credit: f64,

    // Pipe + gzip helper
    pub(crate) pipe_used: u64,
    pub(crate) pipe_bytes_total: u64,
    pub(crate) gzip_busy: bool,
    pub(crate) pipe_writers_asleep: Vec<usize>,

    // Bookkeeping
    pub(crate) offered: u64,
    pub(crate) source_done: bool,
    pub(crate) samples: Vec<CpuSample>,
    pub(crate) sampling: bool,
    pub(crate) load_end: Option<CpuSample>,
    /// Hard stop: the controller's stop.sh kills the applications this
    /// long after the last packet (§3.4).
    pub(crate) stop_at: Option<SimTime>,
    pub(crate) drain_timeout_ns: u64,

    /// Lifecycle tracing; `TraceSink::Off` costs one branch per event
    /// site.
    pub(crate) trace: TraceSink,

    /// Armed fault plan; `None` (the default) costs one branch per hook
    /// site, mirroring the trace sink.
    pub(crate) faults: Option<Box<dyn MachineFaults>>,
    /// Latest IRQ-jitter gate already scheduled, so a jitter window
    /// queues one wakeup instead of one per arrival.
    pub(crate) fault_irq_gate: SimTime,

    /// Macro-batching master switch (coalesced admission + cost memos).
    /// On by default; `PCS_NO_BATCH=1` or
    /// [`MachineSim::with_batching`]`(false)` falls back to scheduling
    /// every arrival through the heap, byte-identically.
    pub(crate) batching: bool,
    /// Lazy-admission cursor: the next wire arrival, held outside the
    /// event heap under its reserved (time, seq) key. Always empty when
    /// batching is off.
    pub(crate) pending_arrival: AdmissionCursor<PacketView>,
    /// Coalesced-run counters, published to the probe at run end.
    pub(crate) batch_stats: BatchStats,
    /// Bit-exact memo tables for pure cost arithmetic.
    pub(crate) memo: CostMemo,

    /// Observability tap for the hot-path buffer pools. Stats are
    /// published here when the run finishes; they never enter the
    /// [`RunReport`] (pool usage depends on the injection path, and the
    /// report must stay byte-identical across all of them).
    pub(crate) pool_probe: Option<Arc<PoolProbe>>,
    /// Observability tap for the batching counters, alongside the pool
    /// probe and under the same rule: published at run end, never part
    /// of the [`RunReport`].
    pub(crate) batch_probe: Option<Arc<BatchProbe>>,
}

impl MachineSim {
    /// Build a simulator for `spec` under `cfg`.
    pub fn new(spec: MachineSpec, cfg: SimConfig) -> MachineSim {
        let ncpu = spec.cpu.logical_cpus() as usize;
        let costs = spec.costs();
        let napps = cfg.apps.len();
        assert!(napps > 0, "at least one capture application required");

        // Application placement: fill CPUs from the last one backwards so
        // CPU0 (which owns interrupts) is used last.
        let app_cpu = |i: usize| -> usize {
            if ncpu == 1 {
                0
            } else {
                ncpu - 1 - (i % ncpu)
            }
        };
        let apps: Vec<AppSim> = cfg
            .apps
            .iter()
            .enumerate()
            .map(|(i, a)| AppSim {
                cfg: a.clone(),
                cpu: app_cpu(i),
                state: AppState::Blocked,
                pending: VecDeque::new(),
                received: 0,
                received_bytes: 0,
                captured: Vec::new(),
            })
            .collect();

        let stack = if spec.os.is_freebsd() {
            Stack::Bpf(
                cfg.apps
                    .iter()
                    .map(|a| {
                        BpfDevice::new(cfg.buffers.bpf_half_bytes, a.snaplen, a.filter.clone())
                    })
                    .collect(),
            )
        } else {
            let sockets: Vec<LsfSocket> = cfg
                .apps
                .iter()
                .map(|a| {
                    LsfSocket::new(cfg.buffers.rmem_bytes, a.snaplen, a.filter.clone(), a.mmap)
                })
                .collect();
            Stack::Lsf(LsfState::new(sockets, cfg.buffers.rmem_bytes))
        };

        // Escape hatch: PCS_NO_POOL=1 disables buffer recycling so a
        // pooled run can be differentially tested against plain
        // allocation (they must be byte-identical).
        let pooling = !matches!(
            std::env::var("PCS_NO_POOL").ok().as_deref(),
            Some(v) if !v.is_empty() && v != "0"
        );
        // Escape hatch: PCS_NO_BATCH=1 disables macro-batched admission
        // (lazy arrivals, coalesced runs, cost memos) so a batched run
        // can be differentially tested against the heap-per-arrival
        // engine (they must be byte-identical).
        let batching = !matches!(
            std::env::var("PCS_NO_BATCH").ok().as_deref(),
            Some(v) if !v.is_empty() && v != "0"
        );
        // In-flight event bound: one CpuFree per CPU, one resume per
        // app, the sample clock, at most one arrival/IRQ gate/write-back
        // each, and slack for fault-injected gates. Pre-sizing to it
        // keeps the heap off the allocator for the whole run.
        let queue_hint = ncpu + napps + 8;

        MachineSim {
            ring_slots: spec.nic.rx_ring_slots as usize,
            sched: Scheduler::new(
                ncpu,
                spec.cpu.hyperthreading,
                spec.cpu.smt_factor(),
                pooling,
                queue_hint,
            ),
            spec,
            costs,
            apps,
            stack,
            ring: VecDeque::new(),
            nic_ring_drops: 0,
            irq_pending: false,
            next_irq_allowed: SimTime::ZERO,
            arrival_ema_bps: 0.0,
            last_arrival: SimTime::ZERO,
            kernel_util: 0.0,
            last_kernel_update: SimTime::ZERO,
            dirty_bytes: 0,
            writeback_scheduled: false,
            disk_bytes: 0,
            writeback_ema_bps: 0.0,
            last_writeback: SimTime::ZERO,
            pci_credit: 0.0,
            pipe_used: 0,
            pipe_bytes_total: 0,
            gzip_busy: false,
            pipe_writers_asleep: Vec::new(),
            offered: 0,
            source_done: false,
            samples: Vec::new(),
            sampling: true,
            load_end: None,
            stop_at: None,
            drain_timeout_ns: cfg.drain_timeout_ns,
            trace: TraceSink::Off,
            faults: None,
            fault_irq_gate: SimTime::ZERO,
            batching,
            pending_arrival: AdmissionCursor::new(),
            batch_stats: BatchStats::default(),
            memo: CostMemo::new(batching),
            pool_probe: None,
            batch_probe: None,
        }
    }

    /// Attach a trace sink. With [`TraceSink::Off`] (the default) the
    /// simulation is byte-identical to an untraced run.
    pub fn with_trace(mut self, sink: TraceSink) -> MachineSim {
        self.trace = sink;
        self
    }

    /// Arm a fault plan. With `None` (the default) the simulation is
    /// byte-identical to an unfaulted run.
    pub fn with_faults(mut self, faults: Option<Box<dyn MachineFaults>>) -> MachineSim {
        self.faults = faults;
        self
    }

    /// Arm per-CPU/per-work-kind sim-time attribution: the report gains
    /// [`RunReport::stage_times`] breaking each CPU's accounted time
    /// into busy-by-[`pcs_trace::WorkKind`], dispatch-added stretch, and
    /// idle. Off (the default) costs one branch per dispatch/finish and
    /// the run is byte-identical to an unarmed one; the attribution
    /// never feeds back into scheduling.
    pub fn with_stage_times(mut self, enabled: bool) -> MachineSim {
        self.sched.set_stage_times(enabled);
        self
    }

    /// Enable or disable hot-path buffer pooling (on by default, or off
    /// when `PCS_NO_POOL` is set in the environment). A pooled run is
    /// byte-identical to an unpooled one: only the allocator traffic
    /// differs. Exists for differential testing and benchmarking.
    pub fn with_pooling(mut self, enabled: bool) -> MachineSim {
        self.sched.pool.set_enabled(enabled);
        self
    }

    /// Attach a probe that receives the pooled-buffer statistics
    /// (gets / misses / recycles / high-water) when the run finishes.
    /// The probe is observability only — nothing it records feeds back
    /// into the simulation or its report.
    pub fn with_pool_probe(mut self, probe: Arc<PoolProbe>) -> MachineSim {
        self.pool_probe = Some(probe);
        self
    }

    /// Enable or disable macro-batched event admission (on by default,
    /// or off when `PCS_NO_BATCH` is set in the environment): lazy
    /// arrival scheduling through the admission cursor, coalesced
    /// NIC-admission runs, and the bit-exact cost memos. A batched run
    /// is byte-identical to an unbatched one — only the engine's heap
    /// traffic and arithmetic reuse differ. Exists for differential
    /// testing and benchmarking.
    pub fn with_batching(mut self, enabled: bool) -> MachineSim {
        self.batching = enabled;
        self.memo.set_enabled(enabled);
        self
    }

    /// Attach a probe that receives the macro-batching statistics
    /// (coalesced runs, memo hits/misses, the on/off config bit) when
    /// the run finishes. Observability only, like the pool probe.
    pub fn with_batch_probe(mut self, probe: Arc<BatchProbe>) -> MachineSim {
        self.batch_probe = Some(probe);
        self
    }

    /// Run the simulation over a timed packet source, to completion
    /// (including the post-generation drain), and report.
    ///
    /// Packets arrive owned and are boxed into recycled pool boxes as
    /// they enter the event queue. The pipeline's hot path avoids even
    /// the copy: see [`MachineSim::run_refs`].
    pub fn run<I>(self, source: I) -> RunReport
    where
        I: IntoIterator<Item = (SimTime, SimPacket)>,
    {
        self.run_injected(source.into_iter().map(|(t, p)| ArrivalFeed::Owned(t, p)))
    }

    /// Run the simulation over shared packet references — the clone-free
    /// injection path. Each arrival holds its chunk alive by refcount;
    /// packet bytes are read in place and never copied into the sim.
    ///
    /// Event-for-event identical to [`MachineSim::run`] over the cloned
    /// stream: only the ownership representation differs.
    pub fn run_refs<I>(self, source: I) -> RunReport
    where
        I: IntoIterator<Item = PacketRef>,
    {
        self.run_injected(source.into_iter().map(ArrivalFeed::Shared))
    }

    /// The event loop proper, over any packet representation: pop each
    /// event off the scheduler's queue and route it to its stage.
    fn run_injected<I>(mut self, mut src: I) -> RunReport
    where
        I: Iterator<Item = ArrivalFeed>,
    {
        match src.next() {
            Some(feed) => self.schedule_arrival(feed),
            None => self.source_done = true,
        }
        self.sched
            .queue
            .schedule(SimTime::from_millis(500), SimEvent::Sample);

        loop {
            // Cursor admission: the pending arrival bypasses the heap
            // when its reserved (time, seq) key precedes every queued
            // event — exact, because keys embed unique sequence numbers
            // allocated in scheduling order. With batching off the
            // cursor is always empty and this is a plain heap pop.
            let (now, ev) = if self.pending_arrival.precedes(self.sched.queue.peek_key()) {
                let (t, view) = self
                    .pending_arrival
                    .take()
                    .expect("cursor checked non-empty");
                self.sched.queue.advance_to(t);
                (t, SimEvent::Arrival(view))
            } else {
                match self.sched.queue.pop() {
                    Some(x) => x,
                    None => break,
                }
            };
            // The measurement controller stops the applications a bounded
            // time after generation ends; whatever is still buffered then
            // is lost (it never reached the application).
            if let Some(stop) = self.stop_at {
                if now > stop {
                    break;
                }
            }
            stages::dispatch(&mut self, now, ev, &mut src);
        }

        self.finish_report()
    }

    /// Run the simulation over a chunked [`PacketSource`] — the
    /// streaming-splitter path of the testbed.
    ///
    /// Packets are pulled out of the source chunk by chunk and injected
    /// as shared references ([`MachineSim::run_refs`]) — the sim reads
    /// each packet in place inside its broadcast chunk and never copies
    /// it. A source backed by a bounded queue blocks the pull, which is
    /// exactly how pipeline backpressure propagates from a slow sniffer
    /// to the generator. Because the event loop only requests the next
    /// arrival after the current one has been injected, the resulting
    /// event sequence — and therefore the whole [`RunReport`] — is
    /// byte-identical to [`MachineSim::run`] over the flattened packet
    /// stream, regardless of chunk size.
    pub fn run_source<S>(self, source: S) -> RunReport
    where
        S: PacketSource,
    {
        self.run_refs(SourceRefs::new(source))
    }

    // ----- shared rate estimators and memory-cost helpers -----

    pub(crate) fn note_kernel_busy(&mut self, now: SimTime, busy_ns: u64) {
        let dt = now.since(self.last_kernel_update).as_nanos().max(1) as f64;
        let inst = (busy_ns as f64 / dt).min(1.0);
        // ~5 ms smoothing; memoized (constant-gap streams repeat dt).
        let alpha = self.memo.alpha_kernel.get(dt, |dt| (-dt / 5e6).exp());
        self.kernel_util = self.kernel_util * alpha + inst * (1.0 - alpha);
        self.last_kernel_update = now;
    }

    pub(crate) fn dma_rate(&self) -> u64 {
        self.arrival_ema_bps as u64
    }

    pub(crate) fn copy_ns(&self, bytes: u64, cached: bool) -> u64 {
        let others = self
            .sched
            .cpus
            .iter()
            .filter(|c| c.busy())
            .count()
            .saturating_sub(1) as u32;
        self.spec
            .memory
            .copy_ns(bytes, self.dma_rate(), others, cached)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_trace::Stage;
    use pcs_wire::MacAddr;
    use std::net::Ipv4Addr;

    fn packets(n: u64, gap_us: u64) -> Vec<(SimTime, SimPacket)> {
        (0..n)
            .map(|i| {
                let t = SimTime::from_micros((i + 1) * gap_us);
                let p = SimPacket::build_udp(
                    i,
                    t.as_nanos(),
                    659,
                    MacAddr::ZERO,
                    MacAddr::BROADCAST,
                    Ipv4Addr::new(192, 168, 10, 100),
                    Ipv4Addr::new(192, 168, 10, 12),
                    9,
                    9,
                );
                (t, p)
            })
            .collect()
    }

    #[test]
    fn sparse_arrivals_cost_one_interrupt_each() {
        // 1 ms apart: every packet gets its own interrupt, so interrupt
        // time ≈ n × (irq + per-packet work).
        let spec = pcs_hw::MachineSpec::moorhen();
        let costs = spec.costs();
        let r = MachineSim::new(spec, SimConfig::default()).run(packets(100, 1_000));
        assert_eq!(r.apps[0].received, 100);
        let irq_ns = r.final_acct[0].irq;
        let floor = 100 * (costs.irq_ns + costs.rx_pkt_ns);
        assert!(
            irq_ns >= floor,
            "irq time {irq_ns} below the per-packet floor {floor}"
        );
    }

    #[test]
    fn dense_arrivals_batch_interrupts() {
        // Back-to-back arrivals amortize the entry cost over batches:
        // total interrupt time per packet must fall well below the
        // one-interrupt-per-packet case.
        let spec = pcs_hw::MachineSpec::moorhen();
        let sparse = MachineSim::new(spec, SimConfig::default()).run(packets(500, 1_000));
        // 3 µs gaps outrun the kernel, so the ring accumulates and each
        // interrupt picks up a batch. Normalize by packets the kernel
        // actually processed.
        let dense = MachineSim::new(spec, SimConfig::default()).run(packets(500, 3));
        let per_pkt_sparse = sparse.final_acct[0].irq / sparse.apps[0].stats.accepted.max(1);
        let per_pkt_dense = dense.final_acct[0].irq / dense.apps[0].stats.accepted.max(1);
        assert!(
            per_pkt_dense < per_pkt_sparse,
            "batching must amortize: dense {per_pkt_dense} vs sparse {per_pkt_sparse}"
        );
    }

    #[test]
    fn samples_arrive_on_the_half_second() {
        let r = MachineSim::new(pcs_hw::MachineSpec::swan(), SimConfig::default())
            .run(packets(2_000, 1_000)); // 2 s of traffic
        assert!(r.samples.len() >= 4, "{} samples", r.samples.len());
        for (i, s) in r.samples.iter().enumerate() {
            assert_eq!(s.t.as_nanos(), (i as u64 + 1) * 500_000_000);
        }
    }

    #[test]
    fn load_accounting_snapshot_taken_at_last_arrival() {
        let r = MachineSim::new(pcs_hw::MachineSpec::swan(), SimConfig::default())
            .run(packets(100, 1_000));
        let load = r.load_acct.expect("load snapshot");
        assert_eq!(load.t.as_nanos(), 100 * 1_000_000);
        // The final accounting contains at least as much busy time.
        for (l, f) in load.per_cpu.iter().zip(&r.final_acct) {
            assert!(f.busy() >= l.busy());
        }
    }

    #[test]
    fn empty_source_terminates_immediately() {
        let r =
            MachineSim::new(pcs_hw::MachineSpec::moorhen(), SimConfig::default()).run(Vec::new());
        assert_eq!(r.offered, 0);
        assert!(r.apps[0].received == 0);
    }

    #[test]
    fn run_source_matches_run_for_any_chunk_size() {
        use pcs_pktgen::{MaterializedSource, TimedPacket};
        use std::sync::Arc;

        let timed: Arc<Vec<TimedPacket>> = Arc::new(
            packets(400, 5)
                .into_iter()
                .map(|(time, packet)| TimedPacket { time, packet })
                .collect(),
        );
        let spec = pcs_hw::MachineSpec::moorhen();
        let reference = MachineSim::new(spec, SimConfig::default())
            .run(timed.iter().map(|tp| (tp.time, tp.packet.clone())));
        for chunk_packets in [1usize, 7, 4096] {
            let streamed = MachineSim::new(spec, SimConfig::default())
                .run_source(MaterializedSource::new(Arc::clone(&timed), chunk_packets));
            assert_eq!(
                format!("{reference:?}"),
                format!("{streamed:?}"),
                "chunk={chunk_packets}"
            );
        }
    }

    #[test]
    fn run_refs_matches_owned_run_exactly() {
        use pcs_pktgen::{MaterializedSource, SourceRefs, TimedPacket};
        use std::sync::Arc;

        let timed: Arc<Vec<TimedPacket>> = Arc::new(
            packets(300, 7)
                .into_iter()
                .map(|(time, packet)| TimedPacket { time, packet })
                .collect(),
        );
        let spec = pcs_hw::MachineSpec::swan();
        let owned = MachineSim::new(spec, SimConfig::default())
            .run(timed.iter().map(|tp| (tp.time, tp.packet.clone())));
        let shared = MachineSim::new(spec, SimConfig::default()).run_refs(SourceRefs::new(
            MaterializedSource::new(Arc::clone(&timed), 64),
        ));
        assert_eq!(format!("{owned:?}"), format!("{shared:?}"));
    }

    #[test]
    fn traced_run_records_lifecycle_and_balances() {
        use pcs_trace::TraceSpec;
        let spec = pcs_hw::MachineSpec::moorhen();
        let r = MachineSim::new(spec, SimConfig::default())
            .with_trace(TraceSink::bounded(TraceSpec::default()))
            .run(packets(200, 10));
        let trace = r.trace.as_ref().expect("trace report present");
        assert_eq!(trace.truncated, 0);
        let count_stage = |s: Stage| trace.events.iter().filter(|e| e.stage == s).count() as u64;
        assert_eq!(count_stage(Stage::Wire), 200);
        assert_eq!(count_stage(Stage::NicEnqueue), 200);
        assert_eq!(count_stage(Stage::AppDeliver), r.apps[0].received);
        assert!(count_stage(Stage::BusTransfer) > 0);
        // Sim-clock timestamps, monotone within the log.
        assert!(trace.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        let lat = trace
            .metrics
            .histogram("wire_to_app_latency_ns")
            .expect("latency histogram");
        assert_eq!(lat.count(), r.apps[0].received);
        for a in r.attributions() {
            assert!(a.balanced(), "unbalanced attribution: {a:?}");
            assert_eq!(a.generated, 200);
        }
    }

    #[test]
    fn traced_run_is_identical_to_untraced_apart_from_trace() {
        use pcs_trace::TraceSpec;
        let spec = pcs_hw::MachineSpec::swan();
        let plain = MachineSim::new(spec, SimConfig::default()).run(packets(300, 3));
        let mut traced = MachineSim::new(spec, SimConfig::default())
            .with_trace(TraceSink::bounded(TraceSpec::default()))
            .run(packets(300, 3));
        assert!(plain.trace.is_none());
        assert!(traced.trace.is_some());
        traced.trace = None;
        assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
    }

    #[test]
    fn sched_traced_run_records_dispatches_and_stays_identical() {
        use pcs_trace::{StageFilter, TraceSpec, WorkKind, DEFAULT_EVENT_CAP};
        let spec = pcs_hw::MachineSpec::swan();
        let plain = MachineSim::new(spec, SimConfig::default()).run(packets(250, 4));
        let mut traced = MachineSim::new(spec, SimConfig::default())
            .with_trace(TraceSink::bounded(TraceSpec {
                filter: StageFilter::parse("sched").unwrap(),
                cap: DEFAULT_EVENT_CAP,
            }))
            .run(packets(250, 4));
        let trace = traced.trace.take().expect("trace report present");
        // The sched filter selects no lifecycle stages.
        assert!(trace.events.is_empty());
        assert!(!trace.sched.is_empty());
        // Kernel batches and app work both dispatched.
        assert!(trace.sched.iter().any(|e| e.kind == WorkKind::KernelBatch));
        assert!(trace
            .sched
            .iter()
            .any(|e| matches!(e.kind, WorkKind::AppRead | WorkKind::AppChunk)));
        // Per-CPU dispatch spans are monotone and non-overlapping: a CPU
        // dispatches its next item no earlier than the previous end.
        let ncpu = plain.final_acct.len() as u16;
        for cpu in 0..ncpu {
            let mut last_end = 0u64;
            for ev in trace.sched.iter().filter(|e| e.cpu == cpu) {
                assert!(
                    ev.t_ns >= last_end,
                    "cpu{cpu} dispatch at {} overlaps previous span ending {last_end}",
                    ev.t_ns
                );
                last_end = ev.t_ns + ev.dur_ns;
            }
        }
        // Apart from the trace, the run is unchanged.
        assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
    }

    #[test]
    fn stage_timed_run_is_identical_apart_from_the_account() {
        let spec = pcs_hw::MachineSpec::swan();
        let plain = MachineSim::new(spec, SimConfig::default()).run(packets(300, 3));
        let mut timed = MachineSim::new(spec, SimConfig::default())
            .with_stage_times(true)
            .run(packets(300, 3));
        assert!(plain.stage_times.is_none());
        assert!(timed.stage_times.is_some());
        timed.stage_times = None;
        assert_eq!(format!("{plain:?}"), format!("{timed:?}"));
    }

    #[test]
    fn stage_times_conserve_each_cpus_accounted_time() {
        use pcs_trace::WorkKind;
        // Overload an SMT machine with enough applications that sibling
        // CPUs run concurrently, so every path charges: batching, app
        // chunks, SMT stretch, idle gaps, end-of-run close-out.
        let spec = pcs_hw::MachineSpec::snipe().with_hyperthreading();
        let cfg = SimConfig {
            apps: vec![crate::config::AppConfig::plain(); 4],
            ..SimConfig::default()
        };
        let r = MachineSim::new(spec, cfg)
            .with_stage_times(true)
            .run(packets(20_000, 1));
        let st = r.stage_times.as_ref().expect("stage times present");
        assert_eq!(st.cpus.len(), r.final_acct.len());
        for (cpu, acct) in st.cpus.iter().zip(&r.final_acct) {
            assert_eq!(cpu.total(), acct.total(), "busy+idle == accounted total");
            assert_eq!(cpu.idle_ns, acct.idle, "idle mirrored exactly");
            for k in 0..pcs_trace::WORK_KINDS {
                assert!(cpu.stretch_ns[k] <= cpu.busy_ns[k]);
            }
        }
        // The interrupt CPU spent time on kernel batches; some app work
        // ran somewhere.
        assert!(st.cpus[0].busy_ns[WorkKind::KernelBatch as usize] > 0);
        let app_busy: u64 = st
            .cpus
            .iter()
            .map(|c| c.busy_ns[WorkKind::AppRead as usize] + c.busy_ns[WorkKind::AppChunk as usize])
            .sum();
        assert!(app_busy > 0);
        // Hyperthreaded and overloaded: SMT stretch must appear.
        assert!(st.cpus.iter().map(|c| c.stretch_total()).sum::<u64>() > 0);
    }

    #[test]
    fn pooled_and_unpooled_runs_agree_on_stage_times_and_digests() {
        // Pooling only changes allocator traffic; the observability
        // surface — stage-time accounts, metrics, latency digests —
        // must be byte-identical either way.
        use pcs_trace::{StageFilter, TraceSpec};
        let run = |pooling: bool| {
            MachineSim::new(pcs_hw::MachineSpec::swan(), SimConfig::default())
                .with_pooling(pooling)
                .with_stage_times(true)
                .with_trace(TraceSink::bounded(TraceSpec {
                    filter: StageFilter::none(),
                    ..TraceSpec::default()
                }))
                .run(packets(5_000, 2))
        };
        let a = run(true);
        let b = run(false);
        assert_eq!(
            format!("{:?}", a.stage_times),
            format!("{:?}", b.stage_times)
        );
        let ma = &a.trace.as_ref().expect("traced").metrics;
        let mb = &b.trace.as_ref().expect("traced").metrics;
        assert_eq!(format!("{ma:?}"), format!("{mb:?}"));
        let digest = ma
            .digest("wire_to_app_latency_ns")
            .expect("latency digest recorded");
        assert!(digest.count() > 0);
    }

    #[test]
    fn overloaded_run_attribution_stays_exact() {
        // Back-to-back frames overload the stack: drops and end-of-run
        // residue must still account for every generated packet.
        let spec = pcs_hw::MachineSpec::swan();
        let r = MachineSim::new(spec, SimConfig::default()).run(packets(20_000, 1));
        for a in r.attributions() {
            assert!(a.balanced(), "unbalanced: {a:?}");
            assert_eq!(a.generated, 20_000);
            assert_eq!(a.generated, r.offered);
        }
    }

    #[test]
    fn report_helpers() {
        let r = MachineSim::new(pcs_hw::MachineSpec::moorhen(), SimConfig::default())
            .run(packets(50, 100));
        assert!((r.capture_rate(0) - 1.0).abs() < 1e-12);
        assert!((r.mean_capture_rate() - 1.0).abs() < 1e-12);
        let (w, b) = r.worst_best();
        assert_eq!((w, b), (1.0, 1.0));
        assert!(r.mean_cpu_usage() >= 0.0 && r.mean_cpu_usage() <= 1.0);
    }

    #[test]
    fn unfaulted_run_is_identical_with_and_without_the_hooks() {
        // All-default hooks: every injection site asks and gets the base
        // value back.
        struct Inert;
        impl pcs_hw::NicBusFault for Inert {}
        impl pcs_hw::SchedFault for Inert {}
        impl MachineFaults for Inert {}

        let spec = pcs_hw::MachineSpec::swan();
        let plain = MachineSim::new(spec, SimConfig::default()).run(packets(300, 3));
        let disarmed = MachineSim::new(spec, SimConfig::default())
            .with_faults(None)
            .run(packets(300, 3));
        let inert = MachineSim::new(spec, SimConfig::default())
            .with_faults(Some(Box::new(Inert)))
            .run(packets(300, 3));
        assert_eq!(format!("{plain:?}"), format!("{disarmed:?}"));
        assert_eq!(format!("{plain:?}"), format!("{inert:?}"));
    }

    #[test]
    fn ring_stall_fault_moves_drops_into_the_nic_bucket() {
        // A hook that pins the RX ring to one slot for the whole run:
        // back-to-back arrivals must overflow at the NIC, and the
        // attribution identity must stay exact.
        struct Stall;
        impl pcs_hw::NicBusFault for Stall {
            fn ring_slots(&mut self, _now_ns: u64, _base: usize) -> usize {
                1
            }
        }
        impl pcs_hw::SchedFault for Stall {}
        impl MachineFaults for Stall {}

        let spec = pcs_hw::MachineSpec::swan();
        let plain = MachineSim::new(spec, SimConfig::default()).run(packets(2_000, 3));
        let stalled = MachineSim::new(spec, SimConfig::default())
            .with_faults(Some(Box::new(Stall)))
            .run(packets(2_000, 3));
        assert!(
            stalled.nic_ring_drops > plain.nic_ring_drops,
            "stall must overflow the ring: {} vs {}",
            stalled.nic_ring_drops,
            plain.nic_ring_drops
        );
        for a in stalled.attributions() {
            assert!(a.balanced(), "unbalanced under fault: {a:?}");
        }
    }

    #[test]
    fn preempt_fault_charges_extra_occupancy_and_stays_balanced() {
        // A hook that holds every CPU 2 µs at each dispatch: the run must
        // slow down (less captured under overload), accounting must still
        // sum to wall occupancy, and attribution must stay exact.
        struct Preempt;
        impl pcs_hw::NicBusFault for Preempt {}
        impl pcs_hw::SchedFault for Preempt {
            fn preempt_extra_ns(&mut self, _now_ns: u64, _cpu: usize) -> u64 {
                2_000
            }
        }
        impl MachineFaults for Preempt {}

        let spec = pcs_hw::MachineSpec::swan();
        let plain = MachineSim::new(spec, SimConfig::default()).run(packets(20_000, 1));
        let preempted = MachineSim::new(spec, SimConfig::default())
            .with_faults(Some(Box::new(Preempt)))
            .run(packets(20_000, 1));
        assert!(
            preempted.apps[0].received < plain.apps[0].received,
            "constant preemption must cost capture under overload: {} vs {}",
            preempted.apps[0].received,
            plain.apps[0].received
        );
        for a in preempted.attributions() {
            assert!(a.balanced(), "unbalanced under preemption: {a:?}");
        }
    }
}
