//! The per-machine discrete-event simulation.
//!
//! One [`MachineSim`] models one system under test end to end: NIC ring,
//! interrupt batching, the OS capture stack (BPF device or PF_PACKET
//! sockets), CPUs with priority work queues and state accounting, capture
//! applications with their per-packet analysis loads, the disk write-back
//! path and pipes to helper processes.
//!
//! ## Execution model
//!
//! CPUs execute *work items* — bounded chunks of kernel or application
//! work whose durations come from the calibrated cost model
//! ([`pcs_hw::OsCosts`]) and the memory-system model. Kernel work
//! (interrupt + stack processing) has strict priority; application work
//! is round-robin in chunks small enough that interrupt latency stays
//! realistic. This reproduces the receive-livelock dynamics of Mogul &
//! Ramakrishnan that the thesis discusses in §2.2.1: as the packet rate
//! grows, kernel work crowds out the applications, buffers fill, and the
//! capture rate collapses gracefully (FreeBSD) or abruptly (Linux with
//! its shared refcounted pool).

use crate::config::{AppConfig, SimConfig};
use crate::cpustate::{CpuAccounting, CpuState};
use crate::fault::MachineFaults;
use crate::stack::{BpfDevice, CapturedPacket, DropKind, LsfSocket, LsfState};
use pcs_des::{EventQueue, SimDuration, SimTime};
use pcs_hw::{InterruptScheme, MachineSpec, OsCosts};
use pcs_pktgen::{PacketRef, PacketSource, SourceRefs};
use pcs_trace::{DropAttribution, Stage, TraceReport, TraceSink, APP_NONE, SEQ_NONE};
use pcs_wire::SimPacket;
use std::collections::VecDeque;

/// Maximum packets picked up by one interrupt batch.
const MAX_IRQ_BATCH: usize = 64;
/// Maximum packets processed per application work chunk.
const APP_CHUNK: usize = 64;
/// Pipe capacity (a classic 64 kB FIFO).
const PIPE_CAPACITY: u64 = 64 * 1024;
/// Write-back throttling threshold: an application writing to disk
/// blocks when this much dirty data is outstanding.
const DIRTY_LIMIT: u64 = 32 << 20;
/// Disk write-back granule.
const WRITEBACK_CHUNK: u64 = 1 << 20;

/// Map one consumer's [`DeliverOutcome`] to its trace stages: the filter
/// verdict, and (for accepted packets) whether the kernel stored or
/// dropped it.
fn consumer_stages(o: &crate::stack::DeliverOutcome) -> (Stage, Option<Stage>) {
    if !o.accepted {
        (Stage::FilterReject, None)
    } else if o.stored {
        (Stage::FilterAccept, Some(Stage::KernelEnqueue))
    } else {
        let dropped = match o.drop {
            DropKind::Pool => Stage::KernelDropPool,
            _ => Stage::KernelDropBuffer,
        };
        (Stage::FilterAccept, Some(dropped))
    }
}

/// A packet injected into the NIC: either owned outright (ad-hoc
/// streams, tests) or a shared reference into a generator chunk (the
/// zero-copy pipeline path — one refcount bump instead of a packet copy
/// per sniffer per packet).
#[derive(Debug)]
enum PacketView {
    Owned(Box<SimPacket>),
    Shared(PacketRef),
}

impl PacketView {
    fn packet(&self) -> &SimPacket {
        match self {
            PacketView::Owned(p) => p,
            PacketView::Shared(r) => r.packet(),
        }
    }
}

/// Simulation events.
#[derive(Debug)]
enum Event {
    /// A frame has fully arrived at the NIC.
    Arrival(PacketView),
    /// A CPU finished its current work item.
    CpuFree(usize),
    /// An interrupt may fire now (moderation gap elapsed).
    IrqGate,
    /// A sleeping application resumes (I/O throttle or pipe space).
    AppResume(usize),
    /// A chunk of dirty data reached the platters.
    WritebackDone,
    /// Periodic cpusage-style accounting sample.
    Sample,
}

/// What a finished work item triggers.
#[derive(Debug)]
enum Completion {
    KernelBatch,
    AppCopyout {
        app: usize,
    },
    AppChunk {
        app: usize,
        packets: u64,
        bytes: u64,
        recorded: Vec<CapturedPacket>,
        /// (seq, gen_ns, caplen) per packet, captured only when tracing:
        /// app-delivery events and the wire→app latency histogram are
        /// recorded when the chunk's processing completes.
        traced: Vec<(u64, u64, u32)>,
    },
    GzipChunk {
        bytes: u64,
    },
    None,
}

/// A piece of CPU work.
struct Work {
    /// (state, ns) segments; executed as one uninterruptible span.
    segments: Vec<(CpuState, u64)>,
    complete: Completion,
}

impl Work {
    fn duration(&self) -> u64 {
        self.segments.iter().map(|s| s.1).sum()
    }
}

struct CpuSim {
    kernel_q: VecDeque<Work>,
    user_q: VecDeque<Work>,
    current: Option<Work>,
    busy_until: SimTime,
    idle_since: SimTime,
    acct: CpuAccounting,
    /// Kernel work items run back to back; the scheduler grants queued
    /// user work an occasional slot so interrupt pressure cannot starve
    /// runnable processes absolutely (neither OS's livelock is total).
    consecutive_kernel: u32,
}

impl CpuSim {
    fn new() -> CpuSim {
        CpuSim {
            kernel_q: VecDeque::new(),
            user_q: VecDeque::new(),
            current: None,
            busy_until: SimTime::ZERO,
            idle_since: SimTime::ZERO,
            acct: CpuAccounting::default(),
            consecutive_kernel: 0,
        }
    }

    fn busy(&self) -> bool {
        self.current.is_some()
    }
}

/// Application run states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AppState {
    /// Waiting for data.
    Blocked,
    /// Has work queued or executing on its CPU.
    Running,
    /// Sleeping on an I/O throttle or a full pipe.
    Sleeping,
}

struct AppSim {
    cfg: AppConfig,
    cpu: usize,
    state: AppState,
    /// FreeBSD: packets copied out and awaiting user-space processing.
    pending: VecDeque<CapturedPacket>,
    /// Packets handed to the application (the thesis' capture count).
    received: u64,
    received_bytes: u64,
    /// Recorded packets when `cfg.record` is set.
    captured: Vec<CapturedPacket>,
}

/// The per-application outcome of a run.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// Packets the application processed — the numerator of the thesis'
    /// capturing rate.
    pub received: u64,
    /// Captured bytes (post-snaplen).
    pub received_bytes: u64,
    /// Kernel-side counters for this app's consumer.
    pub stats: crate::stack::StackStats,
    /// Captured packet metadata (only when `AppConfig::record` was set).
    pub captured: Vec<CapturedPacket>,
}

/// One cpusage-style sample: cumulative accounting per CPU.
#[derive(Debug, Clone)]
pub struct CpuSample {
    /// Sample timestamp.
    pub t: SimTime,
    /// Cumulative per-CPU accounting at `t`.
    pub per_cpu: Vec<CpuAccounting>,
}

/// Everything measured in one machine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Machine label (e.g. "FreeBSD/AMD - moorhen").
    pub machine: String,
    /// Packets that arrived on the wire (the denominator of the capture
    /// rate, equal to the generator's count when the splitter is
    /// lossless).
    pub offered: u64,
    /// Packets dropped at the NIC ring (kernel never saw them).
    pub nic_ring_drops: u64,
    /// Packets still sitting in the NIC ring when the run stopped (the
    /// kernel never picked them up; counted separately so the per-stage
    /// attribution sums exactly to `offered`).
    pub nic_ring_residue: u64,
    /// Per-application results.
    pub apps: Vec<AppReport>,
    /// 0.5 s cpusage samples (cumulative).
    pub samples: Vec<CpuSample>,
    /// Final per-CPU accounting.
    pub final_acct: Vec<CpuAccounting>,
    /// Accounting snapshot at the moment the last packet arrived (the
    /// "loaded" window cpusage averages over).
    pub load_acct: Option<CpuSample>,
    /// Virtual time of the last processed event.
    pub elapsed: SimTime,
    /// Bytes that reached the disk.
    pub disk_bytes: u64,
    /// Bytes pushed through the capture→gzip pipe.
    pub pipe_bytes: u64,
    /// Event log and metrics, present when the sim ran with a tracing
    /// sink ([`MachineSim::with_trace`]).
    pub trace: Option<Box<TraceReport>>,
}

impl RunReport {
    /// Capture rate of one application (0..1).
    pub fn capture_rate(&self, app: usize) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.apps[app].received as f64 / self.offered as f64
    }

    /// Mean capture rate over all applications.
    pub fn mean_capture_rate(&self) -> f64 {
        if self.apps.is_empty() {
            return 0.0;
        }
        (0..self.apps.len())
            .map(|i| self.capture_rate(i))
            .sum::<f64>()
            / self.apps.len() as f64
    }

    /// Worst and best per-application capture rates.
    pub fn worst_best(&self) -> (f64, f64) {
        let mut worst = f64::INFINITY;
        let mut best = f64::NEG_INFINITY;
        for i in 0..self.apps.len() {
            let r = self.capture_rate(i);
            worst = worst.min(r);
            best = best.max(r);
        }
        (worst.clamp(0.0, 1.0), best.clamp(0.0, 1.0))
    }

    /// Mean CPU busy fraction across CPUs over the whole run.
    pub fn mean_cpu_usage(&self) -> f64 {
        if self.final_acct.is_empty() {
            return 0.0;
        }
        self.final_acct.iter().map(|a| a.utilisation()).sum::<f64>() / self.final_acct.len() as f64
    }

    /// Exhaustive per-stage drop attribution for one consumer: where every
    /// generated packet ended up. The identity
    /// `generated == delivered + dropped()` holds exactly
    /// ([`DropAttribution::balanced`]) — this is the paper's
    /// loss-localization analysis computed from end-of-run counters, not
    /// from the (bounded) event log.
    pub fn attribution(&self, app: usize) -> DropAttribution {
        let s = &self.apps[app].stats;
        DropAttribution {
            generated: self.offered,
            nic_drops: self.nic_ring_drops,
            nic_residue: self.nic_ring_residue,
            filter_rejects: s.rejected,
            kernel_buffer_drops: s.dropped_buffer,
            kernel_pool_drops: s.dropped_pool,
            kernel_residue: s.kernel_residue,
            app_residue: s.app_residue,
            delivered: self.apps[app].received,
        }
    }

    /// [`RunReport::attribution`] for every consumer.
    pub fn attributions(&self) -> Vec<DropAttribution> {
        (0..self.apps.len()).map(|i| self.attribution(i)).collect()
    }

    /// Mean CPU busy fraction across CPUs during the loaded window (up to
    /// the last packet arrival) — what the thesis' cpusage/trimusage
    /// pipeline reports.
    pub fn load_cpu_usage(&self) -> f64 {
        match &self.load_acct {
            Some(s) if !s.per_cpu.is_empty() => {
                s.per_cpu.iter().map(|a| a.utilisation()).sum::<f64>() / s.per_cpu.len() as f64
            }
            _ => self.mean_cpu_usage(),
        }
    }
}

enum Stack {
    Bpf(Vec<BpfDevice>),
    Lsf(LsfState),
}

/// The machine simulator. Feed it a timed packet stream via
/// [`MachineSim::run`].
///
/// ```
/// use pcs_oskernel::{MachineSim, SimConfig};
/// use pcs_hw::MachineSpec;
/// use pcs_pktgen::{Generator, PktgenConfig, TxModel};
///
/// let gen = Generator::new(
///     PktgenConfig { count: 1_000, ..PktgenConfig::default() },
///     TxModel::syskonnect(),
///     42,
/// );
/// let report = MachineSim::new(MachineSpec::moorhen(), SimConfig::default())
///     .run(gen.map(|tp| (tp.time, tp.packet)));
/// assert_eq!(report.offered, 1_000);
/// assert_eq!(report.apps[0].received, 1_000);
/// ```
pub struct MachineSim {
    spec: MachineSpec,
    costs: OsCosts,
    queue: EventQueue<Event>,
    cpus: Vec<CpuSim>,
    apps: Vec<AppSim>,
    stack: Stack,

    // NIC
    ring: VecDeque<PacketView>,
    ring_slots: usize,
    nic_ring_drops: u64,
    irq_pending: bool,
    next_irq_allowed: SimTime,

    // Rate estimators
    arrival_ema_bps: f64,
    last_arrival: SimTime,
    kernel_util: f64,
    last_kernel_update: SimTime,

    // Disk
    dirty_bytes: u64,
    writeback_scheduled: bool,
    disk_bytes: u64,
    /// Recent write-back byte rate (shares the PCI bus with the NIC).
    writeback_ema_bps: f64,
    last_writeback: SimTime,

    // I/O bus admission: fractional credit per arriving frame when the
    // PCI bus is oversubscribed (§2.2.3 — standard PCI cannot carry a
    // loaded GbE link; PCI-64 can).
    pci_credit: f64,

    // Pipe + gzip helper
    pipe_used: u64,
    pipe_bytes_total: u64,
    gzip_busy: bool,
    pipe_writers_asleep: Vec<usize>,

    // Bookkeeping
    offered: u64,
    source_done: bool,
    samples: Vec<CpuSample>,
    sampling: bool,
    load_end: Option<CpuSample>,
    /// Hard stop: the controller's stop.sh kills the applications this
    /// long after the last packet (§3.4).
    stop_at: Option<SimTime>,
    drain_timeout_ns: u64,

    /// Lifecycle tracing; `TraceSink::Off` costs one branch per event
    /// site.
    trace: TraceSink,

    /// Armed fault plan; `None` (the default) costs one branch per hook
    /// site, mirroring the trace sink.
    faults: Option<Box<dyn MachineFaults>>,
    /// Latest IRQ-jitter gate already scheduled, so a jitter window
    /// queues one wakeup instead of one per arrival.
    fault_irq_gate: SimTime,
}

impl MachineSim {
    /// Build a simulator for `spec` under `cfg`.
    pub fn new(spec: MachineSpec, cfg: SimConfig) -> MachineSim {
        let ncpu = spec.cpu.logical_cpus() as usize;
        let costs = spec.costs();
        let napps = cfg.apps.len();
        assert!(napps > 0, "at least one capture application required");

        // Application placement: fill CPUs from the last one backwards so
        // CPU0 (which owns interrupts) is used last.
        let app_cpu = |i: usize| -> usize {
            if ncpu == 1 {
                0
            } else {
                ncpu - 1 - (i % ncpu)
            }
        };
        let apps: Vec<AppSim> = cfg
            .apps
            .iter()
            .enumerate()
            .map(|(i, a)| AppSim {
                cfg: a.clone(),
                cpu: app_cpu(i),
                state: AppState::Blocked,
                pending: VecDeque::new(),
                received: 0,
                received_bytes: 0,
                captured: Vec::new(),
            })
            .collect();

        let stack = if spec.os.is_freebsd() {
            Stack::Bpf(
                cfg.apps
                    .iter()
                    .map(|a| {
                        BpfDevice::new(cfg.buffers.bpf_half_bytes, a.snaplen, a.filter.clone())
                    })
                    .collect(),
            )
        } else {
            let sockets: Vec<LsfSocket> = cfg
                .apps
                .iter()
                .map(|a| {
                    LsfSocket::new(cfg.buffers.rmem_bytes, a.snaplen, a.filter.clone(), a.mmap)
                })
                .collect();
            Stack::Lsf(LsfState::new(sockets, cfg.buffers.rmem_bytes))
        };

        MachineSim {
            ring_slots: spec.nic.rx_ring_slots as usize,
            spec,
            costs,
            queue: EventQueue::new(),
            cpus: (0..ncpu).map(|_| CpuSim::new()).collect(),
            apps,
            stack,
            ring: VecDeque::new(),
            nic_ring_drops: 0,
            irq_pending: false,
            next_irq_allowed: SimTime::ZERO,
            arrival_ema_bps: 0.0,
            last_arrival: SimTime::ZERO,
            kernel_util: 0.0,
            last_kernel_update: SimTime::ZERO,
            dirty_bytes: 0,
            writeback_scheduled: false,
            disk_bytes: 0,
            writeback_ema_bps: 0.0,
            last_writeback: SimTime::ZERO,
            pci_credit: 0.0,
            pipe_used: 0,
            pipe_bytes_total: 0,
            gzip_busy: false,
            pipe_writers_asleep: Vec::new(),
            offered: 0,
            source_done: false,
            samples: Vec::new(),
            sampling: true,
            load_end: None,
            stop_at: None,
            drain_timeout_ns: cfg.drain_timeout_ns,
            trace: TraceSink::Off,
            faults: None,
            fault_irq_gate: SimTime::ZERO,
        }
    }

    /// Attach a trace sink. With [`TraceSink::Off`] (the default) the
    /// simulation is byte-identical to an untraced run.
    pub fn with_trace(mut self, sink: TraceSink) -> MachineSim {
        self.trace = sink;
        self
    }

    /// Arm a fault plan. With `None` (the default) the simulation is
    /// byte-identical to an unfaulted run.
    pub fn with_faults(mut self, faults: Option<Box<dyn MachineFaults>>) -> MachineSim {
        self.faults = faults;
        self
    }

    /// Run the simulation over a timed packet source, to completion
    /// (including the post-generation drain), and report.
    ///
    /// Packets arrive owned and are boxed per arrival. The pipeline's
    /// hot path avoids both the copy and the allocation: see
    /// [`MachineSim::run_refs`].
    pub fn run<I>(self, source: I) -> RunReport
    where
        I: IntoIterator<Item = (SimTime, SimPacket)>,
    {
        self.run_injected(
            source
                .into_iter()
                .map(|(t, p)| (t, PacketView::Owned(Box::new(p)))),
        )
    }

    /// Run the simulation over shared packet references — the clone-free
    /// injection path. Each arrival holds its chunk alive by refcount;
    /// packet bytes are read in place and never copied into the sim.
    ///
    /// Event-for-event identical to [`MachineSim::run`] over the cloned
    /// stream: only the ownership representation differs.
    pub fn run_refs<I>(self, source: I) -> RunReport
    where
        I: IntoIterator<Item = PacketRef>,
    {
        self.run_injected(
            source
                .into_iter()
                .map(|r| (r.time(), PacketView::Shared(r))),
        )
    }

    /// The event loop proper, over any packet representation.
    fn run_injected<I>(mut self, mut src: I) -> RunReport
    where
        I: Iterator<Item = (SimTime, PacketView)>,
    {
        if let Some((t, p)) = src.next() {
            self.queue.schedule(t, Event::Arrival(p));
        } else {
            self.source_done = true;
        }
        self.queue
            .schedule(SimTime::from_millis(500), Event::Sample);

        while let Some((now, ev)) = self.queue.pop() {
            // The measurement controller stops the applications a bounded
            // time after generation ends; whatever is still buffered then
            // is lost (it never reached the application).
            if let Some(stop) = self.stop_at {
                if now > stop {
                    break;
                }
            }
            match ev {
                Event::Arrival(pkt) => {
                    self.offered += 1;
                    let (seq, frame_len) = {
                        let p = pkt.packet();
                        (p.seq, p.frame_len as u64)
                    };
                    self.note_arrival(now, frame_len as u32);
                    self.trace
                        .emit(now.as_nanos(), Stage::Wire, seq, frame_len, APP_NONE, 1);
                    // The NIC's FIFO drains across the PCI bus, which it
                    // shares with the disk write-back traffic. When the
                    // bus is oversubscribed only a fraction of the frames
                    // make it to host memory (fractional credit keeps the
                    // model deterministic).
                    let mut demand = self.arrival_ema_bps as u64 + self.writeback_ema_bps as u64;
                    let mut ring_slots = self.ring_slots;
                    if let Some(f) = self.faults.as_deref_mut() {
                        demand = demand.saturating_add(f.bus_extra_demand_bps(now.as_nanos()));
                        ring_slots = f.ring_slots(now.as_nanos(), ring_slots);
                    }
                    self.pci_credit += self.spec.pci.service_fraction(demand);
                    if self.pci_credit < 1.0 {
                        self.nic_ring_drops += 1;
                        self.trace.emit(
                            now.as_nanos(),
                            Stage::NicDropBus,
                            seq,
                            frame_len,
                            APP_NONE,
                            1,
                        );
                    } else {
                        self.pci_credit -= 1.0;
                        if self.ring.len() < ring_slots {
                            self.ring.push_back(pkt);
                            self.trace.emit(
                                now.as_nanos(),
                                Stage::NicEnqueue,
                                seq,
                                frame_len,
                                APP_NONE,
                                1,
                            );
                            if let Some(m) = self.trace.metrics_mut() {
                                m.observe("nic_ring_depth", self.ring.len() as u64);
                            }
                        } else {
                            self.nic_ring_drops += 1;
                            self.trace.emit(
                                now.as_nanos(),
                                Stage::NicDropRing,
                                seq,
                                frame_len,
                                APP_NONE,
                                1,
                            );
                        }
                    }
                    match src.next() {
                        Some((t, p)) => self.queue.schedule(t, Event::Arrival(p)),
                        None => {
                            self.source_done = true;
                            self.load_end = Some(self.sample(now));
                            self.stop_at =
                                Some(now + SimDuration::from_nanos(self.drain_timeout_ns));
                        }
                    }
                    self.try_fire_irq(now);
                }
                Event::IrqGate => self.try_fire_irq(now),
                Event::CpuFree(cpu) => self.cpu_free(now, cpu),
                Event::AppResume(app) => {
                    self.apps[app].state = AppState::Blocked;
                    self.app_try_work(now, app);
                }
                Event::WritebackDone => {
                    let chunk = WRITEBACK_CHUNK.min(self.dirty_bytes);
                    self.dirty_bytes -= chunk;
                    self.disk_bytes += chunk;
                    self.writeback_scheduled = false;
                    self.trace.emit(
                        now.as_nanos(),
                        Stage::DiskWrite,
                        SEQ_NONE,
                        chunk,
                        APP_NONE,
                        1,
                    );
                    // Track the write-back rate for PCI bus sharing.
                    let dt = now.since(self.last_writeback).as_nanos().max(1) as f64;
                    let inst = chunk as f64 * 1e9 / dt;
                    let alpha = (-dt / 50e6).exp();
                    self.writeback_ema_bps = self.writeback_ema_bps * alpha + inst * (1.0 - alpha);
                    self.last_writeback = now;
                    // Completion interrupt cost on CPU0.
                    let w = Work {
                        segments: vec![(CpuState::Irq, self.spec.disk.irq_ns)],
                        complete: Completion::None,
                    };
                    self.submit(now, 0, w, true);
                    self.schedule_writeback(now);
                }
                Event::Sample => {
                    self.samples.push(self.sample(now));
                    // Defensive kicks: restart any stalled background
                    // consumer so sampling can't outlive real work.
                    self.schedule_writeback(now);
                    self.gzip_try_work(now);
                    let done = self.source_done && (self.fully_drained() || self.queue.is_empty());
                    if self.sampling && !done {
                        self.queue
                            .schedule(now + SimDuration::from_millis(500), Event::Sample);
                    } else {
                        self.sampling = false;
                    }
                }
            }
        }

        let end = self.queue.now();
        // Close idle accounting.
        for cpu in &mut self.cpus {
            if cpu.current.is_none() && end > cpu.idle_since {
                cpu.acct
                    .add(CpuState::Idle, end.since(cpu.idle_since).as_nanos());
            }
        }
        // End-of-run residue accounting: packets still in flight when the
        // controller stopped the run were never captured; attributing them
        // to the buffer that held them keeps the per-stage drop identity
        // exact (`generated == delivered + every loss bucket`).
        let nic_ring_residue = self.ring.len() as u64;
        for i in 0..self.apps.len() {
            let received = self.apps[i].received;
            match &mut self.stack {
                Stack::Bpf(devs) => {
                    devs[i].finalize_residue();
                    devs[i].stats.app_residue = devs[i].stats.delivered - received;
                }
                Stack::Lsf(l) => {
                    l.sockets[i].finalize_residue();
                    l.sockets[i].stats.app_residue = l.sockets[i].stats.delivered - received;
                }
            }
        }
        if let Some(m) = self.trace.metrics_mut() {
            m.set_gauge("dirty_bytes_final", self.dirty_bytes as f64);
            m.set_gauge("pipe_used_final", self.pipe_used as f64);
            m.inc("disk_bytes", self.disk_bytes);
            m.inc("pipe_bytes", self.pipe_bytes_total);
        }
        let apps = self
            .apps
            .iter()
            .enumerate()
            .map(|(i, a)| AppReport {
                received: a.received,
                received_bytes: a.received_bytes,
                captured: a.captured.clone(),
                stats: match &self.stack {
                    Stack::Bpf(devs) => devs[i].stats,
                    Stack::Lsf(l) => l.sockets[i].stats,
                },
            })
            .collect();
        let trace = std::mem::take(&mut self.trace).into_report().map(Box::new);
        RunReport {
            machine: self.spec.label(),
            offered: self.offered,
            nic_ring_drops: self.nic_ring_drops,
            nic_ring_residue,
            apps,
            samples: self.samples,
            final_acct: self.cpus.iter().map(|c| c.acct).collect(),
            load_acct: self.load_end,
            elapsed: end,
            disk_bytes: self.disk_bytes + self.dirty_bytes,
            pipe_bytes: self.pipe_bytes_total,
            trace,
        }
    }

    /// Run the simulation over a chunked [`PacketSource`] — the
    /// streaming-splitter path of the testbed.
    ///
    /// Packets are pulled out of the source chunk by chunk and injected
    /// as shared references ([`MachineSim::run_refs`]) — the sim reads
    /// each packet in place inside its broadcast chunk and never copies
    /// it. A source backed by a bounded queue blocks the pull, which is
    /// exactly how pipeline backpressure propagates from a slow sniffer
    /// to the generator. Because the event loop only requests the next
    /// arrival after the current one has been injected, the resulting
    /// event sequence — and therefore the whole [`RunReport`] — is
    /// byte-identical to [`MachineSim::run`] over the flattened packet
    /// stream, regardless of chunk size.
    pub fn run_source<S>(self, source: S) -> RunReport
    where
        S: PacketSource,
    {
        self.run_refs(SourceRefs::new(source))
    }

    // ----- rate estimators -----

    fn note_arrival(&mut self, now: SimTime, frame_len: u32) {
        let dt = now.since(self.last_arrival).as_nanos().max(1) as f64;
        let inst = frame_len as f64 * 1e9 / dt;
        let alpha = (-dt / 2e6).exp(); // ~2 ms smoothing
        self.arrival_ema_bps = self.arrival_ema_bps * alpha + inst * (1.0 - alpha);
        self.last_arrival = now;
    }

    fn note_kernel_busy(&mut self, now: SimTime, busy_ns: u64) {
        let dt = now.since(self.last_kernel_update).as_nanos().max(1) as f64;
        let inst = (busy_ns as f64 / dt).min(1.0);
        let alpha = (-dt / 5e6).exp(); // ~5 ms smoothing
        self.kernel_util = self.kernel_util * alpha + inst * (1.0 - alpha);
        self.last_kernel_update = now;
    }

    fn dma_rate(&self) -> u64 {
        self.arrival_ema_bps as u64
    }

    // ----- memory-cost helpers -----

    fn copy_ns(&self, bytes: u64, cached: bool) -> u64 {
        let others = self
            .cpus
            .iter()
            .filter(|c| c.busy())
            .count()
            .saturating_sub(1) as u32;
        self.spec
            .memory
            .copy_ns(bytes, self.dma_rate(), others, cached)
    }

    // ----- CPU engine -----

    /// Where the next chunk of this app's work runs. FreeBSD 5.x balances
    /// runnable threads across CPUs, which is how it shares capture
    /// capacity evenly between applications (§1.2: ~5 % deviation);
    /// Linux 2.6's affinity is sticky, so applications parked on the
    /// interrupt CPU starve under load — the thesis' unfairness result.
    fn app_run_cpu(&self, app: usize) -> usize {
        if self.cpus.len() == 1 {
            return 0;
        }
        if !self.spec.os.is_freebsd() {
            // Linux 2.6: sticky affinity, but the idle balancer pulls a
            // runnable task when another CPU has nothing to do. With every
            // CPU busy (the 4–8 application overloads) no pull happens and
            // the tasks parked behind the interrupt CPU starve — the
            // thesis' unfairness result.
            let home = self.apps[app].cpu;
            let home_pressed =
                (home == 0 && self.kernel_util > 0.5) || self.cpus[home].user_q.len() >= 2;
            if home_pressed {
                for (i, c) in self.cpus.iter().enumerate() {
                    let kernel_pressed = i == 0 && self.kernel_util > 0.5;
                    if !c.busy() && c.user_q.is_empty() && !kernel_pressed {
                        return i;
                    }
                }
            }
            return home;
        }
        self.least_loaded_cpu()
    }

    /// The CPU a freely-migrating task would land on: queue depth plus
    /// interrupt pressure on CPU0 (receive livelock, §2.2.1) and — with
    /// Hyperthreading — on its sibling, whose activity would halve the
    /// interrupt path (§6.3.7).
    fn least_loaded_cpu(&self) -> usize {
        let mut best = 0usize;
        let mut best_load = f64::INFINITY;
        for (i, c) in self.cpus.iter().enumerate() {
            let mut load = (c.user_q.len() + c.kernel_q.len() * 4 + c.busy() as usize) as f64;
            if i == 0 {
                load += self.kernel_util * 50.0;
            } else if self.spec.cpu.hyperthreading && i == 1 {
                load += self.kernel_util * 25.0;
            }
            if load < best_load {
                best_load = load;
                best = i;
            }
        }
        best
    }

    fn submit(&mut self, now: SimTime, cpu: usize, work: Work, kernel: bool) {
        if kernel {
            self.cpus[cpu].kernel_q.push_back(work);
        } else {
            self.cpus[cpu].user_q.push_back(work);
        }
        if !self.cpus[cpu].busy() {
            self.start_next(now, cpu);
        }
    }

    fn start_next(&mut self, now: SimTime, cpu: usize) {
        if self.cpus[cpu].busy() {
            return;
        }
        /// Every Nth slot goes to user work when both queues are loaded.
        const KERNEL_SLOTS: u32 = 8;
        let next = {
            let c = &mut self.cpus[cpu];
            let yield_to_user = c.consecutive_kernel >= KERNEL_SLOTS && !c.user_q.is_empty();
            if !yield_to_user {
                match c.kernel_q.pop_front() {
                    Some(w) => {
                        c.consecutive_kernel += 1;
                        Some(w)
                    }
                    None => {
                        c.consecutive_kernel = 0;
                        c.user_q.pop_front()
                    }
                }
            } else {
                c.consecutive_kernel = 0;
                c.user_q.pop_front()
            }
        };
        let work = match next {
            Some(w) => w,
            None => {
                self.cpus[cpu].idle_since = now;
                return;
            }
        };
        // Account the idle gap before this work.
        if now > self.cpus[cpu].idle_since {
            let gap = now.since(self.cpus[cpu].idle_since).as_nanos();
            self.cpus[cpu].acct.add(CpuState::Idle, gap);
        }
        let mut work = work;
        let mut duration = work.duration();
        // Hyperthreading: a busy sibling slows this virtual CPU. The
        // stretch is folded into the work's segments so that accounting
        // covers the full wall time the CPU was occupied.
        if self.spec.cpu.hyperthreading {
            let sibling = cpu ^ 1;
            if sibling < self.cpus.len() && self.cpus[sibling].busy() && duration > 0 {
                let stretched = (duration as f64 / self.spec.cpu.smt_factor()) as u64;
                let scale = stretched as f64 / duration as f64;
                for seg in &mut work.segments {
                    seg.1 = (seg.1 as f64 * scale) as u64;
                }
                duration = work.duration();
            }
        }
        let end = now + SimDuration::from_nanos(duration);
        self.cpus[cpu].busy_until = end;
        self.cpus[cpu].current = Some(work);
        self.queue.schedule(end, Event::CpuFree(cpu));
    }

    fn cpu_free(&mut self, now: SimTime, cpu: usize) {
        let work = self.cpus[cpu]
            .current
            .take()
            .expect("CpuFree without current work");
        // Account the segments (already SMT-scaled at start, so the sum
        // equals the wall time this CPU was occupied).
        let mut kernel_ns = 0u64;
        for (state, ns) in &work.segments {
            self.cpus[cpu].acct.add(*state, *ns);
            if matches!(state, CpuState::Irq | CpuState::SoftIrq | CpuState::System) && cpu == 0 {
                kernel_ns += ns;
            }
        }
        if cpu == 0 && kernel_ns > 0 {
            self.note_kernel_busy(now, kernel_ns);
        }
        self.cpus[cpu].idle_since = now;
        match work.complete {
            Completion::KernelBatch => {
                self.irq_pending = false;
                self.wake_readable_apps(now);
                self.try_fire_irq(now);
            }
            Completion::AppCopyout { app } => self.app_process_pending(now, app),
            Completion::AppChunk {
                app,
                packets,
                bytes,
                recorded,
                traced,
            } => {
                self.apps[app].received += packets;
                self.apps[app].received_bytes += bytes;
                self.apps[app].captured.extend(recorded);
                if !traced.is_empty() {
                    let now_ns = now.as_nanos();
                    for &(seq, gen_ns, caplen) in &traced {
                        self.trace.emit(
                            now_ns,
                            Stage::AppDeliver,
                            seq,
                            caplen as u64,
                            app as u16,
                            1,
                        );
                        if let Some(m) = self.trace.metrics_mut() {
                            m.observe("wire_to_app_latency_ns", now_ns.saturating_sub(gen_ns));
                        }
                    }
                }
                self.app_continue(now, app);
            }
            Completion::GzipChunk { bytes } => {
                self.pipe_used = self.pipe_used.saturating_sub(bytes);
                self.gzip_busy = false;
                // Wake pipe writers blocked on space.
                let writers = std::mem::take(&mut self.pipe_writers_asleep);
                for w in writers {
                    self.queue.schedule(now, Event::AppResume(w));
                }
                self.gzip_try_work(now);
            }
            Completion::None => {}
        }
        // A completion handler may already have started the next item on
        // this CPU (e.g. a wakeup submitting application work).
        if !self.cpus[cpu].busy() {
            self.start_next(now, cpu);
        }
    }

    // ----- NIC + kernel batch -----

    fn try_fire_irq(&mut self, now: SimTime) {
        if self.irq_pending || self.ring.is_empty() {
            return;
        }
        if let Some(f) = self.faults.as_deref_mut() {
            let extra = f.irq_extra_gap_ns(now.as_nanos());
            if extra > 0 {
                let until = now + SimDuration::from_nanos(extra);
                if until > self.fault_irq_gate {
                    self.fault_irq_gate = until;
                    self.queue.schedule(until, Event::IrqGate);
                }
                return;
            }
        }
        match self.spec.nic.interrupts {
            InterruptScheme::Moderated { min_gap_ns } => {
                if now < self.next_irq_allowed {
                    self.queue.schedule(self.next_irq_allowed, Event::IrqGate);
                    return;
                }
                self.next_irq_allowed = now + SimDuration::from_nanos(min_gap_ns);
            }
            InterruptScheme::Polling { interval_ns } => {
                // The ring is only visited on the polling clock.
                if now < self.next_irq_allowed {
                    self.queue.schedule(self.next_irq_allowed, Event::IrqGate);
                    return;
                }
                self.next_irq_allowed = now + SimDuration::from_nanos(interval_ns);
            }
            InterruptScheme::PerPacket => {}
        }
        self.irq_pending = true;
        let n = self.ring.len().min(MAX_IRQ_BATCH);
        let batch: Vec<PacketView> = self.ring.drain(..n).collect();
        if self.trace.is_on() {
            let bytes: u64 = batch.iter().map(|v| v.packet().frame_len as u64).sum();
            self.trace.emit(
                now.as_nanos(),
                Stage::BusTransfer,
                SEQ_NONE,
                bytes,
                APP_NONE,
                n as u32,
            );
            if let Some(m) = self.trace.metrics_mut() {
                m.observe("irq_batch_packets", n as u64);
                m.inc("irq_fires", 1);
            }
        }
        if let Some(f) = self.faults.as_deref_mut() {
            let permille = f.buffer_permille(now.as_nanos());
            match &mut self.stack {
                Stack::Bpf(devs) => devs
                    .iter_mut()
                    .for_each(|d| d.set_capacity_permille(permille)),
                Stack::Lsf(l) => l.set_capacity_permille(permille),
            }
        }
        let work = self.kernel_batch_work(now, &batch);
        self.submit(now, 0, work, true);
    }

    fn kernel_batch_work(&mut self, now: SimTime, batch: &[PacketView]) -> Work {
        let c = self.costs;
        let freebsd = self.spec.os.is_freebsd();
        // A poll visit skips the interrupt entry/ack machinery.
        let mut irq_ns = match self.spec.nic.interrupts {
            InterruptScheme::Polling { .. } => c.irq_ns / 4,
            _ => c.irq_ns,
        };
        let mut soft_ns = 0u64;
        let recv_ns = now.as_nanos();
        let mut copy_total = 0u64;
        let tracing = self.trace.is_on();
        for view in batch {
            let pkt = view.packet();
            let per_pkt = c.rx_pkt_ns;
            let mut consumer_ns = 0u64;
            match &mut self.stack {
                Stack::Bpf(devs) => {
                    for (i, d) in devs.iter_mut().enumerate() {
                        let o = d.deliver(pkt, recv_ns);
                        consumer_ns +=
                            c.tap_pkt_ns + (o.filter_insns as f64 * c.filter_insn_ns) as u64;
                        copy_total += o.copied_bytes as u64;
                        if tracing {
                            let (verdict, kernel) = consumer_stages(&o);
                            let len = pkt.frame_len as u64;
                            self.trace.emit(recv_ns, verdict, pkt.seq, len, i as u16, 1);
                            if let Some(k) = kernel {
                                self.trace.emit(recv_ns, k, pkt.seq, len, i as u16, 1);
                            }
                        }
                    }
                }
                Stack::Lsf(l) => {
                    let outcomes = l.deliver(pkt, recv_ns);
                    for (i, o) in outcomes.iter().enumerate() {
                        consumer_ns +=
                            c.tap_pkt_ns + (o.filter_insns as f64 * c.filter_insn_ns) as u64;
                        copy_total += o.copied_bytes as u64;
                        if tracing {
                            let (verdict, kernel) = consumer_stages(o);
                            let len = pkt.frame_len as u64;
                            self.trace.emit(recv_ns, verdict, pkt.seq, len, i as u16, 1);
                            if let Some(k) = kernel {
                                self.trace.emit(recv_ns, k, pkt.seq, len, i as u16, 1);
                            }
                        }
                    }
                }
            }
            if freebsd {
                irq_ns += per_pkt + consumer_ns;
            } else {
                soft_ns += per_pkt + c.softirq_pkt_ns + consumer_ns;
            }
        }
        // Buffer copies: DMA-fresh data, uncached.
        let copy_ns = if copy_total > 0 {
            self.copy_ns(copy_total, false)
        } else {
            0
        };
        let mut segments = vec![(CpuState::Irq, irq_ns)];
        if freebsd {
            segments[0].1 += copy_ns;
        } else {
            segments.push((CpuState::SoftIrq, soft_ns + copy_ns));
        }
        Work {
            segments,
            complete: Completion::KernelBatch,
        }
    }

    fn wake_readable_apps(&mut self, now: SimTime) {
        for app in 0..self.apps.len() {
            if self.apps[app].state == AppState::Blocked && self.consumer_readable(app) {
                self.app_try_work(now, app);
            }
        }
    }

    fn consumer_readable(&self, app: usize) -> bool {
        match &self.stack {
            Stack::Bpf(devs) => devs[app].readable(),
            Stack::Lsf(l) => l.sockets[app].readable(),
        }
    }

    // ----- applications -----

    /// Start a read if the app is blocked and data is available.
    fn app_try_work(&mut self, now: SimTime, app: usize) {
        if self.apps[app].state != AppState::Blocked {
            return;
        }
        if self.fault_pause_app(now, app) {
            return;
        }
        if !self.apps[app].pending.is_empty() {
            self.apps[app].state = AppState::Running;
            self.app_process_pending(now, app);
            return;
        }

        if !self.consumer_readable(app) {
            return;
        }
        self.apps[app].state = AppState::Running;
        let c = self.costs;
        match &mut self.stack {
            Stack::Bpf(devs) => {
                // One read() returns a whole buffer: syscall + bulk
                // copyout, then per-packet user processing.
                let (pkts, bytes) = devs[app].read();
                let cached = 2 * devs[app].half_capacity() <= self.spec.cpu.l2_bytes;
                let copy = self
                    .spec
                    .memory
                    .copy_ns(bytes, self.arrival_ema_bps as u64, 0, cached);
                self.apps[app].pending.extend(pkts);
                let work = Work {
                    segments: vec![(CpuState::System, c.wakeup_ns + c.syscall_ns + copy)],
                    complete: Completion::AppCopyout { app },
                };
                let cpu = self.app_run_cpu(app);
                self.submit(now, cpu, work, false);
            }
            Stack::Lsf(_) => {
                self.app_linux_chunk(now, app);
            }
        }
    }

    /// If an armed plan pauses `app` at `now`, park it until the window
    /// closes and return `true`.
    fn fault_pause_app(&mut self, now: SimTime, app: usize) -> bool {
        if let Some(f) = self.faults.as_deref_mut() {
            if let Some(resume_ns) = f.app_pause_until_ns(now.as_nanos(), app) {
                self.apps[app].state = AppState::Sleeping;
                self.queue.schedule(
                    SimTime::from_nanos(resume_ns.max(now.as_nanos() + 1)),
                    Event::AppResume(app),
                );
                return true;
            }
        }
        false
    }

    /// FreeBSD: process copied-out packets in user space, chunked.
    fn app_process_pending(&mut self, now: SimTime, app: usize) {
        if self.fault_pause_app(now, app) {
            return;
        }
        let n = self.apps[app].pending.len().min(APP_CHUNK);
        if n == 0 {
            self.app_continue(now, app);
            return;
        }
        let pkts: Vec<CapturedPacket> = self.apps[app].pending.drain(..n).collect();
        let work = self.user_processing_work(app, &pkts, 0);
        match work {
            Ok(w) => {
                let cpu = self.app_run_cpu(app);
                self.submit(now, cpu, w, false);
            }
            Err(delay) => {
                // Throttled (disk or pipe): put the packets back and sleep.
                for p in pkts.into_iter().rev() {
                    self.apps[app].pending.push_front(p);
                }
                self.apps[app].state = AppState::Sleeping;
                if delay != u64::MAX {
                    self.queue
                        .schedule(now + SimDuration::from_nanos(delay), Event::AppResume(app));
                }
            }
        }
    }

    /// Linux: one chunk = up to APP_CHUNK recvfrom calls.
    fn app_linux_chunk(&mut self, now: SimTime, app: usize) {
        let c = self.costs;
        let (pkts, copy_bytes, mmap) = match &mut self.stack {
            Stack::Lsf(l) => {
                let s = &mut l.sockets[app];
                let mmap = s.mmap;
                let (pkts, bytes) = s.dequeue(APP_CHUNK);
                let seqs: Vec<u64> = pkts.iter().map(|p| p.seq).collect();
                if !mmap {
                    l.release(&seqs);
                }
                (pkts, bytes, mmap)
            }
            Stack::Bpf(_) => unreachable!("linux chunk on BPF stack"),
        };
        if pkts.is_empty() {
            self.app_continue(now, app);
            return;
        }
        let syscalls = if mmap {
            // The mmap ring is scanned without syscalls; one poll() per
            // chunk keeps the app honest.
            c.syscall_ns
        } else {
            (c.syscall_ns + c.recv_pkt_ns + c.wakeup_ns / APP_CHUNK as u64) * pkts.len() as u64
        };
        let copy = if copy_bytes > 0 {
            self.copy_ns(copy_bytes, false)
        } else {
            0
        };
        match self.user_processing_work(app, &pkts, syscalls + copy) {
            Ok(w) => {
                let cpu = self.app_run_cpu(app);
                self.submit(now, cpu, w, false);
            }
            Err(delay) => {
                // Throttled: stash into pending (processed on resume with
                // zero syscall re-cost — acceptable).
                self.apps[app].pending.extend(pkts);
                self.apps[app].state = AppState::Sleeping;
                if delay != u64::MAX {
                    self.queue
                        .schedule(now + SimDuration::from_nanos(delay), Event::AppResume(app));
                }
            }
        }
    }

    /// Per-packet user-space processing cost for a chunk, including the
    /// configured analysis loads. Returns `Err(delay_ns)` when the app
    /// must sleep first (dirty throttle / full pipe).
    fn user_processing_work(
        &mut self,
        app: usize,
        pkts: &[CapturedPacket],
        extra_system_ns: u64,
    ) -> Result<Work, u64> {
        let c = self.costs;
        let cfg = &self.apps[app].cfg;
        let n = pkts.len() as u64;
        let cap_bytes: u64 = pkts.iter().map(|p| p.caplen as u64).sum();

        // Disk throttle check first.
        if cfg.disk_write_bytes.is_some() && self.dirty_bytes > DIRTY_LIMIT {
            let over = self.dirty_bytes - DIRTY_LIMIT / 2;
            return Err(self.spec.disk.write_ns(over));
        }
        // Pipe space check: the writer blocks until the reader frees
        // space; the resume comes from the gzip chunk completion, so no
        // timed event is scheduled (signalled by u64::MAX).
        if cfg.pipe_to_gzip.is_some() && self.pipe_used >= PIPE_CAPACITY {
            self.pipe_writers_asleep.push(app);
            return Err(u64::MAX);
        }

        // Contention grows with the number of sockets sharing the packet
        // pool and its refcounts (Linux); FreeBSD devices are independent.
        let sharers = if self.spec.os.is_freebsd() {
            1.0
        } else {
            1.0 + 0.5 * (self.apps.len() as f64 - 1.0)
        };
        let contention = (c.contention_ns as f64 * self.kernel_util * sharers) as u64;
        let mut user_ns = n * (c.user_pkt_ns + contention);
        if self.apps[app].cfg.mmap {
            // The mmap app skips the kernel round trip per packet; its
            // per-packet user cost shrinks to header parsing.
            user_ns = n * (c.user_pkt_ns / 2 + contention);
        }
        let mut system_ns = extra_system_ns;

        if cfg.extra_copies > 0 {
            // Fig. 6.10: N user-space memcpys of the packet; the data was
            // just touched, so these run mostly from cache.
            let per_copy =
                self.spec
                    .memory
                    .copy_ns(cap_bytes, self.arrival_ema_bps as u64, 0, true)
                    / n.max(1);
            user_ns += n * cfg.extra_copies as u64 * (c.memcpy_call_ns + per_copy);
        }
        if let Some(level) = cfg.compress_level {
            // Fig. 6.11: gzwrite per packet. Core-bound: cycles per byte.
            let cycles = c.compress_cycles_per_byte[level.min(9) as usize];
            let ns = (cap_bytes as f64 * cycles * 1e9 / self.spec.cpu.clock_hz as f64) as u64;
            user_ns += ns + n * 150; // gzwrite call overhead
        }
        if let Some(hdr) = cfg.disk_write_bytes {
            // Fig. 6.14: write the first `hdr` bytes of each packet.
            let bytes: u64 = pkts.iter().map(|p| (p.caplen.min(hdr)) as u64).sum();
            system_ns += self.spec.disk.cpu_ns(bytes) + c.syscall_ns * n / 8;
            self.dirty_bytes += bytes;
        }
        if cfg.pipe_to_gzip.is_some() {
            // Fig. 6.12: write whole packets into the FIFO.
            system_ns += n * c.pipe_syscall_ns / 4 + (cap_bytes as f64 * c.pipe_ns_per_byte) as u64;
            self.pipe_used += cap_bytes;
            self.pipe_bytes_total += cap_bytes;
        }
        let recorded = if self.apps[app].cfg.record {
            pkts.to_vec()
        } else {
            Vec::new()
        };
        let traced = if self.trace.is_on() {
            pkts.iter().map(|p| (p.seq, p.gen_ns, p.caplen)).collect()
        } else {
            Vec::new()
        };

        Ok(Work {
            segments: vec![(CpuState::System, system_ns), (CpuState::User, user_ns)],
            complete: Completion::AppChunk {
                app,
                packets: n,
                bytes: cap_bytes,
                recorded,
                traced,
            },
        })
    }

    /// After a chunk: keep going if more data, otherwise block.
    fn app_continue(&mut self, now: SimTime, app: usize) {
        // Side effects that piggyback on chunk completion:
        self.schedule_writeback(now);
        self.gzip_try_work(now);

        if !self.apps[app].pending.is_empty() {
            self.app_process_pending(now, app);
            return;
        }
        if self.consumer_readable(app) {
            self.apps[app].state = AppState::Blocked;
            self.app_try_work(now, app);
        } else {
            self.apps[app].state = AppState::Blocked;
        }
    }

    // ----- disk -----

    fn schedule_writeback(&mut self, now: SimTime) {
        if self.writeback_scheduled || self.dirty_bytes == 0 {
            return;
        }
        self.writeback_scheduled = true;
        let chunk = WRITEBACK_CHUNK.min(self.dirty_bytes);
        let t = now + SimDuration::from_nanos(self.spec.disk.write_ns(chunk));
        self.queue.schedule(t, Event::WritebackDone);
    }

    // ----- gzip helper process -----

    fn gzip_try_work(&mut self, now: SimTime) {
        if self.gzip_busy || self.pipe_used == 0 {
            return;
        }
        // Find the compression level from the piping app.
        let level = self
            .apps
            .iter()
            .find_map(|a| a.cfg.pipe_to_gzip)
            .unwrap_or(3);
        self.gzip_busy = true;
        let c = self.costs;
        let bytes = self.pipe_used.min(PIPE_CAPACITY);
        let cycles = c.compress_cycles_per_byte[level.min(9) as usize];
        let compress_ns = (bytes as f64 * cycles * 1e9 / self.spec.cpu.clock_hz as f64) as u64;
        let read_ns = c.pipe_syscall_ns + (bytes as f64 * c.pipe_ns_per_byte) as u64;
        let work = Work {
            segments: vec![(CpuState::System, read_ns), (CpuState::User, compress_ns)],
            complete: Completion::GzipChunk { bytes },
        };
        // A fresh CPU-bound process lands wherever the scheduler finds
        // room — on either OS, migration across CPUs is routine for
        // whole processes.
        let cpu = self.least_loaded_cpu();
        self.submit(now, cpu, work, false);
    }

    // ----- sampling / termination -----

    fn sample(&self, t: SimTime) -> CpuSample {
        // Cumulative accounting including implicit idle up to `t`.
        let per_cpu = self
            .cpus
            .iter()
            .map(|c| {
                let mut acct = c.acct;
                if c.current.is_none() && t > c.idle_since {
                    acct.add(CpuState::Idle, t.since(c.idle_since).as_nanos());
                }
                acct
            })
            .collect();
        CpuSample { t, per_cpu }
    }

    fn fully_drained(&self) -> bool {
        self.source_done
            && self.ring.is_empty()
            && !self.irq_pending
            && self.cpus.iter().all(|c| !c.busy())
            && self.apps.iter().enumerate().all(|(i, a)| {
                a.state == AppState::Blocked && a.pending.is_empty() && !self.consumer_readable(i)
            })
            && self.dirty_bytes == 0
            && self.pipe_used == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_wire::MacAddr;
    use std::net::Ipv4Addr;

    fn packets(n: u64, gap_us: u64) -> Vec<(SimTime, SimPacket)> {
        (0..n)
            .map(|i| {
                let t = SimTime::from_micros((i + 1) * gap_us);
                let p = SimPacket::build_udp(
                    i,
                    t.as_nanos(),
                    659,
                    MacAddr::ZERO,
                    MacAddr::BROADCAST,
                    Ipv4Addr::new(192, 168, 10, 100),
                    Ipv4Addr::new(192, 168, 10, 12),
                    9,
                    9,
                );
                (t, p)
            })
            .collect()
    }

    #[test]
    fn sparse_arrivals_cost_one_interrupt_each() {
        // 1 ms apart: every packet gets its own interrupt, so interrupt
        // time ≈ n × (irq + per-packet work).
        let spec = pcs_hw::MachineSpec::moorhen();
        let costs = spec.costs();
        let r = MachineSim::new(spec, SimConfig::default()).run(packets(100, 1_000));
        assert_eq!(r.apps[0].received, 100);
        let irq_ns = r.final_acct[0].irq;
        let floor = 100 * (costs.irq_ns + costs.rx_pkt_ns);
        assert!(
            irq_ns >= floor,
            "irq time {irq_ns} below the per-packet floor {floor}"
        );
    }

    #[test]
    fn dense_arrivals_batch_interrupts() {
        // Back-to-back arrivals amortize the entry cost over batches:
        // total interrupt time per packet must fall well below the
        // one-interrupt-per-packet case.
        let spec = pcs_hw::MachineSpec::moorhen();
        let sparse = MachineSim::new(spec, SimConfig::default()).run(packets(500, 1_000));
        // 3 µs gaps outrun the kernel, so the ring accumulates and each
        // interrupt picks up a batch. Normalize by packets the kernel
        // actually processed.
        let dense = MachineSim::new(spec, SimConfig::default()).run(packets(500, 3));
        let per_pkt_sparse = sparse.final_acct[0].irq / sparse.apps[0].stats.accepted.max(1);
        let per_pkt_dense = dense.final_acct[0].irq / dense.apps[0].stats.accepted.max(1);
        assert!(
            per_pkt_dense < per_pkt_sparse,
            "batching must amortize: dense {per_pkt_dense} vs sparse {per_pkt_sparse}"
        );
    }

    #[test]
    fn samples_arrive_on_the_half_second() {
        let r = MachineSim::new(pcs_hw::MachineSpec::swan(), SimConfig::default())
            .run(packets(2_000, 1_000)); // 2 s of traffic
        assert!(r.samples.len() >= 4, "{} samples", r.samples.len());
        for (i, s) in r.samples.iter().enumerate() {
            assert_eq!(s.t.as_nanos(), (i as u64 + 1) * 500_000_000);
        }
    }

    #[test]
    fn load_accounting_snapshot_taken_at_last_arrival() {
        let r = MachineSim::new(pcs_hw::MachineSpec::swan(), SimConfig::default())
            .run(packets(100, 1_000));
        let load = r.load_acct.expect("load snapshot");
        assert_eq!(load.t.as_nanos(), 100 * 1_000_000);
        // The final accounting contains at least as much busy time.
        for (l, f) in load.per_cpu.iter().zip(&r.final_acct) {
            assert!(f.busy() >= l.busy());
        }
    }

    #[test]
    fn empty_source_terminates_immediately() {
        let r =
            MachineSim::new(pcs_hw::MachineSpec::moorhen(), SimConfig::default()).run(Vec::new());
        assert_eq!(r.offered, 0);
        assert!(r.apps[0].received == 0);
    }

    #[test]
    fn run_source_matches_run_for_any_chunk_size() {
        use pcs_pktgen::{MaterializedSource, TimedPacket};
        use std::sync::Arc;

        let timed: Arc<Vec<TimedPacket>> = Arc::new(
            packets(400, 5)
                .into_iter()
                .map(|(time, packet)| TimedPacket { time, packet })
                .collect(),
        );
        let spec = pcs_hw::MachineSpec::moorhen();
        let reference = MachineSim::new(spec, SimConfig::default())
            .run(timed.iter().map(|tp| (tp.time, tp.packet.clone())));
        for chunk_packets in [1usize, 7, 4096] {
            let streamed = MachineSim::new(spec, SimConfig::default())
                .run_source(MaterializedSource::new(Arc::clone(&timed), chunk_packets));
            assert_eq!(
                format!("{reference:?}"),
                format!("{streamed:?}"),
                "chunk={chunk_packets}"
            );
        }
    }

    #[test]
    fn run_refs_matches_owned_run_exactly() {
        use pcs_pktgen::{MaterializedSource, SourceRefs, TimedPacket};
        use std::sync::Arc;

        let timed: Arc<Vec<TimedPacket>> = Arc::new(
            packets(300, 7)
                .into_iter()
                .map(|(time, packet)| TimedPacket { time, packet })
                .collect(),
        );
        let spec = pcs_hw::MachineSpec::swan();
        let owned = MachineSim::new(spec, SimConfig::default())
            .run(timed.iter().map(|tp| (tp.time, tp.packet.clone())));
        let shared = MachineSim::new(spec, SimConfig::default()).run_refs(SourceRefs::new(
            MaterializedSource::new(Arc::clone(&timed), 64),
        ));
        assert_eq!(format!("{owned:?}"), format!("{shared:?}"));
    }

    #[test]
    fn traced_run_records_lifecycle_and_balances() {
        use pcs_trace::TraceSpec;
        let spec = pcs_hw::MachineSpec::moorhen();
        let r = MachineSim::new(spec, SimConfig::default())
            .with_trace(TraceSink::bounded(TraceSpec::default()))
            .run(packets(200, 10));
        let trace = r.trace.as_ref().expect("trace report present");
        assert_eq!(trace.truncated, 0);
        let count_stage = |s: Stage| trace.events.iter().filter(|e| e.stage == s).count() as u64;
        assert_eq!(count_stage(Stage::Wire), 200);
        assert_eq!(count_stage(Stage::NicEnqueue), 200);
        assert_eq!(count_stage(Stage::AppDeliver), r.apps[0].received);
        assert!(count_stage(Stage::BusTransfer) > 0);
        // Sim-clock timestamps, monotone within the log.
        assert!(trace.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        let lat = trace
            .metrics
            .histogram("wire_to_app_latency_ns")
            .expect("latency histogram");
        assert_eq!(lat.count(), r.apps[0].received);
        for a in r.attributions() {
            assert!(a.balanced(), "unbalanced attribution: {a:?}");
            assert_eq!(a.generated, 200);
        }
    }

    #[test]
    fn traced_run_is_identical_to_untraced_apart_from_trace() {
        use pcs_trace::TraceSpec;
        let spec = pcs_hw::MachineSpec::swan();
        let plain = MachineSim::new(spec, SimConfig::default()).run(packets(300, 3));
        let mut traced = MachineSim::new(spec, SimConfig::default())
            .with_trace(TraceSink::bounded(TraceSpec::default()))
            .run(packets(300, 3));
        assert!(plain.trace.is_none());
        assert!(traced.trace.is_some());
        traced.trace = None;
        assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
    }

    #[test]
    fn overloaded_run_attribution_stays_exact() {
        // Back-to-back frames overload the stack: drops and end-of-run
        // residue must still account for every generated packet.
        let spec = pcs_hw::MachineSpec::swan();
        let r = MachineSim::new(spec, SimConfig::default()).run(packets(20_000, 1));
        for a in r.attributions() {
            assert!(a.balanced(), "unbalanced: {a:?}");
            assert_eq!(a.generated, 20_000);
            assert_eq!(a.generated, r.offered);
        }
    }

    #[test]
    fn report_helpers() {
        let r = MachineSim::new(pcs_hw::MachineSpec::moorhen(), SimConfig::default())
            .run(packets(50, 100));
        assert!((r.capture_rate(0) - 1.0).abs() < 1e-12);
        assert!((r.mean_capture_rate() - 1.0).abs() < 1e-12);
        let (w, b) = r.worst_best();
        assert_eq!((w, b), (1.0, 1.0));
        assert!(r.mean_cpu_usage() >= 0.0 && r.mean_cpu_usage() <= 1.0);
    }

    #[test]
    fn unfaulted_run_is_identical_with_and_without_the_hooks() {
        // All-default hooks: every injection site asks and gets the base
        // value back.
        struct Inert;
        impl pcs_hw::NicBusFault for Inert {}
        impl MachineFaults for Inert {}

        let spec = pcs_hw::MachineSpec::swan();
        let plain = MachineSim::new(spec, SimConfig::default()).run(packets(300, 3));
        let disarmed = MachineSim::new(spec, SimConfig::default())
            .with_faults(None)
            .run(packets(300, 3));
        let inert = MachineSim::new(spec, SimConfig::default())
            .with_faults(Some(Box::new(Inert)))
            .run(packets(300, 3));
        assert_eq!(format!("{plain:?}"), format!("{disarmed:?}"));
        assert_eq!(format!("{plain:?}"), format!("{inert:?}"));
    }

    #[test]
    fn ring_stall_fault_moves_drops_into_the_nic_bucket() {
        // A hook that pins the RX ring to one slot for the whole run:
        // back-to-back arrivals must overflow at the NIC, and the
        // attribution identity must stay exact.
        struct Stall;
        impl pcs_hw::NicBusFault for Stall {
            fn ring_slots(&mut self, _now_ns: u64, _base: usize) -> usize {
                1
            }
        }
        impl MachineFaults for Stall {}

        let spec = pcs_hw::MachineSpec::swan();
        let plain = MachineSim::new(spec, SimConfig::default()).run(packets(2_000, 3));
        let stalled = MachineSim::new(spec, SimConfig::default())
            .with_faults(Some(Box::new(Stall)))
            .run(packets(2_000, 3));
        assert!(
            stalled.nic_ring_drops > plain.nic_ring_drops,
            "stall must overflow the ring: {} vs {}",
            stalled.nic_ring_drops,
            plain.nic_ring_drops
        );
        for a in stalled.attributions() {
            assert!(a.balanced(), "unbalanced under fault: {a:?}");
        }
    }
}
