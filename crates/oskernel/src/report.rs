//! Run reports: everything one machine simulation measures.
//!
//! The report types ([`RunReport`], [`AppReport`], [`CpuSample`]) and the
//! end-of-run assembly that turns a finished [`MachineSim`] into a
//! [`RunReport`] — residue accounting, stack finalization, and the
//! derived capture-rate/attribution helpers the experiments consume.

use crate::cpustate::{CpuAccounting, CpuState};
use crate::sim::{MachineSim, Stack};
use pcs_des::SimTime;
use pcs_trace::{DropAttribution, StageTimes, TraceReport};

/// The per-application outcome of a run.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// Packets the application processed — the numerator of the thesis'
    /// capturing rate.
    pub received: u64,
    /// Captured bytes (post-snaplen).
    pub received_bytes: u64,
    /// Kernel-side counters for this app's consumer.
    pub stats: crate::stack::StackStats,
    /// Captured packet metadata (only when `AppConfig::record` was set).
    pub captured: Vec<crate::stack::CapturedPacket>,
}

/// One cpusage-style sample: cumulative accounting per CPU.
#[derive(Debug, Clone)]
pub struct CpuSample {
    /// Sample timestamp.
    pub t: SimTime,
    /// Cumulative per-CPU accounting at `t`.
    pub per_cpu: Vec<CpuAccounting>,
}

/// Everything measured in one machine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Machine label (e.g. "FreeBSD/AMD - moorhen").
    pub machine: String,
    /// Packets that arrived on the wire (the denominator of the capture
    /// rate, equal to the generator's count when the splitter is
    /// lossless).
    pub offered: u64,
    /// Packets dropped at the NIC ring (kernel never saw them).
    pub nic_ring_drops: u64,
    /// Packets still sitting in the NIC ring when the run stopped (the
    /// kernel never picked them up; counted separately so the per-stage
    /// attribution sums exactly to `offered`).
    pub nic_ring_residue: u64,
    /// Per-application results.
    pub apps: Vec<AppReport>,
    /// 0.5 s cpusage samples (cumulative).
    pub samples: Vec<CpuSample>,
    /// Final per-CPU accounting.
    pub final_acct: Vec<CpuAccounting>,
    /// Accounting snapshot at the moment the last packet arrived (the
    /// "loaded" window cpusage averages over).
    pub load_acct: Option<CpuSample>,
    /// Virtual time of the last processed event.
    pub elapsed: SimTime,
    /// Bytes that reached the disk.
    pub disk_bytes: u64,
    /// Bytes pushed through the capture→gzip pipe.
    pub pipe_bytes: u64,
    /// Event log and metrics, present when the sim ran with a tracing
    /// sink ([`MachineSim::with_trace`]).
    pub trace: Option<Box<TraceReport>>,
    /// Per-CPU/per-work-kind sim-time attribution, present when the sim
    /// ran with [`MachineSim::with_stage_times`]. Per CPU, the busy
    /// entries plus idle equal the matching [`CpuAccounting::total`]
    /// exactly.
    pub stage_times: Option<StageTimes>,
}

impl RunReport {
    /// Capture rate of one application (0..1).
    pub fn capture_rate(&self, app: usize) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.apps[app].received as f64 / self.offered as f64
    }

    /// Mean capture rate over all applications.
    pub fn mean_capture_rate(&self) -> f64 {
        if self.apps.is_empty() {
            return 0.0;
        }
        (0..self.apps.len())
            .map(|i| self.capture_rate(i))
            .sum::<f64>()
            / self.apps.len() as f64
    }

    /// Worst and best per-application capture rates.
    pub fn worst_best(&self) -> (f64, f64) {
        let mut worst = f64::INFINITY;
        let mut best = f64::NEG_INFINITY;
        for i in 0..self.apps.len() {
            let r = self.capture_rate(i);
            worst = worst.min(r);
            best = best.max(r);
        }
        (worst.clamp(0.0, 1.0), best.clamp(0.0, 1.0))
    }

    /// Mean CPU busy fraction across CPUs over the whole run.
    pub fn mean_cpu_usage(&self) -> f64 {
        if self.final_acct.is_empty() {
            return 0.0;
        }
        self.final_acct.iter().map(|a| a.utilisation()).sum::<f64>() / self.final_acct.len() as f64
    }

    /// Exhaustive per-stage drop attribution for one consumer: where every
    /// generated packet ended up. The identity
    /// `generated == delivered + dropped()` holds exactly
    /// ([`DropAttribution::balanced`]) — this is the paper's
    /// loss-localization analysis computed from end-of-run counters, not
    /// from the (bounded) event log.
    pub fn attribution(&self, app: usize) -> DropAttribution {
        let s = &self.apps[app].stats;
        DropAttribution {
            generated: self.offered,
            nic_drops: self.nic_ring_drops,
            nic_residue: self.nic_ring_residue,
            filter_rejects: s.rejected,
            kernel_buffer_drops: s.dropped_buffer,
            kernel_pool_drops: s.dropped_pool,
            kernel_residue: s.kernel_residue,
            app_residue: s.app_residue,
            delivered: self.apps[app].received,
        }
    }

    /// [`RunReport::attribution`] for every consumer.
    pub fn attributions(&self) -> Vec<DropAttribution> {
        (0..self.apps.len()).map(|i| self.attribution(i)).collect()
    }

    /// Mean CPU busy fraction across CPUs during the loaded window (up to
    /// the last packet arrival) — what the thesis' cpusage/trimusage
    /// pipeline reports.
    pub fn load_cpu_usage(&self) -> f64 {
        match &self.load_acct {
            Some(s) if !s.per_cpu.is_empty() => {
                s.per_cpu.iter().map(|a| a.utilisation()).sum::<f64>() / s.per_cpu.len() as f64
            }
            _ => self.mean_cpu_usage(),
        }
    }
}

impl MachineSim {
    /// Close out a finished event loop into the run's report: idle
    /// accounting up to the last event, end-of-run residue attribution,
    /// and the final per-app/per-CPU numbers.
    pub(crate) fn finish_report(mut self) -> RunReport {
        let end = self.sched.queue.now();
        // Close idle accounting (mirrored into the stage-time account so
        // its per-CPU totals match `acct` exactly).
        let mut stage_times = self.sched.stage.take();
        for (i, cpu) in self.sched.cpus.iter_mut().enumerate() {
            if cpu.current.is_none() && end > cpu.idle_since {
                let gap = end.since(cpu.idle_since).as_nanos();
                cpu.acct.add(CpuState::Idle, gap);
                if let Some(st) = stage_times.as_mut() {
                    st.add_idle(i, gap);
                }
            }
        }
        // End-of-run residue accounting: packets still in flight when the
        // controller stopped the run were never captured; attributing them
        // to the buffer that held them keeps the per-stage drop identity
        // exact (`generated == delivered + every loss bucket`).
        let nic_ring_residue = self.ring.len() as u64;
        for i in 0..self.apps.len() {
            let received = self.apps[i].received;
            match &mut self.stack {
                Stack::Bpf(devs) => {
                    devs[i].finalize_residue();
                    devs[i].stats.app_residue = devs[i].stats.delivered - received;
                }
                Stack::Lsf(l) => {
                    l.sockets[i].finalize_residue();
                    l.sockets[i].stats.app_residue = l.sockets[i].stats.delivered - received;
                }
            }
        }
        if let Some(m) = self.trace.metrics_mut() {
            m.set_gauge("dirty_bytes_final", self.dirty_bytes as f64);
            m.set_gauge("pipe_used_final", self.pipe_used as f64);
            m.inc("disk_bytes", self.disk_bytes);
            m.inc("pipe_bytes", self.pipe_bytes_total);
        }
        let apps = self
            .apps
            .iter()
            .enumerate()
            .map(|(i, a)| AppReport {
                received: a.received,
                received_bytes: a.received_bytes,
                captured: a.captured.clone(),
                stats: match &self.stack {
                    Stack::Bpf(devs) => devs[i].stats,
                    Stack::Lsf(l) => l.sockets[i].stats,
                },
            })
            .collect();
        // Publish pool statistics to the probe, if one is armed. This is
        // pure observability: the numbers never enter the RunReport, so
        // runs stay byte-identical across injection paths and pooling
        // modes.
        if let Some(probe) = &self.pool_probe {
            probe.publish(self.sched.pool.stats());
        }
        // Batching counters follow the same rule: fold the memo tallies
        // into the run's stats and publish, outside the RunReport.
        if let Some(probe) = &self.batch_probe {
            let mut stats = self.batch_stats;
            let (alpha_hits, alpha_misses) = self.memo.alpha_counts();
            stats.alpha_hits = alpha_hits;
            stats.alpha_misses = alpha_misses;
            stats.size_hits = self.memo.consumer.hits();
            stats.size_misses = self.memo.consumer.misses();
            probe.publish(self.batching, stats);
        }
        // Hand the event heap's allocation to the next run on this
        // thread (no-op when pooling is off).
        self.sched.release_queue();
        let trace = std::mem::take(&mut self.trace).into_report().map(Box::new);
        RunReport {
            machine: self.spec.label(),
            offered: self.offered,
            nic_ring_drops: self.nic_ring_drops,
            nic_ring_residue,
            apps,
            samples: self.samples,
            final_acct: self.sched.cpus.iter().map(|c| c.acct).collect(),
            load_acct: self.load_end,
            elapsed: end,
            disk_bytes: self.disk_bytes + self.dirty_bytes,
            pipe_bytes: self.pipe_bytes_total,
            trace,
            stage_times,
        }
    }
}
