//! The CPU scheduler: sim clock, per-CPU run state, and dispatch.
//!
//! [`Scheduler`] owns the pcs-des pending-event queue (the sim clock)
//! and one [`CpuSim`] per logical CPU. Work items queue on a
//! [`pcs_des::RunQueue`] per CPU — kernel work at strict priority with a
//! bounded starvation-avoidance yield every [`KERNEL_SLOTS`] picks — and
//! dispatch is where the two cross-cutting layers hook in:
//!
//! * **Tracing** — every dispatch emits a [`pcs_trace::SchedEvent`]
//!   (which work item, which CPU, which sim-ns, how long) through the
//!   sink in [`SchedCtx`]; off/unfiltered sinks cost one branch.
//! * **Faults** — an armed [`MachineFaults`] plan may charge extra
//!   occupancy to the CPU at dispatch
//!   ([`pcs_hw::SchedFault::preempt_extra_ns`]), modelling a host
//!   scheduler preempting the capture workers. The extra time is folded
//!   into the work's segments so accounting still sums to wall time.
//!
//! Dispatch order, SMT stretching, and idle accounting are exactly the
//! seed loop's: with tracing off and no fault plan armed, a run is
//! byte-identical to the pre-refactor simulator.

use crate::cpustate::{CpuAccounting, CpuState};
use crate::event::{PacketView, SimEvent, Work};
use crate::fault::MachineFaults;
use crate::sim::MachineSim;
use crate::stack::CapturedPacket;
use pcs_des::{BufPool, EventQueue, PoolStats, RunQueue, SimDuration, SimTime, WorkClass};
use pcs_trace::{StageTimes, TraceSink};
use pcs_wire::SimPacket;

/// Every Nth slot goes to user work when both queues are loaded.
pub(crate) const KERNEL_SLOTS: u32 = 8;

/// One logical CPU: its run queue, the work in flight, and accounting.
pub(crate) struct CpuSim {
    /// Two-class (kernel/user) run queue; the scheduler grants queued
    /// user work an occasional slot so interrupt pressure cannot starve
    /// runnable processes absolutely (neither OS's livelock is total).
    pub(crate) runq: RunQueue<Box<Work>>,
    pub(crate) current: Option<Box<Work>>,
    pub(crate) busy_until: SimTime,
    pub(crate) idle_since: SimTime,
    pub(crate) acct: CpuAccounting,
}

impl CpuSim {
    fn new() -> CpuSim {
        CpuSim {
            runq: RunQueue::new(),
            current: None,
            busy_until: SimTime::ZERO,
            idle_since: SimTime::ZERO,
            acct: CpuAccounting::default(),
        }
    }

    pub(crate) fn busy(&self) -> bool {
        self.current.is_some()
    }
}

/// The cross-cutting hooks a dispatch consults, borrowed disjointly
/// from the sim so the scheduler can run while stages hold the rest.
pub(crate) struct SchedCtx<'a> {
    pub(crate) trace: &'a mut TraceSink,
    pub(crate) faults: Option<&'a mut (dyn MachineFaults + 'static)>,
}

/// The scheduler's free lists: every buffer the per-packet path needs,
/// recycled so the steady-state event loop performs zero heap
/// allocations per packet (DESIGN.md §15).
///
/// Recycling never changes observable behavior — a recycled buffer is
/// indistinguishable from a fresh one — so runs are byte-identical with
/// the pool disabled (`PCS_NO_POOL=1` or
/// [`crate::sim::MachineSim::with_pooling`]).
pub(crate) struct HotPool {
    /// IRQ batch scratch: the views drained from the NIC ring.
    pub(crate) views: BufPool<PacketView>,
    /// App-chunk scratch plus the `recorded` buffers in
    /// [`crate::event::Completion::AppChunk`].
    pub(crate) captured: BufPool<CapturedPacket>,
    /// The `traced` (seq, gen_ns, caplen) buffers in `AppChunk`.
    pub(crate) traced: BufPool<(u64, u64, u32)>,
    /// Dead owned-arrival boxes awaiting the next owned packet. The
    /// boxing is the point: the pool recycles the heap allocation a
    /// boxed packet rides in through the event queue.
    #[allow(clippy::vec_box)]
    boxes: Vec<Box<SimPacket>>,
    /// Dead work-item boxes awaiting the next submission. Work items
    /// travel boxed so the run queue and the CPU slots move a pointer,
    /// not the ~150-byte item; this list recycles those allocations.
    #[allow(clippy::vec_box)]
    works: Vec<Box<Work>>,
    boxes_enabled: bool,
    box_gets: u64,
    box_misses: u64,
    box_recycled: u64,
}

impl HotPool {
    fn new(enabled: bool) -> HotPool {
        HotPool {
            views: BufPool::new(enabled),
            captured: BufPool::new(enabled),
            traced: BufPool::new(enabled),
            boxes: Vec::new(),
            works: Vec::new(),
            boxes_enabled: enabled,
            box_gets: 0,
            box_misses: 0,
            box_recycled: 0,
        }
    }

    /// Turn all recycling on or off (the `PCS_NO_POOL` escape hatch).
    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.views.set_enabled(enabled);
        self.captured.set_enabled(enabled);
        self.traced.set_enabled(enabled);
        self.boxes_enabled = enabled;
        if !enabled {
            self.boxes = Vec::new();
            self.works = Vec::new();
        }
    }

    /// Whether recycling is currently on.
    pub(crate) fn enabled(&self) -> bool {
        self.boxes_enabled
    }

    /// Box an owned packet, reusing a dead box when one is free.
    pub(crate) fn box_packet(&mut self, p: SimPacket) -> Box<SimPacket> {
        self.box_gets += 1;
        match self.boxes.pop() {
            Some(mut b) => {
                *b = p;
                b
            }
            None => {
                self.box_misses += 1;
                Box::new(p)
            }
        }
    }

    /// Retire a packet view: owned boxes go back on the free list,
    /// shared references just drop their refcount.
    pub(crate) fn recycle_view(&mut self, view: PacketView) {
        if let PacketView::Owned(b) = view {
            if self.boxes_enabled {
                self.box_recycled += 1;
                self.boxes.push(b);
            }
        }
    }

    /// Box a work item for submission, reusing a dead box when free.
    pub(crate) fn box_work(&mut self, w: Work) -> Box<Work> {
        self.box_gets += 1;
        match self.works.pop() {
            Some(mut b) => {
                *b = w;
                b
            }
            None => {
                self.box_misses += 1;
                Box::new(w)
            }
        }
    }

    /// Retire a finished work item's box onto the free list.
    pub(crate) fn recycle_work(&mut self, b: Box<Work>) {
        if self.boxes_enabled {
            self.box_recycled += 1;
            self.works.push(b);
        }
    }

    /// Summed counters over every free list (buffers and boxes).
    pub(crate) fn stats(&self) -> PoolStats {
        let mut s = self.views.stats();
        s.absorb(self.captured.stats());
        s.absorb(self.traced.stats());
        s.absorb(PoolStats {
            gets: self.box_gets,
            misses: self.box_misses,
            recycled: self.box_recycled,
        });
        s
    }
}

/// The event-scheduled core: sim clock plus per-CPU run state.
pub(crate) struct Scheduler {
    /// The pending-event set; its `now()` is the sim clock.
    pub(crate) queue: EventQueue<SimEvent>,
    pub(crate) cpus: Vec<CpuSim>,
    /// Free lists for the per-packet path's buffers.
    pub(crate) pool: HotPool,
    /// Per-CPU/per-work-kind sim-time attribution, armed by
    /// [`crate::sim::MachineSim::with_stage_times`]. `None` (the
    /// default) costs one branch per dispatch/finish and leaves every
    /// run byte-identical to an unarmed one; when armed the account is
    /// fixed arrays allocated once here, so the per-packet path stays
    /// allocation-free.
    pub(crate) stage: Option<StageTimes>,
    hyperthreading: bool,
    smt_factor: f64,
}

thread_local! {
    /// A retired event heap awaiting the next simulation on this thread.
    /// The sweep engine runs thousands of short sims per worker thread;
    /// handing the (already grown) heap allocation from one to the next
    /// takes even queue construction off the allocator. Capacity is the
    /// only thing carried over — [`EventQueue::reset`] restores the
    /// pristine clock and sequence state, so reuse is unobservable.
    static SPARE_QUEUE: std::cell::RefCell<Option<EventQueue<SimEvent>>> =
        const { std::cell::RefCell::new(None) };
}

impl Scheduler {
    /// A scheduler for `ncpu` logical CPUs with the spec's SMT shape
    /// (captured at construction; the spec is immutable over a run).
    /// The event heap is pre-sized to `queue_hint` (the sim's in-flight
    /// event bound) — or taken from the thread's spare when pooling is
    /// on, so repeated runs share one heap allocation.
    pub(crate) fn new(
        ncpu: usize,
        hyperthreading: bool,
        smt_factor: f64,
        pooling: bool,
        queue_hint: usize,
    ) -> Scheduler {
        let queue = if pooling {
            SPARE_QUEUE
                .with(|s| s.borrow_mut().take())
                .map(|mut q| {
                    q.reset();
                    q
                })
                .unwrap_or_else(|| EventQueue::with_capacity(queue_hint))
        } else {
            EventQueue::with_capacity(queue_hint)
        };
        Scheduler {
            queue,
            cpus: (0..ncpu).map(|_| CpuSim::new()).collect(),
            pool: HotPool::new(pooling),
            stage: None,
            hyperthreading,
            smt_factor,
        }
    }

    /// Retire the (drained) event heap into the thread-local spare so
    /// the next simulation on this thread reuses its allocation. Gated
    /// on pooling, like every other free list, so the `PCS_NO_POOL`
    /// differential test covers it.
    pub(crate) fn release_queue(&mut self) {
        if self.pool.enabled() {
            let q = std::mem::take(&mut self.queue);
            SPARE_QUEUE.with(|s| *s.borrow_mut() = Some(q));
        }
    }

    /// Arm (or disarm) per-stage time attribution; arming allocates the
    /// per-CPU accounts once, before the run starts.
    pub(crate) fn set_stage_times(&mut self, enabled: bool) {
        self.stage = enabled.then(|| StageTimes::new(self.cpus.len()));
    }

    /// Enqueue `work` on `cpu` and dispatch immediately if it is idle.
    pub(crate) fn submit(
        &mut self,
        now: SimTime,
        cpu: usize,
        work: Work,
        kernel: bool,
        ctx: &mut SchedCtx,
    ) {
        let class = if kernel {
            WorkClass::Kernel
        } else {
            WorkClass::User
        };
        // Hot path: an idle CPU with an empty queue dispatches the item
        // directly, skipping the push + pick round trip (two moves of
        // the full `Work` through the queue's ring buffer per item).
        // `admit_direct` applies exactly the pick() yield-counter
        // update, so scheduling decisions are unchanged.
        let work = self.pool.box_work(work);
        if !self.cpus[cpu].busy() && self.cpus[cpu].runq.admit_direct(class) {
            self.dispatch(now, cpu, work, ctx);
            return;
        }
        self.cpus[cpu].runq.push(class, work);
        if !self.cpus[cpu].busy() {
            self.start_next(now, cpu, ctx);
        }
    }

    /// Dispatch the next queued work item on `cpu`, if any (see
    /// [`Scheduler::dispatch`]).
    pub(crate) fn start_next(&mut self, now: SimTime, cpu: usize, ctx: &mut SchedCtx) {
        if self.cpus[cpu].busy() {
            return;
        }
        let work = match self.cpus[cpu].runq.pick(KERNEL_SLOTS) {
            Some(w) => w,
            None => {
                self.cpus[cpu].idle_since = now;
                return;
            }
        };
        self.dispatch(now, cpu, work, ctx);
    }

    /// Run `work` on the (idle) `cpu`: account the idle gap, stretch for
    /// a busy SMT sibling, consult the preemption fault hook, trace the
    /// dispatch, and schedule the completion.
    fn dispatch(&mut self, now: SimTime, cpu: usize, work: Box<Work>, ctx: &mut SchedCtx) {
        // Account the idle gap before this work.
        if now > self.cpus[cpu].idle_since {
            let gap = now.since(self.cpus[cpu].idle_since).as_nanos();
            self.cpus[cpu].acct.add(CpuState::Idle, gap);
            if let Some(st) = self.stage.as_mut() {
                st.add_idle(cpu, gap);
            }
        }
        let mut work = work;
        let mut duration = work.duration();
        let base_duration = duration;
        // Hyperthreading: a busy sibling slows this virtual CPU. The
        // stretch is folded into the work's segments so that accounting
        // covers the full wall time the CPU was occupied.
        if self.hyperthreading {
            let sibling = cpu ^ 1;
            if sibling < self.cpus.len() && self.cpus[sibling].busy() && duration > 0 {
                let stretched = (duration as f64 / self.smt_factor) as u64;
                let scale = stretched as f64 / duration as f64;
                work.stretch(scale);
                duration = work.duration();
            }
        }
        // Preemption fault: a foreign task holds the core before this
        // work runs. The hold is appended as a system-time segment so
        // per-CPU accounting still sums to the wall occupancy; the
        // cached duration is carried through the split, not re-summed.
        if let Some(f) = ctx.faults.as_mut() {
            let extra = f.preempt_extra_ns(now.as_nanos(), cpu);
            if extra > 0 {
                work.push_segment(CpuState::System, extra);
                duration = work.duration();
            }
        }
        // Stage-time attribution: everything dispatch added on top of
        // the work's own cost (SMT sibling stretch, preemption hold) is
        // the stretch share of the busy time charged at finish.
        if let Some(st) = self.stage.as_mut() {
            if duration > base_duration {
                st.add_stretch(cpu, work.kind, duration - base_duration);
            }
        }
        ctx.trace.emit_sched(
            now.as_nanos(),
            duration,
            cpu as u16,
            work.sched_app(),
            work.kind,
        );
        let end = now + SimDuration::from_nanos(duration);
        self.cpus[cpu].busy_until = end;
        self.cpus[cpu].current = Some(work);
        self.queue.schedule(end, SimEvent::CpuFree(cpu));
    }

    /// Take the work item that just finished on `cpu`, charge its
    /// segments to the CPU's accounting, and return it together with
    /// the kernel-state nanoseconds spent on CPU0 (the input to the
    /// kernel-utilisation estimator).
    pub(crate) fn finish_current(&mut self, now: SimTime, cpu: usize) -> (Box<Work>, u64) {
        let work = self.cpus[cpu]
            .current
            .take()
            .expect("CpuFree without current work");
        // Account the segments (already SMT-scaled at start, so the sum
        // equals the wall time this CPU was occupied).
        let mut kernel_ns = 0u64;
        let mut total_ns = 0u64;
        for (state, ns) in &work.segments {
            self.cpus[cpu].acct.add(*state, *ns);
            total_ns += ns;
            if matches!(state, CpuState::Irq | CpuState::SoftIrq | CpuState::System) && cpu == 0 {
                kernel_ns += ns;
            }
        }
        // The segment sum is the full wall occupancy (SMT-scaled and
        // preempt-extended at dispatch), so charging it here keeps the
        // stage account in lockstep with `acct`.
        if let Some(st) = self.stage.as_mut() {
            st.add_busy(cpu, work.kind, total_ns);
        }
        self.cpus[cpu].idle_since = now;
        (work, kernel_ns)
    }
}

impl MachineSim {
    /// Where the next chunk of this app's work runs. FreeBSD 5.x balances
    /// runnable threads across CPUs, which is how it shares capture
    /// capacity evenly between applications (§1.2: ~5 % deviation);
    /// Linux 2.6's affinity is sticky, so applications parked on the
    /// interrupt CPU starve under load — the thesis' unfairness result.
    pub(crate) fn app_run_cpu(&self, app: usize) -> usize {
        if self.sched.cpus.len() == 1 {
            return 0;
        }
        if !self.spec.os.is_freebsd() {
            // Linux 2.6: sticky affinity, but the idle balancer pulls a
            // runnable task when another CPU has nothing to do. With every
            // CPU busy (the 4–8 application overloads) no pull happens and
            // the tasks parked behind the interrupt CPU starve — the
            // thesis' unfairness result.
            let home = self.apps[app].cpu;
            let home_pressed =
                (home == 0 && self.kernel_util > 0.5) || self.sched.cpus[home].runq.user_len() >= 2;
            if home_pressed {
                for (i, c) in self.sched.cpus.iter().enumerate() {
                    let kernel_pressed = i == 0 && self.kernel_util > 0.5;
                    if !c.busy() && c.runq.user_len() == 0 && !kernel_pressed {
                        return i;
                    }
                }
            }
            return home;
        }
        self.least_loaded_cpu()
    }

    /// The CPU a freely-migrating task would land on: queue depth plus
    /// interrupt pressure on CPU0 (receive livelock, §2.2.1) and — with
    /// Hyperthreading — on its sibling, whose activity would halve the
    /// interrupt path (§6.3.7).
    pub(crate) fn least_loaded_cpu(&self) -> usize {
        let mut best = 0usize;
        let mut best_load = f64::INFINITY;
        for (i, c) in self.sched.cpus.iter().enumerate() {
            let mut load = (c.runq.user_len() + c.runq.kernel_len() * 4 + c.busy() as usize) as f64;
            if i == 0 {
                load += self.kernel_util * 50.0;
            } else if self.spec.cpu.hyperthreading && i == 1 {
                load += self.kernel_util * 25.0;
            }
            if load < best_load {
                best_load = load;
                best = i;
            }
        }
        best
    }

    /// Enqueue `work` on `cpu` (kernel or user class) and dispatch if
    /// the CPU is idle. Thin wrapper building the scheduler's hook
    /// context from the sim's disjoint trace/fault fields.
    pub(crate) fn submit(&mut self, now: SimTime, cpu: usize, work: Work, kernel: bool) {
        let mut ctx = SchedCtx {
            trace: &mut self.trace,
            faults: self.faults.as_deref_mut(),
        };
        self.sched.submit(now, cpu, work, kernel, &mut ctx);
    }

    /// Dispatch the next queued work item on `cpu`, if it is idle and
    /// has one. Thin wrapper over [`Scheduler::start_next`].
    pub(crate) fn start_next(&mut self, now: SimTime, cpu: usize) {
        let mut ctx = SchedCtx {
            trace: &mut self.trace,
            faults: self.faults.as_deref_mut(),
        };
        self.sched.start_next(now, cpu, &mut ctx);
    }
}
