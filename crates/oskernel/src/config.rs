//! Simulation configuration: buffer settings and per-application setups.

use pcs_bpf::Insn;
use pcs_des::{Fingerprint, Fingerprintable};

/// Capture-buffer settings — the central tunable of §6.3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferConfig {
    /// FreeBSD: bytes per *half* of the BPF double buffer.
    /// Default 32 kB (what 2005 libpcap requested); the thesis' "increased"
    /// setting is 10 MB.
    pub bpf_half_bytes: u64,
    /// Linux: the PF_PACKET receive budget (`rmem`) in bytes. Default is
    /// the 2.6 `rmem_default` of 110 592; the thesis' increased setting is
    /// 128 MB.
    pub rmem_bytes: u64,
}

impl BufferConfig {
    /// The operating systems' defaults (the Fig. 6.2 baseline).
    pub fn default_buffers() -> BufferConfig {
        BufferConfig {
            bpf_half_bytes: 32 * 1024,
            rmem_bytes: 110_592,
        }
    }

    /// The thesis' increased settings used for all later measurements:
    /// 10 MB double buffers (FreeBSD), 128 MB receive budget (Linux).
    pub fn increased() -> BufferConfig {
        BufferConfig {
            bpf_half_bytes: 10 << 20,
            rmem_bytes: 128 << 20,
        }
    }

    /// A symmetric setting for the Fig. 6.4 sweep: FreeBSD gets half of
    /// `bytes` per buffer half so the *effective* capacity matches
    /// single-buffered Linux (the fairness note of §6.3.1).
    pub fn symmetric(bytes: u64) -> BufferConfig {
        BufferConfig {
            bpf_half_bytes: (bytes / 2).max(4096),
            rmem_bytes: bytes.max(8192),
        }
    }
}

/// Per-packet analysis load hooks (§6.3.4–6.3.5) plus stack variants.
#[derive(Debug, Clone, Default)]
pub struct AppConfig {
    /// Attached BPF filter (compiled); `None` captures everything.
    pub filter: Option<Vec<Insn>>,
    /// Snapshot length; bytes actually copied per packet.
    pub snaplen: u32,
    /// Perform N additional user-space `memcpy`s of every captured packet
    /// (Fig. 6.10 uses 50, Fig. B.2 uses 25).
    pub extra_copies: u32,
    /// Compress every packet with zlib at this level (Fig. 6.11 level 3,
    /// Fig. B.3 level 9).
    pub compress_level: Option<u8>,
    /// Write the first N bytes of every packet to disk (Fig. 6.14 uses
    /// 76).
    pub disk_write_bytes: Option<u32>,
    /// Write whole packets into a pipe drained by a separate gzip process
    /// (Fig. 6.12).
    pub pipe_to_gzip: Option<u8>,
    /// Use the memory-mapped ring variant (Phil Woods' libpcap patch,
    /// Fig. 6.15; Linux only).
    pub mmap: bool,
    /// Keep every captured packet's metadata in the run report (for
    /// savefile writing; costs memory on long runs).
    pub record: bool,
}

impl AppConfig {
    /// A plain capture application with full-packet snaplen.
    pub fn plain() -> AppConfig {
        AppConfig {
            snaplen: 65_535,
            ..AppConfig::default()
        }
    }
}

/// Full machine-simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Buffering.
    pub buffers: BufferConfig,
    /// One entry per concurrently running capture application.
    pub apps: Vec<AppConfig>,
    /// How long after the last packet the applications keep running
    /// before the controller's stop script kills them (§3.4). Buffered
    /// packets still unread then count as lost — this is what limits the
    /// "huge buffer absorbs the whole run" effect to the fraction that
    /// can actually be drained (the thesis' flamingo-at-256MB analysis,
    /// §6.3.1).
    pub drain_timeout_ns: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffers: BufferConfig::increased(),
            apps: vec![AppConfig::plain()],
            drain_timeout_ns: 500_000_000,
        }
    }
}

impl Fingerprintable for BufferConfig {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.u64(self.bpf_half_bytes);
        fp.u64(self.rmem_bytes);
    }
}

impl Fingerprintable for AppConfig {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        match &self.filter {
            None => fp.tag(0),
            Some(insns) => {
                fp.tag(1);
                fp.seq(insns);
            }
        }
        fp.u32(self.snaplen);
        fp.u32(self.extra_copies);
        fp.option(&self.compress_level);
        fp.option(&self.disk_write_bytes);
        fp.option(&self.pipe_to_gzip);
        fp.bool(self.mmap);
        fp.bool(self.record);
    }
}

impl Fingerprintable for SimConfig {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        self.buffers.fingerprint(fp);
        fp.seq(&self.apps);
        fp.u64(self.drain_timeout_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_presets() {
        let d = BufferConfig::default_buffers();
        assert_eq!(d.rmem_bytes, 110_592);
        assert_eq!(d.bpf_half_bytes, 32 * 1024);
        let i = BufferConfig::increased();
        assert_eq!(i.bpf_half_bytes, 10 << 20);
        assert_eq!(i.rmem_bytes, 128 << 20);
    }

    #[test]
    fn symmetric_halves_freebsd() {
        let s = BufferConfig::symmetric(1 << 20);
        assert_eq!(s.bpf_half_bytes * 2, s.rmem_bytes);
        // Floors keep tiny settings sane.
        let tiny = BufferConfig::symmetric(0);
        assert!(tiny.bpf_half_bytes >= 4096);
        assert!(tiny.rmem_bytes >= 8192);
    }

    #[test]
    fn plain_app() {
        let a = AppConfig::plain();
        assert_eq!(a.snaplen, 65_535);
        assert!(a.filter.is_none());
        assert_eq!(a.extra_copies, 0);
    }

    fn key(cfg: &SimConfig) -> (u64, u64) {
        let mut fp = Fingerprint::new();
        cfg.fingerprint(&mut fp);
        fp.finish()
    }

    #[test]
    fn every_sim_knob_reaches_the_fingerprint() {
        let base = SimConfig::default();
        let mut filtered = SimConfig::default();
        filtered.apps[0].filter = Some(vec![Insn::new(0x06, 0, 0, 65_535)]);
        let mut copies = SimConfig::default();
        copies.apps[0].extra_copies = 50;
        let mut mmap = SimConfig::default();
        mmap.apps[0].mmap = true;
        let two_apps = SimConfig {
            apps: vec![AppConfig::plain(), AppConfig::plain()],
            ..SimConfig::default()
        };
        let buffers = SimConfig {
            buffers: BufferConfig::default_buffers(),
            ..SimConfig::default()
        };
        let variants = [filtered, copies, mmap, two_apps, buffers];
        for v in &variants {
            assert_ne!(key(&base), key(v));
        }
        assert_eq!(key(&base), key(&SimConfig::default()));
    }
}
