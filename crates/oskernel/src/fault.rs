//! Kernel-level fault-injection hooks.
//!
//! Extends the NIC/bus hooks from [`pcs_hw::NicBusFault`] and the
//! scheduler hooks from [`pcs_hw::SchedFault`] with the two faults that
//! live above the driver: kernel capture-buffer shrink and
//! application backpressure pauses. `MachineSim` consults an armed
//! implementation through `Option<Box<dyn MachineFaults>>` — `None`
//! costs one branch per site, exactly like the trace sink.
//!
//! Implementations must answer from the simulated clock and seeded
//! state only, never from host time, so faulted runs remain
//! byte-identical at any worker count.

/// Deterministic kernel/application fault hooks.
///
/// Every method defaults to "no fault", so a plan overrides only what
/// it arms.
pub trait MachineFaults: pcs_hw::NicBusFault + pcs_hw::SchedFault {
    /// Effective kernel capture-buffer capacity at `now_ns`, in
    /// permille of the configured size (1000 = unchanged). A
    /// kernel-shrink window returns a small value; outside the window
    /// the full capacity is restored automatically.
    fn buffer_permille(&mut self, _now_ns: u64) -> u32 {
        1000
    }

    /// If application `app` is backpressure-paused at `now_ns`, the
    /// sim-clock nanosecond at which it may resume reading; `None`
    /// when the app runs normally.
    fn app_pause_until_ns(&mut self, _now_ns: u64, _app: usize) -> Option<u64> {
        None
    }
}
