//! # pcs-oskernel — simulated operating-system capture stacks
//!
//! The kernel-side substrate of the Schneider (2005) reproduction: a
//! discrete-event model of one capture machine, with
//!
//! * the FreeBSD **BPF device** (filter in interrupt context, STORE/HOLD
//!   double buffer, whole-buffer copyout — §2.1.1);
//! * the Linux **PF_PACKET / LSF** path (per-CPU input queue, softirq
//!   demux, per-socket pointer queues over a shared refcounted packet
//!   pool, per-packet copy on `recvfrom` — §2.1.2), plus the
//!   `PACKET_MMAP` ring variant of the Fig. 6.15 patch;
//! * CPUs with priority work queues, Hyperthreading, receive-livelock
//!   dynamics (§2.2.1) and cpusage-compatible state accounting;
//! * capture applications with the evaluation's per-packet analysis
//!   loads (extra memcpys, zlib compression, header-to-disk writing,
//!   piping to a gzip process);
//! * the disk write-back path and 64 kB FIFOs.
//!
//! Packet injection is zero-copy on the pipeline path: arrivals enter
//! the event loop as shared references into generator chunks
//! ([`MachineSim::run_refs`], fed by [`pcs_pktgen::SourceRefs`]), so the
//! N machine simulations reading one broadcast stream share its bytes
//! instead of cloning every packet. Owned injection
//! ([`MachineSim::run`]) remains the reference path and produces
//! bit-identical reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cpustate;
pub(crate) mod event;
pub mod fault;
pub mod report;
pub(crate) mod sched;
pub mod sim;
pub mod stack;
pub(crate) mod stages;

pub use config::{AppConfig, BufferConfig, SimConfig};
pub use cpustate::{CpuAccounting, CpuState};
pub use fault::MachineFaults;
pub use report::{AppReport, CpuSample, RunReport};
pub use sim::{MachineSim, BATCH_COALESCE_CAP};
pub use stack::{
    BpfDevice, CapturedPacket, DeliverOutcome, DropKind, KernelFilter, LsfSocket, LsfState,
    StackStats,
};
