//! The `trimusage.awk` postprocessor (thesis §5.2, Appendix A.4).
//!
//! cpusage output contains warm-up and cool-down rows; trimusage finds the
//! **longest consecutive run of rows whose idle value is below a limit**
//! (default 95 %) — the measurement's loaded window — and reports the
//! per-state averages over exactly that run, correcting the raw cpusage
//! averages.

use crate::cpusage::UsageRow;

/// Result of trimming: the selected window and its per-state averages.
#[derive(Debug, Clone, PartialEq)]
pub struct TrimResult {
    /// Start index (inclusive) of the longest under-limit run.
    pub start: usize,
    /// End index (exclusive).
    pub end: usize,
    /// Average percentages over the run, in cpusage state order.
    pub avg: UsageRow,
}

/// Find the longest run of rows with `idle < limit` and average it.
/// Returns `None` when no row is under the limit.
pub fn trim(rows: &[UsageRow], limit: f64) -> Option<TrimResult> {
    let mut best: Option<(usize, usize)> = None;
    let mut cur_start = 0usize;
    let mut in_run = false;
    for (i, r) in rows.iter().enumerate() {
        if r.idle < limit {
            if !in_run {
                cur_start = i;
                in_run = true;
            }
            let len = i + 1 - cur_start;
            if best.is_none_or(|(s, e)| len > e - s) {
                best = Some((cur_start, i + 1));
            }
        } else {
            in_run = false;
        }
    }
    let (start, end) = best?;
    let n = (end - start) as f64;
    let mut avg = UsageRow {
        t_secs: rows[end - 1].t_secs,
        user: 0.0,
        nice: 0.0,
        system: 0.0,
        iowait: 0.0,
        irq: 0.0,
        softirq: 0.0,
        idle: 0.0,
    };
    for r in &rows[start..end] {
        avg.user += r.user;
        avg.nice += r.nice;
        avg.system += r.system;
        avg.iowait += r.iowait;
        avg.irq += r.irq;
        avg.softirq += r.softirq;
        avg.idle += r.idle;
    }
    avg.user /= n;
    avg.nice /= n;
    avg.system /= n;
    avg.iowait /= n;
    avg.irq /= n;
    avg.softirq /= n;
    avg.idle /= n;
    Some(TrimResult { start, end, avg })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(idle: f64) -> UsageRow {
        UsageRow {
            t_secs: 0.0,
            user: (100.0 - idle) / 2.0,
            nice: 0.0,
            system: (100.0 - idle) / 2.0,
            iowait: 0.0,
            irq: 0.0,
            softirq: 0.0,
            idle,
        }
    }

    #[test]
    fn finds_longest_run() {
        // Runs under 95: [1..2] (len 1) and [4..7] (len 3).
        let rows = vec![
            row(99.0),
            row(50.0),
            row(99.0),
            row(99.0),
            row(40.0),
            row(30.0),
            row(20.0),
            row(99.0),
        ];
        let t = trim(&rows, 95.0).unwrap();
        assert_eq!((t.start, t.end), (4, 7));
        assert!((t.avg.idle - 30.0).abs() < 1e-9);
        assert!((t.avg.busy() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn run_at_the_end_counts() {
        let rows = vec![row(99.0), row(10.0), row(10.0)];
        let t = trim(&rows, 95.0).unwrap();
        assert_eq!((t.start, t.end), (1, 3));
    }

    #[test]
    fn whole_input_under_limit() {
        let rows = vec![row(10.0); 5];
        let t = trim(&rows, 95.0).unwrap();
        assert_eq!((t.start, t.end), (0, 5));
    }

    #[test]
    fn no_loaded_rows_yields_none() {
        let rows = vec![row(99.0); 3];
        assert!(trim(&rows, 95.0).is_none());
        assert!(trim(&[], 95.0).is_none());
    }

    #[test]
    fn first_of_equal_length_runs_wins() {
        let rows = vec![row(10.0), row(10.0), row(99.0), row(20.0), row(20.0)];
        let t = trim(&rows, 95.0).unwrap();
        assert_eq!((t.start, t.end), (0, 2));
    }
}
