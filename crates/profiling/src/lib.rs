//! # pcs-profiling — cpusage and trimusage
//!
//! The thesis' CPU profiling pipeline (Chapter 5): `cpusage` samples the
//! OS's CPU state tick counters every half second and reports per-state
//! percentages with min/max/average; `trimusage` post-processes the rows,
//! selecting the longest consecutive run below an idle limit — the loaded
//! measurement window — and averaging over exactly that.
//!
//! Fed by the simulator's [`pcs_oskernel::CpuSample`] stream instead of
//! `/proc/stat` / `sysctl kern.cp_time`, but otherwise the same
//! computation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpusage;
pub mod trimusage;

pub use cpusage::{summarize, usage_rows, UsageRow, UsageSummary};
pub use trimusage::{trim, TrimResult};

/// The full pipeline: simulator samples → interval rows → trimmed average
/// busy percentage. Returns the peak busy row when the machine never
/// dipped under the idle limit.
pub fn trimmed_busy_percent(samples: &[pcs_oskernel::CpuSample], idle_limit: f64) -> f64 {
    let rows = usage_rows(samples);
    match trim(&rows, idle_limit) {
        Some(t) => t.avg.busy(),
        None => rows.iter().map(|r| r.busy()).fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_des::SimTime;
    use pcs_oskernel::{CpuAccounting, CpuSample, CpuState};

    #[test]
    fn pipeline_on_synthetic_samples() {
        // 0-0.5s idle, 0.5-1.5s busy, 1.5-2s idle.
        let mut samples = Vec::new();
        let mut acct = CpuAccounting::default();
        samples.push(CpuSample {
            t: SimTime::ZERO,
            per_cpu: vec![acct],
        });
        acct.add(CpuState::Idle, 500_000_000);
        samples.push(CpuSample {
            t: SimTime::from_millis(500),
            per_cpu: vec![acct],
        });
        acct.add(CpuState::User, 500_000_000);
        samples.push(CpuSample {
            t: SimTime::from_millis(1000),
            per_cpu: vec![acct],
        });
        acct.add(CpuState::User, 450_000_000);
        acct.add(CpuState::Idle, 50_000_000);
        samples.push(CpuSample {
            t: SimTime::from_millis(1500),
            per_cpu: vec![acct],
        });
        acct.add(CpuState::Idle, 500_000_000);
        samples.push(CpuSample {
            t: SimTime::from_millis(2000),
            per_cpu: vec![acct],
        });
        let busy = trimmed_busy_percent(&samples, 95.0);
        assert!((busy - 95.0).abs() < 1.0, "busy {busy}");
    }

    #[test]
    fn all_idle_falls_back_to_peak() {
        let mut acct = CpuAccounting::default();
        let s0 = CpuSample {
            t: SimTime::ZERO,
            per_cpu: vec![acct],
        };
        acct.add(CpuState::Idle, 500_000_000);
        let s1 = CpuSample {
            t: SimTime::from_millis(500),
            per_cpu: vec![acct],
        };
        assert_eq!(trimmed_busy_percent(&[s0, s1], 95.0), 0.0);
    }
}
