//! The `cpusage` tool (thesis Chapter 5, Appendix A.3).
//!
//! cpusage reads the OS's CPU state tick counters every half second and
//! prints the percentage spent in each state, plus min/max/average rows.
//! The average can be *snapped*: recording starts only when the idle
//! percentage drops below a limit and stops when it rises above it again
//! (the `-l` option) — so the average covers the loaded window only.
//!
//! Here the tick counters come from the simulator's cumulative
//! [`CpuAccounting`] samples.

use pcs_des::stats::Accumulator;
use pcs_oskernel::{CpuAccounting, CpuSample};

/// One output row: percentages per state, summed over all CPUs, for one
/// 0.5 s interval.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageRow {
    /// Interval end, seconds.
    pub t_secs: f64,
    /// Percent user.
    pub user: f64,
    /// Percent nice.
    pub nice: f64,
    /// Percent system.
    pub system: f64,
    /// Percent iowait (Linux only; 0 on FreeBSD).
    pub iowait: f64,
    /// Percent hardware interrupt.
    pub irq: f64,
    /// Percent soft interrupt (Linux only; folded into irq on FreeBSD).
    pub softirq: f64,
    /// Percent idle.
    pub idle: f64,
}

impl UsageRow {
    /// Percent busy (everything but idle and iowait).
    pub fn busy(&self) -> f64 {
        self.user + self.nice + self.system + self.irq + self.softirq
    }

    /// Render like cpusage's machine-readable `-o` mode (colon-separated
    /// percentages).
    pub fn machine_readable(&self, freebsd: bool) -> String {
        if freebsd {
            // FreeBSD's five states: user, nice, system (incl. softirq),
            // interrupt, idle.
            format!(
                "{:.1}:{:.1}:{:.1}:{:.1}:{:.1}",
                self.user,
                self.nice,
                self.system + self.softirq,
                self.irq,
                self.idle + self.iowait
            )
        } else {
            format!(
                "{:.1}:{:.1}:{:.1}:{:.1}:{:.1}:{:.1}:{:.1}",
                self.user, self.nice, self.system, self.iowait, self.irq, self.softirq, self.idle
            )
        }
    }
}

/// Summary of a cpusage run: per-state min/max plus the (possibly
/// limit-snapped) average.
#[derive(Debug, Clone, Copy)]
pub struct UsageSummary {
    /// Minimum busy percentage over all rows.
    pub min_busy: f64,
    /// Maximum busy percentage.
    pub max_busy: f64,
    /// Average busy percentage over the recorded (snapped) window.
    pub avg_busy: f64,
    /// Rows that fell inside the snapped window.
    pub recorded_rows: usize,
}

fn diff_to_row(t_secs: f64, d: &CpuAccounting) -> UsageRow {
    let total = d.total().max(1) as f64;
    let pct = |x: u64| x as f64 * 100.0 / total;
    UsageRow {
        t_secs,
        user: pct(d.user),
        nice: pct(d.nice),
        system: pct(d.system),
        iowait: pct(d.iowait),
        irq: pct(d.irq),
        softirq: pct(d.softirq),
        idle: pct(d.idle),
    }
}

/// Turn the simulator's cumulative samples into per-interval usage rows
/// (percentages across all CPUs combined).
pub fn usage_rows(samples: &[CpuSample]) -> Vec<UsageRow> {
    let mut rows = Vec::new();
    for w in samples.windows(2) {
        let mut agg = CpuAccounting::default();
        for (a, b) in w[0].per_cpu.iter().zip(&w[1].per_cpu) {
            let d = b.since(a);
            agg.user += d.user;
            agg.nice += d.nice;
            agg.system += d.system;
            agg.iowait += d.iowait;
            agg.irq += d.irq;
            agg.softirq += d.softirq;
            agg.idle += d.idle;
        }
        rows.push(diff_to_row(w[1].t.as_secs_f64(), &agg));
    }
    rows
}

/// Run the cpusage averaging over rows with the given idle `limit` (the
/// `-l` option): recording starts when idle < limit and stops when idle
/// returns above it. `limit = 100` averages everything (the `-a` flag).
pub fn summarize(rows: &[UsageRow], limit: f64) -> UsageSummary {
    let mut acc = Accumulator::new();
    let mut min_busy = f64::INFINITY;
    let mut max_busy = f64::NEG_INFINITY;
    let mut recording = false;
    let mut recorded = 0usize;
    for r in rows {
        let busy = r.busy();
        min_busy = min_busy.min(busy);
        max_busy = max_busy.max(busy);
        if r.idle < limit {
            recording = true;
        } else if recording {
            recording = false;
        }
        if recording {
            acc.add(busy);
            recorded += 1;
        }
    }
    UsageSummary {
        min_busy: if min_busy.is_finite() { min_busy } else { 0.0 },
        max_busy: if max_busy.is_finite() { max_busy } else { 0.0 },
        avg_busy: acc.mean(),
        recorded_rows: recorded,
    }
}

/// Render the classic cpusage report: one row per half-second interval
/// plus the `Min`/`Max`/`Avg` summary rows (Appendix A.3's default,
/// human-readable output).
pub fn render_report(rows: &[UsageRow], limit: f64, freebsd: bool) -> String {
    let mut out = String::new();
    if freebsd {
        out.push_str(&format!(
            "{:>8} {:>6} {:>6} {:>6} {:>6} {:>6}\n",
            "time", "user", "nice", "system", "intr", "idle"
        ));
        for r in rows {
            out.push_str(&format!(
                "{:>8.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}\n",
                r.t_secs,
                r.user,
                r.nice,
                r.system + r.softirq,
                r.irq,
                r.idle + r.iowait
            ));
        }
    } else {
        out.push_str(&format!(
            "{:>8} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}\n",
            "time", "user", "nice", "system", "iowait", "irq", "sirq", "idle"
        ));
        for r in rows {
            out.push_str(&format!(
                "{:>8.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}\n",
                r.t_secs, r.user, r.nice, r.system, r.iowait, r.irq, r.softirq, r.idle
            ));
        }
    }
    out.push_str("---\n");
    let s = summarize(rows, limit);
    out.push_str(&format!("{:>8} {:>6.1}\n", "Min", s.min_busy));
    out.push_str(&format!("{:>8} {:>6.1}\n", "Max", s.max_busy));
    out.push_str(&format!(
        "{:>8} {:>6.1}  ({} rows under the {limit}% idle limit)\n",
        "Avg", s.avg_busy, s.recorded_rows
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_des::SimTime;
    use pcs_oskernel::CpuState;

    fn sample(t_ms: u64, busy_ns: u64, idle_ns: u64) -> CpuSample {
        let mut acct = CpuAccounting::default();
        acct.add(CpuState::User, busy_ns / 2);
        acct.add(CpuState::System, busy_ns / 2);
        acct.add(CpuState::Idle, idle_ns);
        CpuSample {
            t: SimTime::from_millis(t_ms),
            per_cpu: vec![acct],
        }
    }

    #[test]
    fn rows_are_interval_percentages() {
        // Cumulative: 0..500ms fully idle; 500..1000ms fully busy.
        let samples = vec![
            sample(0, 0, 0),
            sample(500, 0, 500_000_000),
            sample(1000, 500_000_000, 500_000_000),
        ];
        let rows = usage_rows(&samples);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].idle - 100.0).abs() < 1e-9);
        assert!((rows[1].busy() - 100.0).abs() < 1e-9);
        assert!((rows[1].user - 50.0).abs() < 1e-9);
    }

    #[test]
    fn limit_snapping_selects_loaded_window() {
        let rows = vec![
            UsageRow {
                t_secs: 0.5,
                user: 2.0,
                nice: 0.0,
                system: 1.0,
                iowait: 0.0,
                irq: 0.0,
                softirq: 0.0,
                idle: 97.0,
            },
            UsageRow {
                t_secs: 1.0,
                user: 50.0,
                nice: 0.0,
                system: 30.0,
                iowait: 0.0,
                irq: 10.0,
                softirq: 0.0,
                idle: 10.0,
            },
            UsageRow {
                t_secs: 1.5,
                user: 40.0,
                nice: 0.0,
                system: 40.0,
                iowait: 0.0,
                irq: 10.0,
                softirq: 0.0,
                idle: 10.0,
            },
            UsageRow {
                t_secs: 2.0,
                user: 1.0,
                nice: 0.0,
                system: 1.0,
                iowait: 0.0,
                irq: 0.0,
                softirq: 0.0,
                idle: 98.0,
            },
        ];
        let s = summarize(&rows, 95.0);
        assert_eq!(s.recorded_rows, 2);
        assert!((s.avg_busy - 90.0).abs() < 1e-9);
        assert!((s.max_busy - 90.0).abs() < 1e-9);
        assert!((s.min_busy - 2.0).abs() < 1e-9);
        // -a equivalent records everything.
        let all = summarize(&rows, 100.0);
        assert_eq!(all.recorded_rows, 4);
    }

    #[test]
    fn machine_readable_formats() {
        let r = UsageRow {
            t_secs: 1.0,
            user: 10.0,
            nice: 0.0,
            system: 20.0,
            iowait: 1.0,
            irq: 5.0,
            softirq: 4.0,
            idle: 60.0,
        };
        assert_eq!(r.machine_readable(false), "10.0:0.0:20.0:1.0:5.0:4.0:60.0");
        // FreeBSD folds softirq into system and iowait into idle.
        assert_eq!(r.machine_readable(true), "10.0:0.0:24.0:5.0:61.0");
    }

    #[test]
    fn report_renders_both_dialects() {
        let rows = vec![UsageRow {
            t_secs: 0.5,
            user: 10.0,
            nice: 0.0,
            system: 20.0,
            iowait: 1.0,
            irq: 5.0,
            softirq: 4.0,
            idle: 60.0,
        }];
        let linux = render_report(&rows, 95.0, false);
        assert!(linux.contains("sirq"));
        assert!(linux.contains("Avg"));
        assert!(linux.lines().count() >= 6);
        let bsd = render_report(&rows, 95.0, true);
        assert!(!bsd.contains("sirq"));
        // FreeBSD folds softirq into system: 24.0.
        assert!(bsd.contains("24.0"));
    }

    #[test]
    fn empty_input() {
        assert!(usage_rows(&[]).is_empty());
        let s = summarize(&[], 95.0);
        assert_eq!(s.avg_busy, 0.0);
        assert_eq!(s.recorded_rows, 0);
    }
}
