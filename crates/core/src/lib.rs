//! # pcs-core — the evaluation harness
//!
//! The top layer of the Schneider (2005) reproduction: run-scale presets,
//! experiment result structures, and one regeneration function per thesis
//! figure and table (the [`figures`] registry). The `experiments` CLI and
//! the Criterion benches are thin shells over this crate.
//!
//! ```no_run
//! use pcs_core::{figures, ExecConfig, Scale};
//!
//! // Run a figure's sweep across all host cores (bit-identical to serial).
//! let exec = ExecConfig::parallel();
//! let experiment = figures::fig6_3_increased_buffers(&Scale::quick(), true, &exec);
//! println!("{}", experiment.to_table());
//! println!("cells run: {}", exec.stats.cells_run());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod extensions;
pub mod figures;
pub mod scale;

pub use experiment::{Experiment, Series, SeriesPoint};
pub use figures::{all_experiments, ExperimentFn};
pub use pcs_testbed::{ExecConfig, ExecStats, PipelineConfig};
pub use scale::Scale;
