//! Run-scale presets: how many packets, repeats and rate points an
//! experiment uses.
//!
//! The thesis generates 10⁶ packets per run, repeats every point seven
//! times, and sweeps 50–950 Mbit/s. Simulated runs are deterministic, so
//! fewer repeats suffice; the presets trade fidelity against wall-clock
//! time on the host.

/// Scale parameters for an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Packets per generation run.
    pub count: u64,
    /// Repeats per measurement point.
    pub repeats: u32,
    /// Rate ladder in Mbit/s; `None` = no inter-packet gap (full speed).
    pub rates: Vec<Option<f64>>,
}

impl Scale {
    /// Smoke-test scale: small runs, a coarse ladder.
    pub fn quick() -> Scale {
        Scale {
            count: 40_000,
            repeats: 1,
            rates: ladder(200.0, 4, 250.0),
        }
    }

    /// Default scale: enough packets that buffer capacity does not mask
    /// steady-state behaviour, on a 100 Mbit/s ladder.
    pub fn standard() -> Scale {
        Scale {
            count: 300_000,
            repeats: 2,
            rates: ladder(100.0, 9, 100.0),
        }
    }

    /// Paper scale: 10⁶ packets, the thesis' 50-step ladder.
    pub fn full() -> Scale {
        Scale {
            count: 1_000_000,
            repeats: 3,
            rates: ladder(50.0, 18, 50.0),
        }
    }

    /// Parse a scale name.
    pub fn by_name(name: &str) -> Option<Scale> {
        match name {
            "quick" => Some(Scale::quick()),
            "standard" => Some(Scale::standard()),
            "full" => Some(Scale::full()),
            _ => None,
        }
    }

    /// A single-point variant of this scale (for experiments that sweep
    /// something other than the data rate and measure at full speed).
    pub fn at_full_speed(&self) -> Scale {
        Scale {
            count: self.count,
            repeats: self.repeats,
            rates: vec![None],
        }
    }
}

/// `start, start+step, …` for `n` points, then the full-speed point.
fn ladder(start: f64, n: usize, step: f64) -> Vec<Option<f64>> {
    let mut v: Vec<Option<f64>> = (0..n).map(|i| Some(start + i as f64 * step)).collect();
    v.push(None);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!(Scale::by_name("quick"), Some(Scale::quick()));
        assert_eq!(Scale::by_name("standard"), Some(Scale::standard()));
        assert_eq!(Scale::by_name("full"), Some(Scale::full()));
        assert_eq!(Scale::by_name("bogus"), None);
    }

    #[test]
    fn ladders_end_with_full_speed() {
        for s in [Scale::quick(), Scale::standard(), Scale::full()] {
            assert_eq!(*s.rates.last().unwrap(), None);
            assert!(s.rates.len() >= 3);
        }
        assert_eq!(Scale::full().rates.len(), 19);
        assert_eq!(Scale::full().rates[0], Some(50.0));
        assert_eq!(Scale::full().rates[17], Some(900.0));
    }

    #[test]
    fn full_speed_variant() {
        let s = Scale::standard().at_full_speed();
        assert_eq!(s.rates, vec![None]);
        assert_eq!(s.count, Scale::standard().count);
    }
}
