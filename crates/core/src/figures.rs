//! One function per thesis figure/table: the regeneration code.
//!
//! Each function builds the SUT set and workload the figure used, runs
//! the measurement cycle at the requested [`Scale`] on the parallel
//! sweep engine (its [`ExecConfig`] decides how many cells run
//! concurrently; results are bit-identical at any job count), and
//! returns an [`Experiment`]. The registry ([`all_experiments`]) is what
//! the `experiments` CLI and the benchmark harness enumerate.

use crate::experiment::{Experiment, Series, SeriesPoint};
use crate::scale::Scale;
use pcs_capture::MeasurementApp;
use pcs_hw::{write_benchmark, MachineSpec, OsKind};
use pcs_oskernel::{AppConfig, BufferConfig, SimConfig};
use pcs_pktgen::{mwn_counts, mwn_mean, TxModel};
use pcs_testbed::{run_sweep_exec, standard_suts, CycleConfig, ExecConfig, Sut};

/// Derive a deterministic seed from an experiment id.
fn seed_of(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn cycle_for(scale: &Scale, id: &str) -> CycleConfig {
    let mut c = CycleConfig::mwn(scale.count, seed_of(id));
    c.repeats = scale.repeats;
    c
}

fn mode_suffix(smp: bool) -> &'static str {
    if smp {
        "SMP"
    } else {
        "no SMP"
    }
}

fn suts_with(smp: bool, sim: SimConfig) -> Vec<Sut> {
    standard_suts(sim)
        .into_iter()
        .map(|mut s| {
            if !smp {
                s.spec = s.spec.single_cpu();
            }
            s
        })
        .collect()
}

/// The signature every registry entry shares.
pub type ExperimentFn = fn(&Scale, &ExecConfig) -> Experiment;

fn sweep_experiment(
    id: &str,
    thesis_ref: &str,
    title: &str,
    scale: &Scale,
    exec: &ExecConfig,
    suts: Vec<Sut>,
) -> Experiment {
    let cycle = cycle_for(scale, id);
    let points = run_sweep_exec(&suts, &cycle, &scale.rates, exec);
    Experiment::from_sweep(id, thesis_ref, title, &points)
}

// ---------------------------------------------------------------------
// Chapter 4: workload
// ---------------------------------------------------------------------

/// Fig. 4.1: the packet-size scatter of the (synthetic) 24 h trace.
pub fn fig4_1(_scale: &Scale, _exec: &ExecConfig) -> Experiment {
    let counts = mwn_counts(1_000_000_000);
    let total: u64 = counts.values().sum();
    let series = vec![Series {
        label: "number of packets per size (24h trace)".into(),
        points: counts
            .iter()
            .map(|(&s, &c)| SeriesPoint {
                x: s as f64,
                capture: c as f64,
                capture_worst: c as f64,
                capture_best: c as f64,
                cpu: 0.0,
            })
            .collect(),
    }];
    let mean = mwn_mean(&counts);
    Experiment {
        id: "fig4.1".into(),
        thesis_ref: "Figure 4.1: scatterplot of the example distribution".into(),
        title: "Packet sizes of the 24h MWN trace (synthetic reconstruction)".into(),
        xlabel: "size[bytes]".into(),
        ylabel: "packets".into(),
        series,
        notes: vec![
            format!("total packets: {total}"),
            format!("mean packet size: {mean:.1} bytes (thesis: ~645)"),
            "peaks at 40, 52 and 1500 bytes as in the thesis".into(),
        ],
    }
}

/// Fig. 4.2: the top-20 histogram with cumulative percentages.
pub fn fig4_2(_scale: &Scale, _exec: &ExecConfig) -> Experiment {
    let counts = mwn_counts(1_000_000_000);
    let total: u64 = counts.values().sum();
    let mut by_count: Vec<(u32, u64)> = counts.iter().map(|(&s, &c)| (s, c)).collect();
    by_count.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let mut cumulative = 0.0;
    let mut points = Vec::new();
    for (rank, &(size, c)) in by_count.iter().take(20).enumerate() {
        let pct = c as f64 * 100.0 / total as f64;
        cumulative += pct;
        points.push(SeriesPoint {
            x: size as f64,
            capture: pct,
            capture_worst: pct,
            capture_best: pct,
            cpu: cumulative,
        });
        let _ = rank;
    }
    let top3: f64 = points.iter().take(3).map(|p| p.capture).sum();
    let top20 = cumulative;
    Experiment {
        id: "fig4.2".into(),
        thesis_ref: "Figure 4.2: histogram of the percentages (cumulative in cpu column)".into(),
        title: "Top-20 packet sizes by share".into(),
        xlabel: "size[bytes]".into(),
        ylabel: "share[%]".into(),
        series: vec![Series {
            label: "relative frequency (cumulative in cpu col)".into(),
            points,
        }],
        notes: vec![
            format!("top-3 share: {top3:.1}% (thesis: >55%)"),
            format!("top-20 share: {top20:.1}% (thesis: >75%)"),
        ],
    }
}

/// §4.3.1: the enhanced pktgen's achievable rates per NIC and per frame
/// size, plus the distribution fidelity check.
pub fn val_pktgen(scale: &Scale, _exec: &ExecConfig) -> Experiment {
    let mut series = Vec::new();
    for (label, tx) in [
        ("Syskonnect SK-98xx", TxModel::syskonnect()),
        ("Netgear GA", TxModel::netgear()),
        ("Intel 82544", TxModel::intel()),
    ] {
        let points = [64u32, 128, 256, 512, 1024, 1500]
            .iter()
            .map(|&len| SeriesPoint {
                x: len as f64,
                capture: tx.max_rate_mbps(len),
                capture_worst: tx.max_rate_mbps(len),
                capture_best: tx.max_rate_mbps(len),
                cpu: 0.0,
            })
            .collect();
        series.push(Series {
            label: label.into(),
            points,
        });
    }
    // Distribution fidelity: generate packets and compare shares.
    let counts = mwn_counts(1_000_000);
    let dist = pcs_pktgen::TwoStageDist::from_counts(
        counts.iter().map(|(&s, &c)| (s, c)),
        &pcs_pktgen::DistConfig::default(),
    )
    .expect("non-empty");
    let mut rng = pcs_des::Pcg32::new(seed_of("val-pktgen"), 1);
    let n = scale.count.max(100_000);
    let mut c40 = 0u64;
    let mut c1500 = 0u64;
    for _ in 0..n {
        match dist.sample(&mut rng) {
            40 => c40 += 1,
            1500 => c1500 += 1,
            _ => {}
        }
    }
    let total: u64 = counts.values().sum();
    let in40 = counts[&40] as f64 / total as f64 * 100.0;
    let in1500 = counts[&1500] as f64 / total as f64 * 100.0;
    Experiment {
        id: "val-pktgen".into(),
        thesis_ref: "§4.1.3/§4.3.1: achievable generation rates and distribution fidelity".into(),
        title: "Enhanced pktgen validation".into(),
        xlabel: "frame[bytes]".into(),
        ylabel: "rate[Mbit/s]".into(),
        series,
        notes: vec![
            "thesis: ~938 (Syskonnect), ~930 (Netgear), ~890 (Intel) Mbit/s at 1500 bytes".into(),
            format!(
                "generated share of 40-byte packets: {:.2}% (input {in40:.2}%)",
                c40 as f64 / n as f64 * 100.0
            ),
            format!(
                "generated share of 1500-byte packets: {:.2}% (input {in1500:.2}%)",
                c1500 as f64 / n as f64 * 100.0
            ),
        ],
    }
}

// ---------------------------------------------------------------------
// Chapter 6: the evaluation
// ---------------------------------------------------------------------

/// Fig. 6.2 (referenced baseline): default OS buffers.
pub fn fig6_2_default_buffers(scale: &Scale, smp: bool, exec: &ExecConfig) -> Experiment {
    let sim = SimConfig {
        buffers: BufferConfig::default_buffers(),
        ..SimConfig::default()
    };
    let id = if smp { "fig6.2b" } else { "fig6.2a" };
    sweep_experiment(
        id,
        "Figure 6.2 (baseline): default buffer sizes",
        &format!("Default buffers, {}, 1 app", mode_suffix(smp)),
        scale,
        exec,
        suts_with(smp, sim),
    )
}

/// Fig. 6.3: the increased buffers (10 MB double / 128 MB).
pub fn fig6_3_increased_buffers(scale: &Scale, smp: bool, exec: &ExecConfig) -> Experiment {
    let sim = SimConfig::default();
    let id = if smp { "fig6.3b" } else { "fig6.3a" };
    sweep_experiment(
        id,
        "Figure 6.3: increased buffers (10 MB double / 128 MB)",
        &format!("Increased buffers, {}, 1 app", mode_suffix(smp)),
        scale,
        exec,
        suts_with(smp, sim),
    )
}

/// Fig. 6.4, experiments (33)/(20): capture at top speed vs buffer size.
pub fn fig6_4_buffer_sweep(scale: &Scale, smp: bool, exec: &ExecConfig) -> Experiment {
    let id = if smp { "fig6.4b" } else { "fig6.4a" };
    let cycle = cycle_for(scale, id);
    let sizes_kb: Vec<u64> = (0..12).map(|i| 128u64 << i).collect(); // 128 kB .. 256 MB
    let mut all_series: Vec<Series> = Vec::new();
    for (i, &kb) in sizes_kb.iter().enumerate() {
        let sim = SimConfig {
            buffers: BufferConfig::symmetric(kb * 1024),
            ..SimConfig::default()
        };
        let points = run_sweep_exec(&suts_with(smp, sim), &cycle, &[None], exec);
        let p = &points[0];
        for (s, sp) in p.suts.iter().enumerate() {
            if i == 0 {
                all_series.push(Series {
                    label: sp.label.clone(),
                    points: Vec::new(),
                });
            }
            all_series[s].points.push(SeriesPoint {
                x: kb as f64,
                capture: sp.capture * 100.0,
                capture_worst: sp.capture_worst * 100.0,
                capture_best: sp.capture_best * 100.0,
                cpu: sp.cpu_busy,
            });
        }
    }
    Experiment {
        id: id.into(),
        thesis_ref: format!(
            "Figure 6.4, experiment ({}): increasing buffers at the highest data rate",
            if smp { "20" } else { "33" }
        ),
        title: format!("Buffer-size sweep at full speed, {}", mode_suffix(smp)),
        xlabel: "buffer[kByte]".into(),
        ylabel: "capture[%]".into(),
        series: all_series,
        notes: vec![
            "FreeBSD gets half the size per double-buffer half (equal effective capacity)".into(),
        ],
    }
}

/// Fig. 6.6, experiments (34)/(21): the 50-instruction BPF filter.
pub fn fig6_6_filter(scale: &Scale, smp: bool, exec: &ExecConfig) -> Experiment {
    let prog = pcs_bpf::programs::fig65_program(65_535).expect("fig 6.5 filter compiles");
    let sim = SimConfig {
        apps: vec![AppConfig {
            filter: Some(prog.clone()),
            ..AppConfig::plain()
        }],
        ..SimConfig::default()
    };
    let id = if smp { "fig6.6b" } else { "fig6.6a" };
    let mut e = sweep_experiment(
        id,
        &format!(
            "Figure 6.6, experiment ({}): filter with 50 BPF instructions",
            if smp { "21" } else { "34" }
        ),
        &format!("50-instruction filter, {}, 1 app", mode_suffix(smp)),
        scale,
        exec,
        suts_with(smp, sim),
    );
    e.notes.push(format!(
        "compiled Fig. 6.5 expression: {} instructions (thesis: 50)",
        prog.len()
    ));
    e
}

/// Fig. 6.7/6.8/6.9, experiments (22)/(23)/(24): 2, 4 or 8 concurrent
/// capture applications (SMP).
pub fn fig6_789_multiapp(scale: &Scale, napps: usize, exec: &ExecConfig) -> Experiment {
    let (fig, exp) = match napps {
        2 => ("fig6.7", "22"),
        4 => ("fig6.8", "23"),
        _ => ("fig6.9", "24"),
    };
    let sim = SimConfig {
        apps: vec![AppConfig::plain(); napps],
        ..SimConfig::default()
    };
    sweep_experiment(
        fig,
        &format!(
            "Figure {}, experiment ({exp}): {napps} capturing applications",
            &fig[3..]
        ),
        &format!("{napps} apps, SMP (worst/avg/best per app in CSV)"),
        scale,
        exec,
        suts_with(true, sim),
    )
}

/// Fig. 6.10 / B.2, experiments (35)/(27): N additional packet copies.
pub fn fig6_10_memcpy(scale: &Scale, copies: u32, smp: bool, exec: &ExecConfig) -> Experiment {
    let sim = SimConfig {
        apps: vec![MeasurementApp::new().extra_copies(copies).build()],
        ..SimConfig::default()
    };
    let id = match (copies, smp) {
        (50, false) => "fig6.10a".to_string(),
        (50, true) => "fig6.10b".to_string(),
        (n, s) => format!("figB.2-memcpy{n}{}", if s { "b" } else { "a" }),
    };
    sweep_experiment(
        &id,
        &format!(
            "Figure {}: {copies} additional memcpys per packet",
            if copies == 50 { "6.10" } else { "B.2" }
        ),
        &format!("memcpy-{copies}, {}, 1 app", mode_suffix(smp)),
        scale,
        exec,
        suts_with(smp, sim),
    )
}

/// Fig. 6.11 / B.3, experiments (40)/(39): per-packet zlib compression.
pub fn fig6_11_gzip(scale: &Scale, level: u8, smp: bool, exec: &ExecConfig) -> Experiment {
    let sim = SimConfig {
        apps: vec![MeasurementApp::new().compress(level).build()],
        ..SimConfig::default()
    };
    let id = match (level, smp) {
        (3, false) => "fig6.11a".to_string(),
        (3, true) => "fig6.11b".to_string(),
        (l, s) => format!("figB.3-gzip{l}{}", if s { "b" } else { "a" }),
    };
    sweep_experiment(
        &id,
        &format!(
            "Figure {}: zlib compression level {level} per packet",
            if level == 3 { "6.11" } else { "B.3" }
        ),
        &format!("gzwrite-{level}, {}, 1 app", mode_suffix(smp)),
        scale,
        exec,
        suts_with(smp, sim),
    )
}

/// Fig. 6.12, experiment (48): piping whole packets to a gzip process.
pub fn fig6_12_pipe(scale: &Scale, exec: &ExecConfig) -> Experiment {
    let sim = SimConfig {
        apps: vec![MeasurementApp::new().pipe_to_gzip(3).build()],
        ..SimConfig::default()
    };
    sweep_experiment(
        "fig6.12",
        "Figure 6.12, experiment (48): tcpdump piping whole packets to gzip",
        "pipe to gzip -3, SMP, 1 app + gzip process",
        scale,
        exec,
        suts_with(true, sim),
    )
}

/// Fig. 6.13, experiment (00): bonnie++-style maximum write speed.
pub fn fig6_13_bonnie(_scale: &Scale, _exec: &ExecConfig) -> Experiment {
    let mut series = Vec::new();
    for (i, m) in MachineSpec::all_sniffers().iter().enumerate() {
        let r = write_benchmark(&m.disk, 2 << 30);
        series.push(Series {
            label: m.label(),
            points: vec![SeriesPoint {
                x: i as f64,
                capture: r.bytes_per_sec / 1e6,
                capture_worst: r.bytes_per_sec / 1e6,
                capture_best: r.bytes_per_sec / 1e6,
                cpu: r.cpu_utilisation * 100.0,
            }],
        });
    }
    Experiment {
        id: "fig6.13".into(),
        thesis_ref: "Figure 6.13, experiment (00): bonnie++ maximum writing speed".into(),
        title: "Sequential write speed and CPU usage per machine".into(),
        xlabel: "machine#".into(),
        ylabel: "write[MB/s]".into(),
        series,
        notes: vec![
            "line speed would need 125 MB/s (the thesis' black line) — no machine reaches it"
                .into(),
            "76-byte headers need 13.56 MB/s (the blue line) — all machines manage that".into(),
        ],
    }
}

/// Fig. 6.14, experiments (46)/(45): writing 76-byte headers to disk.
pub fn fig6_14_headers(scale: &Scale, smp: bool, exec: &ExecConfig) -> Experiment {
    let sim = SimConfig {
        apps: vec![MeasurementApp::new().write_headers(76).build()],
        ..SimConfig::default()
    };
    let id = if smp { "fig6.14b" } else { "fig6.14a" };
    sweep_experiment(
        id,
        &format!(
            "Figure 6.14, experiment ({}): write first 76 bytes of every packet to disk",
            if smp { "45" } else { "46" }
        ),
        &format!("headers to disk, {}, 1 app", mode_suffix(smp)),
        scale,
        exec,
        suts_with(smp, sim),
    )
}

/// Fig. 6.15, experiments (18)/(19): the mmap'ed libpcap on Linux.
pub fn fig6_15_mmap(scale: &Scale, smp: bool, exec: &ExecConfig) -> Experiment {
    let id = if smp { "fig6.15b" } else { "fig6.15a" };
    let cycle = cycle_for(scale, id);
    let mut suts = Vec::new();
    for spec in [MachineSpec::swan(), MachineSpec::snipe()] {
        let spec = if smp { spec } else { spec.single_cpu() };
        suts.push(Sut {
            spec,
            sim: SimConfig::default(),
        });
        suts.push(Sut {
            spec,
            sim: SimConfig {
                apps: vec![MeasurementApp::new().mmap().build()],
                ..SimConfig::default()
            },
        });
    }
    let points = run_sweep_exec(&suts, &cycle, &scale.rates, exec);
    let mut e = Experiment::from_sweep(
        id,
        &format!(
            "Figure 6.15, experiment ({}): mmap'ed libpcap under Linux",
            if smp { "19" } else { "18" }
        ),
        &format!("PACKET_MMAP patch vs stock, {}", mode_suffix(smp)),
        &points,
    );
    // Disambiguate the duplicate labels (stock vs mmap).
    for (i, s) in e.series.iter_mut().enumerate() {
        if i % 2 == 1 {
            s.label = format!("{} mmap", s.label);
        }
    }
    e
}

/// Fig. 6.16, experiment (42): Hyperthreading on the Intel machines.
pub fn fig6_16_ht(scale: &Scale, exec: &ExecConfig) -> Experiment {
    let cycle = cycle_for(scale, "fig6.16");
    let mut suts = Vec::new();
    for spec in [MachineSpec::snipe(), MachineSpec::flamingo()] {
        suts.push(Sut {
            spec,
            sim: SimConfig::default(),
        });
        suts.push(Sut {
            spec: spec.with_hyperthreading(),
            sim: SimConfig::default(),
        });
    }
    let points = run_sweep_exec(&suts, &cycle, &scale.rates, exec);
    let mut e = Experiment::from_sweep(
        "fig6.16",
        "Figure 6.16, experiment (42): Hyperthreading on the Xeons",
        "HT on/off, SMP, 1 app",
        &points,
    );
    for (i, s) in e.series.iter_mut().enumerate() {
        if i % 2 == 1 {
            s.label = format!("{} HT", s.label);
        }
    }
    e
}

/// Fig. B.1: FreeBSD 5.2.1 vs 5.4.
pub fn figb_1_freebsd_versions(scale: &Scale, exec: &ExecConfig) -> Experiment {
    let cycle = cycle_for(scale, "figB.1");
    let mut suts = Vec::new();
    for spec in [MachineSpec::moorhen(), MachineSpec::flamingo()] {
        suts.push(Sut {
            spec,
            sim: SimConfig::default(),
        });
        suts.push(Sut {
            spec: spec.with_os(OsKind::FreeBsd521),
            sim: SimConfig::default(),
        });
    }
    let points = run_sweep_exec(&suts, &cycle, &scale.rates, exec);
    Experiment::from_sweep(
        "figB.1",
        "Figure B.1: FreeBSD 5.2.1 vs 5.4",
        "OS version comparison, SMP, 1 app",
        &points,
    )
}

/// Fig. 2.4: the machine inventory table.
pub fn tbl2_4_machines(_scale: &Scale, _exec: &ExecConfig) -> Experiment {
    let series = MachineSpec::all_sniffers()
        .iter()
        .enumerate()
        .map(|(i, m)| Series {
            label: format!(
                "{} | {:?} {:.2} GHz ({} kB L2) | {:?}",
                m.name,
                m.cpu.arch,
                m.cpu.clock_hz as f64 / 1e9,
                m.cpu.l2_bytes / 1024,
                m.os
            ),
            points: vec![SeriesPoint {
                x: i as f64,
                capture: m.cpu.logical_cpus() as f64,
                capture_worst: 0.0,
                capture_best: 0.0,
                cpu: 0.0,
            }],
        })
        .collect();
    Experiment {
        id: "tbl2.4".into(),
        thesis_ref: "Figure 2.4: the diversity of the sniffers".into(),
        title: "Machine inventory".into(),
        xlabel: "machine#".into(),
        ylabel: "cpus".into(),
        series,
        notes: vec!["all: 2 GB RAM, Intel 82544EI fiber GbE, 3ware 7000 RAID".into()],
    }
}

/// The registry: every regenerable experiment by id.
///
/// Every entry takes the [`Scale`] plus the [`ExecConfig`] that decides
/// how many sweep cells run concurrently (and accumulates the
/// run/cached cell counters the CLI reports).
pub fn all_experiments() -> Vec<(&'static str, &'static str, ExperimentFn)> {
    fn f62a(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_2_default_buffers(s, false, e)
    }
    fn f62b(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_2_default_buffers(s, true, e)
    }
    fn f63a(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_3_increased_buffers(s, false, e)
    }
    fn f63b(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_3_increased_buffers(s, true, e)
    }
    fn f64a(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_4_buffer_sweep(s, false, e)
    }
    fn f64b(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_4_buffer_sweep(s, true, e)
    }
    fn f66a(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_6_filter(s, false, e)
    }
    fn f66b(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_6_filter(s, true, e)
    }
    fn f67(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_789_multiapp(s, 2, e)
    }
    fn f68(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_789_multiapp(s, 4, e)
    }
    fn f69(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_789_multiapp(s, 8, e)
    }
    fn f610a(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_10_memcpy(s, 50, false, e)
    }
    fn f610b(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_10_memcpy(s, 50, true, e)
    }
    fn fb2(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_10_memcpy(s, 25, true, e)
    }
    fn f611a(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_11_gzip(s, 3, false, e)
    }
    fn f611b(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_11_gzip(s, 3, true, e)
    }
    fn fb3(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_11_gzip(s, 9, true, e)
    }
    fn f614a(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_14_headers(s, false, e)
    }
    fn f614b(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_14_headers(s, true, e)
    }
    fn f615a(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_15_mmap(s, false, e)
    }
    fn f615b(s: &Scale, e: &ExecConfig) -> Experiment {
        fig6_15_mmap(s, true, e)
    }
    vec![
        ("tbl2.4", "machine inventory (Fig 2.4)", tbl2_4_machines),
        ("fig4.1", "packet-size scatter (Fig 4.1)", fig4_1),
        ("fig4.2", "top-20 histogram (Fig 4.2)", fig4_2),
        ("val-pktgen", "pktgen validation (§4.3.1)", val_pktgen),
        ("fig6.2a", "default buffers, single CPU (Fig 6.2)", f62a),
        ("fig6.2b", "default buffers, dual CPU (Fig 6.2)", f62b),
        ("fig6.3a", "increased buffers, single CPU (Fig 6.3a)", f63a),
        ("fig6.3b", "increased buffers, dual CPU (Fig 6.3b)", f63b),
        ("fig6.4a", "buffer sweep, single CPU (Fig 6.4a/(33))", f64a),
        ("fig6.4b", "buffer sweep, dual CPU (Fig 6.4b/(20))", f64b),
        (
            "fig6.6a",
            "50-insn filter, single CPU (Fig 6.6a/(34))",
            f66a,
        ),
        ("fig6.6b", "50-insn filter, dual CPU (Fig 6.6b/(21))", f66b),
        ("fig6.7", "2 capture apps (Fig 6.7/(22))", f67),
        ("fig6.8", "4 capture apps (Fig 6.8/(23))", f68),
        ("fig6.9", "8 capture apps (Fig 6.9/(24))", f69),
        ("fig6.10a", "memcpy-50, single CPU (Fig 6.10a/(35))", f610a),
        ("fig6.10b", "memcpy-50, dual CPU (Fig 6.10b/(27))", f610b),
        ("figB.2", "memcpy-25, dual CPU (Fig B.2)", fb2),
        (
            "fig6.11a",
            "gzip level 3, single CPU (Fig 6.11a/(40))",
            f611a,
        ),
        ("fig6.11b", "gzip level 3, dual CPU (Fig 6.11b/(39))", f611b),
        ("figB.3", "gzip level 9, dual CPU (Fig B.3)", fb3),
        (
            "fig6.12",
            "pipe to gzip, dual CPU (Fig 6.12/(48))",
            fig6_12_pipe,
        ),
        (
            "fig6.13",
            "bonnie++ write speeds (Fig 6.13/(00))",
            fig6_13_bonnie,
        ),
        (
            "fig6.14a",
            "headers to disk, single CPU (Fig 6.14a/(46))",
            f614a,
        ),
        (
            "fig6.14b",
            "headers to disk, dual CPU (Fig 6.14b/(45))",
            f614b,
        ),
        (
            "fig6.15a",
            "mmap libpcap, single CPU (Fig 6.15a/(18))",
            f615a,
        ),
        ("fig6.15b", "mmap libpcap, dual CPU (Fig 6.15b/(19))", f615b),
        ("fig6.16", "Hyperthreading (Fig 6.16/(42))", fig6_16_ht),
        (
            "figB.1",
            "FreeBSD 5.2.1 vs 5.4 (Fig B.1)",
            figb_1_freebsd_versions,
        ),
        (
            "ext-10gige",
            "future work: 10 Gigabit Ethernet (§7.2)",
            crate::extensions::ext_10gige,
        ),
        (
            "ext-split",
            "future work: distributed analysis (§7.2)",
            crate::extensions::ext_split_analysis,
        ),
        (
            "ext-burst",
            "ablation: arrival burstiness vs default buffers",
            crate::extensions::ext_burst_ablation,
        ),
        (
            "ext-polling",
            "livelock mitigation: moderation and polling (§2.2.1)",
            crate::extensions::ext_polling,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        let all = all_experiments();
        assert!(all.len() >= 29, "registry should cover every figure");
        let mut ids: Vec<&str> = all.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate experiment ids");
    }

    #[test]
    fn static_experiments_run_instantly() {
        let s = Scale::quick();
        let x = ExecConfig::serial();
        let inv = tbl2_4_machines(&s, &x);
        assert_eq!(inv.series.len(), 4);
        let f41 = fig4_1(&s, &x);
        assert!(f41.series[0].points.len() > 1000);
        let f42 = fig4_2(&s, &x);
        assert_eq!(f42.series[0].points.len(), 20);
        // The thesis' statistical properties hold.
        let top20 = f42.series[0].points.last().unwrap().cpu;
        assert!(top20 > 75.0, "top-20 cumulative {top20}");
        let bonnie = fig6_13_bonnie(&s, &x);
        assert_eq!(bonnie.series.len(), 4);
        for se in &bonnie.series {
            assert!(se.points[0].capture < 125.0, "no machine reaches line rate");
        }
    }

    #[test]
    fn pktgen_validation_hits_thesis_rates() {
        let e = val_pktgen(&Scale::quick(), &ExecConfig::serial());
        let sysk = e
            .series
            .iter()
            .find(|s| s.label.contains("Syskonnect"))
            .unwrap();
        let at_1500 = sysk.points.last().unwrap().capture;
        assert!((933.0..943.0).contains(&at_1500), "{at_1500}");
    }

    #[test]
    fn seeds_differ_by_id() {
        assert_ne!(seed_of("fig6.3a"), seed_of("fig6.3b"));
    }
}
