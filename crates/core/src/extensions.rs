//! Extension experiments beyond the thesis' evaluation: its §7.2 future
//! work, plus ablations of this reproduction's own modelling choices.

use crate::experiment::{Experiment, Series, SeriesPoint};
use crate::scale::Scale;
use pcs_capture::MeasurementApp;
use pcs_hw::{MachineSpec, PciBus, PciKind};
use pcs_oskernel::SimConfig;
use pcs_pktgen::TxModel;
use pcs_testbed::{run_sweep_exec, CycleConfig, ExecConfig, Sut};

fn seed_of(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// §7.2: "The most commonly interest would be the evaluation of
/// 10 Gigabit Ethernet … The difficulty is the further increased maximum
/// packet and data rate, requiring faster busses and disks."
///
/// The sweep drives the 2005 testbed machines at 10 GigE rates, each in
/// two variants: their stock PCI-64 bus and an upgraded PCI-X bus. The
/// shapes confirm the thesis' prediction: the bus alone caps PCI-64 at a
/// fraction of the link, and even with PCI-X every system is
/// interrupt/CPU-bound far below line rate.
pub fn ext_10gige(scale: &Scale, exec: &ExecConfig) -> Experiment {
    let mut cycle = CycleConfig::mwn(scale.count, seed_of("ext-10gige"));
    cycle.repeats = scale.repeats;
    // A 10 GigE generator NIC: same per-packet cost, ten times the wire.
    cycle.tx = TxModel {
        link_bps: 10_000_000_000,
        per_packet_ns: 600,
    };
    let mut suts = Vec::new();
    for base in [MachineSpec::moorhen(), MachineSpec::swan()] {
        suts.push(Sut {
            spec: base,
            sim: SimConfig::default(),
        });
        let mut upgraded = base;
        upgraded.pci = PciBus::new(PciKind::PciX);
        upgraded.name = if base.name == "moorhen" {
            "moorhen+pcix"
        } else {
            "swan+pcix"
        };
        suts.push(Sut {
            spec: upgraded,
            sim: SimConfig::default(),
        });
    }
    // Sweep up to 10 Gbit/s.
    let rates: Vec<Option<f64>> = vec![
        Some(500.0),
        Some(1_000.0),
        Some(2_000.0),
        Some(4_000.0),
        Some(8_000.0),
        None,
    ];
    let points = run_sweep_exec(&suts, &cycle, &rates, exec);
    let mut e = Experiment::from_sweep(
        "ext-10gige",
        "§7.2 future work: capturing on 10 Gigabit Ethernet",
        "10 GigE sweep, stock PCI-64 vs upgraded PCI-X, dual CPU",
        &points,
    );
    e.notes.push(
        "thesis prediction: 10 GigE needs faster buses and distributed analysis — \
         PCI-64 saturates at ~3.4 Gbit/s of frame data; even PCI-X machines are \
         CPU-bound far below line rate"
            .into(),
    );
    e
}

/// §7.2: "Distributing the analysis of the data might be a chance of
/// conquering the bandwidth … by using multiple threads on one machine."
///
/// Two capture applications with complementary size filters (`less 700` /
/// `greater 701`) split the stream, against one application taking
/// everything — with a heavy per-packet analysis load where splitting can
/// actually pay (both halves run on different CPUs).
pub fn ext_split_analysis(scale: &Scale, exec: &ExecConfig) -> Experiment {
    let mut cycle = CycleConfig::mwn(scale.count, seed_of("ext-split"));
    cycle.repeats = scale.repeats;
    let load = |app: MeasurementApp| app.compress(3);

    let single = SimConfig {
        apps: vec![load(MeasurementApp::new()).build()],
        ..SimConfig::default()
    };
    let split = SimConfig {
        apps: vec![
            load(MeasurementApp::new())
                .filter("less 700")
                .expect("filter compiles")
                .build(),
            load(MeasurementApp::new())
                .filter("greater 701")
                .expect("filter compiles")
                .build(),
        ],
        ..SimConfig::default()
    };
    let mut suts = Vec::new();
    for base in [MachineSpec::moorhen(), MachineSpec::swan()] {
        suts.push(Sut {
            spec: base,
            sim: single.clone(),
        });
        suts.push(Sut {
            spec: base,
            sim: split.clone(),
        });
    }
    let points = run_sweep_exec(&suts, &cycle, &scale.rates, exec);
    // For the split variant the interesting number is the *combined*
    // coverage: each app owns a disjoint half, so coverage = sum of the
    // per-app accepted fractions ≈ mean × 2.
    let mut series: Vec<Series> = Vec::new();
    if let Some(first) = points.first() {
        for s in 0..first.suts.len() {
            let is_split = s % 2 == 1;
            let label = format!(
                "{}{}",
                first.suts[s].label,
                if is_split { " split×2" } else { "" }
            );
            series.push(Series {
                label,
                points: points
                    .iter()
                    .map(|p| {
                        let factor = if is_split { 2.0 } else { 1.0 };
                        SeriesPoint {
                            x: p.achieved_mbps,
                            capture: (p.suts[s].capture * factor * 100.0).min(100.0),
                            capture_worst: p.suts[s].capture_worst * 100.0,
                            capture_best: p.suts[s].capture_best * 100.0,
                            cpu: p.suts[s].cpu_busy,
                        }
                    })
                    .collect(),
            });
        }
    }
    Experiment {
        id: "ext-split".into(),
        thesis_ref: "§7.2 future work: distributing the analysis across processors".into(),
        title: "One loaded capture app vs two apps with complementary size filters".into(),
        xlabel: "Datarate [Mbit/s]".into(),
        ylabel: "coverage[%]".into(),
        series,
        notes: vec![
            "split series shows combined coverage of both halves; the per-app filters \
             are `less 700` / `greater 701`"
                .into(),
        ],
    }
}

/// Ablation of this reproduction's burstiness model: the thesis' §2.5
/// argument says self-similar traffic defeats any finite buffer; with
/// perfectly paced arrivals (`burst = 1`) the default 110 kB Linux buffer
/// looks far healthier than it did in the lab.
pub fn ext_burst_ablation(scale: &Scale, exec: &ExecConfig) -> Experiment {
    let mut series = Vec::new();
    for burst in [1u32, 16, 64, 256] {
        let mut cycle = CycleConfig::mwn(scale.count, seed_of("ext-burst"));
        cycle.repeats = scale.repeats;
        cycle.burst = burst;
        let suts = vec![Sut {
            spec: MachineSpec::swan().single_cpu(),
            sim: SimConfig {
                buffers: pcs_oskernel::BufferConfig::default_buffers(),
                ..SimConfig::default()
            },
        }];
        let points = run_sweep_exec(&suts, &cycle, &scale.rates, exec);
        series.push(Series {
            label: format!("swan, default buffers, mean burst {burst}"),
            points: points
                .iter()
                .map(|p| SeriesPoint {
                    x: p.achieved_mbps,
                    capture: p.suts[0].capture * 100.0,
                    capture_worst: p.suts[0].capture_worst * 100.0,
                    capture_best: p.suts[0].capture_best * 100.0,
                    cpu: p.suts[0].cpu_busy,
                })
                .collect(),
        });
    }
    Experiment {
        id: "ext-burst".into(),
        thesis_ref: "ablation: arrival burstiness vs the default Linux buffer (§2.5, §6.3.1)"
            .into(),
        title: "Packet-train length vs capture rate at default buffers".into(),
        xlabel: "Datarate [Mbit/s]".into(),
        ylabel: "capture[%]".into(),
        series,
        notes: vec![
            "longer trains overflow the 110 kB rmem earlier — the mechanism behind \
             the thesis' 'for every imaginable buffer size there will be a long \
             enough burst' argument"
                .into(),
        ],
    }
}

/// §2.2.1: Mogul & Ramakrishnan's receive-livelock remedies — device
/// polling and interrupt moderation — applied to the thesis' weakest
/// system (flamingo, single CPU), where per-packet interrupts hurt most.
pub fn ext_polling(scale: &Scale, exec: &ExecConfig) -> Experiment {
    use pcs_hw::NicModel;
    let mut cycle = CycleConfig::mwn(scale.count, seed_of("ext-polling"));
    cycle.repeats = scale.repeats;
    let mut suts = Vec::new();
    for (suffix, nic) in [
        ("", NicModel::intel_82544()),
        ("+itr", NicModel::intel_82544_moderated(100)),
        ("+poll", NicModel::intel_82544_polling(150)),
    ] {
        let mut spec = MachineSpec::flamingo().single_cpu();
        spec.nic = nic;
        spec.name = match suffix {
            "+itr" => "flamingo+itr",
            "+poll" => "flamingo+poll",
            _ => "flamingo",
        };
        suts.push(Sut {
            spec,
            sim: SimConfig::default(),
        });
    }
    let points = run_sweep_exec(&suts, &cycle, &scale.rates, exec);
    let mut e = Experiment::from_sweep(
        "ext-polling",
        "§2.2.1: receive-livelock mitigation (interrupt moderation / device polling)",
        "flamingo single-CPU: per-packet interrupts vs ITR vs polling",
        &points,
    );
    e.notes.push(
        "polling bounds the interrupt entry overhead at any packet rate; the          timestamping caveat the thesis raises (§2.2.1) applies"
            .into(),
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            count: 20_000,
            repeats: 1,
            rates: vec![Some(300.0), None],
        }
    }

    #[test]
    fn ten_gige_is_bus_and_cpu_bound() {
        let e = ext_10gige(&tiny(), &ExecConfig::serial());
        assert_eq!(e.series.len(), 4);
        // At the top rate nobody comes close to line rate.
        for s in &e.series {
            let last = s.points.last().unwrap();
            assert!(last.x > 3_000.0, "sweep must reach multi-gig rates");
            assert!(
                last.capture < 60.0,
                "{} should collapse at 10G: {}",
                s.label,
                last.capture
            );
        }
        // The PCI-X variant must not be worse than stock.
        let stock = e.series[0].points.last().unwrap().capture;
        let pcix = e.series[1].points.last().unwrap().capture;
        assert!(pcix + 1.0 >= stock, "PCI-X ({pcix}) vs PCI-64 ({stock})");
    }

    #[test]
    fn split_analysis_runs_and_halves_are_disjoint() {
        let e = ext_split_analysis(&tiny(), &ExecConfig::parallel());
        assert_eq!(e.series.len(), 4);
        for s in &e.series {
            for p in &s.points {
                assert!(p.capture <= 100.0 + 1e-9);
            }
        }
    }

    #[test]
    fn polling_beats_per_packet_interrupts_under_overload() {
        let s = Scale {
            count: 80_000,
            repeats: 1,
            rates: vec![None],
        };
        let e = ext_polling(&s, &ExecConfig::serial());
        let stock = e.series[0].points.last().unwrap().capture;
        let poll = e.series[2].points.last().unwrap().capture;
        assert!(
            poll >= stock,
            "polling ({poll}) must not lose to per-packet interrupts ({stock})"
        );
    }

    #[test]
    fn burstier_arrivals_hurt_default_buffers() {
        let s = Scale {
            count: 60_000,
            repeats: 1,
            rates: vec![Some(500.0)],
        };
        let e = ext_burst_ablation(&s, &ExecConfig::serial());
        let smooth = e.series[0].points[0].capture; // burst 1
        let bursty = e.series[3].points[0].capture; // burst 256
        assert!(
            smooth > bursty,
            "paced ({smooth}) must beat bursty ({bursty}) on tiny buffers"
        );
    }
}
