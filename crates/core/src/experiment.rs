//! Experiment result structures and rendering.
//!
//! Every thesis figure regenerates as an [`Experiment`]: a set of labelled
//! [`Series`] over an x-axis (data rate, buffer size, machine, …), with
//! capture-rate and CPU-usage values per point — the same two curves the
//! thesis plots.

use pcs_testbed::PointResult;
use serde::Serialize;

/// One (x, y…) measurement of one series.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct SeriesPoint {
    /// X coordinate (e.g. achieved Mbit/s, buffer kBytes).
    pub x: f64,
    /// Mean capture rate in percent.
    pub capture: f64,
    /// Worst application's capture rate in percent (multi-app plots).
    pub capture_worst: f64,
    /// Best application's capture rate in percent.
    pub capture_best: f64,
    /// Trimmed CPU busy percentage.
    pub cpu: f64,
}

/// One plotted line.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Series {
    /// Legend label (e.g. "FreeBSD/AMD - moorhen").
    pub label: String,
    /// The points, in x order.
    pub points: Vec<SeriesPoint>,
}

/// One regenerated figure or table.
#[derive(Debug, Clone, Serialize)]
pub struct Experiment {
    /// Short id (e.g. "fig6.3a").
    pub id: String,
    /// The thesis reference (e.g. "Figure 6.3 (a), experiment (33)").
    pub thesis_ref: String,
    /// Human title.
    pub title: String,
    /// X axis label.
    pub xlabel: String,
    /// Y axis label for the first value column.
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form observations (filled by the experiment code).
    pub notes: Vec<String>,
}

impl Experiment {
    /// Append per-SUT series from sweep results; x = achieved rate.
    pub fn from_sweep(
        id: &str,
        thesis_ref: &str,
        title: &str,
        points: &[PointResult],
    ) -> Experiment {
        let mut series: Vec<Series> = Vec::new();
        if let Some(first) = points.first() {
            for s in 0..first.suts.len() {
                series.push(Series {
                    label: first.suts[s].label.clone(),
                    points: points
                        .iter()
                        .map(|p| SeriesPoint {
                            x: p.achieved_mbps,
                            capture: p.suts[s].capture * 100.0,
                            capture_worst: p.suts[s].capture_worst * 100.0,
                            capture_best: p.suts[s].capture_best * 100.0,
                            cpu: p.suts[s].cpu_busy,
                        })
                        .collect(),
                });
            }
        }
        Experiment {
            id: id.to_string(),
            thesis_ref: thesis_ref.to_string(),
            title: title.to_string(),
            xlabel: "Datarate [Mbit/s]".to_string(),
            ylabel: "capture[%]".to_string(),
            series,
            notes: Vec::new(),
        }
    }

    /// Render as an aligned text table (one row per x, one column pair
    /// per series), like the thesis' linespoints plots read as numbers.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# {} — {}\n# {}\n",
            self.id, self.title, self.thesis_ref
        ));
        out.push_str(&format!("{:>12}", self.xlabel_short()));
        for s in &self.series {
            out.push_str(&format!("  {:>22}", truncate(&s.label, 22)));
        }
        out.push('\n');
        out.push_str(&format!("{:>12}", ""));
        for _ in &self.series {
            out.push_str(&format!("  {:>13} {:>8}", self.ylabel, "cpu[%]"));
        }
        out.push('\n');
        let nrows = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for i in 0..nrows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(i).map(|p| p.x))
                .unwrap_or(0.0);
            out.push_str(&format!("{x:>12.0}"));
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) => out.push_str(&format!("  {:>13.1} {:>8.0}", p.capture, p.cpu)),
                    None => out.push_str(&format!("  {:>13} {:>8}", "-", "-")),
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("# note: {n}\n"));
        }
        out
    }

    /// Render as CSV (long format: series,x,capture,worst,best,cpu).
    /// Fields containing commas or quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::from("experiment,series,x,capture_pct,worst_pct,best_pct,cpu_pct\n");
        for s in &self.series {
            for p in &s.points {
                out.push_str(&format!(
                    "{},{},{:.1},{:.2},{:.2},{:.2},{:.1}\n",
                    field(&self.id),
                    field(&s.label),
                    p.x,
                    p.capture,
                    p.capture_worst,
                    p.capture_best,
                    p.cpu
                ));
            }
        }
        out
    }

    fn xlabel_short(&self) -> &str {
        match self.xlabel.as_str() {
            "Datarate [Mbit/s]" => "rate[Mbit/s]",
            other => other,
        }
    }

    /// The capture percentage of a labelled series at the highest x.
    pub fn final_capture(&self, label_contains: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.label.contains(label_contains))
            .and_then(|s| s.points.last())
            .map(|p| p.capture)
    }

    /// The x value where a series first drops below `threshold` percent
    /// capture (the "knee"); `None` when it never does.
    pub fn knee(&self, label_contains: &str, threshold: f64) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.label.contains(label_contains))
            .and_then(|s| s.points.iter().find(|p| p.capture < threshold))
            .map(|p| p.x)
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        return s;
    }
    // `n` may fall inside a multi-byte character; back off to a boundary.
    let mut end = n;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_testbed::SutPoint;

    fn fake_points() -> Vec<PointResult> {
        vec![
            PointResult {
                target_mbps: Some(100.0),
                achieved_mbps: 101.0,
                generated: 1000,
                suts: vec![SutPoint {
                    label: "Linux/AMD - swan".into(),
                    capture: 1.0,
                    capture_worst: 1.0,
                    capture_best: 1.0,
                    cpu_busy: 20.0,
                }],
            },
            PointResult {
                target_mbps: Some(900.0),
                achieved_mbps: 870.0,
                generated: 1000,
                suts: vec![SutPoint {
                    label: "Linux/AMD - swan".into(),
                    capture: 0.6,
                    capture_worst: 0.5,
                    capture_best: 0.7,
                    cpu_busy: 100.0,
                }],
            },
        ]
    }

    #[test]
    fn sweep_conversion() {
        let e = Experiment::from_sweep("t1", "Fig X", "test", &fake_points());
        assert_eq!(e.series.len(), 1);
        assert_eq!(e.series[0].points.len(), 2);
        assert_eq!(e.series[0].points[1].capture, 60.0);
        assert_eq!(e.final_capture("swan"), Some(60.0));
        assert_eq!(e.knee("swan", 90.0), Some(870.0));
        assert_eq!(e.knee("swan", 10.0), None);
        assert_eq!(e.final_capture("missing"), None);
    }

    #[test]
    fn table_and_csv_render() {
        let e = Experiment::from_sweep("t1", "Fig X", "test", &fake_points());
        let t = e.to_table();
        assert!(t.contains("t1"));
        assert!(t.contains("Linux/AMD - swan"));
        assert!(t.contains("100"));
        let c = e.to_csv();
        assert!(c.starts_with("experiment,series,x"));
        // Labels with commas are quoted per RFC 4180.
        let mut tricky = e.clone();
        tricky.series[0].label = "swan, default buffers".into();
        let qc = tricky.to_csv();
        assert!(qc.contains("\"swan, default buffers\""));
        assert_eq!(c.lines().count(), 3);
        assert!(c.contains("t1,Linux/AMD - swan,870.0,60.00,50.00,70.00,100.0"));
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        // ASCII: exact byte cut.
        assert_eq!(truncate("abcdef", 4), "abcd");
        assert_eq!(truncate("abc", 22), "abc");
        // Multi-byte labels must not panic mid-character: "müllerstraße"
        // has 'ü' spanning bytes 1..3 and 'ß' spanning bytes 10..12.
        assert_eq!(truncate("müllerstraße", 2), "m");
        assert_eq!(truncate("müllerstraße", 3), "mü");
        assert_eq!(truncate("ドイツ語ラベル", 5), "ド");
        // A table with a long non-ASCII series label renders fine.
        let mut e = Experiment::from_sweep("t1", "Fig X", "test", &fake_points());
        e.series[0].label = "Überlange Maschinenbezeichnung — München".into();
        let t = e.to_table();
        assert!(t.contains("Überlange"));
    }
}
