//! Hot-path benchmarks backing the CI perf-regression gate
//! (`scripts/check_perf.py` against `BENCH_HOTPATH.json`).
//!
//! The `sched_overhead` group repeats the sweep bench's headline pair on
//! the shared 40k-packet workload so the gate has both the number it
//! guards (`full-pipeline`) and a machine-speed calibration reference
//! (`event-queue-floor`: the bare pcs-des queue running the same arrival
//! chain with no stage work — it exercises none of the pooled paths, so
//! it moves only when the host or the event queue itself moves). The
//! `hotpath` group isolates what the allocation-free refactor bought:
//! the same full simulation with buffer pooling on (the default) vs
//! forced off (every hot-path buffer freshly allocated, as before the
//! refactor), plus macro-batched event admission on vs off
//! (`batch-on`/`batch-off`). All variants produce byte-identical
//! reports; only the hot-path cost differs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pcs_bench::{hotpath_stream, HOTPATH_COUNT};
use pcs_des::EventQueue;
use pcs_hw::MachineSpec;
use pcs_oskernel::{MachineSim, SimConfig};
use pcs_pktgen::{Chunk, PacketSource};
use std::sync::Arc;

/// Replays pre-generated chunks (`Arc` clones, no packet copies).
struct ReplayChunks {
    chunks: Vec<Chunk>,
    next: usize,
}

impl PacketSource for ReplayChunks {
    fn next_chunk(&mut self) -> Option<Chunk> {
        let chunk = self.chunks.get(self.next)?;
        self.next += 1;
        Some(Arc::clone(chunk))
    }
}

fn bench_sched_overhead(c: &mut Criterion) {
    let (_, packets) = hotpath_stream();
    let mut g = c.benchmark_group("sched_overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(HOTPATH_COUNT));
    g.bench_function("full-pipeline", |b| {
        b.iter(|| {
            MachineSim::new(MachineSpec::swan(), SimConfig::default())
                .run(packets.iter().map(|tp| (tp.time, tp.packet.clone())))
        })
    });
    g.bench_function("event-queue-floor", |b| {
        b.iter(|| {
            let mut queue = EventQueue::new();
            let mut it = packets.iter();
            if let Some(tp) = it.next() {
                queue.schedule(tp.time, 0u64);
            }
            let mut popped = 0u64;
            while let Some((_, seq)) = queue.pop() {
                popped += 1;
                if let Some(tp) = it.next() {
                    queue.schedule(tp.time, seq + 1);
                }
            }
            assert_eq!(popped, HOTPATH_COUNT);
            popped
        })
    });
    g.finish();
}

fn bench_pooling(c: &mut Criterion) {
    let (chunks, packets) = hotpath_stream();
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);
    g.throughput(Throughput::Elements(HOTPATH_COUNT));
    g.bench_function("pool-on", |b| {
        b.iter(|| {
            MachineSim::new(MachineSpec::swan(), SimConfig::default())
                .with_pooling(true)
                .run(packets.iter().map(|tp| (tp.time, tp.packet.clone())))
        })
    });
    g.bench_function("pool-off", |b| {
        b.iter(|| {
            MachineSim::new(MachineSpec::swan(), SimConfig::default())
                .with_pooling(false)
                .run(packets.iter().map(|tp| (tp.time, tp.packet.clone())))
        })
    });
    // The clone-free ingest path with pooling: the fastest way through
    // the simulator, for context next to the owned-injection numbers.
    g.bench_function("pool-on-shared-ref", |b| {
        b.iter(|| {
            MachineSim::new(MachineSpec::swan(), SimConfig::default()).run_source(ReplayChunks {
                chunks: chunks.clone(),
                next: 0,
            })
        })
    });
    // Full pipeline with per-stage time attribution armed (what every
    // --ledger run pays): a handful of integer adds per dispatch, so
    // this must track `pool-on` within the perf gate's tolerance.
    g.bench_function("stage-times-on", |b| {
        b.iter(|| {
            MachineSim::new(MachineSpec::swan(), SimConfig::default())
                .with_stage_times(true)
                .run(packets.iter().map(|tp| (tp.time, tp.packet.clone())))
        })
    });
    // Macro-batched admission on (the default) vs forced off (the
    // legacy per-packet engine, `PCS_NO_BATCH=1`). Byte-identical
    // reports — `batching_is_invisible` proves it — so the gap is pure
    // hot-path cost: lazy arrival admission, NIC-run coalescing and the
    // cost-model memos.
    g.bench_function("batch-on", |b| {
        b.iter(|| {
            MachineSim::new(MachineSpec::swan(), SimConfig::default())
                .with_batching(true)
                .run(packets.iter().map(|tp| (tp.time, tp.packet.clone())))
        })
    });
    g.bench_function("batch-off", |b| {
        b.iter(|| {
            MachineSim::new(MachineSpec::swan(), SimConfig::default())
                .with_batching(false)
                .run(packets.iter().map(|tp| (tp.time, tp.packet.clone())))
        })
    });
    g.finish();
}

criterion_group!(hotpath, bench_sched_overhead, bench_pooling);
criterion_main!(hotpath);
