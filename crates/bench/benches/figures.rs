//! One benchmark per thesis figure: runs the actual regeneration code at
//! a reduced scale. Besides timing the experiment paths, this is the
//! "does every figure still run end to end" canary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcs_core::{all_experiments, ExecConfig, Scale};

/// A miniature scale so a single iteration stays in the tens of
/// milliseconds.
fn bench_scale() -> Scale {
    Scale {
        count: 8_000,
        repeats: 1,
        rates: vec![Some(300.0), None],
    }
}

fn bench_figures(c: &mut Criterion) {
    let scale = bench_scale();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    for (id, _desc, run) in all_experiments() {
        g.bench_with_input(BenchmarkId::from_parameter(id), &run, |b, run| {
            b.iter(|| {
                // Clear the process-wide run cache so every iteration times
                // the real simulation, not a cache lookup.
                pcs_testbed::RunCache::global().clear();
                let e = run(&scale, &ExecConfig::serial());
                assert!(!e.series.is_empty(), "{id} produced no series");
                e
            })
        });
    }
    g.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
