//! Sweep-engine benchmarks: serial vs parallel cell scheduling, the
//! run-cache hit path, the streaming pipeline vs the materialized
//! reference, clone-free packet injection, and the content-addressed
//! stream cache.
//!
//! On a multi-core host the `jobs-N` variants should approach N× the
//! serial cell throughput (cells are independent simulations); the
//! `warm-cache` variant shows the memoized upper bound. The `pipeline`
//! group runs the same cold sweep through the chunked splitter broadcast
//! at several chunk sizes against the materialize-then-fanout baseline —
//! the streamed variants overlap generation with consumption (and bound
//! memory), which is where their advantage on multi-core hosts comes
//! from. The `injection` group isolates the machine-sim ingest path:
//! per-packet cloning (`MachineSim::run`) vs shared references into
//! pre-generated chunks (`MachineSim::run_refs`). The `sched_overhead`
//! group pins the event-scheduled pipeline's dispatch cost against the
//! bare pcs-des event-queue floor on the same arrival chain. The
//! `stream-cache` group runs the same sweep with sharing off, cold
//! (each iteration generates and publishes) and warm (every cell
//! subscribes to already published chunks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcs_bench::{hotpath_stream, HOTPATH_COUNT};
use pcs_des::EventQueue;
use pcs_hw::MachineSpec;
use pcs_oskernel::{MachineSim, SimConfig};
use pcs_pktgen::{Chunk, PacketSource, StreamCache, TimedPacket};
use pcs_testbed::{run_sweep_exec, CycleConfig, ExecConfig, PipelineConfig, RunCache, Sut};
use std::sync::Arc;

fn sweep_inputs() -> (Vec<Sut>, CycleConfig, Vec<Option<f64>>) {
    let suts = vec![
        Sut {
            spec: MachineSpec::swan(),
            sim: SimConfig::default(),
        },
        Sut {
            spec: MachineSpec::moorhen(),
            sim: SimConfig::default(),
        },
    ];
    let mut cfg = CycleConfig::mwn(6_000, 4242);
    cfg.repeats = 2;
    let rates = vec![Some(200.0), Some(500.0), Some(800.0), None];
    (suts, cfg, rates)
}

fn bench_sweep(c: &mut Criterion) {
    let (suts, cfg, rates) = sweep_inputs();
    let cells = (rates.len() * cfg.repeats as usize) as u64;
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cells));
    for jobs in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("cold", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                RunCache::global().clear();
                // Stream sharing off: "cold" means full generation work.
                let exec = ExecConfig::with_jobs(jobs)
                    .with_pipeline(PipelineConfig::streaming().with_stream_cache(0));
                let points = run_sweep_exec(&suts, &cfg, &rates, &exec);
                assert_eq!(points.len(), rates.len());
                points
            })
        });
    }
    // Warm cache: every cell is a lookup; the floor for repeat baselines.
    g.bench_function("warm-cache", |b| {
        run_sweep_exec(&suts, &cfg, &rates, &ExecConfig::serial());
        b.iter(|| run_sweep_exec(&suts, &cfg, &rates, &ExecConfig::serial()))
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let (suts, cfg, rates) = sweep_inputs();
    let cells = (rates.len() * cfg.repeats as usize) as u64;
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cells));
    // Stream sharing off throughout: every chunk size must genuinely
    // re-chunk the generator, not subscribe to published chunks.
    let variants = [
        ("materialized", PipelineConfig::materialized()),
        (
            "chunk-256",
            PipelineConfig::with_chunk(256).with_stream_cache(0),
        ),
        (
            "chunk-4096",
            PipelineConfig::with_chunk(4096).with_stream_cache(0),
        ),
        (
            "chunk-16384",
            PipelineConfig::with_chunk(16_384).with_stream_cache(0),
        ),
    ];
    for (name, pipeline) in variants {
        g.bench_with_input(BenchmarkId::new("cold", name), &pipeline, |b, &pipeline| {
            b.iter(|| {
                RunCache::global().clear();
                let exec = ExecConfig::with_jobs(2).with_pipeline(pipeline);
                let points = run_sweep_exec(&suts, &cfg, &rates, &exec);
                assert_eq!(points.len(), rates.len());
                points
            })
        });
    }
    g.finish();
}

/// A [`PacketSource`] replaying pre-generated chunks (`Arc` clones, no
/// packet copies) — isolates injection cost from generation cost.
struct ReplayChunks {
    chunks: Vec<Chunk>,
    next: usize,
}

impl PacketSource for ReplayChunks {
    fn next_chunk(&mut self) -> Option<Chunk> {
        let chunk = self.chunks.get(self.next)?;
        self.next += 1;
        Some(Arc::clone(chunk))
    }
}

fn bench_injection(c: &mut Criterion) {
    let (chunks, packets): (Vec<Chunk>, Vec<TimedPacket>) = hotpath_stream();
    let sim = || MachineSim::new(MachineSpec::swan(), SimConfig::default());
    let mut g = c.benchmark_group("injection");
    g.sample_size(10);
    g.throughput(Throughput::Elements(HOTPATH_COUNT));
    g.bench_function("cloned", |b| {
        b.iter(|| sim().run(packets.iter().map(|tp| (tp.time, tp.packet.clone()))))
    });
    g.bench_function("shared-ref", |b| {
        b.iter(|| {
            sim().run_source(ReplayChunks {
                chunks: chunks.clone(),
                next: 0,
            })
        })
    });
    g.finish();
}

fn bench_sched_overhead(c: &mut Criterion) {
    // The event-scheduled stage pipeline's dispatch cost on the
    // injection micro-bench, against the bare pcs-des event queue
    // running the same self-scheduling arrival chain with no stage
    // work. The gap between the two is everything the simulator does
    // per packet (stages + scheduler + stacks); the floor is what the
    // refactor's dispatch machinery alone costs. Numbers are pinned in
    // BENCH_SCHED.json — `full-pipeline` must stay in family with the
    // pre-refactor `injection/cloned` figure.
    const COUNT: u64 = HOTPATH_COUNT;
    let (_, packets) = hotpath_stream();
    let mut g = c.benchmark_group("sched_overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(COUNT));
    g.bench_function("full-pipeline", |b| {
        b.iter(|| {
            MachineSim::new(MachineSpec::swan(), SimConfig::default())
                .run(packets.iter().map(|tp| (tp.time, tp.packet.clone())))
        })
    });
    g.bench_function("event-queue-floor", |b| {
        b.iter(|| {
            let mut queue = EventQueue::new();
            let mut it = packets.iter();
            if let Some(tp) = it.next() {
                queue.schedule(tp.time, 0u64);
            }
            let mut popped = 0u64;
            while let Some((_, seq)) = queue.pop() {
                popped += 1;
                if let Some(tp) = it.next() {
                    queue.schedule(tp.time, seq + 1);
                }
            }
            assert_eq!(popped, COUNT);
            popped
        })
    });
    g.finish();
}

fn bench_stream_cache(c: &mut Criterion) {
    let (suts, cfg, rates) = sweep_inputs();
    let cells = (rates.len() * cfg.repeats as usize) as u64;
    let mut g = c.benchmark_group("stream-cache");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cells));
    let run = |pipeline: PipelineConfig| {
        let exec = ExecConfig::with_jobs(2).with_pipeline(pipeline);
        let points = run_sweep_exec(&suts, &cfg, &rates, &exec);
        assert_eq!(points.len(), rates.len());
        points
    };
    g.bench_function("off", |b| {
        b.iter(|| {
            RunCache::global().clear();
            run(PipelineConfig::streaming().with_stream_cache(0))
        })
    });
    // Cold: every iteration generates and publishes each stream once.
    g.bench_function("cold", |b| {
        b.iter(|| {
            RunCache::global().clear();
            StreamCache::global().clear();
            run(PipelineConfig::streaming())
        })
    });
    // Warm: streams are already published, every cell subscribes; the
    // run cache is still flushed so the cells genuinely recompute.
    g.bench_function("warm", |b| {
        RunCache::global().clear();
        run(PipelineConfig::streaming());
        b.iter(|| {
            RunCache::global().clear();
            run(PipelineConfig::streaming())
        })
    });
    g.finish();
}

criterion_group!(
    sweep,
    bench_sweep,
    bench_pipeline,
    bench_injection,
    bench_sched_overhead,
    bench_stream_cache
);
criterion_main!(sweep);
