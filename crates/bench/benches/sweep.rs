//! Sweep-engine benchmarks: serial vs parallel cell scheduling, the
//! run-cache hit path, and the streaming pipeline vs the materialized
//! reference.
//!
//! On a multi-core host the `jobs-N` variants should approach N× the
//! serial cell throughput (cells are independent simulations); the
//! `warm-cache` variant shows the memoized upper bound. The `pipeline`
//! group runs the same cold sweep through the chunked splitter broadcast
//! at several chunk sizes against the materialize-then-fanout baseline —
//! the streamed variants overlap generation with consumption (and bound
//! memory), which is where their advantage on multi-core hosts comes
//! from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcs_hw::MachineSpec;
use pcs_oskernel::SimConfig;
use pcs_testbed::{run_sweep_exec, CycleConfig, ExecConfig, PipelineConfig, RunCache, Sut};

fn sweep_inputs() -> (Vec<Sut>, CycleConfig, Vec<Option<f64>>) {
    let suts = vec![
        Sut {
            spec: MachineSpec::swan(),
            sim: SimConfig::default(),
        },
        Sut {
            spec: MachineSpec::moorhen(),
            sim: SimConfig::default(),
        },
    ];
    let mut cfg = CycleConfig::mwn(6_000, 4242);
    cfg.repeats = 2;
    let rates = vec![Some(200.0), Some(500.0), Some(800.0), None];
    (suts, cfg, rates)
}

fn bench_sweep(c: &mut Criterion) {
    let (suts, cfg, rates) = sweep_inputs();
    let cells = (rates.len() * cfg.repeats as usize) as u64;
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cells));
    for jobs in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("cold", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                RunCache::global().clear();
                let points = run_sweep_exec(&suts, &cfg, &rates, &ExecConfig::with_jobs(jobs));
                assert_eq!(points.len(), rates.len());
                points
            })
        });
    }
    // Warm cache: every cell is a lookup; the floor for repeat baselines.
    g.bench_function("warm-cache", |b| {
        run_sweep_exec(&suts, &cfg, &rates, &ExecConfig::serial());
        b.iter(|| run_sweep_exec(&suts, &cfg, &rates, &ExecConfig::serial()))
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let (suts, cfg, rates) = sweep_inputs();
    let cells = (rates.len() * cfg.repeats as usize) as u64;
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cells));
    let variants = [
        ("materialized", PipelineConfig::materialized()),
        ("chunk-256", PipelineConfig::with_chunk(256)),
        ("chunk-4096", PipelineConfig::with_chunk(4096)),
        ("chunk-16384", PipelineConfig::with_chunk(16_384)),
    ];
    for (name, pipeline) in variants {
        g.bench_with_input(BenchmarkId::new("cold", name), &pipeline, |b, &pipeline| {
            b.iter(|| {
                RunCache::global().clear();
                let exec = ExecConfig::with_jobs(2).with_pipeline(pipeline);
                let points = run_sweep_exec(&suts, &cfg, &rates, &exec);
                assert_eq!(points.len(), rates.len());
                points
            })
        });
    }
    g.finish();
}

criterion_group!(sweep, bench_sweep, bench_pipeline);
criterion_main!(sweep);
