//! Component microbenchmarks: the per-packet primitives whose costs the
//! simulation charges, measured for real.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcs_bench::sample_packet;
use pcs_bpf::{compile, opt, programs, vm};
use pcs_des::Pcg32;
use pcs_pktgen::{DistConfig, Generator, PktgenConfig, SizeSource, TwoStageDist, TxModel};
use pcs_zdeflate::{crc32, deflate, gunzip, GzWriter};
use std::hint::black_box;

fn bench_bpf(c: &mut Criterion) {
    let mut g = c.benchmark_group("bpf");
    let prog = programs::fig65_program(65_535).expect("fig 6.5 compiles");
    let pkt = sample_packet(1, 750);
    g.throughput(Throughput::Elements(1));
    g.bench_function("vm_fig65_filter", |b| {
        b.iter(|| vm::run(black_box(&prog), black_box(&pkt)).unwrap())
    });
    let accept = programs::accept_all(96);
    g.bench_function("vm_accept_all", |b| {
        b.iter(|| vm::run(black_box(&accept), black_box(&pkt)).unwrap())
    });
    let expr = programs::fig65_expression();
    g.bench_function("compile_fig65", |b| {
        b.iter(|| compile(black_box(&expr), 65_535).unwrap())
    });
    let unoptimized = {
        // Compile without the optimizer by building the naive program.
        let ast = pcs_bpf::compiler::parser::parse(&expr).unwrap().unwrap();
        pcs_bpf::compiler::gen::generate(Some(&ast), 65_535).unwrap()
    };
    g.bench_function("optimize_fig65", |b| {
        b.iter(|| opt::optimize(black_box(&unoptimized)))
    });
    g.finish();
}

fn bench_pktgen(c: &mut Criterion) {
    let mut g = c.benchmark_group("pktgen");
    let counts = pcs_pktgen::mwn_counts(1_000_000);
    let dist =
        TwoStageDist::from_counts(counts.iter().map(|(&s, &c)| (s, c)), &DistConfig::default())
            .unwrap();
    let mut rng = Pcg32::new(42, 1);
    g.throughput(Throughput::Elements(1));
    g.bench_function("dist_sample", |b| b.iter(|| dist.sample(&mut rng)));
    g.bench_function("build_mwn_dist", |b| {
        b.iter(|| {
            TwoStageDist::from_counts(counts.iter().map(|(&s, &c)| (s, c)), &DistConfig::default())
                .unwrap()
        })
    });
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("generate_1k_packets", |b| {
        b.iter(|| {
            let cfg = PktgenConfig {
                count: 1_000,
                size: SizeSource::Distribution(dist.clone()),
                ..PktgenConfig::default()
            };
            let gen = Generator::new(cfg, TxModel::syskonnect(), 7);
            gen.count()
        })
    });
    g.finish();
}

fn bench_zdeflate(c: &mut Criterion) {
    let mut g = c.benchmark_group("zdeflate");
    // A packet-like buffer: headers + semi-repetitive payload.
    let data: Vec<u8> = (0..1500u32).map(|i| ((i / 7) % 251) as u8).collect();
    g.throughput(Throughput::Bytes(data.len() as u64));
    for level in [1u8, 3, 6, 9] {
        g.bench_with_input(BenchmarkId::new("deflate_1500B", level), &level, |b, &l| {
            b.iter(|| deflate(black_box(&data), l))
        });
    }
    g.bench_function("crc32_1500B", |b| b.iter(|| crc32::crc32(black_box(&data))));
    let gz = {
        let mut w = GzWriter::new(6);
        w.write(&data.repeat(16));
        w.finish()
    };
    g.throughput(Throughput::Bytes((data.len() * 16) as u64));
    g.bench_function("gunzip_24kB", |b| {
        b.iter(|| gunzip(black_box(&gz)).unwrap())
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Elements(1));
    g.bench_function("build_udp_packet", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            sample_packet(seq, 750)
        })
    });
    let pkt = sample_packet(3, 1514);
    g.bench_function("parse_ipv4_header", |b| b.iter(|| pkt.ipv4().unwrap()));
    g.finish();
}

fn bench_machine_sim(c: &mut Criterion) {
    use pcs_hw::MachineSpec;
    use pcs_oskernel::{MachineSim, SimConfig};
    let mut g = c.benchmark_group("machine_sim");
    let counts = pcs_pktgen::mwn_counts(1_000_000);
    let dist =
        TwoStageDist::from_counts(counts.iter().map(|(&s, &c)| (s, c)), &DistConfig::default())
            .unwrap();
    let mean = pcs_pktgen::mwn_mean(&counts) + 14.0;
    let make_stream = |count: u64| -> Vec<(pcs_des::SimTime, pcs_wire::SimPacket)> {
        let cfg = PktgenConfig {
            count,
            size: SizeSource::Distribution(dist.clone()),
            ..PktgenConfig::default()
        };
        let mut gen = Generator::new(cfg, TxModel::syskonnect(), 11);
        gen.set_target_rate(500.0, mean);
        gen.set_burstiness(64);
        gen.map(|tp| (tp.time, tp.packet)).collect()
    };
    let stream = make_stream(10_000);
    g.throughput(Throughput::Elements(10_000));
    for spec in [MachineSpec::moorhen(), MachineSpec::swan()] {
        g.bench_with_input(
            BenchmarkId::new("run_10k_at_500mbit", spec.name),
            &spec,
            |b, spec| {
                b.iter(|| {
                    MachineSim::new(*spec, SimConfig::default())
                        .run(stream.iter().map(|(t, p)| (*t, p.clone())))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bpf, bench_pktgen, bench_zdeflate, bench_wire, bench_machine_sim
);
criterion_main!(benches);
