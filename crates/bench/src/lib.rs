//! # pcs-bench — benchmark harness
//!
//! Criterion benchmarks over the reproduction:
//!
//! * `benches/microbench.rs` — component throughput (BPF interpretation,
//!   filter compilation, distribution sampling, packet generation,
//!   DEFLATE, savefile writing, single-machine simulation);
//! * `benches/figures.rs` — one benchmark per thesis figure, running the
//!   actual regeneration code at a reduced scale so regressions in any
//!   experiment path show up as timing changes.
//!
//! Run with `cargo bench --workspace`.

/// A tiny helper shared by the benches: a deterministic packet for filter
/// benchmarks (the generator's canonical addressing).
pub fn sample_packet(seq: u64, frame_len: u32) -> pcs_wire::SimPacket {
    pcs_wire::SimPacket::build_udp(
        seq,
        seq * 6_000,
        frame_len,
        pcs_wire::MacAddr::ZERO.offset(seq % 3),
        pcs_wire::MacAddr::new(0, 0x0e, 0x0c, 1, 2, 3),
        std::net::Ipv4Addr::new(192, 168, 10, 100),
        std::net::Ipv4Addr::new(192, 168, 10, 12),
        9,
        9,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn sample_packet_is_ipv4() {
        let p = super::sample_packet(7, 750);
        assert!(p.ipv4().is_some());
    }
}
