//! # pcs-bench — benchmark harness
//!
//! Criterion benchmarks over the reproduction:
//!
//! * `benches/microbench.rs` — component throughput (BPF interpretation,
//!   filter compilation, distribution sampling, packet generation,
//!   DEFLATE, savefile writing, single-machine simulation);
//! * `benches/figures.rs` — one benchmark per thesis figure, running the
//!   actual regeneration code at a reduced scale so regressions in any
//!   experiment path show up as timing changes.
//!
//! Run with `cargo bench --workspace`.

/// Packet count of the shared hot-path workload ([`hotpath_stream`]).
pub const HOTPATH_COUNT: u64 = 40_000;

/// The benches' shared hot-path workload: a deterministic 40k-packet
/// SysKonnect stream (seed 4242), pre-generated into 4096-packet
/// chunks. Returns the chunks (for shared-reference injection) and the
/// flattened packet list (for owned injection and the event-queue
/// floor); both views contain the same packets in the same order.
pub fn hotpath_stream() -> (Vec<pcs_pktgen::Chunk>, Vec<pcs_pktgen::TimedPacket>) {
    use pcs_pktgen::{ChunkedGenerator, Generator, PacketSource, PktgenConfig, TxModel};
    let mut source = ChunkedGenerator::new(
        Generator::new(
            PktgenConfig {
                count: HOTPATH_COUNT,
                ..PktgenConfig::default()
            },
            TxModel::syskonnect(),
            4242,
        ),
        4096,
    );
    let mut chunks: Vec<pcs_pktgen::Chunk> = Vec::new();
    while let Some(chunk) = source.next_chunk() {
        chunks.push(chunk);
    }
    let packets = chunks.iter().flat_map(|c| c.iter().cloned()).collect();
    (chunks, packets)
}

/// A tiny helper shared by the benches: a deterministic packet for filter
/// benchmarks (the generator's canonical addressing).
pub fn sample_packet(seq: u64, frame_len: u32) -> pcs_wire::SimPacket {
    pcs_wire::SimPacket::build_udp(
        seq,
        seq * 6_000,
        frame_len,
        pcs_wire::MacAddr::ZERO.offset(seq % 3),
        pcs_wire::MacAddr::new(0, 0x0e, 0x0c, 1, 2, 3),
        std::net::Ipv4Addr::new(192, 168, 10, 100),
        std::net::Ipv4Addr::new(192, 168, 10, 12),
        9,
        9,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn sample_packet_is_ipv4() {
        let p = super::sample_packet(7, 750);
        assert!(p.ipv4().is_some());
    }

    #[test]
    fn hotpath_stream_views_agree() {
        let (chunks, packets) = super::hotpath_stream();
        assert_eq!(packets.len() as u64, super::HOTPATH_COUNT);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total as u64, super::HOTPATH_COUNT);
        let first_chunk = &chunks[0];
        assert_eq!(first_chunk[0].packet.seq, packets[0].packet.seq);
    }
}
