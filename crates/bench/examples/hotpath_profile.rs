//! Quick component-time attribution for the hot path (dev tool).

use pcs_bench::hotpath_stream;
use pcs_hw::MachineSpec;
use pcs_oskernel::{MachineSim, SimConfig};
use std::time::Instant;

fn time<R>(label: &str, mut f: impl FnMut() -> R) -> f64 {
    // One warm-up, then best-of-3.
    f();
    let mut best = f64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    println!("{label:<40} {best:>10.3} ms");
    best
}

fn main() {
    let (_, packets) = hotpath_stream();

    // PROFILE_LOOPS=N: just run the swan sim N times (for a profiler).
    if let Ok(n) = std::env::var("PROFILE_LOOPS") {
        let n: u32 = n.parse().unwrap();
        let mut sum = 0u64;
        for _ in 0..n {
            sum += MachineSim::new(MachineSpec::swan(), SimConfig::default())
                .run(packets.iter().map(|tp| (tp.time, tp.packet.clone())))
                .offered;
        }
        println!("{sum}");
        return;
    }

    time("full sim (swan, owned)", || {
        MachineSim::new(MachineSpec::swan(), SimConfig::default())
            .run(packets.iter().map(|tp| (tp.time, tp.packet.clone())))
            .offered
    });
    time("full sim (moorhen/freebsd, owned)", || {
        MachineSim::new(MachineSpec::moorhen(), SimConfig::default())
            .run(packets.iter().map(|tp| (tp.time, tp.packet.clone())))
            .offered
    });
    time("packet clone+drop only", || {
        packets
            .iter()
            .map(|tp| std::hint::black_box(tp.packet.clone()).frame_len as u64)
            .sum::<u64>()
    });
    time("exp() per packet (ema model)", || {
        let mut ema = 0.0f64;
        for tp in &packets {
            let dt = (tp.time.as_nanos() as f64).max(1.0);
            let alpha = (-dt / 2e6).exp();
            ema = ema * alpha + tp.packet.frame_len as f64 * (1.0 - alpha);
        }
        ema
    });

    // Shape of the run: batches, app chunks.
    let r = MachineSim::new(MachineSpec::swan(), SimConfig::default())
        .with_trace(pcs_trace::TraceSink::bounded(
            pcs_trace::TraceSpec::default(),
        ))
        .run(packets.iter().map(|tp| (tp.time, tp.packet.clone())));
    let t = r.trace.as_ref().unwrap();
    println!("received: {}", r.apps[0].received);
    println!("irq_fires: {}", t.metrics.counter("irq_fires"));
    if let Some(h) = t.metrics.histogram("irq_batch_packets") {
        println!("irq batches: count={} mean={:.1}", h.count(), h.mean());
    }
    println!("elapsed sim time: {} ms", r.elapsed.as_nanos() / 1_000_000);
}
