//! # pcs-bpf — the BSD Packet Filter
//!
//! A complete classic-BPF implementation for the Schneider (2005)
//! reproduction:
//!
//! * [`insn`] — the 64-bit instruction format of McCanne & Jacobson's
//!   filter machine, shared by FreeBSD's BPF devices and the Linux Socket
//!   Filter (thesis §2.1);
//! * [`vm`] — the interpreter, with kernel semantics (out-of-bounds loads
//!   reject, filters cannot trap) and executed-instruction accounting used
//!   by the simulated kernels to charge CPU time;
//! * [`validate()`](validate::validate) — the attach-time checker (`bpf_validate`);
//! * [`asm`] — assembler/disassembler in the `tcpdump -d` dialect;
//! * [`compiler`] — a pcap-filter-expression compiler with libpcap-style
//!   redundant-guard elimination, able to compile the thesis' Fig. 6.5
//!   expression to the 50 instructions the thesis reports;
//! * [`programs`] — canned programs used by the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod compiler;
pub mod insn;
pub(crate) mod lower;
pub mod opt;
pub mod programs;
pub mod validate;
pub mod vm;

pub use compiler::{compile, CompileError};
pub use insn::Insn;
pub use validate::{validate, ValidateError};
pub use vm::{run, Verdict, VmError};
