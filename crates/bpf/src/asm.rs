//! Textual assembler and disassembler for classic BPF.
//!
//! The format matches `tcpdump -d` output (the thesis inspects compiled
//! filters this way when sizing the Fig. 6.5 expression at 50
//! instructions): one instruction per line, optionally prefixed by its
//! `(NNN)` index, with *absolute* jump targets.
//!
//! ```text
//! (000) ldh      [12]
//! (001) jeq      #0x800           jt 2    jf 5
//! (002) ret      #96
//! ```

use crate::insn::{self, Insn};

/// Disassemble one instruction at `index` into the `tcpdump -d` dialect.
pub fn disasm_insn(ins: &Insn, index: usize) -> String {
    let next = index + 1;
    let body = match ins.class() {
        insn::LD => match (ins.mode(), ins.size()) {
            (insn::IMM, _) => format!("ld       #{:#x}", ins.k),
            (insn::LEN, _) => "ld       #pktlen".to_string(),
            (insn::MEM, _) => format!("ld       M[{}]", ins.k),
            (insn::ABS, insn::W) => format!("ld       [{}]", ins.k),
            (insn::ABS, insn::H) => format!("ldh      [{}]", ins.k),
            (insn::ABS, insn::B) => format!("ldb      [{}]", ins.k),
            (insn::IND, insn::W) => format!("ld       [x + {}]", ins.k),
            (insn::IND, insn::H) => format!("ldh      [x + {}]", ins.k),
            (insn::IND, insn::B) => format!("ldb      [x + {}]", ins.k),
            _ => format!("unknown {:#06x}", ins.code),
        },
        insn::LDX => match ins.mode() {
            insn::IMM => format!("ldx      #{:#x}", ins.k),
            insn::LEN => "ldx      #pktlen".to_string(),
            insn::MEM => format!("ldx      M[{}]", ins.k),
            insn::MSH => format!("ldx      4*([{}]&0xf)", ins.k),
            _ => format!("unknown {:#06x}", ins.code),
        },
        insn::ST => format!("st       M[{}]", ins.k),
        insn::STX => format!("stx      M[{}]", ins.k),
        insn::ALU => {
            let name = match ins.op() {
                insn::ADD => "add",
                insn::SUB => "sub",
                insn::MUL => "mul",
                insn::DIV => "div",
                insn::MOD => "mod",
                insn::OR => "or",
                insn::AND => "and",
                insn::XOR => "xor",
                insn::LSH => "lsh",
                insn::RSH => "rsh",
                insn::NEG => "neg",
                _ => return format!("unknown {:#06x}", ins.code),
            };
            if ins.op() == insn::NEG {
                name.to_string()
            } else if ins.src() == insn::X {
                format!("{name:<8} x")
            } else {
                format!("{name:<8} #{:#x}", ins.k)
            }
        }
        insn::JMP => {
            if ins.op() == insn::JA {
                format!("ja       {}", next + ins.k as usize)
            } else {
                let name = match ins.op() {
                    insn::JEQ => "jeq",
                    insn::JGT => "jgt",
                    insn::JGE => "jge",
                    insn::JSET => "jset",
                    _ => return format!("unknown {:#06x}", ins.code),
                };
                let operand = if ins.src() == insn::X {
                    "x".to_string()
                } else {
                    format!("#{:#x}", ins.k)
                };
                format!(
                    "{name:<8} {operand:<16} jt {}\tjf {}",
                    next + ins.jt as usize,
                    next + ins.jf as usize
                )
            }
        }
        insn::RET => {
            if ins.rval() == insn::A {
                "ret      a".to_string()
            } else {
                format!("ret      #{}", ins.k)
            }
        }
        insn::MISC => match ins.code & 0xf8 {
            insn::TAX => "tax".to_string(),
            insn::TXA => "txa".to_string(),
            _ => format!("unknown {:#06x}", ins.code),
        },
        _ => format!("unknown {:#06x}", ins.code),
    };
    format!("({index:03}) {body}")
}

/// Disassemble a whole program, one line per instruction.
pub fn disasm(prog: &[Insn]) -> String {
    prog.iter()
        .enumerate()
        .map(|(i, ins)| disasm_insn(ins, i))
        .collect::<Vec<_>>()
        .join("\n")
}

/// An error produced by [`assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn parse_number(s: &str) -> Option<u32> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_imm(s: &str) -> Option<u32> {
    parse_number(s.strip_prefix('#')?)
}

fn parse_mem(s: &str) -> Option<u32> {
    parse_number(s.strip_prefix("M[")?.strip_suffix(']')?)
}

/// `[k]` or `[x + k]`; returns (is_indexed, k).
fn parse_pkt_ref(s: &str) -> Option<(bool, u32)> {
    let inner = s.strip_prefix('[')?.strip_suffix(']')?.trim();
    if let Some(rest) = inner.strip_prefix("x") {
        let rest = rest.trim().strip_prefix('+')?.trim();
        Some((true, parse_number(rest)?))
    } else {
        Some((false, parse_number(inner)?))
    }
}

/// Assemble the `tcpdump -d` dialect back into instructions. Jump targets
/// are absolute instruction indices. Blank lines and `;` comments are
/// ignored; the `(NNN)` prefix is optional.
pub fn assemble(text: &str) -> Result<Vec<Insn>, AsmError> {
    // First pass: collect (lineno, mnemonic-and-operands) per instruction.
    let mut raw: Vec<(usize, String)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let mut s = line.trim();
        if let Some(i) = s.find(';') {
            s = s[..i].trim();
        }
        if s.is_empty() {
            continue;
        }
        // Strip "(NNN)" prefix if present.
        if s.starts_with('(') {
            match s.find(')') {
                Some(i) => s = s[i + 1..].trim(),
                None => {
                    return Err(AsmError {
                        line: lineno + 1,
                        message: "unterminated index prefix".into(),
                    })
                }
            }
        }
        raw.push((lineno + 1, s.to_string()));
    }

    let n = raw.len();
    let mut out = Vec::with_capacity(n);
    for (idx, (lineno, s)) in raw.iter().enumerate() {
        let err = |message: &str| AsmError {
            line: *lineno,
            message: message.to_string(),
        };
        let mut parts = s.split_whitespace();
        let mnemonic = parts.next().ok_or_else(|| err("empty"))?;
        let rest: Vec<&str> = parts.collect();
        let arg = rest.join(" ");

        // Resolve an absolute jump target into a relative offset.
        let rel = |target: u32, line: usize| -> Result<u8, AsmError> {
            let target = target as usize;
            // Jumps are forward-only and must land inside the program.
            if target <= idx || target > n - 1 {
                return Err(AsmError {
                    line,
                    message: format!("jump target {target} out of range"),
                });
            }
            let off = target - (idx + 1);
            u8::try_from(off).map_err(|_| AsmError {
                line,
                message: format!("jump offset {off} exceeds 255"),
            })
        };

        let ins = match mnemonic {
            "ld" | "ldh" | "ldb" => {
                let size = match mnemonic {
                    "ld" => insn::W,
                    "ldh" => insn::H,
                    _ => insn::B,
                };
                if arg == "#pktlen" {
                    Insn::stmt(insn::LD | insn::W | insn::LEN, 0)
                } else if let Some(k) = parse_imm(&arg) {
                    Insn::stmt(insn::LD | insn::W | insn::IMM, k)
                } else if let Some(k) = parse_mem(&arg) {
                    Insn::stmt(insn::LD | insn::W | insn::MEM, k)
                } else if let Some((indexed, k)) = parse_pkt_ref(&arg) {
                    let mode = if indexed { insn::IND } else { insn::ABS };
                    Insn::stmt(insn::LD | size | mode, k)
                } else {
                    return Err(err("bad ld operand"));
                }
            }
            "ldx" => {
                if arg == "#pktlen" {
                    Insn::stmt(insn::LDX | insn::W | insn::LEN, 0)
                } else if let Some(k) = parse_imm(&arg) {
                    Insn::stmt(insn::LDX | insn::W | insn::IMM, k)
                } else if let Some(k) = parse_mem(&arg) {
                    Insn::stmt(insn::LDX | insn::W | insn::MEM, k)
                } else if let Some(k) = arg
                    .strip_prefix("4*([")
                    .and_then(|r| r.strip_suffix("]&0xf)"))
                    .and_then(parse_number)
                {
                    Insn::stmt(insn::LDX | insn::B | insn::MSH, k)
                } else {
                    return Err(err("bad ldx operand"));
                }
            }
            "st" => Insn::stmt(insn::ST, parse_mem(&arg).ok_or_else(|| err("bad st"))?),
            "stx" => Insn::stmt(insn::STX, parse_mem(&arg).ok_or_else(|| err("bad stx"))?),
            "add" | "sub" | "mul" | "div" | "mod" | "or" | "and" | "xor" | "lsh" | "rsh" => {
                let op = match mnemonic {
                    "add" => insn::ADD,
                    "sub" => insn::SUB,
                    "mul" => insn::MUL,
                    "div" => insn::DIV,
                    "mod" => insn::MOD,
                    "or" => insn::OR,
                    "and" => insn::AND,
                    "xor" => insn::XOR,
                    "lsh" => insn::LSH,
                    _ => insn::RSH,
                };
                if arg == "x" {
                    Insn::stmt(insn::ALU | op | insn::X, 0)
                } else if let Some(k) = parse_imm(&arg) {
                    Insn::stmt(insn::ALU | op | insn::K, k)
                } else {
                    return Err(err("bad alu operand"));
                }
            }
            "neg" => Insn::stmt(insn::ALU | insn::NEG, 0),
            "ja" => {
                let target = parse_number(&arg).ok_or_else(|| err("bad ja target"))?;
                let target_usize = target as usize;
                if target_usize <= idx || target_usize > n - 1 {
                    return Err(err(&format!("jump target {target} out of range")));
                }
                Insn::stmt(insn::JMP | insn::JA, (target_usize - (idx + 1)) as u32)
            }
            "jeq" | "jgt" | "jge" | "jset" => {
                let op = match mnemonic {
                    "jeq" => insn::JEQ,
                    "jgt" => insn::JGT,
                    "jge" => insn::JGE,
                    _ => insn::JSET,
                };
                // operand, then "jt N jf M"
                let tokens: Vec<&str> = rest.clone();
                if tokens.len() != 5 || tokens[1] != "jt" || tokens[3] != "jf" {
                    return Err(err("expected: <operand> jt N jf M"));
                }
                let (src, k) = if tokens[0] == "x" {
                    (insn::X, 0)
                } else {
                    (
                        insn::K,
                        parse_imm(tokens[0]).ok_or_else(|| err("bad jump operand"))?,
                    )
                };
                let jt_abs = parse_number(tokens[2]).ok_or_else(|| err("bad jt"))?;
                let jf_abs = parse_number(tokens[4]).ok_or_else(|| err("bad jf"))?;
                let jt = rel(jt_abs, *lineno)?;
                let jf = rel(jf_abs, *lineno)?;
                Insn::jump(insn::JMP | op | src, k, jt, jf)
            }
            "ret" => {
                if arg == "a" {
                    Insn::stmt(insn::RET | insn::A, 0)
                } else if let Some(k) = parse_imm(&arg) {
                    Insn::stmt(insn::RET | insn::K, k)
                } else {
                    return Err(err("bad ret operand"));
                }
            }
            "tax" => Insn::stmt(insn::MISC | insn::TAX, 0),
            "txa" => Insn::stmt(insn::MISC | insn::TXA, 0),
            other => return Err(err(&format!("unknown mnemonic '{other}'"))),
        };
        out.push(ins);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::ops::*;

    fn sample_program() -> Vec<Insn> {
        vec![
            ld_abs_h(12),
            jeq_k(0x800, 0, 6),
            ld_abs_b(23),
            jeq_k(17, 0, 4),
            ldx_msh(14),
            ld_ind_h(16),
            jset_k(0x1fff, 1, 0),
            ret_k(96),
            ret_k(0),
        ]
    }

    #[test]
    fn disasm_asm_roundtrip() {
        let prog = sample_program();
        let text = disasm(&prog);
        let back = assemble(&text).expect("assemble");
        assert_eq!(back, prog);
    }

    #[test]
    fn disasm_format_matches_tcpdump_dialect() {
        let text = disasm(&sample_program());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "(000) ldh      [12]");
        assert!(lines[1].starts_with("(001) jeq      #0x800"));
        assert!(lines[1].contains("jt 2"));
        assert!(lines[1].contains("jf 8"));
        assert_eq!(lines[7], "(007) ret      #96");
    }

    #[test]
    fn assemble_without_index_prefix_and_with_comments() {
        let text = "
            ; accept IPv4 only
            ldh [12]
            jeq #0x800 jt 2 jf 3
            ret #65535
            ret #0
        ";
        let prog = assemble(text).unwrap();
        assert_eq!(prog.len(), 4);
        assert_eq!(prog[0], ld_abs_h(12));
        assert_eq!(prog[1], jeq_k(0x800, 0, 1));
    }

    #[test]
    fn assemble_rejects_backward_jumps() {
        let text = "
            ldh [12]
            jeq #0x800 jt 0 jf 2
            ret #0
        ";
        assert!(assemble(text).is_err());
    }

    #[test]
    fn assemble_rejects_unknown_mnemonic() {
        let e = assemble("frobnicate #1").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));
    }

    #[test]
    fn assemble_all_alu_and_misc() {
        let text = "
            ld #10
            add #2
            sub #1
            mul x
            div #2
            and #0xff
            or #0x10
            xor #0x3
            lsh #1
            rsh #1
            neg
            tax
            txa
            st M[2]
            ldx M[2]
            stx M[3]
            ld #pktlen
            ldx #pktlen
            ret a
        ";
        let prog = assemble(text).unwrap();
        assert_eq!(prog.len(), 19);
        let round = assemble(&disasm(&prog)).unwrap();
        assert_eq!(round, prog);
    }

    #[test]
    fn roundtrip_of_indexed_and_msh_loads() {
        let prog = vec![ldx_msh(14), ld_ind_w(2), ld_ind_b(0), ret_a()];
        assert_eq!(assemble(&disasm(&prog)).unwrap(), prog);
    }
}
