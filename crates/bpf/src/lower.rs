//! Shared lowering machinery: the label-based pre-resolution instruction
//! stream ([`Ir`]) and its resolution into the 8-bit relative-offset
//! instruction format, inserting `ja` trampolines where conditional targets
//! are out of reach. Used by both the code generator and the optimizer.

use crate::insn::{self, Insn};

/// A symbolic label.
pub(crate) type Label = u32;

/// Pre-resolution instruction stream element.
#[derive(Debug, Clone)]
pub(crate) enum Ir {
    /// A non-jump instruction.
    Stmt(Insn),
    /// A conditional jump with symbolic targets.
    Cond {
        /// Full opcode (class JMP, op, src).
        code: u16,
        /// Constant operand.
        k: u32,
        /// True target.
        jt: Label,
        /// False target.
        jf: Label,
    },
    /// An unconditional jump with a symbolic target.
    Goto(Label),
    /// A label definition (occupies no space).
    Mark(Label),
}

/// Resolve symbolic labels to relative offsets, dropping `Goto`s to the
/// immediately following instruction and inserting `ja` trampolines for
/// conditional jumps whose targets exceed the 255-instruction reach of the
/// 8-bit offset fields.
pub(crate) fn resolve(mut ir: Vec<Ir>, mut next_label: Label) -> Vec<Insn> {
    loop {
        // Pass 0: drop no-op gotos (a Goto whose target is the next
        // emitted instruction). Done iteratively inside the loop because
        // trampoline insertion can create new ones.
        let (addr_of, label_addr, total) = layout(&ir, next_label);
        let mut removed = false;
        let mut i = 0;
        ir.retain(|item| {
            let keep = match item {
                Ir::Goto(l) => {
                    let here = addr_of[i];
                    label_addr[*l as usize].min(total) != here + 1
                }
                _ => true,
            };
            i += 1;
            if !keep {
                removed = true;
            }
            keep
        });
        if removed {
            continue;
        }

        let (addr_of, label_addr, total) = layout(&ir, next_label);
        let resolve_label = |l: Label| -> usize { label_addr[l as usize].min(total) };

        // Pass 1: find the first conditional jump that does not fit.
        let mut violation: Option<usize> = None;
        for (i, item) in ir.iter().enumerate() {
            if let Ir::Cond { jt, jf, .. } = item {
                let here = addr_of[i];
                let dt = resolve_label(*jt).saturating_sub(here + 1);
                let df = resolve_label(*jf).saturating_sub(here + 1);
                if dt > u8::MAX as usize || df > u8::MAX as usize {
                    violation = Some(i);
                    break;
                }
            }
        }

        if let Some(i) = violation {
            // Rewrite: jump to local stubs that long-jump onward.
            let (jt_old, jf_old) = match &ir[i] {
                Ir::Cond { jt, jf, .. } => (*jt, *jf),
                _ => unreachable!(),
            };
            let stub_t = next_label;
            let stub_f = next_label + 1;
            next_label += 2;
            if let Ir::Cond { jt, jf, .. } = &mut ir[i] {
                *jt = stub_t;
                *jf = stub_f;
            }
            ir.splice(
                i + 1..i + 1,
                [
                    Ir::Mark(stub_t),
                    Ir::Goto(jt_old),
                    Ir::Mark(stub_f),
                    Ir::Goto(jf_old),
                ],
            );
            continue;
        }

        // Pass 2: materialize.
        let mut out = Vec::with_capacity(total);
        for (i, item) in ir.iter().enumerate() {
            let here = addr_of[i];
            match item {
                Ir::Mark(_) => {}
                Ir::Stmt(insn) => out.push(*insn),
                Ir::Goto(l) => {
                    let target = resolve_label(*l);
                    out.push(Insn::stmt(
                        insn::JMP | insn::JA,
                        (target - (here + 1)) as u32,
                    ));
                }
                Ir::Cond { code, k, jt, jf } => {
                    let dt = (resolve_label(*jt) - (here + 1)) as u8;
                    let df = (resolve_label(*jf) - (here + 1)) as u8;
                    out.push(Insn::new(*code, dt, df, *k));
                }
            }
        }
        return out;
    }
}

/// Compute per-item addresses and label positions.
fn layout(ir: &[Ir], label_count: Label) -> (Vec<usize>, Vec<usize>, usize) {
    let mut addr_of = vec![0usize; ir.len()];
    let mut label_addr = vec![usize::MAX; label_count as usize];
    let mut pc = 0usize;
    for (i, item) in ir.iter().enumerate() {
        addr_of[i] = pc;
        match item {
            Ir::Mark(l) => label_addr[*l as usize] = pc,
            _ => pc += 1,
        }
    }
    (addr_of, label_addr, pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::ops::*;

    #[test]
    fn goto_to_next_instruction_is_dropped() {
        let ir = vec![
            Ir::Stmt(ld_imm(1)),
            Ir::Goto(0),
            Ir::Mark(0),
            Ir::Stmt(ret_k(0)),
        ];
        let prog = resolve(ir, 1);
        assert_eq!(prog, vec![ld_imm(1), ret_k(0)]);
    }

    #[test]
    fn cond_offsets_resolve() {
        let ir = vec![
            Ir::Cond {
                code: insn::JMP | insn::JEQ | insn::K,
                k: 5,
                jt: 0,
                jf: 1,
            },
            Ir::Stmt(ld_imm(9)),
            Ir::Mark(0),
            Ir::Stmt(ret_k(1)),
            Ir::Mark(1),
            Ir::Stmt(ret_k(0)),
        ];
        let prog = resolve(ir, 2);
        assert_eq!(prog[0], jeq_k(5, 1, 2));
    }

    #[test]
    fn long_conditional_gets_trampoline() {
        // A conditional jump over 300 instructions must be rewritten via
        // ja stubs and still validate + behave.
        let mut ir = vec![Ir::Cond {
            code: insn::JMP | insn::JEQ | insn::K,
            k: 0,
            jt: 0,
            jf: 1,
        }];
        for _ in 0..300 {
            ir.push(Ir::Stmt(ld_imm(7)));
        }
        ir.push(Ir::Mark(0));
        ir.push(Ir::Stmt(ret_k(1)));
        ir.push(Ir::Mark(1));
        ir.push(Ir::Stmt(ret_k(0)));
        let prog = resolve(ir, 2);
        crate::validate::validate(&prog).expect("trampolined program validates");
        // Execute: A starts 0, so jeq #0 is true -> accept.
        let pkt: &[u8] = &[0u8; 4];
        let v = crate::vm::run(&prog, &pkt).unwrap();
        assert!(v.accepted());
    }
}
