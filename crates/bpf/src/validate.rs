//! Program validation, mirroring the kernel's `bpf_validate()` /
//! `sk_chk_filter()`: both FreeBSD and Linux refuse to attach a filter that
//! could loop, fall off the end, or touch invalid scratch memory. Programs
//! that pass this check can always be executed by [`crate::vm::run`]
//! without a [`crate::vm::VmError`].

use crate::insn::{self, Insn};

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// Empty program.
    Empty,
    /// Longer than [`insn::MAXINSNS`].
    TooLong(usize),
    /// The final instruction is not a return (so execution could fall off
    /// the end).
    NoTrailingRet,
    /// Unknown or malformed opcode at the given index.
    BadInstruction(usize),
    /// A jump at the given index lands outside the program.
    JumpOutOfRange(usize),
    /// A scratch-memory access at the given index uses a bad slot.
    BadMemSlot(usize),
    /// Constant division by zero at the given index.
    DivisionByZero(usize),
}

impl core::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ValidateError::Empty => write!(f, "empty program"),
            ValidateError::TooLong(n) => write!(f, "program too long: {n} instructions"),
            ValidateError::NoTrailingRet => write!(f, "last instruction must be a return"),
            ValidateError::BadInstruction(i) => write!(f, "bad instruction at index {i}"),
            ValidateError::JumpOutOfRange(i) => write!(f, "jump out of range at index {i}"),
            ValidateError::BadMemSlot(i) => write!(f, "bad scratch slot at index {i}"),
            ValidateError::DivisionByZero(i) => write!(f, "constant division by zero at {i}"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validate a program. Since classic BPF jumps are strictly forward,
/// a validated program is loop-free by construction.
pub fn validate(prog: &[Insn]) -> Result<(), ValidateError> {
    if prog.is_empty() {
        return Err(ValidateError::Empty);
    }
    if prog.len() > insn::MAXINSNS {
        return Err(ValidateError::TooLong(prog.len()));
    }
    for (i, ins) in prog.iter().enumerate() {
        match ins.class() {
            insn::LD | insn::LDX => {
                let mode = ins.mode();
                let ok_mode = match ins.class() {
                    insn::LD => matches!(
                        mode,
                        insn::IMM | insn::ABS | insn::IND | insn::MEM | insn::LEN
                    ),
                    _ => matches!(mode, insn::IMM | insn::MEM | insn::LEN | insn::MSH),
                };
                if !ok_mode {
                    return Err(ValidateError::BadInstruction(i));
                }
                if !matches!(ins.size(), insn::W | insn::H | insn::B) {
                    return Err(ValidateError::BadInstruction(i));
                }
                // Word-sized is required for non-packet loads.
                if matches!(mode, insn::IMM | insn::MEM | insn::LEN) && ins.size() != insn::W {
                    return Err(ValidateError::BadInstruction(i));
                }
                if mode == insn::MSH && ins.size() != insn::B {
                    return Err(ValidateError::BadInstruction(i));
                }
                if mode == insn::MEM && ins.k as usize >= insn::MEMWORDS {
                    return Err(ValidateError::BadMemSlot(i));
                }
            }
            insn::ST | insn::STX => {
                if ins.k as usize >= insn::MEMWORDS {
                    return Err(ValidateError::BadMemSlot(i));
                }
            }
            insn::ALU => {
                match ins.op() {
                    insn::ADD
                    | insn::SUB
                    | insn::MUL
                    | insn::OR
                    | insn::AND
                    | insn::XOR
                    | insn::LSH
                    | insn::RSH
                    | insn::NEG => {}
                    insn::DIV | insn::MOD => {
                        if ins.src() == insn::K && ins.k == 0 {
                            return Err(ValidateError::DivisionByZero(i));
                        }
                    }
                    _ => return Err(ValidateError::BadInstruction(i)),
                }
                if !matches!(ins.src(), insn::K | insn::X) {
                    return Err(ValidateError::BadInstruction(i));
                }
            }
            insn::JMP => {
                if ins.op() == insn::JA {
                    let target = i as u64 + 1 + ins.k as u64;
                    if target >= prog.len() as u64 {
                        return Err(ValidateError::JumpOutOfRange(i));
                    }
                } else {
                    if !matches!(ins.op(), insn::JEQ | insn::JGT | insn::JGE | insn::JSET) {
                        return Err(ValidateError::BadInstruction(i));
                    }
                    let t = i + 1 + ins.jt as usize;
                    let f = i + 1 + ins.jf as usize;
                    if t >= prog.len() || f >= prog.len() {
                        return Err(ValidateError::JumpOutOfRange(i));
                    }
                }
            }
            insn::RET => {
                if !matches!(ins.rval(), insn::K | insn::A) {
                    return Err(ValidateError::BadInstruction(i));
                }
            }
            insn::MISC => {
                let op = ins.code & 0xf8;
                if op != insn::TAX && op != insn::TXA {
                    return Err(ValidateError::BadInstruction(i));
                }
            }
            _ => return Err(ValidateError::BadInstruction(i)),
        }
    }
    let last = prog[prog.len() - 1];
    if last.class() != insn::RET {
        return Err(ValidateError::NoTrailingRet);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::ops::*;
    use crate::insn::{DIV, JMP, LD};

    #[test]
    fn accepts_simple_program() {
        let prog = [ld_abs_h(12), jeq_k(0x800, 0, 1), ret_k(96), ret_k(0)];
        assert_eq!(validate(&prog), Ok(()));
    }

    #[test]
    fn rejects_empty_and_too_long() {
        assert_eq!(validate(&[]), Err(ValidateError::Empty));
        let long = vec![ret_k(0); insn::MAXINSNS + 1];
        assert!(matches!(validate(&long), Err(ValidateError::TooLong(_))));
    }

    #[test]
    fn rejects_missing_ret() {
        assert_eq!(validate(&[ld_imm(1)]), Err(ValidateError::NoTrailingRet));
    }

    #[test]
    fn rejects_jump_past_end() {
        let prog = [jeq_k(1, 0, 5), ret_k(0)];
        assert_eq!(validate(&prog), Err(ValidateError::JumpOutOfRange(0)));
        let prog = [ja(5), ret_k(0)];
        assert_eq!(validate(&prog), Err(ValidateError::JumpOutOfRange(0)));
    }

    #[test]
    fn rejects_bad_mem_slots() {
        assert_eq!(
            validate(&[st(16), ret_k(0)]),
            Err(ValidateError::BadMemSlot(0))
        );
        assert_eq!(
            validate(&[ld_mem(31), ret_k(0)]),
            Err(ValidateError::BadMemSlot(0))
        );
    }

    #[test]
    fn rejects_constant_division_by_zero() {
        assert_eq!(
            validate(&[ld_imm(1), alu_k(DIV, 0), ret_a()]),
            Err(ValidateError::DivisionByZero(1))
        );
        // Division by X is allowed (checked at run time).
        assert_eq!(validate(&[ld_imm(1), alu_x(DIV), ret_a()]), Ok(()));
    }

    #[test]
    fn rejects_unknown_opcodes() {
        // LD with an invalid mode.
        let bad = Insn::stmt(LD | 0xc0, 0);
        assert_eq!(
            validate(&[bad, ret_k(0)]),
            Err(ValidateError::BadInstruction(0))
        );
        // JMP with invalid op bits.
        let bad = Insn::stmt(JMP | 0x70, 0);
        assert_eq!(
            validate(&[bad, ret_k(0)]),
            Err(ValidateError::BadInstruction(0))
        );
    }

    #[test]
    fn validated_programs_never_trap() {
        // Run the canonical filter over packets of many lengths: validation
        // must guarantee VM success (reject is fine, error is not).
        let prog = [
            ld_abs_h(12),
            jeq_k(0x800, 0, 3),
            ldx_msh(14),
            ld_ind_w(14),
            ret_a(),
            ret_k(0),
        ];
        validate(&prog).unwrap();
        for len in 0..64usize {
            let data = vec![0xabu8; len];
            assert!(crate::vm::run(&prog, &data.as_slice()).is_ok(), "len {len}");
        }
    }
}
