//! A BPF program optimizer in the spirit of libpcap's `opt.c`.
//!
//! The code generator's output contains one header guard per primitive
//! (`ldh [12]; jeq #0x800, ...` before every `ip src` test, etc.). tcpdump's
//! optimizer removes this redundancy by *edge threading*: it follows each
//! branch edge forward through the control-flow graph, partially evaluating
//! conditionals whose outcome is implied by the facts accumulated along the
//! path, and retargets the edge as far forward as correctness allows. The
//! thesis' Fig. 6.5 filter relies on exactly this: its 38 `not ip src/dst`
//! terms compile to a 50-instruction program only because each term's
//! EtherType guard and address reload are threaded away.
//!
//! Classic BPF programs are DAGs (all jumps are forward), which makes the
//! dataflow analysis a single in-order pass per round:
//!
//! 1. compute, for every edge, the accumulator contents and the value
//!    knowledge (`==k`, `≠k`, interval bounds) established along all paths;
//! 2. for every conditional edge, walk forward from its target, skipping
//!    loads whose value is already in A and conditionals decided by the
//!    edge's knowledge, and retarget the edge to the furthest safe landing
//!    point;
//! 3. drop unreachable instructions and re-resolve offsets;
//! 4. repeat until a fixpoint (each round only moves edges forward, so this
//!    terminates).

use crate::insn::{self, Insn};
use crate::lower::{resolve, Ir, Label};
use std::collections::BTreeMap;

/// Optimize a (validated) program. The result is semantically equivalent:
/// it returns the same verdict for every packet.
pub fn optimize(prog: &[Insn]) -> Vec<Insn> {
    let mut g = match Graph::build(prog) {
        Some(g) => g,
        None => return prog.to_vec(),
    };
    // Each round moves at least one edge strictly forward, so the loop is
    // bounded; the explicit cap is a safety net.
    for _ in 0..64 {
        if !g.thread_round() {
            break;
        }
    }
    g.emit()
}

/// Values the analysis can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum AVal {
    /// Absolute packet load (`size` is the opcode size bits).
    Abs { size: u16, off: u32 },
    /// The packet length.
    PktLen,
    /// A constant.
    Const(u32),
}

/// What is known about one value along a path.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Knowledge {
    lo: u32,
    hi: u32,
    /// Values the quantity is known not to equal (sorted, deduped).
    ne: Vec<u32>,
}

impl Knowledge {
    fn any() -> Self {
        Knowledge {
            lo: 0,
            hi: u32::MAX,
            ne: Vec::new(),
        }
    }

    fn exactly(v: u32) -> Self {
        Knowledge {
            lo: v,
            hi: v,
            ne: Vec::new(),
        }
    }

    fn is_vacuous(&self) -> bool {
        self.lo == 0 && self.hi == u32::MAX && self.ne.is_empty()
    }

    fn add_ne(&mut self, v: u32) {
        if let Err(i) = self.ne.binary_search(&v) {
            self.ne.insert(i, v);
        }
        // Keep the set small; knowledge loss is always sound.
        if self.ne.len() > 64 {
            self.ne.truncate(64);
        }
    }

    /// Join of knowledge from two paths (union of possible values —
    /// i.e. intersection of what is *known*).
    fn merge(&mut self, other: &Knowledge) {
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        self.ne.retain(|v| other.ne.contains(v));
    }

    /// Decide a conditional test, if possible.
    fn decide(&self, op: u16, k: u32) -> Option<bool> {
        match op {
            insn::JEQ => {
                if self.lo == self.hi {
                    Some(self.lo == k)
                } else if k < self.lo || k > self.hi || self.ne.binary_search(&k).is_ok() {
                    Some(false)
                } else {
                    None
                }
            }
            insn::JGT => {
                if self.lo > k {
                    Some(true)
                } else if self.hi <= k {
                    Some(false)
                } else {
                    None
                }
            }
            insn::JGE => {
                if self.lo >= k {
                    Some(true)
                } else if self.hi < k {
                    Some(false)
                } else {
                    None
                }
            }
            insn::JSET => {
                if self.lo == self.hi {
                    Some(self.lo & k != 0)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Narrow per the outcome of a test.
    fn apply(&mut self, op: u16, k: u32, taken: bool) {
        match (op, taken) {
            (insn::JEQ, true) => {
                self.lo = k;
                self.hi = k;
                self.ne.clear();
            }
            (insn::JEQ, false) => self.add_ne(k),
            (insn::JGT, true) => self.lo = self.lo.max(k.saturating_add(1)),
            (insn::JGT, false) => self.hi = self.hi.min(k),
            (insn::JGE, true) => self.lo = self.lo.max(k),
            (insn::JGE, false) => self.hi = self.hi.min(k.saturating_sub(1)),
            _ => {}
        }
        if self.lo > self.hi {
            // Contradictory path (dead); leave as-is, it can't execute.
            self.hi = self.lo;
        }
    }
}

/// Abstract state at a point: accumulator contents, value knowledge, and
/// the set of absolute packet loads that have executed on **every** path
/// here (their out-of-bounds check has already fired, so re-executing or
/// skipping them cannot change the verdict).
#[derive(Debug, Clone, Default, PartialEq)]
struct State {
    a: Option<AVal>,
    know: BTreeMap<AVal, Knowledge>,
    loaded: std::collections::BTreeSet<AVal>,
}

impl State {
    fn knowledge_of(&self, v: AVal) -> Knowledge {
        if let AVal::Const(k) = v {
            return Knowledge::exactly(k);
        }
        self.know.get(&v).cloned().unwrap_or_else(Knowledge::any)
    }

    fn set_knowledge(&mut self, v: AVal, k: Knowledge) {
        if matches!(v, AVal::Const(_)) {
            return;
        }
        if k.is_vacuous() {
            self.know.remove(&v);
        } else {
            self.know.insert(v, k);
        }
    }

    /// Join with a state arriving on another path.
    fn merge(&mut self, other: &State) {
        if self.a != other.a {
            self.a = None;
        }
        self.loaded = self.loaded.intersection(&other.loaded).copied().collect();
        let keys: Vec<AVal> = self.know.keys().copied().collect();
        for key in keys {
            match other.know.get(&key) {
                Some(ok) => {
                    let mut mine = self.know.remove(&key).expect("present");
                    mine.merge(ok);
                    self.set_knowledge(key, mine);
                }
                None => {
                    self.know.remove(&key);
                }
            }
        }
    }
}

/// How a node interacts with the accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Writes A with a nameable value; reads nothing relevant.
    LoadVal(AVal),
    /// Writes A with an unanalyzable value (ld M[], ld [x+k], txa, alu).
    /// Landing is safe (A is overwritten before any read) only for plain
    /// loads; ALU reads A first — distinguished by `reads_a`.
    OpaqueWrite {
        /// Whether the instruction reads A before writing it.
        reads_a: bool,
    },
    /// Side effects outside A (st/stx/tax/ldx): `reads_a` as above.
    SideEffect {
        /// Whether the instruction reads A.
        reads_a: bool,
    },
    /// Conditional jump (reads A).
    Cond {
        /// Comparison op bits.
        op: u16,
        /// Constant operand (`None` when comparing against X).
        k: Option<u32>,
    },
    /// Unconditional jump.
    Ja,
    /// Return accepting a constant.
    RetK,
    /// Return accepting A (reads A).
    RetA,
}

struct Node {
    insn: Insn,
    kind: Kind,
    /// Successors: next instruction for straight-line code, `[t, f]` for
    /// conditionals, `[target; 2]` for `ja`; `usize::MAX` for returns.
    succ: [usize; 2],
}

struct Graph {
    nodes: Vec<Node>,
}

const NONE: usize = usize::MAX;

impl Graph {
    fn build(prog: &[Insn]) -> Option<Graph> {
        let n = prog.len();
        let mut nodes = Vec::with_capacity(n);
        for (i, ins) in prog.iter().enumerate() {
            let (kind, succ) = match ins.class() {
                insn::LD => match ins.mode() {
                    insn::ABS => (
                        Kind::LoadVal(AVal::Abs {
                            size: ins.size(),
                            off: ins.k,
                        }),
                        [i + 1, i + 1],
                    ),
                    insn::LEN => (Kind::LoadVal(AVal::PktLen), [i + 1, i + 1]),
                    insn::IMM => (Kind::LoadVal(AVal::Const(ins.k)), [i + 1, i + 1]),
                    _ => (Kind::OpaqueWrite { reads_a: false }, [i + 1, i + 1]),
                },
                insn::LDX => (Kind::SideEffect { reads_a: false }, [i + 1, i + 1]),
                insn::ST => (Kind::SideEffect { reads_a: true }, [i + 1, i + 1]),
                insn::STX => (Kind::SideEffect { reads_a: false }, [i + 1, i + 1]),
                insn::ALU => (Kind::OpaqueWrite { reads_a: true }, [i + 1, i + 1]),
                insn::MISC => {
                    if ins.code & 0xf8 == insn::TAX {
                        (Kind::SideEffect { reads_a: true }, [i + 1, i + 1])
                    } else {
                        (Kind::OpaqueWrite { reads_a: false }, [i + 1, i + 1])
                    }
                }
                insn::JMP => {
                    if ins.op() == insn::JA {
                        let t = i + 1 + ins.k as usize;
                        (Kind::Ja, [t, t])
                    } else {
                        let k = if ins.src() == insn::K {
                            Some(ins.k)
                        } else {
                            None
                        };
                        (
                            Kind::Cond { op: ins.op(), k },
                            [i + 1 + ins.jt as usize, i + 1 + ins.jf as usize],
                        )
                    }
                }
                insn::RET => {
                    if ins.rval() == insn::A {
                        (Kind::RetA, [NONE, NONE])
                    } else {
                        (Kind::RetK, [NONE, NONE])
                    }
                }
                _ => return None,
            };
            if succ[0] != NONE && (succ[0] > n || succ[1] > n) {
                return None; // malformed; leave untouched
            }
            nodes.push(Node {
                insn: *ins,
                kind,
                succ,
            });
        }
        Some(Graph { nodes })
    }

    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if i == NONE || i >= self.nodes.len() || seen[i] {
                continue;
            }
            seen[i] = true;
            let node = &self.nodes[i];
            if node.succ[0] != NONE {
                stack.push(node.succ[0]);
                if node.succ[1] != node.succ[0] {
                    stack.push(node.succ[1]);
                }
            }
        }
        seen
    }

    /// Dataflow: the abstract state at entry to every reachable node.
    /// Forward-only jumps make a single in-order pass exact.
    fn entry_states(&self, reachable: &[bool]) -> Vec<Option<State>> {
        let n = self.nodes.len();
        let mut entry: Vec<Option<State>> = vec![None; n];
        entry[0] = Some(State::default());
        for i in 0..n {
            if !reachable[i] {
                continue;
            }
            let st = match &entry[i] {
                Some(s) => s.clone(),
                None => State::default(), // reachable ⇒ computed; defensive
            };
            let node = &self.nodes[i];
            let push = |to: usize, s: State, entry: &mut Vec<Option<State>>| {
                if to == NONE || to >= n {
                    return;
                }
                match &mut entry[to] {
                    Some(existing) => existing.merge(&s),
                    slot @ None => *slot = Some(s),
                }
            };
            match node.kind {
                Kind::LoadVal(v) => {
                    let mut s = st;
                    s.a = Some(v);
                    if matches!(v, AVal::Abs { .. }) {
                        s.loaded.insert(v);
                    }
                    push(node.succ[0], s, &mut entry);
                }
                Kind::OpaqueWrite { .. } => {
                    let mut s = st;
                    s.a = None;
                    push(node.succ[0], s, &mut entry);
                }
                Kind::SideEffect { .. } => {
                    push(node.succ[0], st, &mut entry);
                }
                Kind::Ja => {
                    push(node.succ[0], st, &mut entry);
                }
                Kind::Cond { op, k: Some(k) } => {
                    if let Some(v) = st.a {
                        let mut t = st.clone();
                        let mut know = t.knowledge_of(v);
                        know.apply(op, k, true);
                        t.set_knowledge(v, know);
                        let mut f = st.clone();
                        let mut know = f.knowledge_of(v);
                        know.apply(op, k, false);
                        f.set_knowledge(v, know);
                        push(node.succ[0], t, &mut entry);
                        push(node.succ[1], f, &mut entry);
                    } else {
                        push(node.succ[0], st.clone(), &mut entry);
                        push(node.succ[1], st, &mut entry);
                    }
                }
                Kind::Cond { .. } => {
                    push(node.succ[0], st.clone(), &mut entry);
                    push(node.succ[1], st, &mut entry);
                }
                Kind::RetK | Kind::RetA => {}
            }
        }
        entry
    }

    /// One threading round. Returns true when any edge moved.
    fn thread_round(&mut self) -> bool {
        let reachable = self.reachable();
        let entry = self.entry_states(&reachable);
        let mut changed = false;

        for i in 0..self.nodes.len() {
            if !reachable[i] {
                continue;
            }
            // Thread outgoing edges of conditionals (where facts appear)
            // and of straight-line loads (where A-knowledge appears).
            let st = match &entry[i] {
                Some(s) => s.clone(),
                None => continue,
            };
            match self.nodes[i].kind {
                Kind::Cond { op, k: Some(k) } => {
                    if let Some(v) = st.a {
                        // First: if the test itself is decided, make the
                        // node effectively unconditional by collapsing both
                        // successors (the node stays; DCE may remove it if
                        // nothing else needs it — keeping it is still
                        // correct since conds have no side effects).
                        for (b, taken) in [(0usize, true), (1usize, false)] {
                            let mut es = st.clone();
                            let mut know = es.knowledge_of(v);
                            know.apply(op, k, taken);
                            es.set_knowledge(v, know);
                            let target = self.nodes[i].succ[b];
                            let new = self.walk(target, es);
                            if new != target {
                                self.nodes[i].succ[b] = new;
                                changed = true;
                            }
                        }
                        // Collapse decided conditionals to a direct jump.
                        if let Some(taken) = st.knowledge_of(v).decide(op, k) {
                            let target = self.nodes[i].succ[if taken { 0 } else { 1 }];
                            if self.nodes[i].kind != Kind::Ja || self.nodes[i].succ != [target; 2] {
                                self.nodes[i].kind = Kind::Ja;
                                self.nodes[i].succ = [target, target];
                                changed = true;
                            }
                        }
                    }
                }
                Kind::LoadVal(v) => {
                    let mut es = st;
                    es.a = Some(v);
                    if matches!(v, AVal::Abs { .. }) {
                        es.loaded.insert(v);
                    }
                    let target = self.nodes[i].succ[0];
                    let new = self.walk(target, es);
                    if new != target {
                        self.nodes[i].succ = [new, new];
                        changed = true;
                    }
                }
                _ => {}
            }
        }
        changed
    }

    /// Walk forward from `start` under edge state `es`, returning the
    /// furthest node the edge can safely be retargeted to.
    ///
    /// Invariants: the *real* machine's A at the edge is `es.a` and never
    /// changes during the walk (skipped nodes do not execute). `sim_a`
    /// tracks what the original path would hold; a node that reads A is a
    /// valid landing point only when `sim_a == es.a` (both known). An
    /// absolute packet load may be skipped only when an identical load
    /// already executed on every path to the edge (`es.loaded`) — its
    /// out-of-bounds reject has then already had its chance to fire.
    fn walk(&self, start: usize, es: State) -> usize {
        let real_a = es.a;
        let mut sim_a = es.a;
        let mut loaded = es.loaded;
        let mut know = es.know;
        let mut best = start;
        let mut w = start;
        let mut steps = 0usize;
        let matches_real = |sim: Option<AVal>| -> bool { sim.is_some() && sim == real_a };

        loop {
            if w == NONE || w >= self.nodes.len() {
                return best;
            }
            steps += 1;
            if steps > self.nodes.len() + 1 {
                return best; // defensive (cannot happen on a DAG)
            }
            let node = &self.nodes[w];
            match node.kind {
                Kind::Ja => {
                    // Pure control flow: follow, and prefer landing past it.
                    if best == w {
                        best = node.succ[0];
                    }
                    w = node.succ[0];
                }
                Kind::RetK => {
                    return w;
                }
                Kind::RetA => {
                    return if matches_real(sim_a) { w } else { best };
                }
                Kind::LoadVal(v) => {
                    // Landing here is always safe (A is overwritten).
                    best = w;
                    if matches!(v, AVal::Abs { .. }) && !loaded.contains(&v) {
                        // First execution of a packet load on this path:
                        // its bounds check must actually run.
                        return w;
                    }
                    loaded.insert(v);
                    sim_a = Some(v);
                    w = node.succ[0];
                }
                Kind::Cond { op, k: Some(k) } => {
                    let decided = sim_a.and_then(|v| {
                        let kn = if let AVal::Const(c) = v {
                            Knowledge::exactly(c)
                        } else {
                            know.get(&v).cloned().unwrap_or_else(Knowledge::any)
                        };
                        kn.decide(op, k)
                    });
                    match decided {
                        Some(taken) => {
                            if let Some(v) = sim_a {
                                if !matches!(v, AVal::Const(_)) {
                                    let mut kn =
                                        know.get(&v).cloned().unwrap_or_else(Knowledge::any);
                                    kn.apply(op, k, taken);
                                    know.insert(v, kn);
                                }
                            }
                            w = node.succ[if taken { 0 } else { 1 }];
                        }
                        None => {
                            // Undecidable: we may land *at* the test only
                            // if the real A is what the test expects.
                            return if matches_real(sim_a) { w } else { best };
                        }
                    }
                }
                Kind::Cond { .. } => {
                    // Comparison against X: cannot reason; landable if the
                    // real A matches.
                    return if matches_real(sim_a) { w } else { best };
                }
                Kind::OpaqueWrite { reads_a } | Kind::SideEffect { reads_a } => {
                    // Must execute from here on; landable unless it reads
                    // a stale A.
                    return if !reads_a || matches_real(sim_a) {
                        w
                    } else {
                        best
                    };
                }
            }
        }
    }

    /// Emit the optimized program: reachable nodes in original order,
    /// with labels re-resolved.
    fn emit(&self) -> Vec<Insn> {
        let reachable = self.reachable();
        let mut ir: Vec<Ir> = Vec::new();
        // One label per node index.
        let n = self.nodes.len();
        let label_of = |i: usize| -> Label { i as Label };
        let mut emitted_any = false;
        let mut last_emitted: Option<usize> = None;
        for (i, &live) in reachable.iter().enumerate() {
            if !live {
                continue;
            }
            // If the previously emitted node falls through to something
            // other than this node, bridge with a goto.
            if let Some(prev) = last_emitted {
                let p = &self.nodes[prev];
                let falls = matches!(
                    p.kind,
                    Kind::LoadVal(_) | Kind::OpaqueWrite { .. } | Kind::SideEffect { .. }
                );
                if falls && p.succ[0] != i {
                    ir.push(Ir::Goto(label_of(p.succ[0])));
                }
            }
            ir.push(Ir::Mark(label_of(i)));
            let node = &self.nodes[i];
            match node.kind {
                Kind::Ja => ir.push(Ir::Goto(label_of(node.succ[0]))),
                Kind::Cond { .. } => ir.push(Ir::Cond {
                    code: node.insn.code,
                    k: node.insn.k,
                    jt: label_of(node.succ[0]),
                    jf: label_of(node.succ[1]),
                }),
                Kind::RetK | Kind::RetA => ir.push(Ir::Stmt(node.insn)),
                _ => {
                    ir.push(Ir::Stmt(node.insn));
                    // Straight-line fall-through handled at next iteration.
                }
            }
            emitted_any = true;
            last_emitted = Some(i);
        }
        if !emitted_any {
            return vec![Insn::stmt(insn::RET | insn::K, 0)];
        }
        // A trailing fall-through (last node straight-line) needs a goto.
        if let Some(prev) = last_emitted {
            let p = &self.nodes[prev];
            if matches!(
                p.kind,
                Kind::LoadVal(_) | Kind::OpaqueWrite { .. } | Kind::SideEffect { .. }
            ) {
                ir.push(Ir::Goto(label_of(p.succ[0])));
            }
        }
        resolve(ir, n as Label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::ops::*;
    use crate::validate::validate;
    use crate::vm;

    /// Exhaustively compare verdicts of original vs optimized program over
    /// a set of packets.
    fn assert_equivalent(prog: &[Insn], packets: &[Vec<u8>]) {
        validate(prog).expect("input valid");
        let opt = optimize(prog);
        validate(&opt).expect("optimized valid");
        for (i, p) in packets.iter().enumerate() {
            let a = vm::run(prog, &p.as_slice()).unwrap().accepted();
            let b = vm::run(&opt, &p.as_slice()).unwrap().accepted();
            assert_eq!(a, b, "packet {i} diverges");
        }
    }

    fn eth_packet(ethertype: u16, proto: u8) -> Vec<u8> {
        let mut v = vec![0u8; 40];
        v[12] = (ethertype >> 8) as u8;
        v[13] = ethertype as u8;
        v[14] = 0x45;
        v[23] = proto;
        v
    }

    #[test]
    fn threads_redundant_guards() {
        // Two primitives, each with its own EtherType guard:
        //   ip and not tcp   (naive codegen shape)
        let prog = vec![
            ld_abs_h(12),
            jeq_k(0x800, 0, 5), // guard 1 -> reject (index 7)
            ld_abs_h(12),       // redundant reload
            jeq_k(0x800, 0, 3), // redundant guard -> reject
            ld_abs_b(23),
            jeq_k(6, 1, 0), // tcp -> reject, else accept
            ret_k(96),
            ret_k(0),
        ];
        let packets = vec![
            eth_packet(0x800, 17),
            eth_packet(0x800, 6),
            eth_packet(0x806, 0),
        ];
        assert_equivalent(&prog, &packets);
        let opt = optimize(&prog);
        assert!(
            opt.len() < prog.len(),
            "expected shrink, got:\n{}",
            crate::asm::disasm(&opt)
        );
    }

    #[test]
    fn optimizer_preserves_interval_semantics() {
        // len > 100 and len > 50 (second test is implied).
        let prog = vec![
            ld_len(),
            jgt_k(100, 0, 3),
            ld_len(),
            jgt_k(50, 0, 1),
            ret_k(96),
            ret_k(0),
        ];
        let mut packets = Vec::new();
        for l in [10usize, 50, 51, 100, 101, 200] {
            packets.push(vec![0u8; l]);
        }
        assert_equivalent(&prog, &packets);
        let opt = optimize(&prog);
        // The implied second test disappears entirely.
        assert!(opt.len() <= 4, "{}", crate::asm::disasm(&opt));
    }

    #[test]
    fn does_not_break_alu_and_scratch_programs() {
        let prog = vec![
            ld_abs_b(14),
            alu_k(insn::AND, 0x0f),
            st(0),
            ld_abs_b(14),
            alu_k(insn::RSH, 4),
            tax(),
            ld_mem(0),
            alu_x(insn::ADD),
            jeq_k(9, 0, 1),
            ret_k(96),
            ret_k(0),
        ];
        let packets = vec![eth_packet(0x800, 17), eth_packet(0x800, 6)];
        assert_equivalent(&prog, &packets);
    }

    #[test]
    fn handles_ret_a() {
        let prog = vec![ld_abs_b(0), ret_a()];
        let mut p1 = vec![0u8; 4];
        p1[0] = 5;
        let p2 = vec![0u8; 4];
        assert_equivalent(&prog, &[p1, p2]);
    }

    #[test]
    fn idempotent_on_optimal_programs() {
        let prog = vec![ld_abs_h(12), jeq_k(0x800, 0, 1), ret_k(96), ret_k(0)];
        let once = optimize(&prog);
        let twice = optimize(&once);
        assert_eq!(once, twice);
        assert_eq!(once.len(), prog.len());
    }

    #[test]
    fn contradictory_paths_fold() {
        // jeq #5 true-path then jeq #6 on same value: always false.
        let prog = vec![
            ld_abs_b(0),
            jeq_k(5, 0, 2),
            jeq_k(6, 0, 1), // unreachable-true
            ret_k(1),       // dead
            ret_k(0),
        ];
        let mut p5 = vec![0u8; 2];
        p5[0] = 5;
        let mut p6 = vec![0u8; 2];
        p6[0] = 6;
        assert_equivalent(&prog, &[p5, p6, vec![0u8; 2]]);
    }
}
