//! The BPF virtual machine.
//!
//! Executes a validated program against any [`PacketBytes`] implementation.
//! The interpreter follows the kernel semantics shared by FreeBSD's
//! `bpf_filter()` and the Linux Socket Filter: out-of-bounds packet loads
//! and division by zero terminate the program with a *reject* verdict
//! rather than an error — a filter can never crash the kernel.
//!
//! The VM also reports the number of instructions executed, which the
//! simulated kernels use to charge CPU time for filtering (the paper's
//! Fig. 6.6 experiment measures exactly this cost).

use crate::insn::{self, Insn};
use pcs_wire::PacketBytes;

/// Why a program failed to run to completion. Produced only for *invalid*
/// programs (the validator prevents these paths for checked programs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// The program ran off its end without returning.
    FellThrough,
    /// An unknown opcode was encountered.
    BadInstruction(usize),
    /// A scratch-memory access was out of range.
    BadMemSlot(usize),
    /// Executed more instructions than the program length (impossible for
    /// validated programs, which are loop-free).
    Runaway,
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmError::FellThrough => write!(f, "program fell through without ret"),
            VmError::BadInstruction(pc) => write!(f, "bad instruction at {pc}"),
            VmError::BadMemSlot(pc) => write!(f, "bad memory slot at {pc}"),
            VmError::Runaway => write!(f, "instruction budget exceeded"),
        }
    }
}

impl std::error::Error for VmError {}

/// Outcome of a filter run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Number of bytes to accept: 0 rejects the packet; larger values give
    /// the snapshot length (the kernel truncates to this).
    pub accept_len: u32,
    /// Instructions executed, for CPU cost accounting.
    pub insns_executed: u32,
}

impl Verdict {
    /// True when the packet passed the filter.
    pub fn accepted(&self) -> bool {
        self.accept_len > 0
    }
}

/// Execute `prog` over `pkt`.
///
/// Invalid opcodes and scratch slots yield `Err`; packet-bounds violations
/// and division by zero yield a *reject* verdict per kernel semantics.
pub fn run<P: PacketBytes>(prog: &[Insn], pkt: &P) -> Result<Verdict, VmError> {
    let mut a: u32 = 0;
    let mut x: u32 = 0;
    let mut mem = [0u32; insn::MEMWORDS];
    let mut pc: usize = 0;
    let mut executed: u32 = 0;
    // A validated program is a DAG, so it can execute at most prog.len()
    // instructions. Unvalidated programs get the same budget as a backstop.
    let budget = prog.len() as u32 + 1;

    macro_rules! reject_on_none {
        ($e:expr) => {
            match $e {
                Some(v) => v,
                None => {
                    return Ok(Verdict {
                        accept_len: 0,
                        insns_executed: executed,
                    })
                }
            }
        };
    }

    loop {
        let ins = match prog.get(pc) {
            Some(i) => *i,
            None => return Err(VmError::FellThrough),
        };
        executed += 1;
        if executed > budget {
            return Err(VmError::Runaway);
        }
        pc += 1;

        match ins.class() {
            insn::LD => {
                let val = match (ins.mode(), ins.size()) {
                    (insn::IMM, _) => ins.k,
                    (insn::LEN, _) => pkt.len(),
                    (insn::MEM, _) => {
                        let slot = ins.k as usize;
                        if slot >= insn::MEMWORDS {
                            return Err(VmError::BadMemSlot(pc - 1));
                        }
                        mem[slot]
                    }
                    (insn::ABS, insn::W) => reject_on_none!(pkt.word(ins.k)),
                    (insn::ABS, insn::H) => reject_on_none!(pkt.half_word(ins.k)) as u32,
                    (insn::ABS, insn::B) => reject_on_none!(pkt.byte(ins.k)) as u32,
                    (insn::IND, insn::W) => {
                        reject_on_none!(x.checked_add(ins.k).and_then(|o| pkt.word(o)))
                    }
                    (insn::IND, insn::H) => {
                        reject_on_none!(x.checked_add(ins.k).and_then(|o| pkt.half_word(o))) as u32
                    }
                    (insn::IND, insn::B) => {
                        reject_on_none!(x.checked_add(ins.k).and_then(|o| pkt.byte(o))) as u32
                    }
                    _ => return Err(VmError::BadInstruction(pc - 1)),
                };
                a = val;
            }
            insn::LDX => {
                x = match ins.mode() {
                    insn::IMM => ins.k,
                    insn::LEN => pkt.len(),
                    insn::MEM => {
                        let slot = ins.k as usize;
                        if slot >= insn::MEMWORDS {
                            return Err(VmError::BadMemSlot(pc - 1));
                        }
                        mem[slot]
                    }
                    insn::MSH => 4 * (reject_on_none!(pkt.byte(ins.k)) as u32 & 0x0f),
                    _ => return Err(VmError::BadInstruction(pc - 1)),
                };
            }
            insn::ST => {
                let slot = ins.k as usize;
                if slot >= insn::MEMWORDS {
                    return Err(VmError::BadMemSlot(pc - 1));
                }
                mem[slot] = a;
            }
            insn::STX => {
                let slot = ins.k as usize;
                if slot >= insn::MEMWORDS {
                    return Err(VmError::BadMemSlot(pc - 1));
                }
                mem[slot] = x;
            }
            insn::ALU => {
                let operand = if ins.src() == insn::X { x } else { ins.k };
                a = match ins.op() {
                    insn::ADD => a.wrapping_add(operand),
                    insn::SUB => a.wrapping_sub(operand),
                    insn::MUL => a.wrapping_mul(operand),
                    insn::DIV => {
                        if operand == 0 {
                            return Ok(Verdict {
                                accept_len: 0,
                                insns_executed: executed,
                            });
                        }
                        a / operand
                    }
                    insn::MOD => {
                        if operand == 0 {
                            return Ok(Verdict {
                                accept_len: 0,
                                insns_executed: executed,
                            });
                        }
                        a % operand
                    }
                    insn::OR => a | operand,
                    insn::AND => a & operand,
                    insn::XOR => a ^ operand,
                    insn::LSH => a.wrapping_shl(operand),
                    insn::RSH => a.wrapping_shr(operand),
                    insn::NEG => a.wrapping_neg(),
                    _ => return Err(VmError::BadInstruction(pc - 1)),
                };
            }
            insn::JMP => {
                if ins.op() == insn::JA {
                    pc = pc
                        .checked_add(ins.k as usize)
                        .ok_or(VmError::BadInstruction(pc - 1))?;
                    continue;
                }
                let operand = if ins.src() == insn::X { x } else { ins.k };
                let taken = match ins.op() {
                    insn::JEQ => a == operand,
                    insn::JGT => a > operand,
                    insn::JGE => a >= operand,
                    insn::JSET => a & operand != 0,
                    _ => return Err(VmError::BadInstruction(pc - 1)),
                };
                pc += if taken { ins.jt } else { ins.jf } as usize;
            }
            insn::RET => {
                let val = match ins.rval() {
                    insn::A => a,
                    _ => ins.k,
                };
                return Ok(Verdict {
                    accept_len: val,
                    insns_executed: executed,
                });
            }
            insn::MISC => match ins.code & 0xf8 {
                insn::TAX => x = a,
                insn::TXA => a = x,
                _ => return Err(VmError::BadInstruction(pc - 1)),
            },
            _ => return Err(VmError::BadInstruction(pc - 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::ops::*;
    use crate::insn::{ADD, AND, DIV, LSH, MUL, NEG, OR, RSH, SUB};

    fn pkt() -> Vec<u8> {
        // A tiny fake frame: dst 6B, src 6B, ethertype 0x0800, then bytes.
        let mut v = vec![0u8; 14];
        v[12] = 0x08;
        v[13] = 0x00;
        v.extend_from_slice(&[0x45, 0x00, 0x01, 0x02, 0xaa, 0xbb, 0xcc, 0xdd]);
        v
    }

    fn run_prog(prog: &[Insn]) -> Verdict {
        let data = pkt();
        run(prog, &data.as_slice()).expect("vm error")
    }

    #[test]
    fn accept_all_and_reject_all() {
        assert!(run_prog(&[ret_k(u32::MAX)]).accepted());
        assert!(!run_prog(&[ret_k(0)]).accepted());
    }

    #[test]
    fn load_sizes() {
        // ldb [12] = 0x08
        let v = run_prog(&[ld_abs_b(12), ret_a()]);
        assert_eq!(v.accept_len, 0x08);
        // ldh [12] = 0x0800
        let v = run_prog(&[ld_abs_h(12), ret_a()]);
        assert_eq!(v.accept_len, 0x0800);
        // ld [14] = 0x45000102
        let v = run_prog(&[ld_abs_w(14), ret_a()]);
        assert_eq!(v.accept_len, 0x4500_0102);
    }

    #[test]
    fn out_of_bounds_load_rejects() {
        let v = run_prog(&[ld_abs_w(1000), ret_k(100)]);
        assert!(!v.accepted());
        assert_eq!(v.insns_executed, 1);
    }

    #[test]
    fn indexed_loads_and_msh() {
        // X := 4*(P[14] & 0xf) = 4*5 = 20; A := P[X - 6 .. ] via ind
        let v = run_prog(&[ldx_msh(14), ld_ind_b(0), ret_a()]);
        // P[20] = 0xcc
        assert_eq!(v.accept_len, 0xcc);
    }

    #[test]
    fn indexed_load_overflow_rejects() {
        let prog = [ldx_imm(u32::MAX), ld_ind_b(10), ret_k(1)];
        let v = run_prog(&prog);
        assert!(!v.accepted());
    }

    #[test]
    fn len_load() {
        let v = run_prog(&[ld_len(), ret_a()]);
        assert_eq!(v.accept_len, pkt().len() as u32);
    }

    #[test]
    fn scratch_memory_roundtrip() {
        let prog = [
            ld_imm(42),
            st(3),
            ld_imm(0),
            ld_mem(3),
            tax(),
            txa(),
            ret_a(),
        ];
        assert_eq!(run_prog(&prog).accept_len, 42);
    }

    #[test]
    fn alu_semantics() {
        let cases: &[(u16, u32, u32)] = &[
            (ADD, 2, 12),
            (SUB, 3, 7),
            (MUL, 4, 40),
            (DIV, 5, 2),
            (OR, 0x20, 0x2a),
            (AND, 0x6, 0x2),
            (LSH, 2, 40),
            (RSH, 1, 5),
        ];
        for &(op, k, expect) in cases {
            let prog = [ld_imm(10), alu_k(op, k), ret_a()];
            assert_eq!(run_prog(&prog).accept_len, expect, "op {op:#x}");
        }
        let prog = [ld_imm(10), alu_k(NEG, 0), ret_a()];
        assert_eq!(run_prog(&prog).accept_len, 10u32.wrapping_neg());
    }

    #[test]
    fn division_by_zero_rejects() {
        let v = run_prog(&[ld_imm(10), alu_k(DIV, 0), ret_k(5)]);
        assert!(!v.accepted());
    }

    #[test]
    fn alu_with_x_operand() {
        let prog = [ldx_imm(8), ld_imm(3), alu_x(ADD), ret_a()];
        assert_eq!(run_prog(&prog).accept_len, 11);
    }

    #[test]
    fn jumps() {
        // ethertype == 0x800 ? accept : reject
        let prog = [ld_abs_h(12), jeq_k(0x800, 0, 1), ret_k(96), ret_k(0)];
        let v = run_prog(&prog);
        assert!(v.accepted());
        assert_eq!(v.insns_executed, 3);

        let prog = [ld_abs_h(12), jeq_k(0x806, 0, 1), ret_k(96), ret_k(0)];
        assert!(!run_prog(&prog).accepted());
    }

    #[test]
    fn jump_variants() {
        for (op_insn, expect) in [
            (jgt_k(0x7ff, 0, 1), true),
            (jgt_k(0x800, 0, 1), false),
            (jge_k(0x800, 0, 1), true),
            (jset_k(0x0800, 0, 1), true),
            (jset_k(0x0400, 0, 1), false),
        ] {
            let prog = [ld_abs_h(12), op_insn, ret_k(1), ret_k(0)];
            assert_eq!(run_prog(&prog).accepted(), expect);
        }
    }

    #[test]
    fn unconditional_jump() {
        let prog = [ja(1), ret_k(0), ret_k(7)];
        assert_eq!(run_prog(&prog).accept_len, 7);
    }

    #[test]
    fn fall_through_is_error() {
        let data = pkt();
        assert_eq!(
            run(&[ld_imm(1)], &data.as_slice()),
            Err(VmError::FellThrough)
        );
    }

    #[test]
    fn bad_mem_slot_is_error() {
        let data = pkt();
        assert_eq!(
            run(&[ld_mem(16), ret_a()], &data.as_slice()),
            Err(VmError::BadMemSlot(0))
        );
        assert_eq!(
            run(&[st(99), ret_k(0)], &data.as_slice()),
            Err(VmError::BadMemSlot(0))
        );
    }

    #[test]
    fn counts_instructions() {
        let prog = [ld_imm(1), ld_imm(2), ld_imm(3), ret_k(1)];
        assert_eq!(run_prog(&prog).insns_executed, 4);
    }
}
