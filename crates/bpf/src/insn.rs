//! Classic BPF instruction encoding.
//!
//! The instruction format is the one introduced by McCanne & Jacobson's
//! 1993 BSDI paper ("The BSD Packet Filter: A New Architecture for
//! User-level Packet Capture") and still used verbatim by FreeBSD's BPF
//! devices and the Linux Socket Filter, which the thesis describes in
//! §2.1.1–2.1.2. Each instruction is a fixed 64-bit record:
//!
//! ```text
//! opcode:16  jt:8  jf:8  k:32
//! ```

/// Number of 32-bit scratch memory slots (BPF_MEMWORDS).
pub const MEMWORDS: usize = 16;
/// Maximum program length accepted by the validator (BPF_MAXINSNS).
pub const MAXINSNS: usize = 4096;

// ---- opcode classes ----
/// Load into accumulator.
pub const LD: u16 = 0x00;
/// Load into index register.
pub const LDX: u16 = 0x01;
/// Store accumulator to scratch memory.
pub const ST: u16 = 0x02;
/// Store index register to scratch memory.
pub const STX: u16 = 0x03;
/// Arithmetic/logic on the accumulator.
pub const ALU: u16 = 0x04;
/// Conditional and unconditional jumps.
pub const JMP: u16 = 0x05;
/// Return (accept length).
pub const RET: u16 = 0x06;
/// Register transfers.
pub const MISC: u16 = 0x07;

// ---- size field (ld/ldx) ----
/// 32-bit word.
pub const W: u16 = 0x00;
/// 16-bit half word.
pub const H: u16 = 0x08;
/// 8-bit byte.
pub const B: u16 = 0x10;

// ---- mode field (ld/ldx) ----
/// Immediate constant.
pub const IMM: u16 = 0x00;
/// Absolute packet offset.
pub const ABS: u16 = 0x20;
/// Packet offset indexed by X.
pub const IND: u16 = 0x40;
/// Scratch memory slot.
pub const MEM: u16 = 0x60;
/// Packet length.
pub const LEN: u16 = 0x80;
/// `4 * (P[k] & 0xf)` — the IP-header-length idiom (ldx only).
pub const MSH: u16 = 0xa0;

// ---- alu/jmp op field ----
/// A + operand.
pub const ADD: u16 = 0x00;
/// A - operand.
pub const SUB: u16 = 0x10;
/// A * operand.
pub const MUL: u16 = 0x20;
/// A / operand (division by zero rejects the packet).
pub const DIV: u16 = 0x30;
/// A | operand.
pub const OR: u16 = 0x40;
/// A & operand.
pub const AND: u16 = 0x50;
/// A << operand.
pub const LSH: u16 = 0x60;
/// A >> operand.
pub const RSH: u16 = 0x70;
/// -A.
pub const NEG: u16 = 0x80;
/// A % operand (a later Linux extension; accepted by our VM).
pub const MOD: u16 = 0x90;
/// A ^ operand (a later Linux extension; accepted by our VM).
pub const XOR: u16 = 0xa0;

/// Unconditional jump.
pub const JA: u16 = 0x00;
/// Jump if A == operand.
pub const JEQ: u16 = 0x10;
/// Jump if A > operand (unsigned).
pub const JGT: u16 = 0x20;
/// Jump if A >= operand (unsigned).
pub const JGE: u16 = 0x30;
/// Jump if A & operand != 0.
pub const JSET: u16 = 0x40;

// ---- source field ----
/// Operand is the constant `k`.
pub const K: u16 = 0x00;
/// Operand is the index register X.
pub const X: u16 = 0x08;
/// Return source: the accumulator (ret only).
pub const A: u16 = 0x10;

// ---- misc ops ----
/// X := A.
pub const TAX: u16 = 0x00;
/// A := X.
pub const TXA: u16 = 0x80;

/// One BPF instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Insn {
    /// Packed opcode.
    pub code: u16,
    /// Jump-if-true offset (relative to the following instruction).
    pub jt: u8,
    /// Jump-if-false offset (relative to the following instruction).
    pub jf: u8,
    /// The multi-purpose constant field.
    pub k: u32,
}

impl pcs_des::Fingerprintable for Insn {
    fn fingerprint(&self, fp: &mut pcs_des::Fingerprint) {
        fp.u16(self.code);
        fp.u8(self.jt);
        fp.u8(self.jf);
        fp.u32(self.k);
    }
}

impl Insn {
    /// Construct an instruction with explicit fields.
    pub const fn new(code: u16, jt: u8, jf: u8, k: u32) -> Self {
        Insn { code, jt, jf, k }
    }

    /// A non-jump instruction.
    pub const fn stmt(code: u16, k: u32) -> Self {
        Insn {
            code,
            jt: 0,
            jf: 0,
            k,
        }
    }

    /// A conditional jump.
    pub const fn jump(code: u16, k: u32, jt: u8, jf: u8) -> Self {
        Insn { code, jt, jf, k }
    }

    /// The class bits of the opcode.
    pub const fn class(&self) -> u16 {
        self.code & 0x07
    }

    /// The size bits (meaningful for loads).
    pub const fn size(&self) -> u16 {
        self.code & 0x18
    }

    /// The mode bits (meaningful for loads).
    pub const fn mode(&self) -> u16 {
        self.code & 0xe0
    }

    /// The op bits (meaningful for ALU and JMP).
    pub const fn op(&self) -> u16 {
        self.code & 0xf0
    }

    /// The source bit (K vs X).
    pub const fn src(&self) -> u16 {
        self.code & 0x08
    }

    /// The return-value source bits (meaningful for RET).
    pub const fn rval(&self) -> u16 {
        self.code & 0x18
    }
}

/// Convenience constructors mirroring the macros of `bpf.h`.
pub mod ops {
    use super::*;

    /// `A := P[k:4]`
    pub const fn ld_abs_w(k: u32) -> Insn {
        Insn::stmt(LD | W | ABS, k)
    }
    /// `A := P[k:2]`
    pub const fn ld_abs_h(k: u32) -> Insn {
        Insn::stmt(LD | H | ABS, k)
    }
    /// `A := P[k:1]`
    pub const fn ld_abs_b(k: u32) -> Insn {
        Insn::stmt(LD | B | ABS, k)
    }
    /// `A := P[X+k:4]`
    pub const fn ld_ind_w(k: u32) -> Insn {
        Insn::stmt(LD | W | IND, k)
    }
    /// `A := P[X+k:2]`
    pub const fn ld_ind_h(k: u32) -> Insn {
        Insn::stmt(LD | H | IND, k)
    }
    /// `A := P[X+k:1]`
    pub const fn ld_ind_b(k: u32) -> Insn {
        Insn::stmt(LD | B | IND, k)
    }
    /// `A := k`
    pub const fn ld_imm(k: u32) -> Insn {
        Insn::stmt(LD | W | IMM, k)
    }
    /// `A := len`
    pub const fn ld_len() -> Insn {
        Insn::stmt(LD | W | LEN, 0)
    }
    /// `A := M[k]`
    pub const fn ld_mem(k: u32) -> Insn {
        Insn::stmt(LD | W | MEM, k)
    }
    /// `X := k`
    pub const fn ldx_imm(k: u32) -> Insn {
        Insn::stmt(LDX | W | IMM, k)
    }
    /// `X := len`
    pub const fn ldx_len() -> Insn {
        Insn::stmt(LDX | W | LEN, 0)
    }
    /// `X := M[k]`
    pub const fn ldx_mem(k: u32) -> Insn {
        Insn::stmt(LDX | W | MEM, k)
    }
    /// `X := 4 * (P[k] & 0xf)` — extract an IP header length.
    pub const fn ldx_msh(k: u32) -> Insn {
        Insn::stmt(LDX | B | MSH, k)
    }
    /// `M[k] := A`
    pub const fn st(k: u32) -> Insn {
        Insn::stmt(ST, k)
    }
    /// `M[k] := X`
    pub const fn stx(k: u32) -> Insn {
        Insn::stmt(STX, k)
    }
    /// `return k` (accept `k` bytes; 0 rejects).
    pub const fn ret_k(k: u32) -> Insn {
        Insn::stmt(RET | K, k)
    }
    /// `return A`
    pub const fn ret_a() -> Insn {
        Insn::stmt(RET | A, 0)
    }
    /// Unconditional jump by `k` instructions.
    pub const fn ja(k: u32) -> Insn {
        Insn::stmt(JMP | JA, k)
    }
    /// `if A == k goto jt else goto jf`
    pub const fn jeq_k(k: u32, jt: u8, jf: u8) -> Insn {
        Insn::jump(JMP | JEQ | K, k, jt, jf)
    }
    /// `if A > k goto jt else goto jf`
    pub const fn jgt_k(k: u32, jt: u8, jf: u8) -> Insn {
        Insn::jump(JMP | JGT | K, k, jt, jf)
    }
    /// `if A >= k goto jt else goto jf`
    pub const fn jge_k(k: u32, jt: u8, jf: u8) -> Insn {
        Insn::jump(JMP | JGE | K, k, jt, jf)
    }
    /// `if A & k goto jt else goto jf`
    pub const fn jset_k(k: u32, jt: u8, jf: u8) -> Insn {
        Insn::jump(JMP | JSET | K, k, jt, jf)
    }
    /// ALU with constant operand.
    pub const fn alu_k(op: u16, k: u32) -> Insn {
        Insn::stmt(ALU | op | K, k)
    }
    /// ALU with X operand.
    pub const fn alu_x(op: u16) -> Insn {
        Insn::stmt(ALU | op | X, 0)
    }
    /// `X := A`
    pub const fn tax() -> Insn {
        Insn::stmt(MISC | TAX, 0)
    }
    /// `A := X`
    pub const fn txa() -> Insn {
        Insn::stmt(MISC | TXA, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::ops::*;
    use super::*;

    #[test]
    fn field_extraction() {
        let i = ld_abs_h(12);
        assert_eq!(i.class(), LD);
        assert_eq!(i.size(), H);
        assert_eq!(i.mode(), ABS);
        assert_eq!(i.k, 12);

        let j = jeq_k(0x800, 2, 5);
        assert_eq!(j.class(), JMP);
        assert_eq!(j.op(), JEQ);
        assert_eq!(j.src(), K);
        assert_eq!((j.jt, j.jf), (2, 5));

        let r = ret_k(96);
        assert_eq!(r.class(), RET);
        assert_eq!(r.rval(), K);

        let ra = ret_a();
        assert_eq!(ra.rval(), A);
    }

    #[test]
    fn msh_encoding_distinct_from_plain_loads() {
        let m = ldx_msh(14);
        assert_eq!(m.class(), LDX);
        assert_eq!(m.mode(), MSH);
        assert_ne!(m.code, ldx_imm(14).code);
    }

    #[test]
    fn alu_variants() {
        assert_eq!(alu_k(ADD, 4).op(), ADD);
        assert_eq!(alu_x(SUB).src(), X);
        assert_eq!(alu_k(NEG, 0).op(), NEG);
    }
}
