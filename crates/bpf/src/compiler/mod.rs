//! Compiler from the pcap filter expression language to BPF programs.
//!
//! The pipeline is `lexer` → `parser` → `gen`, mirroring what
//! `pcap_compile()` does for tcpdump-style expressions (the thesis relies
//! on that path to install its Fig. 6.5 measurement filter, §6.3.2).

pub mod ast;
pub mod gen;
pub mod lexer;
pub mod parser;

use crate::insn::Insn;
pub use ast::{Arith, ArithOp, Dir, Expr, LoadBase, PortProto, Primitive, RelOp};
pub use gen::GenError;
pub use lexer::LexError;
pub use parser::ParseError;

/// A compilation failure: either the expression does not parse or it cannot
/// be lowered to a valid program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Syntax error.
    Parse(ParseError),
    /// Lowering error.
    Gen(GenError),
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Gen(e) => write!(f, "codegen error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<GenError> for CompileError {
    fn from(e: GenError) -> Self {
        CompileError::Gen(e)
    }
}

/// Compile a filter expression into a validated BPF program, accepting
/// matching packets with `snaplen` bytes. The empty string compiles to the
/// accept-everything program, as in libpcap.
///
/// ```
/// use pcs_bpf::{compile, vm};
///
/// let prog = compile("udp and dst port 9", 96).unwrap();
/// // Run it over raw bytes (or any pcs_wire::PacketBytes impl).
/// let non_ip = [0u8; 64];
/// let verdict = vm::run(&prog, &non_ip.as_slice()).unwrap();
/// assert!(!verdict.accepted());
/// ```
pub fn compile(expression: &str, snaplen: u32) -> Result<Vec<Insn>, CompileError> {
    let ast = parser::parse(expression)?;
    let prog = gen::generate(ast.as_ref(), snaplen)?;
    let prog = crate::opt::optimize(&prog);
    crate::validate::validate(&prog).map_err(|e| CompileError::Gen(GenError::Invalid(e)))?;
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm;
    use pcs_wire::{MacAddr, SimPacket};
    use std::net::Ipv4Addr;

    fn udp_packet(src: Ipv4Addr, dst: Ipv4Addr, src_port: u16, dst_port: u16) -> SimPacket {
        SimPacket::build_udp(
            1,
            0,
            200,
            MacAddr::ZERO,
            MacAddr::new(0, 0xe, 0xc, 1, 2, 3),
            src,
            dst,
            src_port,
            dst_port,
        )
    }

    fn matches(expr: &str, pkt: &SimPacket) -> bool {
        let prog = compile(expr, 65535).expect("compile");
        vm::run(&prog, pkt).expect("vm").accepted()
    }

    #[test]
    fn empty_filter_accepts_all() {
        let p = udp_packet(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            1000,
            53,
        );
        assert!(matches("", &p));
    }

    #[test]
    fn protocol_primitives_on_udp_packet() {
        let p = udp_packet(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            1000,
            53,
        );
        assert!(matches("ip", &p));
        assert!(matches("udp", &p));
        assert!(!matches("tcp", &p));
        assert!(!matches("arp", &p));
        assert!(matches("not tcp", &p));
        assert!(matches("ip proto 17", &p));
    }

    #[test]
    fn host_matching() {
        let src = Ipv4Addr::new(192, 168, 10, 100);
        let dst = Ipv4Addr::new(192, 168, 10, 12);
        let p = udp_packet(src, dst, 9, 9);
        assert!(matches("ip src 192.168.10.100", &p));
        assert!(!matches("ip src 192.168.10.12", &p));
        assert!(matches("ip dst 192.168.10.12", &p));
        assert!(matches("host 192.168.10.100", &p));
        assert!(matches("host 192.168.10.12", &p));
        assert!(!matches("host 10.0.0.1", &p));
        assert!(matches(
            "src host 192.168.10.100 and dst host 192.168.10.12",
            &p
        ));
    }

    #[test]
    fn net_matching() {
        let p = udp_packet(
            Ipv4Addr::new(192, 168, 10, 100),
            Ipv4Addr::new(10, 1, 2, 3),
            9,
            9,
        );
        assert!(matches("net 192.168.10.0/24", &p));
        assert!(matches("src net 192.168.0.0/16", &p));
        assert!(!matches("src net 10.0.0.0/8", &p));
        assert!(matches("dst net 10.0.0.0/8", &p));
        assert!(!matches("net 172.16.0.0/12", &p));
    }

    #[test]
    fn port_matching() {
        let p = udp_packet(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1234,
            53,
        );
        assert!(matches("port 53", &p));
        assert!(matches("udp port 53", &p));
        assert!(!matches("tcp port 53", &p));
        assert!(matches("dst port 53", &p));
        assert!(!matches("src port 53", &p));
        assert!(matches("src port 1234", &p));
        assert!(!matches("port 80", &p));
    }

    #[test]
    fn ether_host_matching() {
        let p = udp_packet(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 1, 2);
        assert!(matches("ether src 00:00:00:00:00:00", &p));
        assert!(!matches("ether src 00:00:00:00:00:01", &p));
        assert!(matches("ether dst 00:0e:0c:01:02:03", &p));
        assert!(matches("ether host 00:0e:0c:01:02:03", &p));
        assert!(!matches("ether host 01:02:03:04:05:06", &p));
    }

    #[test]
    fn length_primitives_and_relations() {
        let p = udp_packet(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 1, 2);
        // frame_len is 200
        assert!(matches("greater 100", &p));
        assert!(!matches("greater 201", &p));
        assert!(matches("less 200", &p));
        assert!(!matches("less 199", &p));
        assert!(matches("len = 200", &p));
        assert!(matches("len > 100 and len < 300", &p));
        assert!(matches("len != 100", &p));
        assert!(matches("len >= 200 and len <= 200", &p));
    }

    #[test]
    fn accessor_relations() {
        let p = udp_packet(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 1, 2);
        assert!(matches("ether[6:4]=0x00000000", &p));
        assert!(matches("ether[12:2]=0x0800", &p));
        // IP version/IHL byte.
        assert!(matches("ip[0] = 0x45", &p));
        assert!(matches("ip[0] & 0xf0 = 0x40", &p));
        // IP TTL (pktgen uses 32).
        assert!(matches("ip[8] = 32", &p));
        // UDP destination port via transport accessor.
        assert!(matches("udp[2:2] = 2", &p));
        assert!(!matches("udp[2:2] = 3", &p));
        // tcp accessor on a UDP packet fails the guard.
        assert!(!matches("tcp[2:2] = 2", &p));
    }

    #[test]
    fn boolean_composition() {
        let p = udp_packet(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 5, 6);
        assert!(matches("ip and udp", &p));
        assert!(matches("tcp or udp", &p));
        assert!(!matches("tcp and udp", &p));
        assert!(matches("not (tcp or arp)", &p));
        assert!(matches("(ip src 10.0.0.1 or ip src 10.0.0.9) and udp", &p));
        assert!(!matches("ip src 10.0.0.1 and not udp", &p));
    }

    #[test]
    fn computed_vs_computed_relation() {
        let p = udp_packet(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 7, 7);
        // src port equals dst port.
        assert!(matches("udp[0:2] = udp[2:2]", &p));
        // frame length equals ip total length + 14.
        assert!(matches("len = ip[2:2] + 14", &p));
    }

    #[test]
    fn computed_offset_loads() {
        let p = udp_packet(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 7, 7);
        // ether[12+0] via computed offset: high EtherType byte.
        assert!(matches("ether[ip[0] & 0 + 12] = 0x08", &p));
    }

    #[test]
    fn nested_transport_offset_rejected() {
        let err = compile("tcp[tcp[12]] = 0", 65535).unwrap_err();
        assert!(matches!(
            err,
            CompileError::Gen(GenError::NestedTransportLoad)
        ));
    }

    #[test]
    fn compiled_programs_are_valid() {
        for expr in [
            "",
            "ip",
            "not tcp",
            "udp port 53 or tcp port 80",
            "host 1.2.3.4 and greater 64 and less 1500",
            "net 10.0.0.0/8 or net 192.168.0.0/16",
            "ether[6:4]=0 and ether[10]=0 and not tcp",
        ] {
            let prog = compile(expr, 96).expect(expr);
            crate::validate::validate(&prog).expect(expr);
        }
    }
}
