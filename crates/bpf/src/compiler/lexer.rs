//! Tokenizer for the pcap filter expression language.

use std::fmt;
use std::net::Ipv4Addr;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A keyword or identifier (`ip`, `src`, `host`, `port`, ...).
    Ident(String),
    /// An unsigned number (decimal or `0x` hex).
    Number(u32),
    /// A dotted-quad IPv4 address.
    Ip(Ipv4Addr),
    /// A six-part colon-separated MAC address.
    Mac([u8; 6]),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:`
    Colon,
    /// `/` (also the net-mask separator)
    Slash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `=` or `==`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `!` (synonym of `not`)
    Bang,
    /// `&&` (synonym of `and`)
    AndAnd,
    /// `||` (synonym of `or`)
    OrOr,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Ip(a) => write!(f, "{a}"),
            Token::Mac(m) => write!(
                f,
                "{:x}:{:x}:{:x}:{:x}:{:x}:{:x}",
                m[0], m[1], m[2], m[3], m[4], m[5]
            ),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Colon => write!(f, ":"),
            Token::Slash => write!(f, "/"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Gt => write!(f, ">"),
            Token::Lt => write!(f, "<"),
            Token::Ge => write!(f, ">="),
            Token::Le => write!(f, "<="),
            Token::Bang => write!(f, "!"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
        }
    }
}

/// A lexing failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Split `input` into tokens.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let b = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b'[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            b']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            b':' => {
                out.push(Token::Colon);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'&' => {
                if b.get(i + 1) == Some(&b'&') {
                    out.push(Token::AndAnd);
                    i += 2;
                } else {
                    out.push(Token::Amp);
                    i += 1;
                }
            }
            b'|' => {
                if b.get(i + 1) == Some(&b'|') {
                    out.push(Token::OrOr);
                    i += 2;
                } else {
                    out.push(Token::Pipe);
                    i += 1;
                }
            }
            b'=' => {
                if b.get(i + 1) == Some(&b'=') {
                    i += 2;
                } else {
                    i += 1;
                }
                out.push(Token::Eq);
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Bang);
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &input[start..i];
                // A word followed by ':' pairs may be a MAC address
                // (hex bytes only).
                if i < b.len() && b[i] == b':' && word.len() <= 2 {
                    if let Some((mac, consumed)) = try_lex_mac(&input[start..]) {
                        out.push(Token::Mac(mac));
                        i = start + consumed;
                        continue;
                    }
                }
                match word {
                    "and" => out.push(Token::AndAnd),
                    "or" => out.push(Token::OrOr),
                    "not" => out.push(Token::Bang),
                    _ => out.push(Token::Ident(word.to_ascii_lowercase())),
                }
            }
            _ if c.is_ascii_digit() => {
                // Could be: plain number, hex number, dotted quad, or MAC.
                if let Some((mac, consumed)) = try_lex_mac(&input[i..]) {
                    out.push(Token::Mac(mac));
                    i += consumed;
                    continue;
                }
                if let Some((ip, consumed)) = try_lex_ip(&input[i..]) {
                    out.push(Token::Ip(ip));
                    i += consumed;
                    continue;
                }
                let start = i;
                if c == b'0' && matches!(b.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    let hs = i;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if hs == i {
                        return Err(LexError {
                            pos: start,
                            message: "empty hex literal".into(),
                        });
                    }
                    let v = u32::from_str_radix(&input[hs..i], 16).map_err(|_| LexError {
                        pos: start,
                        message: "hex literal out of range".into(),
                    })?;
                    out.push(Token::Number(v));
                } else {
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v: u32 = input[start..i].parse().map_err(|_| LexError {
                        pos: start,
                        message: "number out of range".into(),
                    })?;
                    out.push(Token::Number(v));
                }
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character '{}'", other as char),
                })
            }
        }
    }
    Ok(out)
}

/// Try to lex a dotted quad at the start of `s`; returns the address and
/// bytes consumed.
fn try_lex_ip(s: &str) -> Option<(Ipv4Addr, usize)> {
    let b = s.as_bytes();
    let mut parts = [0u8; 4];
    let mut i = 0usize;
    for (idx, part) in parts.iter_mut().enumerate() {
        let start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if start == i || i - start > 3 {
            return None;
        }
        *part = s[start..i].parse().ok()?;
        if idx < 3 {
            if b.get(i) != Some(&b'.') {
                return None;
            }
            i += 1;
        }
    }
    // Must not be followed by another dot or digit (e.g. "1.2.3.4.5").
    if matches!(b.get(i), Some(c) if *c == b'.' || c.is_ascii_digit()) {
        return None;
    }
    Some((Ipv4Addr::new(parts[0], parts[1], parts[2], parts[3]), i))
}

/// Try to lex a colon-separated MAC address at the start of `s`.
fn try_lex_mac(s: &str) -> Option<([u8; 6], usize)> {
    let b = s.as_bytes();
    let mut mac = [0u8; 6];
    let mut i = 0usize;
    for (idx, byte) in mac.iter_mut().enumerate() {
        let start = i;
        while i < b.len() && b[i].is_ascii_hexdigit() && i - start < 2 {
            i += 1;
        }
        if start == i {
            return None;
        }
        *byte = u8::from_str_radix(&s[start..i], 16).ok()?;
        if idx < 5 {
            if b.get(i) != Some(&b':') {
                return None;
            }
            i += 1;
        }
    }
    if matches!(b.get(i), Some(b':')) {
        return None;
    }
    Some((mac, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_idents() {
        let toks = lex("ip and not tcp or udp").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("ip".into()),
                Token::AndAnd,
                Token::Bang,
                Token::Ident("tcp".into()),
                Token::OrOr,
                Token::Ident("udp".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            lex("42 0x2a 0xFFFF").unwrap(),
            vec![
                Token::Number(42),
                Token::Number(0x2a),
                Token::Number(0xffff)
            ]
        );
    }

    #[test]
    fn ip_addresses() {
        assert_eq!(
            lex("10.11.12.13").unwrap(),
            vec![Token::Ip(Ipv4Addr::new(10, 11, 12, 13))]
        );
        // "host" then address
        let toks = lex("src host 192.168.10.100").unwrap();
        assert_eq!(toks[2], Token::Ip(Ipv4Addr::new(192, 168, 10, 100)));
    }

    #[test]
    fn mac_addresses() {
        assert_eq!(
            lex("00:00:00:00:00:02").unwrap(),
            vec![Token::Mac([0, 0, 0, 0, 0, 2])]
        );
        assert_eq!(
            lex("de:ad:be:ef:0:1").unwrap(),
            vec![Token::Mac([0xde, 0xad, 0xbe, 0xef, 0, 1])]
        );
    }

    #[test]
    fn packet_accessors() {
        let toks = lex("ether[6:4]=0x00000000").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("ether".into()),
                Token::LBracket,
                Token::Number(6),
                Token::Colon,
                Token::Number(4),
                Token::RBracket,
                Token::Eq,
                Token::Number(0),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            lex("= == != > < >= <=").unwrap(),
            vec![
                Token::Eq,
                Token::Eq,
                Token::Ne,
                Token::Gt,
                Token::Lt,
                Token::Ge,
                Token::Le
            ]
        );
    }

    #[test]
    fn arithmetic_symbols() {
        assert_eq!(
            lex("+ - * / & |").unwrap(),
            vec![
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Amp,
                Token::Pipe
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("ip @ udp").is_err());
    }

    #[test]
    fn five_dots_is_not_an_ip() {
        assert!(lex("1.2.3.4.5").is_err());
    }
}
