//! Abstract syntax for the pcap filter expression language.

use std::net::Ipv4Addr;

/// A boolean filter expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// A protocol/address/port primitive.
    Prim(Primitive),
    /// A relation between two arithmetic expressions
    /// (e.g. `ether[6:4] = 0`).
    Rel(RelOp, Arith, Arith),
}

/// Direction qualifier (`src`, `dst`, or either).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Match source fields only.
    Src,
    /// Match destination fields only.
    Dst,
    /// Match if either side matches (the default).
    Either,
}

/// Transport-protocol qualifier for port primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortProto {
    /// `tcp port N`
    Tcp,
    /// `udp port N`
    Udp,
    /// plain `port N`: match TCP or UDP.
    Any,
}

/// Filter primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Primitive {
    /// Link-layer protocol check: `ip`, `arp`, `ip6` — true when the
    /// EtherType matches.
    EtherProto(u16),
    /// Network-layer protocol check: `tcp`, `udp`, `icmp`,
    /// `ip proto N` — implies the packet is IPv4.
    IpProto(u8),
    /// `[ip] [src|dst] host A` / `ip src A`.
    Host(Dir, Ipv4Addr),
    /// `[ip] [src|dst] net A/len` — IPv4 prefix match.
    Net(Dir, Ipv4Addr, u8),
    /// `[tcp|udp] [src|dst] port N`.
    Port(PortProto, Dir, u16),
    /// `ether [src|dst] host M` — hardware address match.
    EtherHost(Dir, [u8; 6]),
    /// `less N` — frame length ≤ N.
    LenLe(u32),
    /// `greater N` — frame length ≥ N.
    LenGe(u32),
}

/// Relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `=` / `==`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
}

/// Binary arithmetic operators inside accessor expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `&`
    And,
    /// `|`
    Or,
}

/// Base protocol for `proto[off:size]` accessors; offsets are relative to
/// that protocol's header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBase {
    /// `ether[...]` — absolute frame offsets.
    Ether,
    /// `ip[...]` — relative to the IPv4 header (implies an EtherType
    /// guard).
    Ip,
    /// `tcp[...]` — relative to the TCP header (implies protocol and
    /// variable-length IP header handling).
    Tcp,
    /// `udp[...]` — relative to the UDP header.
    Udp,
    /// `icmp[...]` — relative to the ICMP header.
    Icmp,
}

/// Arithmetic (numeric) expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arith {
    /// A constant.
    Num(u32),
    /// The captured packet length (`len`).
    PktLen,
    /// A packet load `base[offset:size]`; `size` ∈ {1, 2, 4}, default 1.
    Load {
        /// Header-relative base.
        base: LoadBase,
        /// Byte offset within that header (may itself be computed).
        offset: Box<Arith>,
        /// Load width in bytes.
        size: u8,
    },
    /// A binary operation.
    Bin(ArithOp, Box<Arith>, Box<Arith>),
}

impl Arith {
    /// Constant-fold, returning the value if the expression is constant.
    pub fn const_value(&self) -> Option<u32> {
        match self {
            Arith::Num(n) => Some(*n),
            Arith::PktLen | Arith::Load { .. } => None,
            Arith::Bin(op, l, r) => {
                let l = l.const_value()?;
                let r = r.const_value()?;
                Some(match op {
                    ArithOp::Add => l.wrapping_add(r),
                    ArithOp::Sub => l.wrapping_sub(r),
                    ArithOp::Mul => l.wrapping_mul(r),
                    ArithOp::Div => {
                        if r == 0 {
                            return None;
                        }
                        l / r
                    }
                    ArithOp::And => l & r,
                    ArithOp::Or => l | r,
                })
            }
        }
    }
}

impl Expr {
    /// Convenience conjunction used by programmatic filter builders.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Convenience disjunction.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Convenience negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_folding() {
        let e = Arith::Bin(
            ArithOp::Add,
            Box::new(Arith::Num(6)),
            Box::new(Arith::Bin(
                ArithOp::Mul,
                Box::new(Arith::Num(2)),
                Box::new(Arith::Num(4)),
            )),
        );
        assert_eq!(e.const_value(), Some(14));
        assert_eq!(Arith::PktLen.const_value(), None);
        // Division by zero does not fold.
        let bad = Arith::Bin(
            ArithOp::Div,
            Box::new(Arith::Num(1)),
            Box::new(Arith::Num(0)),
        );
        assert_eq!(bad.const_value(), None);
    }

    #[test]
    fn builders() {
        let e =
            Expr::Prim(Primitive::EtherProto(0x800)).and(Expr::Prim(Primitive::IpProto(6)).not());
        match e {
            Expr::And(l, r) => {
                assert!(matches!(*l, Expr::Prim(Primitive::EtherProto(0x800))));
                assert!(matches!(*r, Expr::Not(_)));
            }
            _ => panic!("unexpected shape"),
        }
    }
}
