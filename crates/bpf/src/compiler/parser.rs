//! Recursive-descent parser for the pcap filter expression language.
//!
//! The grammar covers the subset exercised by the thesis (its Fig. 6.5
//! filter uses `ether[n:m]` relations, protocol keywords, and
//! `ip src`/`ip dst` host primitives) plus ports, nets, hardware
//! addresses, and length tests:
//!
//! ```text
//! expr      := term ( ("or"|"||") term )*
//! term      := factor ( ("and"|"&&") factor )*
//! factor    := ("not"|"!") factor | "(" expr ")" | relation | primitive
//! relation  := arith relop arith
//! arith     := aterm ( ("+"|"-"|"|") aterm )*
//! aterm     := afact ( ("*"|"/"|"&") afact )*
//! afact     := NUMBER | "len" | proto "[" arith (":" NUMBER)? "]"
//! primitive := "less" NUMBER | "greater" NUMBER
//!            | "ip" "proto" NUMBER
//!            | [proto] [dir] [type] value
//! ```

use super::ast::*;
use super::lexer::{lex, LexError, Token};

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Index of the offending token (input length when at end).
    pub at: usize,
    /// Description.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            at: e.pos,
            message: format!("lex error: {}", e.message),
        }
    }
}

/// Parse a filter expression string into an AST. An empty expression is
/// valid in libpcap (match everything); we represent it as `None`.
pub fn parse(input: &str) -> Result<Option<Expr>, ParseError> {
    let tokens = lex(input)?;
    if tokens.is_empty() {
        return Ok(None);
    }
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after expression"));
    }
    Ok(Some(e))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<u32, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            _ => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: format!("expected number for {what}"),
            }),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.term()?;
        while self.eat(&Token::OrOr) {
            let r = self.term()?;
            e = Expr::Or(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.factor()?;
        while self.eat(&Token::AndAnd) {
            let r = self.factor()?;
            e = Expr::And(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Bang) {
            return Ok(Expr::Not(Box::new(self.factor()?)));
        }
        if self.eat(&Token::LParen) {
            let e = self.expr()?;
            if !self.eat(&Token::RParen) {
                return Err(self.err("expected ')'"));
            }
            return Ok(e);
        }
        // Relation starters: a number, `len`, or `proto[`.
        let starts_relation = match self.peek() {
            Some(Token::Number(_)) => true,
            Some(Token::Ident(w)) if w == "len" => true,
            Some(Token::Ident(w)) if is_load_base(w) => {
                matches!(self.peek2(), Some(Token::LBracket))
            }
            _ => false,
        };
        if starts_relation {
            return self.relation();
        }
        self.primitive()
    }

    fn relation(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.arith()?;
        let op = match self.next() {
            Some(Token::Eq) => RelOp::Eq,
            Some(Token::Ne) => RelOp::Ne,
            Some(Token::Gt) => RelOp::Gt,
            Some(Token::Lt) => RelOp::Lt,
            Some(Token::Ge) => RelOp::Ge,
            Some(Token::Le) => RelOp::Le,
            _ => return Err(self.err("expected relational operator")),
        };
        let rhs = self.arith()?;
        Ok(Expr::Rel(op, lhs, rhs))
    }

    fn arith(&mut self) -> Result<Arith, ParseError> {
        let mut e = self.aterm()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                Some(Token::Pipe) => ArithOp::Or,
                _ => break,
            };
            self.pos += 1;
            let r = self.aterm()?;
            e = Arith::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn aterm(&mut self) -> Result<Arith, ParseError> {
        let mut e = self.afact()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                Some(Token::Amp) => ArithOp::And,
                _ => break,
            };
            self.pos += 1;
            let r = self.afact()?;
            e = Arith::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn afact(&mut self) -> Result<Arith, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(Arith::Num(n)),
            Some(Token::Ident(w)) if w == "len" => Ok(Arith::PktLen),
            Some(Token::Ident(w)) if is_load_base(&w) => {
                if !self.eat(&Token::LBracket) {
                    return Err(self.err("expected '[' after protocol accessor"));
                }
                let offset = self.arith()?;
                let size = if self.eat(&Token::Colon) {
                    let n = self.expect_number("load size")?;
                    if !matches!(n, 1 | 2 | 4) {
                        return Err(self.err("load size must be 1, 2 or 4"));
                    }
                    n as u8
                } else {
                    1
                };
                if !self.eat(&Token::RBracket) {
                    return Err(self.err("expected ']'"));
                }
                let base = match w.as_str() {
                    "ether" => LoadBase::Ether,
                    "ip" => LoadBase::Ip,
                    "tcp" => LoadBase::Tcp,
                    "udp" => LoadBase::Udp,
                    "icmp" => LoadBase::Icmp,
                    _ => unreachable!("is_load_base checked"),
                };
                Ok(Arith::Load {
                    base,
                    offset: Box::new(offset),
                    size,
                })
            }
            _ => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: "expected arithmetic operand".into(),
            }),
        }
    }

    fn primitive(&mut self) -> Result<Expr, ParseError> {
        // less / greater
        if let Some(Token::Ident(w)) = self.peek() {
            match w.as_str() {
                "less" => {
                    self.pos += 1;
                    let n = self.expect_number("less")?;
                    return Ok(Expr::Prim(Primitive::LenLe(n)));
                }
                "greater" => {
                    self.pos += 1;
                    let n = self.expect_number("greater")?;
                    return Ok(Expr::Prim(Primitive::LenGe(n)));
                }
                _ => {}
            }
        }

        // Optional protocol qualifier.
        let mut proto: Option<String> = None;
        if let Some(Token::Ident(w)) = self.peek() {
            if matches!(w.as_str(), "ether" | "ip" | "tcp" | "udp") {
                proto = Some(w.clone());
                self.pos += 1;
            } else if matches!(w.as_str(), "arp" | "rarp" | "ip6" | "icmp") {
                // Bare protocol primitives with no further qualifiers.
                let prim = match w.as_str() {
                    "arp" => Primitive::EtherProto(0x0806),
                    "rarp" => Primitive::EtherProto(0x8035),
                    "ip6" => Primitive::EtherProto(0x86dd),
                    _ => Primitive::IpProto(1),
                };
                self.pos += 1;
                return Ok(Expr::Prim(prim));
            }
        }

        // `ip proto N`
        if proto.as_deref() == Some("ip") {
            if let Some(Token::Ident(w)) = self.peek() {
                if w == "proto" {
                    self.pos += 1;
                    let n = self.expect_number("ip proto")?;
                    if n > 255 {
                        return Err(self.err("protocol number exceeds 255"));
                    }
                    return Ok(Expr::Prim(Primitive::IpProto(n as u8)));
                }
            }
        }

        // Optional direction qualifier.
        let mut dir = Dir::Either;
        if let Some(Token::Ident(w)) = self.peek() {
            match w.as_str() {
                "src" => {
                    dir = Dir::Src;
                    self.pos += 1;
                }
                "dst" => {
                    dir = Dir::Dst;
                    self.pos += 1;
                }
                _ => {}
            }
        }

        // Optional type qualifier.
        let mut typ: Option<String> = None;
        if let Some(Token::Ident(w)) = self.peek() {
            if matches!(w.as_str(), "host" | "net" | "port") {
                typ = Some(w.clone());
                self.pos += 1;
            }
        }

        // If we consumed only a protocol keyword and nothing else follows
        // that can be a value, this is a bare protocol primitive.
        let value_next = matches!(
            self.peek(),
            Some(Token::Ip(_)) | Some(Token::Mac(_)) | Some(Token::Number(_))
        );
        if typ.is_none() && dir == Dir::Either && !value_next {
            if let Some(p) = proto {
                let prim = match p.as_str() {
                    "ip" => Primitive::EtherProto(0x0800),
                    "tcp" => Primitive::IpProto(6),
                    "udp" => Primitive::IpProto(17),
                    _ => return Err(self.err("'ether' requires a host qualifier")),
                };
                return Ok(Expr::Prim(prim));
            }
            return Err(self.err("expected a filter primitive"));
        }

        match typ.as_deref() {
            Some("port") => {
                let n = self.expect_number("port")?;
                if n > 65535 {
                    return Err(self.err("port number exceeds 65535"));
                }
                let pp = match proto.as_deref() {
                    Some("tcp") => PortProto::Tcp,
                    Some("udp") => PortProto::Udp,
                    None => PortProto::Any,
                    Some(other) => {
                        return Err(self.err(&format!("'{other} port' is not supported")))
                    }
                };
                Ok(Expr::Prim(Primitive::Port(pp, dir, n as u16)))
            }
            Some("net") => {
                let addr = match self.next() {
                    Some(Token::Ip(a)) => a,
                    _ => return Err(self.err("expected network address")),
                };
                let mask = if self.eat(&Token::Slash) {
                    let n = self.expect_number("prefix length")?;
                    if n > 32 {
                        return Err(self.err("prefix length exceeds 32"));
                    }
                    n as u8
                } else {
                    24
                };
                self.check_ip_proto(&proto)?;
                Ok(Expr::Prim(Primitive::Net(dir, addr, mask)))
            }
            // `host` or a bare value.
            _ => match self.next() {
                Some(Token::Ip(a)) => {
                    self.check_ip_proto(&proto)?;
                    Ok(Expr::Prim(Primitive::Host(dir, a)))
                }
                Some(Token::Mac(m)) => {
                    if matches!(proto.as_deref(), Some("ip") | Some("tcp") | Some("udp")) {
                        return Err(self.err("hardware address needs the 'ether' qualifier"));
                    }
                    Ok(Expr::Prim(Primitive::EtherHost(dir, m)))
                }
                _ => Err(ParseError {
                    at: self.pos.saturating_sub(1),
                    message: "expected host address".into(),
                }),
            },
        }
    }

    fn check_ip_proto(&self, proto: &Option<String>) -> Result<(), ParseError> {
        match proto.as_deref() {
            None | Some("ip") => Ok(()),
            Some(other) => Err(self.err(&format!(
                "'{other}' qualifier cannot apply to an IPv4 address"
            ))),
        }
    }
}

fn is_load_base(w: &str) -> bool {
    matches!(w, "ether" | "ip" | "tcp" | "udp" | "icmp")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn p(s: &str) -> Expr {
        parse(s).expect("parse").expect("non-empty")
    }

    #[test]
    fn empty_filter_is_none() {
        assert_eq!(parse("").unwrap(), None);
        assert_eq!(parse("   ").unwrap(), None);
    }

    #[test]
    fn bare_protocols() {
        assert_eq!(p("ip"), Expr::Prim(Primitive::EtherProto(0x800)));
        assert_eq!(p("arp"), Expr::Prim(Primitive::EtherProto(0x806)));
        assert_eq!(p("tcp"), Expr::Prim(Primitive::IpProto(6)));
        assert_eq!(p("udp"), Expr::Prim(Primitive::IpProto(17)));
        assert_eq!(p("icmp"), Expr::Prim(Primitive::IpProto(1)));
    }

    #[test]
    fn thesis_style_ip_src() {
        // The Fig. 6.5 filter uses `ip src A` / `ip dst A`.
        assert_eq!(
            p("ip src 10.11.12.13"),
            Expr::Prim(Primitive::Host(Dir::Src, Ipv4Addr::new(10, 11, 12, 13)))
        );
        assert_eq!(
            p("ip dst 10.99.12.13"),
            Expr::Prim(Primitive::Host(Dir::Dst, Ipv4Addr::new(10, 99, 12, 13)))
        );
    }

    #[test]
    fn host_variants() {
        assert_eq!(
            p("host 1.2.3.4"),
            Expr::Prim(Primitive::Host(Dir::Either, Ipv4Addr::new(1, 2, 3, 4)))
        );
        assert_eq!(
            p("src host 1.2.3.4"),
            Expr::Prim(Primitive::Host(Dir::Src, Ipv4Addr::new(1, 2, 3, 4)))
        );
        assert_eq!(
            p("dst 1.2.3.4"),
            Expr::Prim(Primitive::Host(Dir::Dst, Ipv4Addr::new(1, 2, 3, 4)))
        );
    }

    #[test]
    fn ports() {
        assert_eq!(
            p("port 53"),
            Expr::Prim(Primitive::Port(PortProto::Any, Dir::Either, 53))
        );
        assert_eq!(
            p("tcp dst port 80"),
            Expr::Prim(Primitive::Port(PortProto::Tcp, Dir::Dst, 80))
        );
        assert_eq!(
            p("udp src port 9"),
            Expr::Prim(Primitive::Port(PortProto::Udp, Dir::Src, 9))
        );
        assert!(parse("port 70000").is_err());
    }

    #[test]
    fn nets() {
        assert_eq!(
            p("net 192.168.10.0/24"),
            Expr::Prim(Primitive::Net(
                Dir::Either,
                Ipv4Addr::new(192, 168, 10, 0),
                24
            ))
        );
        assert_eq!(
            p("src net 10.0.0.0/8"),
            Expr::Prim(Primitive::Net(Dir::Src, Ipv4Addr::new(10, 0, 0, 0), 8))
        );
        assert!(parse("net 10.0.0.0/33").is_err());
    }

    #[test]
    fn ether_hosts() {
        assert_eq!(
            p("ether src 00:00:00:00:00:02"),
            Expr::Prim(Primitive::EtherHost(Dir::Src, [0, 0, 0, 0, 0, 2]))
        );
        assert!(parse("ip host 00:00:00:00:00:02").is_err());
        assert!(parse("ether").is_err());
    }

    #[test]
    fn ip_proto_number() {
        assert_eq!(p("ip proto 89"), Expr::Prim(Primitive::IpProto(89)));
        assert!(parse("ip proto 300").is_err());
    }

    #[test]
    fn length_tests() {
        assert_eq!(p("less 1500"), Expr::Prim(Primitive::LenLe(1500)));
        assert_eq!(p("greater 64"), Expr::Prim(Primitive::LenGe(64)));
    }

    #[test]
    fn boolean_structure_and_precedence() {
        // or binds looser than and
        let e = p("ip or tcp and udp");
        match e {
            Expr::Or(l, r) => {
                assert!(matches!(*l, Expr::Prim(Primitive::EtherProto(_))));
                assert!(matches!(*r, Expr::And(_, _)));
            }
            _ => panic!("precedence broken"),
        }
        // parens override
        let e = p("(ip or tcp) and udp");
        assert!(matches!(e, Expr::And(_, _)));
        // not
        let e = p("not tcp");
        assert!(matches!(e, Expr::Not(_)));
    }

    #[test]
    fn relations() {
        let e = p("ether[6:4]=0x00000000");
        match e {
            Expr::Rel(RelOp::Eq, Arith::Load { base, offset, size }, Arith::Num(0)) => {
                assert_eq!(base, LoadBase::Ether);
                assert_eq!(*offset, Arith::Num(6));
                assert_eq!(size, 4);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let e = p("len > 100");
        assert!(matches!(
            e,
            Expr::Rel(RelOp::Gt, Arith::PktLen, Arith::Num(100))
        ));
        let e = p("ip[0] & 0xf != 5");
        assert!(matches!(
            e,
            Expr::Rel(RelOp::Ne, Arith::Bin(ArithOp::And, _, _), _)
        ));
    }

    #[test]
    fn arith_precedence() {
        // 2 + 3 * 4 parses as 2 + (3*4)
        let e = p("len = 2 + 3 * 4");
        match e {
            Expr::Rel(_, _, rhs) => assert_eq!(rhs.const_value(), Some(14)),
            _ => panic!(),
        }
    }

    #[test]
    fn fig65_filter_parses() {
        // An abbreviated version of the thesis Fig. 6.5 expression.
        let txt = "ether[6:4]=0x00000000 and ether[10]=0x00 and not tcp \
                   and not ip src 10.11.12.13 and not ip src 20.11.12.14 \
                   and not ip dst 10.99.12.13 and not ip dst 20.99.12.14";
        let e = p(txt);
        // Must be a left-deep and-chain of 7 factors.
        let mut count = 1;
        let mut cur = &e;
        while let Expr::And(l, _) = cur {
            count += 1;
            cur = l;
        }
        assert_eq!(count, 7);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("ip and").is_err());
        assert!(parse("host").is_err());
        assert!(parse("(ip").is_err());
        assert!(parse("ip ) tcp").is_err());
        assert!(parse("ether[4").is_err());
        assert!(parse("ether[4:3]=1").is_err());
        assert!(parse("len >").is_err());
    }

    #[test]
    fn bad_size_and_trailing() {
        assert!(parse("ip tcp").is_err());
        assert!(parse("42").is_err()); // relation without operator
    }
}
