//! BPF code generation from the filter AST.
//!
//! The generator follows the classic libpcap structure: every boolean
//! subexpression is lowered to a control-flow fragment with a *true* and a
//! *false* exit label, then labels are resolved to the forward-only relative
//! offsets of the instruction format.
//!
//! Like libpcap's optimizer, the generator tracks an **abstract machine
//! state** (what the accumulator holds, which header guards have already
//! passed on the current path) and skips redundant loads and guards. This is
//! what turns the thesis' Fig. 6.5 expression — an `and`-chain of 38
//! `ip src`/`ip dst` tests plus preamble — into a 50-instruction program,
//! matching the count the thesis reports, instead of a naive ~160.

use super::ast::*;
use crate::insn::{self, Insn};
use crate::validate::{validate, ValidateError};

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// Ran out of scratch-memory slots for nested computed comparisons.
    OutOfScratch,
    /// Transport-relative loads with computed offsets cannot nest.
    NestedTransportLoad,
    /// The emitted program failed validation (an internal bug if it ever
    /// happens).
    Invalid(ValidateError),
}

impl core::fmt::Display for GenError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GenError::OutOfScratch => write!(f, "expression too deep: out of scratch slots"),
            GenError::NestedTransportLoad => {
                write!(f, "nested transport-relative loads are not supported")
            }
            GenError::Invalid(e) => write!(f, "generated invalid program: {e}"),
        }
    }
}

impl std::error::Error for GenError {}

use crate::lower::{resolve, Ir, Label};

/// What the accumulator is known to hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AVal {
    /// An absolute packet load of the given size (size bits of the opcode).
    Abs { size: u16, off: u32 },
    /// The packet length.
    PktLen,
    /// A constant.
    Const(u32),
}

/// A header fact established by a passed guard on the current path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fact {
    /// EtherType equals the value.
    EtherTypeIs(u16),
    /// The packet is IPv4 and its protocol field equals the value.
    IpProtoIs(u8),
}

/// Abstract machine state along one control path.
#[derive(Debug, Clone, Default, PartialEq)]
struct St {
    a: Option<AVal>,
    facts: Vec<Fact>,
}

impl St {
    fn has(&self, f: Fact) -> bool {
        self.facts.contains(&f)
    }

    fn with_fact(mut self, f: Fact) -> St {
        if !self.facts.contains(&f) {
            self.facts.push(f);
        }
        self
    }

    /// The meet (intersection) of states arriving from several paths.
    fn meet(states: &[St]) -> St {
        let mut it = states.iter();
        let first = match it.next() {
            Some(s) => s.clone(),
            None => return St::default(),
        };
        let mut out = first;
        for s in it {
            if out.a != s.a {
                out.a = None;
            }
            out.facts.retain(|f| s.facts.contains(f));
        }
        out
    }
}

const ETH_IP: u16 = 0x0800;
/// Frame offset of the EtherType field.
const OFF_ETHERTYPE: u32 = 12;
/// Frame offset of the IPv4 protocol field.
const OFF_IPPROTO: u32 = 23;
/// Frame offset of the IPv4 fragment-offset field.
const OFF_FRAG: u32 = 20;
/// Frame offset of the IPv4 source address.
const OFF_IPSRC: u32 = 26;
/// Frame offset of the IPv4 destination address.
const OFF_IPDST: u32 = 30;
/// Frame offset where the IPv4 header begins.
const IP_BASE: u32 = 14;

struct Gen {
    ir: Vec<Ir>,
    next_label: Label,
    next_slot: u32,
}

impl Gen {
    fn new() -> Self {
        Gen {
            ir: Vec::new(),
            next_label: 0,
            next_slot: 0,
        }
    }

    fn fresh(&mut self) -> Label {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    fn mark(&mut self, l: Label) {
        self.ir.push(Ir::Mark(l));
    }

    fn stmt(&mut self, i: Insn) {
        self.ir.push(Ir::Stmt(i));
    }

    fn cond(&mut self, code: u16, k: u32, jt: Label, jf: Label) {
        self.ir.push(Ir::Cond { code, k, jt, jf });
    }

    fn alloc_slot(&mut self) -> Result<u32, GenError> {
        if self.next_slot as usize >= insn::MEMWORDS {
            return Err(GenError::OutOfScratch);
        }
        let s = self.next_slot;
        self.next_slot += 1;
        Ok(s)
    }

    /// Load `val` into A unless the state already guarantees it's there.
    fn ensure_a(&mut self, st: &mut St, val: AVal) {
        if st.a == Some(val) {
            return;
        }
        let i = match val {
            AVal::Abs { size, off } => Insn::stmt(insn::LD | size | insn::ABS, off),
            AVal::PktLen => Insn::stmt(insn::LD | insn::W | insn::LEN, 0),
            AVal::Const(k) => Insn::stmt(insn::LD | insn::W | insn::IMM, k),
        };
        self.stmt(i);
        st.a = Some(val);
    }

    /// Emit a guard: continue (fall through) when `A == k` after loading
    /// `val`; jump to `f` otherwise. Returns the fall-through state.
    fn guard_eq(&mut self, mut st: St, val: AVal, k: u32, fact: Fact, f: Label) -> St {
        if st.has(fact) {
            return st;
        }
        self.ensure_a(&mut st, val);
        let cont = self.fresh();
        self.cond(insn::JMP | insn::JEQ | insn::K, k, cont, f);
        self.mark(cont);
        st.with_fact(fact)
    }

    /// Generate `e`, jumping to `t` when true and `f` when false.
    /// Returns the abstract states guaranteed at `t` and at `f`
    /// (considering only exits produced by this fragment).
    fn gen_cond(&mut self, e: &Expr, t: Label, f: Label, st: St) -> Result<(St, St), GenError> {
        match e {
            Expr::Not(x) => {
                let (xt, xf) = self.gen_cond(x, f, t, st)?;
                Ok((xf, xt))
            }
            Expr::And(l, r) => {
                let mid = self.fresh();
                let (lt, lf) = self.gen_cond(l, mid, f, st)?;
                self.mark(mid);
                let (rt, rf) = self.gen_cond(r, t, f, lt)?;
                Ok((rt, St::meet(&[lf, rf])))
            }
            Expr::Or(l, r) => {
                let mid = self.fresh();
                let (lt, lf) = self.gen_cond(l, t, mid, st)?;
                self.mark(mid);
                let (rt, rf) = self.gen_cond(r, t, f, lf)?;
                Ok((St::meet(&[lt, rt]), rf))
            }
            Expr::Prim(p) => self.gen_prim(p, t, f, st),
            Expr::Rel(op, lhs, rhs) => self.gen_rel(*op, lhs, rhs, t, f, st),
        }
    }

    fn gen_prim(
        &mut self,
        p: &Primitive,
        t: Label,
        f: Label,
        st: St,
    ) -> Result<(St, St), GenError> {
        match p {
            Primitive::EtherProto(v) => {
                let mut st = st;
                let val = AVal::Abs {
                    size: insn::H,
                    off: OFF_ETHERTYPE,
                };
                if st.has(Fact::EtherTypeIs(*v)) {
                    self.ir.push(Ir::Goto(t));
                    return Ok((st.clone(), st));
                }
                self.ensure_a(&mut st, val);
                self.cond(insn::JMP | insn::JEQ | insn::K, *v as u32, t, f);
                let tstate = st.clone().with_fact(Fact::EtherTypeIs(*v));
                Ok((tstate, st))
            }
            Primitive::IpProto(pr) => {
                let entry = st.clone();
                let st = self.guard_eq(
                    st,
                    AVal::Abs {
                        size: insn::H,
                        off: OFF_ETHERTYPE,
                    },
                    ETH_IP as u32,
                    Fact::EtherTypeIs(ETH_IP),
                    f,
                );
                let mut st = st;
                if st.has(Fact::IpProtoIs(*pr)) {
                    self.ir.push(Ir::Goto(t));
                    return Ok((st.clone(), st));
                }
                self.ensure_a(
                    &mut st,
                    AVal::Abs {
                        size: insn::B,
                        off: OFF_IPPROTO,
                    },
                );
                self.cond(insn::JMP | insn::JEQ | insn::K, *pr as u32, t, f);
                let tstate = st.clone().with_fact(Fact::IpProtoIs(*pr));
                // f receives both the guard failure and the proto mismatch.
                Ok((tstate, St::meet(&[entry, st])))
            }
            Primitive::Host(dir, addr) => {
                let entry = st.clone();
                let mut st = self.guard_eq(
                    st,
                    AVal::Abs {
                        size: insn::H,
                        off: OFF_ETHERTYPE,
                    },
                    ETH_IP as u32,
                    Fact::EtherTypeIs(ETH_IP),
                    f,
                );
                let a = u32::from_be_bytes(addr.octets());
                match dir {
                    Dir::Src | Dir::Dst => {
                        let off = if *dir == Dir::Src {
                            OFF_IPSRC
                        } else {
                            OFF_IPDST
                        };
                        self.ensure_a(&mut st, AVal::Abs { size: insn::W, off });
                        self.cond(insn::JMP | insn::JEQ | insn::K, a, t, f);
                        Ok((st.clone(), St::meet(&[entry, st])))
                    }
                    Dir::Either => {
                        let try_dst = self.fresh();
                        self.ensure_a(
                            &mut st,
                            AVal::Abs {
                                size: insn::W,
                                off: OFF_IPSRC,
                            },
                        );
                        self.cond(insn::JMP | insn::JEQ | insn::K, a, t, try_dst);
                        self.mark(try_dst);
                        let src_checked = st.clone();
                        self.ensure_a(
                            &mut st,
                            AVal::Abs {
                                size: insn::W,
                                off: OFF_IPDST,
                            },
                        );
                        self.cond(insn::JMP | insn::JEQ | insn::K, a, t, f);
                        Ok((St::meet(&[src_checked, st.clone()]), St::meet(&[entry, st])))
                    }
                }
            }
            Primitive::Net(dir, addr, prefix) => {
                let entry = st.clone();
                let st = self.guard_eq(
                    st,
                    AVal::Abs {
                        size: insn::H,
                        off: OFF_ETHERTYPE,
                    },
                    ETH_IP as u32,
                    Fact::EtherTypeIs(ETH_IP),
                    f,
                );
                let mask: u32 = if *prefix == 0 {
                    0
                } else {
                    (!0u32) << (32 - *prefix as u32)
                };
                let net = u32::from_be_bytes(addr.octets()) & mask;
                let check = |g: &mut Gen, mut s: St, off: u32, jt: Label, jf: Label| -> St {
                    g.ensure_a(&mut s, AVal::Abs { size: insn::W, off });
                    g.stmt(Insn::stmt(insn::ALU | insn::AND | insn::K, mask));
                    s.a = None; // masked value, not the raw load
                    g.cond(insn::JMP | insn::JEQ | insn::K, net, jt, jf);
                    s
                };
                match dir {
                    Dir::Src | Dir::Dst => {
                        let off = if *dir == Dir::Src {
                            OFF_IPSRC
                        } else {
                            OFF_IPDST
                        };
                        let s = check(self, st, off, t, f);
                        Ok((s.clone(), St::meet(&[entry, s])))
                    }
                    Dir::Either => {
                        let try_dst = self.fresh();
                        let s1 = check(self, st, OFF_IPSRC, t, try_dst);
                        self.mark(try_dst);
                        let s2 = check(self, s1.clone(), OFF_IPDST, t, f);
                        Ok((St::meet(&[s1, s2.clone()]), St::meet(&[entry, s2])))
                    }
                }
            }
            Primitive::Port(pp, dir, port) => {
                let entry = st.clone();
                let st = self.guard_eq(
                    st,
                    AVal::Abs {
                        size: insn::H,
                        off: OFF_ETHERTYPE,
                    },
                    ETH_IP as u32,
                    Fact::EtherTypeIs(ETH_IP),
                    f,
                );
                // Protocol gate.
                let mut st = st;
                match pp {
                    PortProto::Tcp => {
                        st = self.guard_eq(
                            st,
                            AVal::Abs {
                                size: insn::B,
                                off: OFF_IPPROTO,
                            },
                            6,
                            Fact::IpProtoIs(6),
                            f,
                        );
                    }
                    PortProto::Udp => {
                        st = self.guard_eq(
                            st,
                            AVal::Abs {
                                size: insn::B,
                                off: OFF_IPPROTO,
                            },
                            17,
                            Fact::IpProtoIs(17),
                            f,
                        );
                    }
                    PortProto::Any => {
                        if !st.has(Fact::IpProtoIs(6)) && !st.has(Fact::IpProtoIs(17)) {
                            let is_l4 = self.fresh();
                            let not_tcp = self.fresh();
                            self.ensure_a(
                                &mut st,
                                AVal::Abs {
                                    size: insn::B,
                                    off: OFF_IPPROTO,
                                },
                            );
                            self.cond(insn::JMP | insn::JEQ | insn::K, 6, is_l4, not_tcp);
                            self.mark(not_tcp);
                            self.cond(insn::JMP | insn::JEQ | insn::K, 17, is_l4, f);
                            self.mark(is_l4);
                            // Protocol is tcp-or-udp; neither single fact holds.
                        }
                    }
                }
                // Ports are unmatchable in non-first fragments.
                self.ensure_a(
                    &mut st,
                    AVal::Abs {
                        size: insn::H,
                        off: OFF_FRAG,
                    },
                );
                let not_frag = self.fresh();
                self.cond(insn::JMP | insn::JSET | insn::K, 0x1fff, f, not_frag);
                self.mark(not_frag);
                // X := IP header length; then load the port(s).
                self.stmt(Insn::stmt(insn::LDX | insn::B | insn::MSH, IP_BASE));
                let load_port = |g: &mut Gen, s: &mut St, off: u32| {
                    g.stmt(Insn::stmt(insn::LD | insn::H | insn::IND, IP_BASE + off));
                    s.a = None;
                };
                match dir {
                    Dir::Src | Dir::Dst => {
                        let off = if *dir == Dir::Src { 0 } else { 2 };
                        load_port(self, &mut st, off);
                        self.cond(insn::JMP | insn::JEQ | insn::K, *port as u32, t, f);
                    }
                    Dir::Either => {
                        let try_dst = self.fresh();
                        load_port(self, &mut st, 0);
                        self.cond(insn::JMP | insn::JEQ | insn::K, *port as u32, t, try_dst);
                        self.mark(try_dst);
                        load_port(self, &mut st, 2);
                        self.cond(insn::JMP | insn::JEQ | insn::K, *port as u32, t, f);
                    }
                }
                Ok((st.clone(), St::meet(&[entry, st])))
            }
            Primitive::EtherHost(dir, mac) => {
                let mut st = st;
                let last4 = u32::from_be_bytes([mac[2], mac[3], mac[4], mac[5]]);
                let first2 = u16::from_be_bytes([mac[0], mac[1]]) as u32;
                // Offsets: dst at 0 (2+4 split 0/2), src at 6 (split 6/8).
                let check = |g: &mut Gen, s: &mut St, base: u32, jt: Label, jf: Label| {
                    let cont = g.fresh();
                    g.ensure_a(
                        s,
                        AVal::Abs {
                            size: insn::W,
                            off: base + 2,
                        },
                    );
                    g.cond(insn::JMP | insn::JEQ | insn::K, last4, cont, jf);
                    g.mark(cont);
                    g.ensure_a(
                        s,
                        AVal::Abs {
                            size: insn::H,
                            off: base,
                        },
                    );
                    g.cond(insn::JMP | insn::JEQ | insn::K, first2, jt, jf);
                };
                match dir {
                    Dir::Src => check(self, &mut st, 6, t, f),
                    Dir::Dst => check(self, &mut st, 0, t, f),
                    Dir::Either => {
                        let try_dst = self.fresh();
                        check(self, &mut st, 6, t, try_dst);
                        self.mark(try_dst);
                        check(self, &mut st, 0, t, f);
                    }
                }
                Ok((st.clone(), st))
            }
            Primitive::LenLe(n) => {
                let mut st = st;
                self.ensure_a(&mut st, AVal::PktLen);
                // len <= n  ⟺  !(len > n)
                self.cond(insn::JMP | insn::JGT | insn::K, *n, f, t);
                Ok((st.clone(), st))
            }
            Primitive::LenGe(n) => {
                let mut st = st;
                self.ensure_a(&mut st, AVal::PktLen);
                self.cond(insn::JMP | insn::JGE | insn::K, *n, t, f);
                Ok((st.clone(), st))
            }
        }
    }

    fn gen_rel(
        &mut self,
        op: RelOp,
        lhs: &Arith,
        rhs: &Arith,
        t: Label,
        f: Label,
        st: St,
    ) -> Result<(St, St), GenError> {
        // Fully constant relations fold to a goto.
        if let (Some(l), Some(r)) = (lhs.const_value(), rhs.const_value()) {
            let truth = match op {
                RelOp::Eq => l == r,
                RelOp::Ne => l != r,
                RelOp::Gt => l > r,
                RelOp::Lt => l < r,
                RelOp::Ge => l >= r,
                RelOp::Le => l <= r,
            };
            self.ir.push(Ir::Goto(if truth { t } else { f }));
            return Ok((st.clone(), st));
        }

        // (jump code, k-const?, swap targets?)
        let plan = |op: RelOp| -> (u16, bool) {
            match op {
                RelOp::Eq => (insn::JEQ, false),
                RelOp::Ne => (insn::JEQ, true),
                RelOp::Gt => (insn::JGT, false),
                RelOp::Le => (insn::JGT, true),
                RelOp::Ge => (insn::JGE, false),
                RelOp::Lt => (insn::JGE, true),
            }
        };
        let reverse = |op: RelOp| -> RelOp {
            match op {
                RelOp::Eq => RelOp::Eq,
                RelOp::Ne => RelOp::Ne,
                RelOp::Gt => RelOp::Lt,
                RelOp::Lt => RelOp::Gt,
                RelOp::Ge => RelOp::Le,
                RelOp::Le => RelOp::Ge,
            }
        };

        let entry = st.clone();
        let (code_op, swap, k_or_x, st) = if let Some(r) = rhs.const_value() {
            let st = self.gen_arith(lhs, f, st)?;
            let (c, s) = plan(op);
            (c, s, (insn::K, r), st)
        } else if let Some(l) = lhs.const_value() {
            let st = self.gen_arith(rhs, f, st)?;
            let (c, s) = plan(reverse(op));
            (c, s, (insn::K, l), st)
        } else {
            // Both computed: rhs -> scratch, lhs -> A, X := scratch.
            let slot = self.alloc_slot()?;
            let st = self.gen_arith(rhs, f, st)?;
            self.stmt(Insn::stmt(insn::ST, slot));
            let st = self.gen_arith(lhs, f, st)?;
            self.stmt(Insn::stmt(insn::LDX | insn::W | insn::MEM, slot));
            let (c, s) = plan(op);
            (c, s, (insn::X, 0), st)
        };
        let (src, k) = k_or_x;
        let (jt, jf) = if swap { (f, t) } else { (t, f) };
        self.cond(insn::JMP | code_op | src, k, jt, jf);
        Ok((st.clone(), St::meet(&[entry, st])))
    }

    /// Emit code leaving the value of `a` in the accumulator. Guard
    /// failures (non-IP packet for `ip[...]`, wrong protocol for
    /// `tcp[...]`) jump to `f`.
    fn gen_arith(&mut self, a: &Arith, f: Label, st: St) -> Result<St, GenError> {
        match a {
            Arith::Num(n) => {
                let mut st = st;
                self.ensure_a(&mut st, AVal::Const(*n));
                Ok(st)
            }
            Arith::PktLen => {
                let mut st = st;
                self.ensure_a(&mut st, AVal::PktLen);
                Ok(st)
            }
            Arith::Load { base, offset, size } => {
                let size_bits = match size {
                    1 => insn::B,
                    2 => insn::H,
                    _ => insn::W,
                };
                match base {
                    LoadBase::Ether => {
                        if let Some(off) = offset.const_value() {
                            let mut st = st;
                            self.ensure_a(
                                &mut st,
                                AVal::Abs {
                                    size: size_bits,
                                    off,
                                },
                            );
                            Ok(st)
                        } else {
                            let mut st = self.gen_arith(offset, f, st)?;
                            self.stmt(Insn::stmt(insn::MISC | insn::TAX, 0));
                            self.stmt(Insn::stmt(insn::LD | size_bits | insn::IND, 0));
                            st.a = None;
                            Ok(st)
                        }
                    }
                    LoadBase::Ip => {
                        let st = self.guard_eq(
                            st,
                            AVal::Abs {
                                size: insn::H,
                                off: OFF_ETHERTYPE,
                            },
                            ETH_IP as u32,
                            Fact::EtherTypeIs(ETH_IP),
                            f,
                        );
                        if let Some(off) = offset.const_value() {
                            let mut st = st;
                            self.ensure_a(
                                &mut st,
                                AVal::Abs {
                                    size: size_bits,
                                    off: IP_BASE + off,
                                },
                            );
                            Ok(st)
                        } else {
                            let mut st = self.gen_arith(offset, f, st)?;
                            self.stmt(Insn::stmt(insn::MISC | insn::TAX, 0));
                            self.stmt(Insn::stmt(insn::LD | size_bits | insn::IND, IP_BASE));
                            st.a = None;
                            Ok(st)
                        }
                    }
                    LoadBase::Tcp | LoadBase::Udp | LoadBase::Icmp => {
                        let proto = match base {
                            LoadBase::Tcp => 6,
                            LoadBase::Udp => 17,
                            _ => 1,
                        };
                        let st = self.guard_eq(
                            st,
                            AVal::Abs {
                                size: insn::H,
                                off: OFF_ETHERTYPE,
                            },
                            ETH_IP as u32,
                            Fact::EtherTypeIs(ETH_IP),
                            f,
                        );
                        let mut st = self.guard_eq(
                            st,
                            AVal::Abs {
                                size: insn::B,
                                off: OFF_IPPROTO,
                            },
                            proto,
                            Fact::IpProtoIs(proto as u8),
                            f,
                        );
                        // Non-first fragments have no transport header.
                        self.ensure_a(
                            &mut st,
                            AVal::Abs {
                                size: insn::H,
                                off: OFF_FRAG,
                            },
                        );
                        let cont = self.fresh();
                        self.cond(insn::JMP | insn::JSET | insn::K, 0x1fff, f, cont);
                        self.mark(cont);
                        if let Some(off) = offset.const_value() {
                            self.stmt(Insn::stmt(insn::LDX | insn::B | insn::MSH, IP_BASE));
                            self.stmt(Insn::stmt(insn::LD | size_bits | insn::IND, IP_BASE + off));
                        } else {
                            if contains_transport_load(offset) {
                                return Err(GenError::NestedTransportLoad);
                            }
                            st = self.gen_arith(offset, f, st)?;
                            self.stmt(Insn::stmt(insn::LDX | insn::B | insn::MSH, IP_BASE));
                            self.stmt(Insn::stmt(insn::ALU | insn::ADD | insn::X, 0));
                            self.stmt(Insn::stmt(insn::MISC | insn::TAX, 0));
                            self.stmt(Insn::stmt(insn::LD | size_bits | insn::IND, IP_BASE));
                        }
                        st.a = None;
                        Ok(st)
                    }
                }
            }
            Arith::Bin(op, l, r) => {
                let alu = match op {
                    ArithOp::Add => insn::ADD,
                    ArithOp::Sub => insn::SUB,
                    ArithOp::Mul => insn::MUL,
                    ArithOp::Div => insn::DIV,
                    ArithOp::And => insn::AND,
                    ArithOp::Or => insn::OR,
                };
                if let Some(rv) = r.const_value() {
                    let mut st = self.gen_arith(l, f, st)?;
                    self.stmt(Insn::stmt(insn::ALU | alu | insn::K, rv));
                    st.a = None;
                    Ok(st)
                } else if l.const_value().is_some()
                    && matches!(op, ArithOp::Add | ArithOp::Mul | ArithOp::And | ArithOp::Or)
                {
                    let lv = l.const_value().expect("checked");
                    let mut st = self.gen_arith(r, f, st)?;
                    self.stmt(Insn::stmt(insn::ALU | alu | insn::K, lv));
                    st.a = None;
                    Ok(st)
                } else {
                    let slot = self.alloc_slot()?;
                    let st = self.gen_arith(r, f, st)?;
                    self.stmt(Insn::stmt(insn::ST, slot));
                    let mut st = self.gen_arith(l, f, st)?;
                    self.stmt(Insn::stmt(insn::LDX | insn::W | insn::MEM, slot));
                    self.stmt(Insn::stmt(insn::ALU | alu | insn::X, 0));
                    st.a = None;
                    Ok(st)
                }
            }
        }
    }
}

fn contains_transport_load(a: &Arith) -> bool {
    match a {
        Arith::Load { base, offset, .. } => {
            matches!(base, LoadBase::Tcp | LoadBase::Udp | LoadBase::Icmp)
                || contains_transport_load(offset)
        }
        Arith::Bin(_, l, r) => contains_transport_load(l) || contains_transport_load(r),
        _ => false,
    }
}

/// Compile an optional expression into a validated BPF program. `None`
/// (the empty filter) accepts everything. `snaplen` is the byte count a
/// matching packet is accepted with.
pub fn generate(expr: Option<&Expr>, snaplen: u32) -> Result<Vec<Insn>, GenError> {
    let expr = match expr {
        None => {
            return Ok(vec![Insn::stmt(insn::RET | insn::K, snaplen)]);
        }
        Some(e) => e,
    };
    let mut g = Gen::new();
    let accept = g.fresh();
    let reject = g.fresh();
    g.gen_cond(expr, accept, reject, St::default())?;
    g.mark(accept);
    g.stmt(Insn::stmt(insn::RET | insn::K, snaplen));
    g.mark(reject);
    g.stmt(Insn::stmt(insn::RET | insn::K, 0));
    let prog = resolve(g.ir, g.next_label);
    validate(&prog).map_err(GenError::Invalid)?;
    Ok(prog)
}
