//! Canned filter programs used throughout the evaluation.

use crate::compiler::{compile, CompileError};
use crate::insn::{ops, Insn};

/// The accept-everything program (what an empty filter compiles to).
pub fn accept_all(snaplen: u32) -> Vec<Insn> {
    vec![ops::ret_k(snaplen)]
}

/// The reject-everything program.
pub fn reject_all() -> Vec<Insn> {
    vec![ops::ret_k(0)]
}

/// The exact filter expression of the thesis' Figure 6.5: a 38-term
/// conjunction crafted so that **every generated packet is accepted, but
/// only after all instructions have been evaluated** — maximizing filter
/// cost without changing the captured set (§6.3.2).
///
/// The generated packets have source IP 192.168.10.100, destination IP
/// 192.168.10.12 and source MACs cycling 00:00:00:00:00:00–02, so none of
/// the negated address tests ever match.
pub fn fig65_expression() -> String {
    let mut parts: Vec<String> = vec![
        "ether[6:4]=0x00000000".into(),
        "ether[10]=0x00".into(),
        "not tcp".into(),
    ];
    for i in 0..19u32 {
        // 10.11.12.13, 20.11.12.14, ... 190.11.12.31 (the thesis listing).
        parts.push(format!("not ip src {}.11.12.{}", (i + 1) * 10, 13 + i));
    }
    for i in 0..19u32 {
        // 10.99.12.13 ... 190.99.12.31, with the thesis' typo at index 10
        // ("990.99.12.23") corrected to 110.99.12.23.
        parts.push(format!("not ip dst {}.99.12.{}", (i + 1) * 10, 13 + i));
    }
    parts.join(" and ")
}

/// Compile the Figure 6.5 filter. The thesis reports the compiled program
/// is 50 BPF instructions long; our compiler reproduces that count (see the
/// `fig65_is_50_instructions` test).
pub fn fig65_program(snaplen: u32) -> Result<Vec<Insn>, CompileError> {
    compile(&fig65_expression(), snaplen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm;
    use pcs_wire::{MacAddr, SimPacket};
    use std::net::Ipv4Addr;

    fn generated_packet(seq: u64) -> SimPacket {
        // Matches the generator setup described in §6.3.2.
        SimPacket::build_udp(
            seq,
            0,
            750,
            MacAddr::ZERO.offset(seq % 3),
            MacAddr::new(0, 0xe, 0xc, 1, 2, 3),
            Ipv4Addr::new(192, 168, 10, 100),
            Ipv4Addr::new(192, 168, 10, 12),
            9,
            9,
        )
    }

    #[test]
    fn fig65_is_50_instructions() {
        let prog = fig65_program(65535).expect("compile");
        assert_eq!(
            prog.len(),
            50,
            "the thesis reports a 50-instruction filter;\n{}",
            crate::asm::disasm(&prog)
        );
    }

    #[test]
    fn fig65_accepts_generated_packets_after_full_evaluation() {
        let prog = fig65_program(65535).unwrap();
        for seq in 0..3 {
            let p = generated_packet(seq);
            let v = vm::run(&prog, &p).unwrap();
            assert!(v.accepted(), "seq {seq}");
            // Must walk essentially the whole program: everything except
            // the final reject ret.
            assert_eq!(v.insns_executed as usize, prog.len() - 1, "seq {seq}");
        }
    }

    #[test]
    fn fig65_rejects_tcp_and_listed_sources() {
        let prog = fig65_program(65535).unwrap();
        // A packet from one of the negated sources is rejected.
        let p = SimPacket::build_udp(
            0,
            0,
            100,
            MacAddr::ZERO,
            MacAddr::new(0, 0xe, 0xc, 1, 2, 3),
            Ipv4Addr::new(10, 11, 12, 13),
            Ipv4Addr::new(192, 168, 10, 12),
            9,
            9,
        );
        assert!(!vm::run(&prog, &p).unwrap().accepted());
        // A packet with a non-zero source MAC tail beyond the cycled range.
        let p = generated_packet(0);
        let mut q = p.clone();
        q.header[6] = 0x01; // first byte of ether[6:4]
        assert!(!vm::run(&prog, &q).unwrap().accepted());
    }

    #[test]
    fn canned_programs() {
        let p = generated_packet(0);
        assert!(vm::run(&accept_all(96), &p).unwrap().accepted());
        assert!(!vm::run(&reject_all(), &p).unwrap().accepted());
    }
}
