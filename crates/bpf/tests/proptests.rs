//! Property tests for the BPF implementation.
//!
//! The central safety property of BPF: a program accepted by the
//! *validator* can never make the *interpreter* fail, on any packet —
//! that is the contract that lets the kernel run user-supplied filters.
//! Plus: the optimizer preserves semantics, and the assembler round-trips.

use pcs_bpf::insn::{self, Insn};
use pcs_bpf::{asm, opt, validate, vm};
use proptest::prelude::*;

/// Generate an arbitrary (mostly invalid) instruction.
fn arb_insn(prog_len: usize, index: usize) -> impl Strategy<Value = Insn> {
    let remaining = (prog_len - index - 1) as u8;
    (any::<u8>(), any::<u8>(), any::<u8>(), any::<u32>()).prop_map(move |(sel, jt, jf, k)| {
        // Bias toward plausible opcodes so the validator accepts some
        // programs; raw random u16 opcodes almost never validate.
        let code = match sel % 12 {
            0 => insn::LD | insn::W | insn::ABS,
            1 => insn::LD | insn::H | insn::ABS,
            2 => insn::LD | insn::B | insn::ABS,
            3 => insn::LD | insn::W | insn::IMM,
            4 => insn::LD | insn::W | insn::LEN,
            5 => insn::LDX | insn::B | insn::MSH,
            6 => insn::ALU | insn::ADD | insn::K,
            7 => insn::ALU | insn::RSH | insn::K,
            8 => insn::JMP | insn::JEQ | insn::K,
            9 => insn::JMP | insn::JGT | insn::K,
            10 => insn::ST,
            _ => insn::MISC | insn::TAX,
        };
        let (jt, jf) = if code & 0x07 == insn::JMP {
            (jt % remaining.max(1), jf % remaining.max(1))
        } else {
            (0, 0)
        };
        // Keep scratch slots mostly in range.
        let k = if code == insn::ST { k % 20 } else { k };
        Insn { code, jt, jf, k }
    })
}

fn arb_program() -> impl Strategy<Value = Vec<Insn>> {
    (1usize..24).prop_flat_map(|n| {
        let body: Vec<_> = (0..n - 1).map(|i| arb_insn(n, i)).collect();
        (body, any::<u32>()).prop_map(|(mut v, k)| {
            v.push(insn::ops::ret_k(k % 2000));
            v
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Validator acceptance implies the VM cannot trap, on any packet.
    #[test]
    fn validated_programs_never_trap(prog in arb_program(), data in proptest::collection::vec(any::<u8>(), 0..128)) {
        if validate(&prog).is_ok() {
            prop_assert!(vm::run(&prog, &data.as_slice()).is_ok());
        }
    }

    /// The optimizer preserves the verdict of every validated program.
    #[test]
    fn optimizer_preserves_semantics(prog in arb_program(), data in proptest::collection::vec(any::<u8>(), 0..96)) {
        if validate(&prog).is_ok() {
            let optimized = opt::optimize(&prog);
            prop_assert!(validate(&optimized).is_ok(), "optimized program must validate");
            let a = vm::run(&prog, &data.as_slice()).unwrap().accepted();
            let b = vm::run(&optimized, &data.as_slice()).unwrap().accepted();
            prop_assert_eq!(a, b, "verdict changed by optimization");
        }
    }

    /// Disassemble → assemble reaches a textual fixpoint after one trip
    /// (fields ignored by an opcode, like `tax`'s k, canonicalize to 0).
    #[test]
    fn asm_roundtrip(prog in arb_program()) {
        if validate(&prog).is_ok() {
            let text = asm::disasm(&prog);
            let back = asm::assemble(&text).expect("disassembly must reassemble");
            prop_assert_eq!(asm::disasm(&back), text);
            let again = asm::assemble(&asm::disasm(&back)).unwrap();
            prop_assert_eq!(again, back, "assembler must be idempotent");
        }
    }

    /// The VM's instruction count never exceeds the program length
    /// (loop-freedom) for validated programs.
    #[test]
    fn executed_bounded_by_length(prog in arb_program(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        if validate(&prog).is_ok() {
            let v = vm::run(&prog, &data.as_slice()).unwrap();
            prop_assert!(v.insns_executed as usize <= prog.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled address filters match exactly the packets they should.
    #[test]
    fn host_filter_matches_address(a in any::<[u8; 4]>(), b in any::<[u8; 4]>()) {
        use std::net::Ipv4Addr;
        let target = Ipv4Addr::from(a);
        let other = Ipv4Addr::from(b);
        let prog = pcs_bpf::compile(&format!("ip src {target}"), 96).unwrap();
        let make = |src: Ipv4Addr| {
            pcs_wire::SimPacket::build_udp(
                0, 0, 100,
                pcs_wire::MacAddr::ZERO, pcs_wire::MacAddr::BROADCAST,
                src, Ipv4Addr::new(10, 0, 0, 1), 9, 9)
        };
        prop_assert!(vm::run(&prog, &make(target)).unwrap().accepted());
        prop_assert_eq!(
            vm::run(&prog, &make(other)).unwrap().accepted(),
            other == target
        );
    }

    /// `greater N` / `less N` partition all packets by length.
    #[test]
    fn length_filters_partition(n in 60u32..1500, len in 60u32..1500) {
        use std::net::Ipv4Addr;
        let ge = pcs_bpf::compile(&format!("greater {n}"), 96).unwrap();
        let le = pcs_bpf::compile(&format!("less {n}"), 96).unwrap();
        let pkt = pcs_wire::SimPacket::build_udp(
            0, 0, len,
            pcs_wire::MacAddr::ZERO, pcs_wire::MacAddr::BROADCAST,
            Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 9, 9);
        let ge_m = vm::run(&ge, &pkt).unwrap().accepted();
        let le_m = vm::run(&le, &pkt).unwrap().accepted();
        prop_assert_eq!(ge_m, len >= n);
        prop_assert_eq!(le_m, len <= n);
    }
}
