//! A minimal JSON value and recursive-descent parser.
//!
//! The build has no serde_json; this is the read-side counterpart of
//! the hand-rolled renderers in [`pcs_trace::export`] (whose
//! [`pcs_trace::export::validate_json`] accepts the same grammar).
//! Accepts exactly RFC 8259. Numbers are carried as `f64`, which is
//! exact for every integer the ledgers emit below 2^53 — simulated
//! nanosecond and packet counts stay far under that.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (exact for integers below 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved (ledgers render keys in a
    /// deterministic order already).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        skip_ws(b, &mut pos);
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Json::Str(string(b, pos)?)),
        Some(b't') => lit(b, pos, b"true", Json::Bool(true)),
        Some(b'f') => lit(b, pos, b"false", Json::Bool(false)),
        Some(b'n') => lit(b, pos, b"null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {}", *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn lit(b: &[u8], pos: &mut usize, lit: &[u8], v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        members.push((key, value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = hex4(b, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        if (0xd800..0xdc00).contains(&cp) {
                            if b.get(*pos + 1) != Some(&b'\\') || b.get(*pos + 2) != Some(&b'u') {
                                return Err(format!("lone high surrogate at byte {}", *pos));
                            }
                            let lo = hex4(b, *pos + 3)?;
                            *pos += 6;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(format!("bad low surrogate at byte {}", *pos));
                            }
                            let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                            out.push(char::from_u32(c).expect("valid astral code point"));
                        } else if (0xdc00..0xe000).contains(&cp) {
                            return Err(format!("lone low surrogate at byte {}", *pos));
                        } else {
                            out.push(char::from_u32(cp).expect("valid BMP code point"));
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            c if c < 0x20 => return Err(format!("raw control char at byte {}", *pos)),
            _ => {
                // Copy one UTF-8 encoded char verbatim.
                let len = utf8_len(c);
                let end = *pos + len;
                let chunk = b
                    .get(*pos..end)
                    .ok_or_else(|| format!("truncated UTF-8 at byte {}", *pos))?;
                let s = std::str::from_utf8(chunk)
                    .map_err(|_| format!("bad UTF-8 at byte {}", *pos))?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
    Err("unterminated string".into())
}

fn hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let chunk = b
        .get(at..at + 4)
        .ok_or_else(|| format!("truncated \\u escape at byte {at}"))?;
    let s = std::str::from_utf8(chunk).map_err(|_| format!("bad \\u escape at byte {at}"))?;
    u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape at byte {at}"))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("bad number at byte {start}"));
    }
    if b[int_start] == b'0' && *pos > int_start + 1 {
        return Err(format!("leading zero at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ASCII number");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("unparseable number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
        let v = Json::parse(r#"{"k":[1,2,{"x":null}],"s":"hi"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        let arr = v.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.0));
        assert_eq!(arr[2].get("x"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn surrogate_pairs_and_raw_utf8_round_trip() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1f600}".into())
        );
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(Json::parse("\"\\ude00\"").is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "tru",
            "\"\\x\"",
            "[]x",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn agrees_with_the_exporters_validator() {
        // Everything this parser accepts, the trace validator accepts,
        // and vice versa over a spread of edge cases.
        for doc in [
            "{}",
            "[]",
            "[1,2.5,-3e-1]",
            r#"{"a":{"b":[true,false,null]}}"#,
            "\"\\u00e9\"",
            "  [\n1\t]  ",
        ] {
            assert!(Json::parse(doc).is_ok(), "{doc}");
            assert!(pcs_trace::export::validate_json(doc).is_ok(), "{doc}");
        }
        for bad in ["{", "[1,]", "nul", "+1", "'x'"] {
            assert!(Json::parse(bad).is_err(), "{bad}");
            assert!(pcs_trace::export::validate_json(bad).is_err(), "{bad}");
        }
    }
}
