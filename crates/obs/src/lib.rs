//! # pcs-obs — cross-run observability for the capture sims
//!
//! The sweep runner already produces deterministic tables, traces and
//! CSVs; this crate adds the *cross-run* layer on top:
//!
//! * **Run ledger** ([`ledger`]) — one fingerprinted JSON manifest per
//!   sweep: every cell's 128-bit config fingerprint, achieved rate,
//!   exact per-stage [`pcs_trace::DropAttribution`], metrics-registry
//!   dump, exact latency percentiles from the mergeable
//!   [`pcs_des::stats::QuantileDigest`], and (when armed) the per-CPU
//!   per-work-kind stage-time account. Rendering is integer-based or
//!   fixed-precision over the collector's deterministic cell order, so
//!   a ledger is byte-identical at any `--jobs`, `--chunk`, `--depth`
//!   or `--stream-cache` setting. The host-side `profile` block is the
//!   one documented exception (it reads the host clock) and is ignored
//!   by the diff engine.
//! * **JSON reader** ([`json`]) — a minimal recursive-descent RFC 8259
//!   parser (the build has no serde_json), just enough to load ledgers
//!   back.
//! * **Diff engine** ([`diff`]) — matches two ledgers cell by cell and
//!   ranks every numeric observable that moved: which cells drifted,
//!   which attribution bucket or stage time moved, and by how much.
//!   Backs `pcs-experiments obs diff A.json B.json [--fail-on-drift]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod json;
pub mod ledger;

pub use diff::{diff_ledgers, CellDiff, DiffReport, Drift};
pub use json::Json;
pub use ledger::{
    render_ledger, render_profile, ExperimentProfile, HostProfile, Ledger, LedgerCell, LedgerMeta,
    LedgerSut, LEDGER_VERSION,
};
