//! The run ledger: a deterministic, fingerprinted JSON manifest of one
//! sweep invocation.
//!
//! One ledger records every cell the sweep executed: the cell's 128-bit
//! memoization fingerprint (SUT set + workload + rate + repeat + fault
//! plan), its achieved rate, and per SUT the exact
//! [`DropAttribution`], the full metrics-registry dump, exact latency
//! percentiles from the mergeable quantile digests, and — when
//! stage-time attribution was armed — the per-CPU per-work-kind time
//! account.
//!
//! Everything simulation-derived renders integer-based or at fixed
//! precision, in the collector's deterministic (label, key) cell order,
//! so two invocations of the same configuration produce byte-identical
//! ledgers at any `--jobs`, `--chunk`, `--depth` or `--stream-cache`
//! setting — `cmp A.json B.json` is a valid determinism check. The one
//! exception is the optional host-side `profile` block (`--profile`),
//! which reads the host clock and varies run to run; the diff engine
//! never looks at it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use pcs_trace::export::escape_json;
use pcs_trace::{CellTrace, DropAttribution, WorkKind};

use crate::json::Json;

/// Schema version stamped into (and checked out of) every ledger.
pub const LEDGER_VERSION: u64 = 1;

/// Run-wide context stamped into the ledger header.
#[derive(Debug, Clone, Default)]
pub struct LedgerMeta {
    /// Scale name (`quick` / `standard` / `full`).
    pub scale: String,
    /// Experiment ids, in registry order.
    pub experiments: Vec<String>,
    /// The armed fault plan's canonical `SPEC:SEED` rendering, if any.
    pub faults: Option<String>,
}

/// Host-side execution profile of one experiment (CLI `--profile`).
///
/// Wall-clock numbers: they describe how fast the host executed the
/// sweep, never what the simulation measured, and vary run to run.
#[derive(Debug, Clone, Default)]
pub struct ExperimentProfile {
    /// Experiment id.
    pub id: String,
    /// Wall-clock seconds for the whole experiment.
    pub wall_s: f64,
    /// Cells simulated.
    pub cells_run: u64,
    /// Cells served from the run cache.
    pub cells_cached: u64,
    /// Packet streams generated (stream-cache misses).
    pub streams_generated: u64,
    /// Packet streams shared by subscription (stream-cache hits).
    pub streams_shared: u64,
    /// High-water mark of resident cached stream bytes.
    pub peak_stream_bytes: u64,
    /// Total wall nanoseconds spent simulating cells.
    pub cell_wall_ns: u64,
    /// Slowest single cell, wall nanoseconds.
    pub cell_wall_ns_max: u64,
    /// Total wall nanoseconds serving run-cache hits.
    pub run_cache_hit_ns: u64,
    /// Total wall nanoseconds acquiring stream subscriptions.
    pub stream_subscribe_ns: u64,
    /// Hot-path buffer-pool gets across the experiment's sims.
    pub pool_gets: u64,
    /// Pool misses (fresh allocations).
    pub pool_misses: u64,
    /// Buffers recycled back into pools.
    pub pool_recycled: u64,
    /// Pool high-water mark (peak free-list population).
    pub pool_high_water: u64,
    /// Sims that ran with macro-batched event admission enabled.
    pub batch_sims_on: u64,
    /// Sims that ran with macro-batching disabled (`PCS_NO_BATCH`).
    pub batch_sims_off: u64,
    /// The engine's coalesced-run length cap (a build constant; recorded
    /// so a ledger pins the batching configuration it ran under).
    pub batch_coalesce_cap: u64,
    /// Coalesced admission runs entered across the experiment's sims.
    pub batch_runs: u64,
    /// Arrivals admitted beyond the first of their run (main-loop
    /// round trips skipped).
    pub batch_coalesced: u64,
    /// Longest single coalesced run, in arrivals.
    pub batch_max_run: u64,
    /// EMA smoothing-factor memo hits.
    pub batch_alpha_hits: u64,
    /// EMA smoothing-factor memo misses.
    pub batch_alpha_misses: u64,
    /// Size-keyed cost memo hits.
    pub batch_size_hits: u64,
    /// Size-keyed cost memo misses.
    pub batch_size_misses: u64,
}

/// The `--profile` roll-up over every experiment in the invocation.
#[derive(Debug, Clone, Default)]
pub struct HostProfile {
    /// One entry per experiment, registry order.
    pub experiments: Vec<ExperimentProfile>,
}

/// Render the host profile as a standalone JSON object (`--profile-json`
/// writes exactly this; the ledger embeds it under `"profile"`).
pub fn render_profile(profile: &HostProfile) -> String {
    let mut out = String::with_capacity(256 * profile.experiments.len().max(1));
    render_profile_into(profile, &mut out);
    out.push('\n');
    out
}

fn render_profile_into(profile: &HostProfile, out: &mut String) {
    out.push_str("{\"host_side\":true,\"experiments\":[");
    for (i, e) in profile.experiments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"id\":\"");
        escape_json(&e.id, out);
        let _ = write!(out, "\",\"wall_s\":");
        f64_field(e.wall_s, 3, out);
        for (k, v) in [
            ("cells_run", e.cells_run),
            ("cells_cached", e.cells_cached),
            ("streams_generated", e.streams_generated),
            ("streams_shared", e.streams_shared),
            ("peak_stream_bytes", e.peak_stream_bytes),
            ("cell_wall_ns", e.cell_wall_ns),
            ("cell_wall_ns_max", e.cell_wall_ns_max),
            ("run_cache_hit_ns", e.run_cache_hit_ns),
            ("stream_subscribe_ns", e.stream_subscribe_ns),
            ("pool_gets", e.pool_gets),
            ("pool_misses", e.pool_misses),
            ("pool_recycled", e.pool_recycled),
            ("pool_high_water", e.pool_high_water),
            ("batch_sims_on", e.batch_sims_on),
            ("batch_sims_off", e.batch_sims_off),
            ("batch_coalesce_cap", e.batch_coalesce_cap),
            ("batch_runs", e.batch_runs),
            ("batch_coalesced", e.batch_coalesced),
            ("batch_max_run", e.batch_max_run),
            ("batch_alpha_hits", e.batch_alpha_hits),
            ("batch_alpha_misses", e.batch_alpha_misses),
            ("batch_size_hits", e.batch_size_hits),
            ("batch_size_misses", e.batch_size_misses),
        ] {
            let _ = write!(out, ",\"{k}\":{v}");
        }
        out.push('}');
    }
    out.push_str("]}");
}

/// Fixed-precision float field; non-finite values become `null` (JSON
/// has no NaN/inf literals).
fn f64_field(v: f64, digits: usize, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v:.digits$}");
    } else {
        out.push_str("null");
    }
}

/// Render one sweep's collected cells (plus run context and an optional
/// host profile) as the ledger JSON document.
pub fn render_ledger(
    meta: &LedgerMeta,
    cells: &[CellTrace],
    profile: Option<&HostProfile>,
) -> String {
    let mut out = String::with_capacity(4096 + cells.len() * 2048);
    let _ = write!(out, "{{\"pcs_ledger\":{LEDGER_VERSION},\"scale\":\"");
    escape_json(&meta.scale, &mut out);
    out.push_str("\",\"experiments\":[");
    for (i, id) in meta.experiments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(id, &mut out);
        out.push('"');
    }
    out.push_str("],\"faults\":");
    match &meta.faults {
        Some(plan) => {
            out.push('"');
            escape_json(plan, &mut out);
            out.push('"');
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"cells\":[");
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n {\"label\":\"");
        escape_json(&cell.label, &mut out);
        let _ = write!(out, "\",\"fingerprint\":\"{:032x}\"", cell.key);
        out.push_str(",\"achieved_mbps\":");
        f64_field(cell.achieved_mbps, 6, &mut out);
        out.push_str(",\"suts\":[");
        for (s, sut) in cell.suts.iter().enumerate() {
            if s > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            render_sut(sut, &mut out);
        }
        out.push_str("]}");
    }
    out.push_str("],\"profile\":");
    match profile {
        Some(p) => render_profile_into(p, &mut out),
        None => out.push_str("null"),
    }
    out.push_str("}\n");
    out
}

fn render_sut(sut: &pcs_trace::SutTrace, out: &mut String) {
    out.push_str("{\"label\":\"");
    escape_json(&sut.label, out);
    out.push_str("\",\"attribution\":[");
    for (app, attr) in sut.attributions.iter().enumerate() {
        if app > 0 {
            out.push(',');
        }
        out.push('{');
        for (i, (col, v)) in DropAttribution::COLUMNS
            .iter()
            .zip(attr.values())
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{col}\":{v}");
        }
        out.push('}');
    }
    out.push_str("],\"counters\":{");
    for (i, (name, v)) in sut.report.metrics.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(name, out);
        let _ = write!(out, "\":{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in sut.report.metrics.gauges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(name, out);
        out.push_str("\":");
        f64_field(v, 6, out);
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in sut.report.metrics.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(name, out);
        let _ = write!(
            out,
            "\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":",
            h.count(),
            h.min(),
            h.max()
        );
        f64_field(h.mean(), 3, out);
        out.push('}');
    }
    out.push_str("},\"latency\":{");
    for (i, (name, d)) in sut.report.metrics.digests().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let [p50, p90, p99, p999] = d.percentiles();
        out.push('"');
        escape_json(name, out);
        let _ = write!(
            out,
            "\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
             \"p50\":{p50},\"p90\":{p90},\"p99\":{p99},\"p999\":{p999}}}",
            d.count(),
            d.sum(),
            d.min(),
            d.max()
        );
    }
    out.push_str("},\"stage_times\":");
    match &sut.stage_times {
        None => out.push_str("null"),
        Some(st) => {
            out.push_str("{\"cpus\":[");
            for (cpu, acct) in st.cpus.iter().enumerate() {
                if cpu > 0 {
                    out.push(',');
                }
                out.push_str("{\"busy\":{");
                for (k, kind) in WorkKind::ALL.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":{}", kind.name(), acct.busy_ns[k]);
                }
                out.push_str("},\"stretch\":{");
                for (k, kind) in WorkKind::ALL.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":{}", kind.name(), acct.stretch_ns[k]);
                }
                let _ = write!(out, "}},\"idle\":{}}}", acct.idle_ns);
            }
            out.push_str("]}");
        }
    }
    out.push('}');
}

// ---------------------------------------------------------------------
// Read side
// ---------------------------------------------------------------------

/// One SUT's observables, loaded back from a ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerSut {
    /// SUT label.
    pub label: String,
    /// Every numeric leaf under the SUT, keyed by its `/`-joined path
    /// (e.g. `attribution/app0/kernel_buffer_drops`,
    /// `latency/wire_to_app_latency_ns/p99`,
    /// `stage_times/cpu0/busy/kernel_batch`).
    pub observables: BTreeMap<String, f64>,
}

/// One cell, loaded back from a ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerCell {
    /// Cell label (`rate=… rep=…`).
    pub label: String,
    /// The 32-hex-digit configuration fingerprint.
    pub fingerprint: String,
    /// Achieved frame data rate (Mbit/s).
    pub achieved_mbps: f64,
    /// Per-SUT observables, in recorded order.
    pub suts: Vec<LedgerSut>,
}

/// A parsed ledger — the diff engine's input.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    /// Schema version (`pcs_ledger`).
    pub version: u64,
    /// Scale name from the header.
    pub scale: String,
    /// Experiment ids from the header.
    pub experiments: Vec<String>,
    /// Fault-plan rendering from the header, if one was armed.
    pub faults: Option<String>,
    /// Macro-batching configuration summarized from the host profile
    /// block (`"on(cap=N)"`, `"off"`, or `"mixed(cap=N)"`), when the
    /// ledger was written with `--profile` and its sims recorded the
    /// config bit. Pure execution configuration: the diff engine reports
    /// a change here as a config delta, never as simulation drift.
    pub batch_config: Option<String>,
    /// Every recorded cell, in ledger order.
    pub cells: Vec<LedgerCell>,
}

impl Ledger {
    /// Parse a ledger document, checking the schema marker.
    pub fn parse(text: &str) -> Result<Ledger, String> {
        let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
        let version = doc
            .get("pcs_ledger")
            .and_then(Json::as_f64)
            .ok_or("missing pcs_ledger version marker")? as u64;
        if version != LEDGER_VERSION {
            return Err(format!(
                "ledger version {version} unsupported (expected {LEDGER_VERSION})"
            ));
        }
        let scale = doc
            .get("scale")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_owned();
        let experiments = doc
            .get("experiments")
            .and_then(Json::as_arr)
            .map(|ids| {
                ids.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_owned)
                    .collect()
            })
            .unwrap_or_default();
        let faults = doc.get("faults").and_then(Json::as_str).map(str::to_owned);
        let batch_config = parse_batch_config(&doc);
        let mut cells = Vec::new();
        for cell in doc.get("cells").and_then(Json::as_arr).unwrap_or(&[]) {
            let label = cell
                .get("label")
                .and_then(Json::as_str)
                .ok_or("cell without a label")?
                .to_owned();
            let fingerprint = cell
                .get("fingerprint")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("cell '{label}' without a fingerprint"))?
                .to_owned();
            let achieved_mbps = cell
                .get("achieved_mbps")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let mut suts = Vec::new();
            for sut in cell.get("suts").and_then(Json::as_arr).unwrap_or(&[]) {
                let label = sut
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned();
                let mut observables = BTreeMap::new();
                flatten("", sut, &mut observables);
                observables.remove("label");
                suts.push(LedgerSut { label, observables });
            }
            cells.push(LedgerCell {
                label,
                fingerprint,
                achieved_mbps,
                suts,
            });
        }
        Ok(Ledger {
            version,
            scale,
            experiments,
            faults,
            batch_config,
            cells,
        })
    }
}

/// Summarize the profile block's batching counters into the ledger's
/// [`Ledger::batch_config`] string. `None` when the ledger carries no
/// profile or its sims predate the batching counters.
fn parse_batch_config(doc: &Json) -> Option<String> {
    let experiments = doc.get("profile")?.get("experiments")?.as_arr()?;
    let field = |e: &Json, k: &str| e.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let (mut on, mut off, mut cap) = (0u64, 0u64, 0u64);
    for e in experiments {
        on += field(e, "batch_sims_on");
        off += field(e, "batch_sims_off");
        cap = cap.max(field(e, "batch_coalesce_cap"));
    }
    match (on, off) {
        (0, 0) => None,
        (_, 0) => Some(format!("on(cap={cap})")),
        (0, _) => Some("off".to_owned()),
        _ => Some(format!("mixed(cap={cap})")),
    }
}

/// Collect every numeric leaf under `v` into `out`, keyed by the
/// `/`-joined path. Arrays index as `appN` under `attribution` and
/// `cpuN` under `cpus` (matching the rendered schema); other arrays by
/// bare index.
fn flatten(prefix: &str, v: &Json, out: &mut BTreeMap<String, f64>) {
    match v {
        Json::Num(n) => {
            out.insert(prefix.to_owned(), *n);
        }
        Json::Obj(members) => {
            for (k, child) in members {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}/{k}")
                };
                // `cpus` is structural: splice the array straight under
                // the stage_times prefix as cpuN.
                if k == "cpus" {
                    if let Json::Arr(items) = child {
                        for (i, item) in items.iter().enumerate() {
                            flatten(&format!("{prefix}/cpu{i}"), item, out);
                        }
                        continue;
                    }
                }
                flatten(&path, child, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let tag = if prefix.ends_with("attribution") {
                    format!("{prefix}/app{i}")
                } else {
                    format!("{prefix}/{i}")
                };
                flatten(&tag, item, out);
            }
        }
        Json::Null | Json::Bool(_) | Json::Str(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_trace::export::validate_json;
    use pcs_trace::{MetricsRegistry, StageTimes, SutTrace, TraceReport};

    fn sample_cells() -> Vec<CellTrace> {
        let mut metrics = MetricsRegistry::new();
        metrics.inc("irq_fires", 7);
        metrics.set_gauge("final_depth", 1.25);
        metrics.set_gauge("bad", f64::NAN);
        metrics.observe("batch", 4);
        let d = metrics.digest_entry("wire_to_app_latency_ns");
        for v in [100u64, 200, 300, 400] {
            d.record(v);
        }
        let mut st = StageTimes::new(2);
        st.add_busy(0, WorkKind::KernelBatch, 1000);
        st.add_stretch(0, WorkKind::KernelBatch, 100);
        st.add_idle(1, 500);
        vec![CellTrace {
            label: "rate=100.0 rep=0".into(),
            key: 0xfeed_f00d,
            achieved_mbps: 99.5,
            suts: vec![SutTrace {
                label: "FreeBSD \"tcpdump\"".into(),
                report: TraceReport {
                    metrics,
                    ..TraceReport::default()
                },
                attributions: vec![DropAttribution {
                    generated: 10,
                    kernel_buffer_drops: 2,
                    delivered: 8,
                    ..DropAttribution::default()
                }],
                stage_times: Some(st),
            }],
        }]
    }

    fn meta() -> LedgerMeta {
        LedgerMeta {
            scale: "quick".into(),
            experiments: vec!["fig6.4a".into()],
            faults: None,
        }
    }

    #[test]
    fn ledger_renders_valid_deterministic_json() {
        let cells = sample_cells();
        let a = render_ledger(&meta(), &cells, None);
        let b = render_ledger(&meta(), &cells, None);
        assert_eq!(a, b, "rendering must be deterministic");
        validate_json(&a).expect("ledger must be well-formed JSON");
        assert!(a.contains("\"pcs_ledger\":1"));
        assert!(a.contains("\"fingerprint\":\"000000000000000000000000feedf00d\""));
        assert!(a.contains("\"kernel_buffer_drops\":2"));
        assert!(a.contains("\"p99\":400"));
        assert!(a.contains("\"kernel_batch\":1000"));
        assert!(a.contains("\"gauges\":{\"bad\":null,\"final_depth\":1.250000"));
        assert!(a.contains("\"profile\":null"));
        // Escaped SUT label survived.
        assert!(a.contains("FreeBSD \\\"tcpdump\\\""));
    }

    #[test]
    fn ledger_round_trips_through_the_parser() {
        let text = render_ledger(&meta(), &sample_cells(), None);
        let ledger = Ledger::parse(&text).expect("parse back");
        assert_eq!(ledger.version, LEDGER_VERSION);
        assert_eq!(ledger.scale, "quick");
        assert_eq!(ledger.experiments, vec!["fig6.4a".to_string()]);
        assert_eq!(ledger.faults, None);
        assert_eq!(ledger.cells.len(), 1);
        let cell = &ledger.cells[0];
        assert_eq!(cell.label, "rate=100.0 rep=0");
        assert_eq!(cell.achieved_mbps, 99.5);
        let sut = &cell.suts[0];
        assert_eq!(sut.label, "FreeBSD \"tcpdump\"");
        let get = |k: &str| sut.observables.get(k).copied();
        assert_eq!(get("attribution/app0/kernel_buffer_drops"), Some(2.0));
        assert_eq!(get("counters/irq_fires"), Some(7.0));
        assert_eq!(get("latency/wire_to_app_latency_ns/p99"), Some(400.0));
        assert_eq!(get("stage_times/cpu0/busy/kernel_batch"), Some(1000.0));
        assert_eq!(get("stage_times/cpu0/stretch/kernel_batch"), Some(100.0));
        assert_eq!(get("stage_times/cpu1/idle"), Some(500.0));
        // NaN gauge rendered null: absent from observables, not poison.
        assert_eq!(get("gauges/bad"), None);
        assert_eq!(get("gauges/final_depth"), Some(1.25));
    }

    #[test]
    fn profile_block_renders_and_validates() {
        let profile = HostProfile {
            experiments: vec![ExperimentProfile {
                id: "fig6.4a".into(),
                wall_s: 1.5,
                cells_run: 10,
                pool_gets: 123,
                batch_sims_on: 4,
                batch_coalesce_cap: 64,
                batch_runs: 40,
                batch_coalesced: 360,
                ..ExperimentProfile::default()
            }],
        };
        let standalone = render_profile(&profile);
        validate_json(&standalone).expect("profile JSON must be well-formed");
        assert!(standalone.contains("\"host_side\":true"));
        assert!(standalone.contains("\"wall_s\":1.500"));
        assert!(standalone.contains("\"pool_gets\":123"));
        assert!(standalone.contains("\"batch_sims_on\":4"));
        assert!(standalone.contains("\"batch_coalesced\":360"));
        let embedded = render_ledger(&meta(), &sample_cells(), Some(&profile));
        validate_json(&embedded).expect("ledger with profile must be well-formed");
        assert!(embedded.contains("\"profile\":{\"host_side\":true"));
    }

    #[test]
    fn batch_config_summarizes_the_profile() {
        // No profile: configuration unrecorded.
        let plain = render_ledger(&meta(), &sample_cells(), None);
        assert_eq!(Ledger::parse(&plain).unwrap().batch_config, None);
        let with = |on: u64, off: u64| {
            let profile = HostProfile {
                experiments: vec![ExperimentProfile {
                    id: "fig6.4a".into(),
                    batch_sims_on: on,
                    batch_sims_off: off,
                    batch_coalesce_cap: if on > 0 { 64 } else { 0 },
                    ..ExperimentProfile::default()
                }],
            };
            let text = render_ledger(&meta(), &sample_cells(), Some(&profile));
            Ledger::parse(&text).unwrap().batch_config
        };
        assert_eq!(with(3, 0), Some("on(cap=64)".to_owned()));
        assert_eq!(with(0, 3), Some("off".to_owned()));
        assert_eq!(with(2, 1), Some("mixed(cap=64)".to_owned()));
        assert_eq!(with(0, 0), None, "pre-batching profile: unrecorded");
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(Ledger::parse("{}").is_err());
        assert!(Ledger::parse("[1,2]").is_err());
        assert!(Ledger::parse("{\"pcs_ledger\":99,\"cells\":[]}").is_err());
        assert!(Ledger::parse("not json").is_err());
    }
}
