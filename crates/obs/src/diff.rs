//! The ledger diff engine: rank what moved between two runs.
//!
//! Cells are matched by label (duplicate labels pair up in ledger
//! order, which is the collector's deterministic order). Within a
//! matched pair every numeric observable — achieved rate, attribution
//! buckets, counters, gauges, histogram summaries, latency percentiles,
//! stage times — is compared exactly: the sims are deterministic, so
//! *any* difference is real drift, not noise. Drifts are ranked by
//! relative magnitude `|a-b| / max(|a|, |b|, 1)` so a 2% shift in a
//! million-packet bucket outranks an absolute wobble in a tiny one.
//!
//! A changed cell *fingerprint* is reported before any value drift: it
//! means the two runs did not even execute the same configuration
//! (different fault plan, workload or SUT set), so value deltas for
//! that cell explain a config change, not a regression.
//!
//! The host-side `profile` block is never compared.

use std::collections::BTreeMap;

use crate::ledger::{Ledger, LedgerCell};

/// One numeric observable that differs between the runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// `/`-joined path of the observable (e.g.
    /// `suts/FreeBSD "tcpdump"/attribution/app0/kernel_buffer_drops`).
    pub path: String,
    /// Value in ledger A (`None` — the path is absent there).
    pub a: Option<f64>,
    /// Value in ledger B (`None` — the path is absent there).
    pub b: Option<f64>,
    /// Relative magnitude `|a-b| / max(|a|, |b|, 1)`; `1.0` for an
    /// absent side.
    pub rel: f64,
}

/// Everything that differs for one matched (or unmatched) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// Cell label.
    pub label: String,
    /// Which ledger the cell is missing from, if unmatched
    /// (`"A"` / `"B"`).
    pub only_in: Option<&'static str>,
    /// The config fingerprints disagree: the runs executed different
    /// configurations for this cell.
    pub fingerprint_changed: bool,
    /// Value drifts, ranked by [`Drift::rel`] descending (path
    /// ascending on ties).
    pub drifts: Vec<Drift>,
}

impl CellDiff {
    /// Largest relative drift in this cell (fingerprint or missing cell
    /// counts as `1.0`).
    pub fn severity(&self) -> f64 {
        let base = if self.only_in.is_some() || self.fingerprint_changed {
            1.0
        } else {
            0.0
        };
        self.drifts.first().map_or(base, |d| d.rel.max(base))
    }
}

/// The full comparison of two ledgers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Cells present in ledger A.
    pub cells_a: usize,
    /// Cells present in ledger B.
    pub cells_b: usize,
    /// Cells compared value-by-value (matched by label).
    pub cells_compared: usize,
    /// The two sides recorded different batching configurations
    /// (`Ledger::batch_config`): `(a, b)` with `"unrecorded"` standing
    /// in for an absent side. A *config delta*, not drift — it never
    /// trips [`DiffReport::has_drift`]; it explains why cell values may
    /// legitimately be expected to match (batching is observably
    /// invisible) while the host-side cost profile differs.
    pub batch_config: Option<(String, String)>,
    /// Every cell with at least one difference, ranked by severity
    /// descending (label ascending on ties). Clean cells are omitted.
    pub cells: Vec<CellDiff>,
}

impl DiffReport {
    /// `true` when any cell differs in any way. Configuration deltas
    /// ([`DiffReport::batch_config`]) do not count.
    pub fn has_drift(&self) -> bool {
        !self.cells.is_empty()
    }

    /// Total number of drifted observables across all cells.
    pub fn drift_count(&self) -> usize {
        self.cells.iter().map(|c| c.drifts.len()).sum()
    }

    /// Render the ranked report, showing at most `per_cell` drifts per
    /// cell.
    pub fn render(&self, per_cell: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "obs diff: {} vs {} cells, {} compared, {} cells drifted ({} observables)",
            self.cells_a,
            self.cells_b,
            self.cells_compared,
            self.cells.len(),
            self.drift_count()
        );
        if let Some((x, y)) = &self.batch_config {
            let _ = writeln!(
                out,
                "! batching config changed: {x} -> {y} (host config delta, not simulation drift)"
            );
        }
        if self.cells.is_empty() {
            out.push_str("no drift: every compared observable is identical\n");
            return out;
        }
        for cell in &self.cells {
            match cell.only_in {
                Some(side) => {
                    let _ = writeln!(out, "cell '{}': only in ledger {side}", cell.label);
                    continue;
                }
                None => {
                    let _ = writeln!(out, "cell '{}':", cell.label);
                }
            }
            if cell.fingerprint_changed {
                out.push_str("  ! fingerprint changed — runs executed different configurations\n");
            }
            for d in cell.drifts.iter().take(per_cell) {
                let fmt = |v: Option<f64>| match v {
                    Some(v) => format!("{v}"),
                    None => "absent".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "  {:>8.3}%  {}  {} -> {}",
                    d.rel * 100.0,
                    d.path,
                    fmt(d.a),
                    fmt(d.b)
                );
            }
            if cell.drifts.len() > per_cell {
                let _ = writeln!(out, "  … and {} more", cell.drifts.len() - per_cell);
            }
        }
        out
    }
}

/// Relative drift magnitude: `|a-b| / max(|a|, |b|, 1)`.
fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// Flatten one cell into `path -> value` over achieved rate and every
/// SUT observable.
fn cell_values(cell: &LedgerCell) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    out.insert("achieved_mbps".to_owned(), cell.achieved_mbps);
    for sut in &cell.suts {
        for (path, &v) in &sut.observables {
            out.insert(format!("suts/{}/{path}", sut.label), v);
        }
    }
    out
}

fn diff_cell(a: &LedgerCell, b: &LedgerCell) -> CellDiff {
    let va = cell_values(a);
    let vb = cell_values(b);
    let mut drifts = Vec::new();
    for (path, &x) in &va {
        match vb.get(path) {
            Some(&y) if x == y => {}
            Some(&y) => drifts.push(Drift {
                path: path.clone(),
                a: Some(x),
                b: Some(y),
                rel: rel(x, y),
            }),
            None => drifts.push(Drift {
                path: path.clone(),
                a: Some(x),
                b: None,
                rel: 1.0,
            }),
        }
    }
    for (path, &y) in &vb {
        if !va.contains_key(path) {
            drifts.push(Drift {
                path: path.clone(),
                a: None,
                b: Some(y),
                rel: 1.0,
            });
        }
    }
    drifts.sort_by(|p, q| {
        q.rel
            .partial_cmp(&p.rel)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| p.path.cmp(&q.path))
    });
    CellDiff {
        label: a.label.clone(),
        only_in: None,
        fingerprint_changed: a.fingerprint != b.fingerprint,
        drifts,
    }
}

/// Compare two parsed ledgers cell by cell.
pub fn diff_ledgers(a: &Ledger, b: &Ledger) -> DiffReport {
    // Group each side's cells by label, preserving ledger order within
    // a label so duplicate labels (repeats across experiments) pair
    // deterministically.
    let mut by_label_b: BTreeMap<&str, Vec<&LedgerCell>> = BTreeMap::new();
    for cell in &b.cells {
        by_label_b.entry(&cell.label).or_default().push(cell);
    }
    let mut used: BTreeMap<&str, usize> = BTreeMap::new();
    let mut cells = Vec::new();
    let mut compared = 0usize;
    for cell in &a.cells {
        let peers = by_label_b.get(cell.label.as_str());
        let idx = used.entry(&cell.label).or_insert(0);
        match peers.and_then(|p| p.get(*idx)) {
            Some(peer) => {
                *idx += 1;
                compared += 1;
                let d = diff_cell(cell, peer);
                if d.fingerprint_changed || !d.drifts.is_empty() {
                    cells.push(d);
                }
            }
            None => cells.push(CellDiff {
                label: cell.label.clone(),
                only_in: Some("A"),
                fingerprint_changed: false,
                drifts: Vec::new(),
            }),
        }
    }
    for (label, peers) in &by_label_b {
        let taken = used.get(label).copied().unwrap_or(0);
        for _ in taken..peers.len() {
            cells.push(CellDiff {
                label: (*label).to_owned(),
                only_in: Some("B"),
                fingerprint_changed: false,
                drifts: Vec::new(),
            });
        }
    }
    cells.sort_by(|p, q| {
        q.severity()
            .partial_cmp(&p.severity())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| p.label.cmp(&q.label))
    });
    let batch_config = (a.batch_config != b.batch_config).then(|| {
        let side = |c: &Option<String>| c.clone().unwrap_or_else(|| "unrecorded".to_owned());
        (side(&a.batch_config), side(&b.batch_config))
    });
    DiffReport {
        cells_a: a.cells.len(),
        cells_b: b.cells.len(),
        cells_compared: compared,
        batch_config,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::LedgerSut;
    use std::collections::BTreeMap;

    fn cell(label: &str, fp: &str, kv: &[(&str, f64)]) -> LedgerCell {
        let mut observables = BTreeMap::new();
        for (k, v) in kv {
            observables.insert((*k).to_owned(), *v);
        }
        LedgerCell {
            label: label.to_owned(),
            fingerprint: fp.to_owned(),
            achieved_mbps: 100.0,
            suts: vec![LedgerSut {
                label: "sut".to_owned(),
                observables,
            }],
        }
    }

    fn ledger(cells: Vec<LedgerCell>) -> Ledger {
        Ledger {
            version: 1,
            scale: "quick".into(),
            experiments: vec!["fig6.4a".into()],
            faults: None,
            batch_config: None,
            cells,
        }
    }

    #[test]
    fn identical_ledgers_are_clean() {
        let a = ledger(vec![cell("r=100", "aa", &[("counters/x", 5.0)])]);
        let report = diff_ledgers(&a, &a.clone());
        assert!(!report.has_drift());
        assert_eq!(report.cells_compared, 1);
        let text = report.render(8);
        assert!(text.contains("no drift"), "{text}");
    }

    #[test]
    fn value_drift_is_ranked_by_relative_magnitude() {
        let a = ledger(vec![cell(
            "r=100",
            "aa",
            &[
                ("attribution/app0/kernel_buffer_drops", 1000.0),
                ("counters/irq_fires", 500.0),
            ],
        )]);
        let b = ledger(vec![cell(
            "r=100",
            "aa",
            &[
                ("attribution/app0/kernel_buffer_drops", 4000.0),
                ("counters/irq_fires", 501.0),
            ],
        )]);
        let report = diff_ledgers(&a, &b);
        assert!(report.has_drift());
        assert_eq!(report.drift_count(), 2);
        let drifts = &report.cells[0].drifts;
        assert_eq!(
            drifts[0].path, "suts/sut/attribution/app0/kernel_buffer_drops",
            "largest relative mover ranks first"
        );
        assert!(drifts[0].rel > drifts[1].rel);
        let text = report.render(8);
        assert!(text.contains("kernel_buffer_drops"), "{text}");
    }

    #[test]
    fn fingerprint_change_is_reported_before_values() {
        let a = ledger(vec![cell("r=100", "aa", &[("counters/x", 5.0)])]);
        let b = ledger(vec![cell("r=100", "bb", &[("counters/x", 5.0)])]);
        let report = diff_ledgers(&a, &b);
        assert!(report.has_drift());
        assert!(report.cells[0].fingerprint_changed);
        assert!(report.cells[0].drifts.is_empty());
        assert!(report.render(8).contains("fingerprint changed"));
    }

    #[test]
    fn unmatched_cells_and_absent_paths_are_drift() {
        let a = ledger(vec![
            cell("r=100", "aa", &[("counters/x", 5.0)]),
            cell("r=200", "cc", &[("counters/x", 7.0)]),
        ]);
        let b = ledger(vec![cell("r=100", "aa", &[("counters/y", 5.0)])]);
        let report = diff_ledgers(&a, &b);
        assert!(report.has_drift());
        assert_eq!(report.cells_compared, 1);
        let only: Vec<_> = report
            .cells
            .iter()
            .filter_map(|c| c.only_in.map(|s| (c.label.clone(), s)))
            .collect();
        assert_eq!(only, vec![("r=200".to_owned(), "A")]);
        let matched = report.cells.iter().find(|c| c.only_in.is_none()).unwrap();
        // x only in A, y only in B: two absent-path drifts at rel 1.0.
        assert_eq!(matched.drifts.len(), 2);
        assert!(matched.drifts.iter().all(|d| d.rel == 1.0));
        let text = report.render(8);
        assert!(text.contains("only in ledger A"), "{text}");
        assert!(text.contains("absent"), "{text}");
    }

    #[test]
    fn batch_config_delta_is_reported_but_is_not_drift() {
        let a = ledger(vec![cell("r=100", "aa", &[("counters/x", 5.0)])]);
        let mut b = a.clone();
        b.batch_config = Some("off".to_owned());
        let mut a = a;
        a.batch_config = Some("on(cap=64)".to_owned());
        let report = diff_ledgers(&a, &b);
        assert!(!report.has_drift(), "config delta must not count as drift");
        assert_eq!(
            report.batch_config,
            Some(("on(cap=64)".to_owned(), "off".to_owned()))
        );
        let text = report.render(8);
        assert!(
            text.contains("batching config changed: on(cap=64) -> off"),
            "{text}"
        );
        assert!(text.contains("no drift"), "{text}");
        // An unrecorded side renders as such.
        b.batch_config = None;
        let report = diff_ledgers(&a, &b);
        assert_eq!(
            report.batch_config,
            Some(("on(cap=64)".to_owned(), "unrecorded".to_owned()))
        );
        // Matching configs stay silent.
        b.batch_config = a.batch_config.clone();
        assert_eq!(diff_ledgers(&a, &b).batch_config, None);
    }

    #[test]
    fn duplicate_labels_pair_in_order() {
        let a = ledger(vec![
            cell("r=100", "aa", &[("counters/x", 1.0)]),
            cell("r=100", "bb", &[("counters/x", 2.0)]),
        ]);
        let b = ledger(vec![
            cell("r=100", "aa", &[("counters/x", 1.0)]),
            cell("r=100", "bb", &[("counters/x", 2.0)]),
        ]);
        assert!(!diff_ledgers(&a, &b).has_drift());
    }
}
