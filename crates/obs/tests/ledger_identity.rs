//! Cross-knob byte-identity of the run ledger.
//!
//! The ledger's whole contract is that execution knobs — worker count,
//! chunk size, stream caching — never show through: the same sweep must
//! render byte-for-byte the same manifest (fingerprints, attribution,
//! metrics, exact latency percentiles, stage times) at any setting, so
//! `cmp A.json B.json` and `obs diff --fail-on-drift` are valid CI
//! gates. This drives a real (tiny) figure sweep through the public
//! harness at every knob combination and compares whole documents.

use std::sync::Arc;

use pcs_core::{figures, ExecConfig, PipelineConfig, Scale};
use pcs_obs::{diff_ledgers, render_ledger, Ledger, LedgerMeta};
use pcs_trace::{StageFilter, TraceCollector, TraceSpec};

/// A sweep small enough for a debug-build test, big enough to drop
/// packets (so attribution and latency digests have teeth).
fn tiny() -> Scale {
    Scale {
        count: 4_000,
        repeats: 1,
        rates: vec![Some(400.0), None],
    }
}

/// Run the fig6.4a sweep with the given knobs and render its ledger.
fn ledger_at(jobs: usize, chunk: usize, stream_cache: u64) -> String {
    let collector = Arc::new(TraceCollector::new(TraceSpec {
        filter: StageFilter::none(),
        ..TraceSpec::default()
    }));
    let pipeline = PipelineConfig {
        chunk_packets: chunk,
        depth_chunks: 4,
        stream_cache_bytes: stream_cache,
    };
    let exec = ExecConfig::with_jobs(jobs)
        .with_pipeline(pipeline)
        .with_trace(Arc::clone(&collector))
        .with_stage_times(true);
    let experiment = figures::fig6_4_buffer_sweep(&tiny(), false, &exec);
    assert!(!experiment.to_table().is_empty());
    let meta = LedgerMeta {
        scale: "tiny".into(),
        experiments: vec!["fig6.4a".into()],
        faults: None,
    };
    render_ledger(&meta, &collector.cells(), None)
}

#[test]
fn ledger_is_byte_identical_across_jobs_chunk_and_stream_cache() {
    let reference = ledger_at(1, 4096, 1 << 30);
    for (jobs, chunk, cache) in [
        (4, 4096, 1 << 30),
        (1, 1, 1 << 30),
        (4, 1, 1 << 30),
        (4, 4096, 0),
        (2, 0, 1 << 30), // materialized reference path
    ] {
        let other = ledger_at(jobs, chunk, cache);
        assert_eq!(
            reference, other,
            "ledger changed at --jobs {jobs} --chunk {chunk} --stream-cache {cache}"
        );
    }
    // The reference parses back and self-diffs clean.
    let parsed = Ledger::parse(&reference).expect("ledger parses");
    assert!(!parsed.cells.is_empty());
    let report = diff_ledgers(&parsed, &parsed.clone());
    assert!(!report.has_drift());
    // Stage times and exact latency percentiles actually made it in.
    let sut = &parsed.cells[0].suts[0];
    assert!(sut
        .observables
        .keys()
        .any(|k| k.starts_with("stage_times/cpu0/busy/")));
    assert!(sut
        .observables
        .contains_key("latency/wire_to_app_latency_ns/p99"));
}
