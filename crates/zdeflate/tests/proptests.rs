//! Property tests: compression must be lossless at every level, for any
//! input.

use pcs_zdeflate::{deflate, gunzip, inflate, GzWriter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// deflate ∘ inflate = id, all levels, arbitrary bytes.
    #[test]
    fn deflate_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096), level in 0u8..=9) {
        let c = deflate(&data, level);
        prop_assert_eq!(inflate(&c).expect("inflate"), data);
    }

    /// Highly repetitive data (the LZ77 hot path) round-trips and shrinks.
    #[test]
    fn repetitive_roundtrip(byte in any::<u8>(), n in 1usize..20_000, level in 1u8..=9) {
        let data = vec![byte; n];
        let c = deflate(&data, level);
        prop_assert_eq!(inflate(&c).expect("inflate"), data.clone());
        if n > 256 {
            prop_assert!(c.len() < data.len(), "{n} bytes grew to {}", c.len());
        }
    }

    /// Structured data with mixed match lengths round-trips.
    #[test]
    fn patterned_roundtrip(seed in any::<u64>(), level in 1u8..=9) {
        // Pseudo-text: repeated words with varying separators.
        let words = ["packet", "capture", "gigabit", "filter", "buffer"];
        let mut s = String::new();
        let mut x = seed | 1;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.push_str(words[(x >> 33) as usize % words.len()]);
            if x & 7 == 0 { s.push('\n'); } else { s.push(' '); }
        }
        let data = s.into_bytes();
        let c = deflate(&data, level);
        prop_assert_eq!(inflate(&c).expect("inflate"), data);
    }

    /// gzip framing round-trips with incremental writes.
    #[test]
    fn gz_roundtrip(chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 0..8), level in 0u8..=9) {
        let mut w = GzWriter::new(level);
        let mut expect = Vec::new();
        for c in &chunks {
            w.write(c);
            expect.extend_from_slice(c);
        }
        prop_assert_eq!(gunzip(&w.finish()).expect("gunzip"), expect);
    }

    /// The decoder never panics on arbitrary (usually invalid) input.
    #[test]
    fn inflate_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = inflate(&data);
        let _ = gunzip(&data);
    }

    /// crc32 is order-insensitive to chunking.
    #[test]
    fn crc32_chunking(data in proptest::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        use pcs_zdeflate::crc32::{crc32, Crc32};
        let split = split.min(data.len());
        let mut s = Crc32::new();
        s.update(&data[..split]);
        s.update(&data[split..]);
        prop_assert_eq!(s.finish(), crc32(&data));
    }
}
