//! The DEFLATE compressor: LZ77 hash-chain matching + fixed-Huffman
//! encoding (RFC 1951).
//!
//! Compression levels mirror zlib's: level 0 stores, levels 1–9 trade CPU
//! effort (hash-chain depth, lazy matching) for ratio. The capture
//! application uses levels 3 and 9 for the paper's "additional data
//! compression" load experiments (Fig. 6.11, Fig. B.3).

use crate::bitio::BitWriter;
use crate::tables::*;

/// Compression effort parameters, indexed by level (zlib-style).
#[derive(Debug, Clone, Copy)]
pub struct LevelParams {
    /// Maximum hash-chain positions examined per match attempt.
    pub max_chain: usize,
    /// Stop searching once a match of this length is found.
    pub good_len: usize,
    /// Use lazy matching (try the next position before committing).
    pub lazy: bool,
}

impl LevelParams {
    /// Parameters for a zlib-style level 0..=9.
    pub fn for_level(level: u8) -> LevelParams {
        match level.min(9) {
            0 => LevelParams {
                max_chain: 0,
                good_len: 0,
                lazy: false,
            },
            1 => LevelParams {
                max_chain: 4,
                good_len: 8,
                lazy: false,
            },
            2 => LevelParams {
                max_chain: 8,
                good_len: 16,
                lazy: false,
            },
            3 => LevelParams {
                max_chain: 32,
                good_len: 32,
                lazy: false,
            },
            4 => LevelParams {
                max_chain: 16,
                good_len: 16,
                lazy: true,
            },
            5 => LevelParams {
                max_chain: 32,
                good_len: 32,
                lazy: true,
            },
            6 => LevelParams {
                max_chain: 128,
                good_len: 128,
                lazy: true,
            },
            7 => LevelParams {
                max_chain: 256,
                good_len: 128,
                lazy: true,
            },
            8 => LevelParams {
                max_chain: 1024,
                good_len: 258,
                lazy: true,
            },
            _ => LevelParams {
                max_chain: 4096,
                good_len: 258,
                lazy: true,
            },
        }
    }
}

const HASH_BITS: usize = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input` as one complete DEFLATE stream (final block set).
/// Level 0 emits stored blocks; levels 1–9 emit a fixed-Huffman block.
pub fn deflate(input: &[u8], level: u8) -> Vec<u8> {
    let mut w = BitWriter::new();
    if level == 0 {
        emit_stored(&mut w, input);
        return w.finish();
    }
    let params = LevelParams::for_level(level);

    // BFINAL=1, BTYPE=01 (fixed Huffman).
    w.write_bits(1, 1);
    w.write_bits(0b01, 2);

    // Hash-chain LZ77.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; input.len()];
    let n = input.len();
    let mut i = 0usize;

    let insert = |head: &mut [usize], prev: &mut [usize], data: &[u8], pos: usize| {
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            prev[pos] = head[h];
            head[h] = pos;
        }
    };

    let find_match = |head: &[usize], prev: &[usize], data: &[u8], pos: usize| -> (usize, usize) {
        if pos + MIN_MATCH > data.len() {
            return (0, 0);
        }
        let h = hash3(data, pos);
        let mut cand = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let max_len = (data.len() - pos).min(MAX_MATCH);
        let mut chain = params.max_chain;
        while cand != usize::MAX && chain > 0 {
            let dist = pos - cand;
            if dist > WINDOW_SIZE {
                break;
            }
            // Quick reject using the byte past the current best.
            if best_len == 0 || data[cand + best_len] == data[pos + best_len] {
                let mut l = 0usize;
                while l < max_len && data[cand + l] == data[pos + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l >= params.good_len || l == max_len {
                        break;
                    }
                }
            }
            cand = prev[cand];
            chain -= 1;
        }
        if best_len >= MIN_MATCH {
            (best_len, best_dist)
        } else {
            (0, 0)
        }
    };

    let emit_literal = |w: &mut BitWriter, b: u8| {
        let (code, bits) = fixed_litlen_code(b as usize);
        w.write_code(code, bits);
    };
    let emit_match = |w: &mut BitWriter, len: usize, dist: usize| {
        let (lidx, lextra, lebits) = length_code(len);
        let (code, bits) = fixed_litlen_code(257 + lidx);
        w.write_code(code, bits);
        if lebits > 0 {
            w.write_bits(lextra, lebits as u32);
        }
        let (dcode, dextra, debits) = dist_code(dist);
        w.write_code(dcode as u32, 5);
        if debits > 0 {
            w.write_bits(dextra, debits as u32);
        }
    };

    while i < n {
        let (mut len, mut dist) = find_match(&head, &prev, input, i);
        if len >= MIN_MATCH && params.lazy && i + 1 < n {
            // Lazy evaluation: if the next position matches longer, emit a
            // literal here instead.
            insert(&mut head, &mut prev, input, i);
            let (nlen, ndist) = find_match(&head, &prev, input, i + 1);
            if nlen > len {
                emit_literal(&mut w, input[i]);
                i += 1;
                len = nlen;
                dist = ndist;
            } else {
                // Keep the original match; the i-th insert already happened.
                emit_match(&mut w, len, dist);
                let end = i + len;
                i += 1; // inserted above
                while i < end {
                    insert(&mut head, &mut prev, input, i);
                    i += 1;
                }
                continue;
            }
        }
        if len >= MIN_MATCH {
            emit_match(&mut w, len, dist);
            let end = i + len;
            while i < end {
                insert(&mut head, &mut prev, input, i);
                i += 1;
            }
        } else {
            emit_literal(&mut w, input[i]);
            insert(&mut head, &mut prev, input, i);
            i += 1;
        }
    }

    // End of block.
    let (code, bits) = fixed_litlen_code(256);
    w.write_code(code, bits);
    w.finish()
}

/// Emit `input` as stored (uncompressed) blocks.
fn emit_stored(w: &mut BitWriter, input: &[u8]) {
    let mut chunks = input.chunks(0xffff).peekable();
    if input.is_empty() {
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0b00, 2); // stored
        w.align_byte();
        w.write_bytes(&0u16.to_le_bytes());
        w.write_bytes(&0xffffu16.to_le_bytes());
        return;
    }
    while let Some(chunk) = chunks.next() {
        let is_final = chunks.peek().is_none();
        w.write_bits(is_final as u32, 1);
        w.write_bits(0b00, 2);
        w.align_byte();
        let len = chunk.len() as u16;
        w.write_bytes(&len.to_le_bytes());
        w.write_bytes(&(!len).to_le_bytes());
        w.write_bytes(chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    fn roundtrip(data: &[u8], level: u8) {
        let compressed = deflate(data, level);
        let back = inflate(&compressed).expect("inflate");
        assert_eq!(back, data, "level {level}, len {}", data.len());
    }

    #[test]
    fn empty_input() {
        for level in [0u8, 1, 3, 9] {
            roundtrip(b"", level);
        }
    }

    #[test]
    fn short_inputs_all_levels() {
        for level in 0..=9u8 {
            roundtrip(b"a", level);
            roundtrip(b"abc", level);
            roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaa", level);
            roundtrip(b"hello hello hello hello goodbye", level);
        }
    }

    #[test]
    fn compresses_repetitive_data() {
        let data: Vec<u8> = b"0123456789".repeat(1000);
        let c = deflate(&data, 6);
        assert!(
            c.len() < data.len() / 10,
            "repetitive data should shrink well: {} -> {}",
            data.len(),
            c.len()
        );
        roundtrip(&data, 6);
    }

    #[test]
    fn handles_incompressible_data() {
        // A simple xorshift stream: no 3-byte matches to speak of.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        for level in [0u8, 3, 9] {
            roundtrip(&data, level);
        }
    }

    #[test]
    fn long_matches_and_boundaries() {
        // Exercise MAX_MATCH-length copies.
        let mut data = vec![7u8; 1000];
        data.extend_from_slice(b"tail");
        roundtrip(&data, 9);
        // Exactly window-sized repetition.
        let data: Vec<u8> = b"xy".repeat(WINDOW_SIZE / 2 + 100);
        roundtrip(&data, 5);
    }

    #[test]
    fn stored_blocks_split_at_64k() {
        let data = vec![0x42u8; 70_000];
        let c = deflate(&data, 0);
        // 70_000 + 2 block headers (5 bytes each) + 1 spare bit rounding.
        assert!(c.len() >= 70_000 + 10);
        roundtrip(&data, 0);
    }

    #[test]
    fn higher_levels_do_not_expand_much() {
        let text = b"The BSD Packet Filter: A New Architecture for User-level \
                     Packet Capture. The BSD Packet Filter: A New Architecture."
            .repeat(50);
        let l1 = deflate(&text, 1).len();
        let l9 = deflate(&text, 9).len();
        assert!(l9 <= l1, "level 9 ({l9}) should not be worse than 1 ({l1})");
    }
}
