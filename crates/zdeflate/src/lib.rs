//! # pcs-zdeflate — a DEFLATE/gzip implementation for analysis-load
//! experiments
//!
//! The thesis measures how per-packet *compression* load affects capture
//! rates: the capture application calls zlib's `gzwrite()` on every packet
//! at levels 3 and 9 (Fig. 6.11, Fig. B.3), and a separate experiment pipes
//! `tcpdump` output through a `gzip` process (Fig. 6.12). This crate is the
//! zlib substitute: a real, self-contained compressor whose per-level CPU
//! effort profile drives the simulated load, plus a complete decoder for
//! verification.
//!
//! * [`deflate()`](deflate::deflate) / [`inflate()`](inflate::inflate) — RFC 1951 streams (stored + fixed-Huffman
//!   encoder with hash-chain LZ77 and lazy matching; full decoder including
//!   dynamic-Huffman blocks);
//! * [`gz`] — RFC 1952 gzip framing with a `gzopen`/`gzwrite`/`gzclose`
//!   style streaming writer;
//! * [`crc32`] — the gzip checksum.

//!
//! ```
//! use pcs_zdeflate::{deflate, inflate, GzWriter, gunzip};
//!
//! let data = b"packet capture packet capture packet capture".to_vec();
//! let packed = deflate(&data, 6);
//! assert_eq!(inflate(&packed).unwrap(), data);
//!
//! let mut gz = GzWriter::new(3);
//! gz.write(&data);
//! assert_eq!(gunzip(&gz.finish()).unwrap(), data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
pub mod crc32;
pub mod deflate;
pub mod gz;
pub mod inflate;
pub mod tables;

pub use deflate::{deflate, LevelParams};
pub use gz::{gunzip, GzError, GzWriter};
pub use inflate::{inflate, InflateError};
