//! A complete DEFLATE decoder (RFC 1951): stored, fixed-Huffman and
//! dynamic-Huffman blocks.

use crate::bitio::BitReader;
use crate::tables::{DIST_TABLE, LENGTH_TABLE};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InflateError {
    /// Ran out of input bits.
    UnexpectedEof,
    /// Reserved block type 11.
    BadBlockType,
    /// Stored-block length check failed.
    BadStoredLength,
    /// An invalid Huffman code or symbol was encountered.
    BadCode,
    /// A back-reference pointed before the start of output.
    BadDistance,
    /// The code-length alphabet of a dynamic block is malformed.
    BadCodeLengths,
}

impl core::fmt::Display for InflateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            InflateError::UnexpectedEof => "unexpected end of input",
            InflateError::BadBlockType => "reserved block type",
            InflateError::BadStoredLength => "stored block length mismatch",
            InflateError::BadCode => "invalid Huffman code",
            InflateError::BadDistance => "distance before start of output",
            InflateError::BadCodeLengths => "malformed code lengths",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for InflateError {}

/// A canonical Huffman decoding table (bit-by-bit decoder; simple and
/// sufficient for the testbed's needs).
struct Huffman {
    /// counts[n] = number of codes of length n.
    counts: [u16; 16],
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u16>,
}

impl Huffman {
    /// Build from per-symbol code lengths (0 = unused).
    fn new(lengths: &[u8]) -> Result<Huffman, InflateError> {
        let mut counts = [0u16; 16];
        for &l in lengths {
            if l > 15 {
                return Err(InflateError::BadCodeLengths);
            }
            counts[l as usize] += 1;
        }
        counts[0] = 0;
        // Over-subscription check.
        let mut left = 1i32;
        for &c in counts.iter().skip(1) {
            left <<= 1;
            left -= c as i32;
            if left < 0 {
                return Err(InflateError::BadCodeLengths);
            }
        }
        let mut offsets = [0u16; 16];
        for l in 1..15 {
            offsets[l + 1] = offsets[l] + counts[l];
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l > 0).count()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[offsets[l as usize] as usize] = sym as u16;
                offsets[l as usize] += 1;
            }
        }
        Ok(Huffman { counts, symbols })
    }

    /// Decode one symbol.
    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, InflateError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..16 {
            code |= r.read_bit().ok_or(InflateError::UnexpectedEof)? as i32;
            let count = self.counts[len] as i32;
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(InflateError::BadCode)
    }
}

fn fixed_litlen_lengths() -> Vec<u8> {
    let mut l = vec![0u8; 288];
    l[0..144].fill(8);
    l[144..256].fill(9);
    l[256..280].fill(7);
    l[280..288].fill(8);
    l
}

/// Decompress a complete DEFLATE stream.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    inflate_with_consumed(data).map(|(out, _)| out)
}

/// Decompress a DEFLATE stream that may be followed by trailing bytes
/// (e.g. a gzip trailer); returns the output and the number of compressed
/// bytes consumed (rounded up to whole bytes).
pub fn inflate_with_consumed(data: &[u8]) -> Result<(Vec<u8>, usize), InflateError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.read_bit().ok_or(InflateError::UnexpectedEof)?;
        let btype = r.read_bits(2).ok_or(InflateError::UnexpectedEof)?;
        match btype {
            0b00 => {
                r.align_byte();
                let len_bytes = r.read_bytes(4).ok_or(InflateError::UnexpectedEof)?;
                let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]);
                let nlen = u16::from_le_bytes([len_bytes[2], len_bytes[3]]);
                if len != !nlen {
                    return Err(InflateError::BadStoredLength);
                }
                let body = r
                    .read_bytes(len as usize)
                    .ok_or(InflateError::UnexpectedEof)?;
                out.extend_from_slice(&body);
            }
            0b01 => {
                let lit = Huffman::new(&fixed_litlen_lengths()).expect("fixed table valid");
                let dist = Huffman::new(&[5u8; 30]).expect("fixed dist valid");
                inflate_block(&mut r, &lit, &dist, &mut out)?;
            }
            0b10 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &lit, &dist, &mut out)?;
            }
            _ => return Err(InflateError::BadBlockType),
        }
        if bfinal == 1 {
            let consumed = r.byte_position();
            return Ok((out, consumed));
        }
    }
}

fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(Huffman, Huffman), InflateError> {
    let hlit = r.read_bits(5).ok_or(InflateError::UnexpectedEof)? as usize + 257;
    let hdist = r.read_bits(5).ok_or(InflateError::UnexpectedEof)? as usize + 1;
    let hclen = r.read_bits(4).ok_or(InflateError::UnexpectedEof)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(InflateError::BadCodeLengths);
    }
    const ORDER: [usize; 19] = [
        16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
    ];
    let mut cl_lengths = [0u8; 19];
    for &pos in ORDER.iter().take(hclen) {
        cl_lengths[pos] = r.read_bits(3).ok_or(InflateError::UnexpectedEof)? as u8;
    }
    let cl = Huffman::new(&cl_lengths)?;

    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        let sym = cl.decode(r)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let prev = *lengths.last().ok_or(InflateError::BadCodeLengths)?;
                let n = 3 + r.read_bits(2).ok_or(InflateError::UnexpectedEof)?;
                for _ in 0..n {
                    lengths.push(prev);
                }
            }
            17 => {
                let n = 3 + r.read_bits(3).ok_or(InflateError::UnexpectedEof)?;
                lengths.resize(lengths.len() + n as usize, 0);
            }
            18 => {
                let n = 11 + r.read_bits(7).ok_or(InflateError::UnexpectedEof)?;
                lengths.resize(lengths.len() + n as usize, 0);
            }
            _ => return Err(InflateError::BadCodeLengths),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err(InflateError::BadCodeLengths);
    }
    let lit = Huffman::new(&lengths[..hlit])?;
    let dist = Huffman::new(&lengths[hlit..])?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut BitReader<'_>,
    lit: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(r)? as usize;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let (base, extra) = LENGTH_TABLE[sym - 257];
                let len = base as usize
                    + r.read_bits(extra as u32)
                        .ok_or(InflateError::UnexpectedEof)? as usize;
                let dsym = dist.decode(r)? as usize;
                if dsym >= 30 {
                    return Err(InflateError::BadCode);
                }
                let (dbase, dextra) = DIST_TABLE[dsym];
                let d = dbase as usize
                    + r.read_bits(dextra as u32)
                        .ok_or(InflateError::UnexpectedEof)? as usize;
                if d > out.len() {
                    return Err(InflateError::BadDistance);
                }
                let start = out.len() - d;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return Err(InflateError::BadCode),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_stored_block() {
        // BFINAL=1 BTYPE=00, aligned, LEN=5, NLEN=!5, "hello"
        let mut data = vec![0b0000_0001];
        data.extend_from_slice(&5u16.to_le_bytes());
        data.extend_from_slice(&(!5u16).to_le_bytes());
        data.extend_from_slice(b"hello");
        assert_eq!(inflate(&data).unwrap(), b"hello");
    }

    #[test]
    fn rejects_bad_stored_length() {
        let mut data = vec![0b0000_0001];
        data.extend_from_slice(&5u16.to_le_bytes());
        data.extend_from_slice(&5u16.to_le_bytes()); // wrong complement
        data.extend_from_slice(b"hello");
        assert_eq!(inflate(&data), Err(InflateError::BadStoredLength));
    }

    #[test]
    fn rejects_reserved_block_type() {
        assert_eq!(inflate(&[0b0000_0111]), Err(InflateError::BadBlockType));
    }

    #[test]
    fn rejects_truncation() {
        assert_eq!(inflate(&[]), Err(InflateError::UnexpectedEof));
        let mut data = vec![0b0000_0001];
        data.extend_from_slice(&100u16.to_le_bytes());
        data.extend_from_slice(&(!100u16).to_le_bytes());
        data.extend_from_slice(b"short");
        assert_eq!(inflate(&data), Err(InflateError::UnexpectedEof));
    }

    #[test]
    fn rejects_distance_too_far() {
        // Fixed block: a match with distance 1 as the very first symbol.
        use crate::bitio::BitWriter;
        use crate::tables::fixed_litlen_code;
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        let (code, bits) = fixed_litlen_code(257); // length 3
        w.write_code(code, bits);
        w.write_code(0, 5); // distance code 0 => distance 1
        let (code, bits) = fixed_litlen_code(256);
        w.write_code(code, bits);
        let data = w.finish();
        assert_eq!(inflate(&data), Err(InflateError::BadDistance));
    }

    #[test]
    fn huffman_oversubscription_rejected() {
        // Three codes of length 1 is impossible.
        assert!(Huffman::new(&[1, 1, 1]).is_err());
    }

    #[test]
    fn overlapping_copy_semantics() {
        // "aaaa...": literal 'a' then a match with distance 1, length 10.
        use crate::bitio::BitWriter;
        use crate::tables::fixed_litlen_code;
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        let (code, bits) = fixed_litlen_code(b'a' as usize);
        w.write_code(code, bits);
        // length 10 = code 264 (base 10, 0 extra)
        let (code, bits) = fixed_litlen_code(264);
        w.write_code(code, bits);
        w.write_code(0, 5); // distance 1
        let (code, bits) = fixed_litlen_code(256);
        w.write_code(code, bits);
        let data = w.finish();
        assert_eq!(inflate(&data).unwrap(), b"aaaaaaaaaaa");
    }
}
