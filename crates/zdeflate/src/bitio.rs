//! LSB-first bit I/O as used by DEFLATE (RFC 1951 §3.1.1).

/// Accumulates bits least-significant-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    bit_buf: u32,
    bit_count: u32,
}

impl BitWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `count` bits of `bits` (LSB first).
    pub fn write_bits(&mut self, bits: u32, count: u32) {
        debug_assert!(count <= 24);
        debug_assert!(count == 32 || bits < (1u32 << count));
        self.bit_buf |= bits << self.bit_count;
        self.bit_count += count;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xff) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Write a Huffman code: DEFLATE codes are packed most-significant bit
    /// first, so the code's bits are reversed before writing.
    pub fn write_code(&mut self, code: u32, len: u32) {
        let mut rev = 0u32;
        for i in 0..len {
            rev |= ((code >> i) & 1) << (len - 1 - i);
        }
        self.write_bits(rev, len);
    }

    /// Pad to a byte boundary with zero bits.
    pub fn align_byte(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xff) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }

    /// Append raw bytes (must be byte-aligned).
    pub fn write_bytes(&mut self, data: &[u8]) {
        assert_eq!(self.bit_count, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(data);
    }

    /// Finish, flushing any partial byte, and return the output.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }

    /// Bytes emitted so far (not counting a partial byte).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty() && self.bit_count == 0
    }
}

/// Reads bits least-significant-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit_buf: u32,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    /// Read from `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    fn refill(&mut self) {
        while self.bit_count <= 24 && self.pos < self.data.len() {
            self.bit_buf |= (self.data[self.pos] as u32) << self.bit_count;
            self.pos += 1;
            self.bit_count += 8;
        }
    }

    /// Read `count` bits; `None` at end of input.
    pub fn read_bits(&mut self, count: u32) -> Option<u32> {
        debug_assert!(count <= 24);
        if count == 0 {
            return Some(0);
        }
        self.refill();
        if self.bit_count < count {
            return None;
        }
        let v = self.bit_buf & ((1u32 << count) - 1);
        self.bit_buf >>= count;
        self.bit_count -= count;
        Some(v)
    }

    /// Read a single bit.
    pub fn read_bit(&mut self) -> Option<u32> {
        self.read_bits(1)
    }

    /// Discard bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.bit_count % 8;
        self.bit_buf >>= drop;
        self.bit_count -= drop;
    }

    /// Number of input bytes consumed so far; a partially-read byte
    /// counts as consumed.
    pub fn byte_position(&self) -> usize {
        self.pos - (self.bit_count / 8) as usize
    }

    /// Read whole bytes (after alignment).
    pub fn read_bytes(&mut self, n: usize) -> Option<Vec<u8>> {
        self.align_byte();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.read_bits(8)? as u8);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11110000, 8);
        w.write_bits(0x3fff, 14);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(8), Some(0b11110000));
        assert_eq!(r.read_bits(14), Some(0x3fff));
    }

    #[test]
    fn code_reversal() {
        // Writing code 0b0111000 (7 bits, MSB-first) must put bits
        // 0001110 into the stream LSB-first.
        let mut w = BitWriter::new();
        w.write_code(0b0111000, 7);
        w.write_bits(0, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_1110]);
    }

    #[test]
    fn byte_alignment() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_byte();
        w.write_bytes(&[0xab, 0xcd]);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x01, 0xab, 0xcd]);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), Some(1));
        assert_eq!(r.read_bytes(2), Some(vec![0xab, 0xcd]));
    }

    #[test]
    fn read_past_end() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8), Some(0xff));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn zero_bit_reads() {
        let mut r = BitReader::new(&[0x5a]);
        assert_eq!(r.read_bits(0), Some(0));
        assert_eq!(r.read_bits(8), Some(0x5a));
    }
}
